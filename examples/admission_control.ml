(* Run-time admission control (the paper's Section 6).

   A resource manager keeps one composed load aggregate per processor.
   Applications arrive with throughput requirements; each is admitted only if
   its own requirement and everyone else's still hold under the composed
   contention estimate.  Withdrawal uses the inverse operators, so the
   manager never re-analyses the admitted population.

   Run with: dune exec examples/admission_control.exe *)

let procs = 4

let make_app name ~exec_scale =
  (* A family of 6-actor ring applications of varying weight. *)
  let actors =
    Array.init 6 (fun i ->
        (Printf.sprintf "%s%d" (String.lowercase_ascii name) i,
         exec_scale *. float_of_int (10 + (7 * i mod 23))))
  in
  let channels =
    Array.init 6 (fun i -> (i, (i + 1) mod 6, 1, 1, if i = 5 then 2 else 0))
  in
  let g = Sdf.Graph.create ~name ~actors ~channels in
  Contention.Analysis.app ~procs g ~mapping:(Contention.Mapping.modulo ~procs g)

let describe_verdict = function
  | Contention.Admission.Admitted _ -> "admitted"
  | Contention.Admission.Rejected_candidate { estimated; required } ->
      Printf.sprintf "rejected: its own throughput %.5f < required %.5f" estimated
        required
  | Contention.Admission.Rejected_victim { app; estimated; required } ->
      Printf.sprintf "rejected: would push %s to %.5f < required %.5f" app estimated
        required

let () =
  let ctl = Contention.Admission.create ~procs () in
  let report () =
    List.iter
      (fun (name, (_ : Contention.Analysis.app), (req : Contention.Admission.requirement)) ->
        Printf.printf "    %-8s estimated throughput %.5f (requires %.5f)\n" name
          (Contention.Admission.estimated_throughput ctl name)
          req.min_throughput)
      (List.rev (Contention.Admission.admitted ctl))
  in
  (* A video player needs at least 80% of its isolation throughput. *)
  let video = make_app "Video" ~exec_scale:1.0 in
  let video_req =
    { Contention.Admission.min_throughput = 0.8 /. video.isolation_period }
  in
  Printf.printf "1. Video arrives (isolation period %.0f): %s\n" video.isolation_period
    (describe_verdict (Contention.Admission.try_admit ctl video video_req));
  report ();

  (* A lightweight audio decoder, best effort. *)
  let audio = make_app "Audio" ~exec_scale:0.4 in
  Printf.printf "\n2. Audio arrives (best effort): %s\n"
    (describe_verdict (Contention.Admission.try_admit ctl audio Contention.Admission.best_effort));
  report ();

  (* A heavyweight game would break the video requirement. *)
  let game = make_app "Game" ~exec_scale:2.5 in
  Printf.printf "\n3. Game arrives (best effort): %s\n"
    (describe_verdict (Contention.Admission.try_admit ctl game Contention.Admission.best_effort));
  report ();

  (* The user stops the video; now the game fits. *)
  Contention.Admission.withdraw ctl "Video";
  Printf.printf "\n4. Video withdrawn. Game retries: %s\n"
    (describe_verdict (Contention.Admission.try_admit ctl game Contention.Admission.best_effort));
  report ();

  (* Video tries to come back but the game is in the way. *)
  Printf.printf "\n5. Video retries with its old requirement: %s\n"
    (describe_verdict (Contention.Admission.try_admit ctl video video_req));
  report ();

  (* Section 6 feedback: the game is observed running slower than estimated
     (so it blocks its processors less often than the isolation model says).
     The calibrated mix is friendlier, but not enough for full quality. *)
  let game_estimate = Contention.Admission.estimated_period ctl "Game" in
  Contention.Admission.observe ctl "Game" ~measured_period:(3. *. game_estimate);
  Printf.printf
    "\n6. Runtime reports Game actually runs at period %.0f (estimate was %.0f);\n\
    \   after calibration Video retries at full quality: %s\n"
    (3. *. game_estimate) game_estimate
    (describe_verdict (Contention.Admission.try_admit ctl video video_req));
  report ();

  (* The player accepts a reduced quality preset: 60% of the isolation
     throughput is enough for the small picture-in-picture window. *)
  let reduced = { Contention.Admission.min_throughput = 0.6 /. video.isolation_period } in
  Printf.printf "\n7. Video retries at reduced quality (60%%): %s\n"
    (describe_verdict (Contention.Admission.try_admit ctl video reduced));
  report ()
