(* Benchmark and reproduction harness.

   Running this executable regenerates every table and figure of the paper's
   evaluation (Section 5) on the substitute substrate, then times the pieces
   with Bechamel micro-benchmarks:

     FIG5    normalized periods, all 10 applications concurrent
     TABLE1  mean inaccuracy over all 1023 use-cases + complexity
     FIG6    inaccuracy vs number of concurrent applications
     TIMING  analysis vs simulation wall-clock (the "minutes vs 23 hours" claim)
     ABLATION-ORDER      accuracy/cost of Eq. 5 truncation order m
     ABLATION-ITERATION  single-pass vs fixed-point refinement
     ABLATION-ENGINE     state-space vs HSDF/MCM vs exact-rational backends
     ABLATION-STOCHASTIC Section 6 variable execution times vs replicated sim
     ABLATION-DENSITY    accuracy vs per-node utilisation (fewer processors)
     CAPACITY            buffer/throughput trade-off (references [16]/[20])
     ARBITRATION         FCFS vs fixed priority vs static order ([2])
     TDMA                the preemptive TDMA worst-case baseline ([3])
     EXPLORE             estimator-in-the-loop mapping search
     SERVE               request throughput of the in-process serve daemon
     AUDIT               serve estimate throughput with the shadow audit
                         off, at 1-in-64 and at 1-in-8 sampling
     CLUSTER             open-loop load against one shard vs the full
                         consistent-hash ring (aggregate cache scaling)
     ESTIMATOR           batched kernel engine vs the list-based reference
     ADMIT               incremental admission joins/s vs a per-join re-fold
                         at a 1,000-application resident population, plus
                         confidence-margin cost per request
     MICRO   Bechamel OLS estimates for kernels and full-path operations

   Flags:
     --quick       run only the trajectory sections (SWEEP, ESTIMATOR, SERVE,
                   AUDIT, CLUSTER, CHECK, ADMIT) — what CI's bench-smoke job
                   measures
     --json FILE   write the machine-readable trajectory (schema
                   "contention-bench/1", see EXPERIMENTS.md) to FILE

   Environment knobs:
     CONTENTION_SEED      workload seed            (default 2007)
     CONTENTION_HORIZON   simulation horizon       (default 500000)
     CONTENTION_APPS      number of applications   (default 10)
     CONTENTION_QUOTA     bechamel quota seconds   (default 0.5)
     CONTENTION_SWEEP     "full" or a divisor N to sample every Nth use-case
     CONTENTION_JOBS      domains for the use-case sweep (default: recommended
                          domain count - 1; the TIMING section also re-runs
                          the sweep sequentially to report the speedup)
     CONTENTION_TRACE     write a Chrome/Perfetto trace of the whole run to
                          this file (spans recording is off otherwise)
     CONTENTION_REV       revision label stamped into the --json output
                          (default "dev")
     CONTENTION_CLUSTER_SHARDS    ring size for the CLUSTER section (default 4)
     CONTENTION_CLUSTER_RATE      offered load in req/s        (default 6000)
     CONTENTION_CLUSTER_DURATION  open-loop duration seconds   (default 0.5)
     CONTENTION_CLUSTER_JOBS      workers per shard            (default 2)
     CONTENTION_CLUSTER_CACHE     estimate-cache entries/shard (default 8)
     CONTENTION_CLUSTER_DIGESTS   load working-set size        (default 16)
     CONTENTION_ADMIT_APPS        ADMIT resident population    (default 1000)
     CONTENTION_ADMIT_CYCLES      ADMIT join/leave cycles      (default 100) *)

open Bechamel

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let seed = env_int "CONTENTION_SEED" 2007
let horizon = env_float "CONTENTION_HORIZON" 500_000.
let num_apps = env_int "CONTENTION_APPS" 10
let quota = env_float "CONTENTION_QUOTA" 0.5
let trace_file = Sys.getenv_opt "CONTENTION_TRACE"
let () = if trace_file <> None then Obs.Span.set_enabled true

(* No cmdliner in the bench — two flags do not justify the dependency. *)
let quick, json_path =
  let quick = ref false and json = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s (expected --quick, --json FILE)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (!quick, !json)

let full = not quick

(* All wall-clock deltas below come from the monotonic clock: the bench can
   run for a long time and an NTP step must not bend a timing row. *)
let elapsed_s since = Obs.Clock.elapsed_s ~since

let section name =
  Printf.printf "\n%s\n%s %s\n%s\n" (String.make 72 '=') "SECTION" name
    (String.make 72 '=')

let () = Printf.printf "contention bench: seed=%d apps=%d horizon=%.0f\n" seed num_apps horizon

let workload = Exp.Workload.make ~seed ~num_apps ~procs:10 ()

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)

let () =
  if full then begin
    section "FIG5";
    print_string (Exp.Figures.render_fig5 (Exp.Figures.fig5 ~horizon workload))
  end

(* ------------------------------------------------------------------ *)
(* The sweep behind Table 1 and Figure 6                               *)

let jobs = Exp.Pool.default_jobs ()

let sweep_usecases =
  let all = Contention.Usecase.all ~napps:num_apps in
  match Sys.getenv_opt "CONTENTION_SWEEP" with
  | None | Some "full" -> all
  | Some divisor ->
      (* Sample uniformly: a strided slice of the mask list would always
         contain the same low-index applications. *)
      let d = int_of_string divisor in
      let arr = Array.of_list all in
      Sdfgen.Rng.shuffle (Sdfgen.Rng.create seed) arr;
      List.filteri (fun i _ -> i mod d = 0) (Array.to_list arr)

let sweep, parallel_wall_s =
  section "SWEEP";
  Printf.printf "sweeping %d use-cases (simulation horizon %.0f, %d domains)...\n%!"
    (List.length sweep_usecases) horizon jobs;
  let last = ref 0 in
  let progress done_ total =
    let pct = 100 * done_ / total in
    if pct >= !last + 10 then begin
      last := pct;
      Printf.printf "  %d%% (%d/%d)\n%!" pct done_ total
    end
  in
  let t0 = Obs.Clock.now_ns () in
  let s = Exp.Sweep.run ~horizon ~usecases:sweep_usecases ~progress ~jobs workload in
  (s, elapsed_s t0)

let sweep_json =
  let n = List.length sweep_usecases in
  Serve.Json.Obj
    [
      ("usecases", Serve.Json.Num (float_of_int n));
      ("jobs", Serve.Json.Num (float_of_int jobs));
      ("wall_s", Serve.Json.Num parallel_wall_s);
      ( "usecases_per_s",
        Serve.Json.Num (float_of_int n /. Float.max 1e-9 parallel_wall_s) );
    ]

let () =
  if full then begin
  section "TABLE1";
  print_string (Exp.Figures.render_table1 (Exp.Figures.table1 sweep));
  section "FIG6";
  print_string (Exp.Figures.render_fig6 (Exp.Figures.fig6 sweep));
  section "TIMING";
  print_string (Exp.Figures.render_timing sweep);
  (* Sequential re-run of the identical sweep for the parallel speedup row.
     The observations must agree bit for bit — the sweep is deterministic in
     the number of domains.  Structural [compare] rather than [<>]: a
     use-case whose simulation completes no iteration records a NaN period
     (a valid observation filtered later), and NaN <> NaN would cry wolf. *)
  let t0 = Obs.Clock.now_ns () in
  let sequential = Exp.Sweep.run ~horizon ~usecases:sweep_usecases ~jobs:1 workload in
  let sequential_wall_s = elapsed_s t0 in
  if compare sequential.observations sweep.observations <> 0 then
    print_endline "  WARNING: sequential and parallel observations differ!";
  Printf.printf
    "\n  sweep wall-clock, sequential (jobs=1) : %.2f s\n\
     \  sweep wall-clock, parallel   (jobs=%d): %.2f s\n\
     \  parallel sweep speedup               : %.2fx\n"
    sequential_wall_s jobs parallel_wall_s
    (sequential_wall_s /. Float.max 1e-9 parallel_wall_s)
  end

(* ------------------------------------------------------------------ *)
(* The estimator kernel: batched zero-allocation engine vs reference   *)

let estimator_json =
  section "ESTIMATOR";
  print_endline
    "Batched kernel engine (Analysis.estimate_periods_into) against the\n\
     list-based reference (Analysis.estimate_prepared_reference): whole-sweep\n\
     passes over every use-case of the workload, per estimator";
  let caches = Array.map Contention.Analysis.prepare workload.apps in
  let prepared = Contention.Analysis.prepare_workload ~caches workload.apps in
  let ucs = Array.of_list (Contention.Usecase.all ~napps:num_apps) in
  let n_ucs = Array.length ucs in
  let pairs =
    Array.map
      (fun uc ->
        List.map
          (fun i -> (workload.apps.(i), caches.(i)))
          (Contention.Usecase.to_list uc))
      ucs
  in
  let ws = Contention.Analysis.workspace () in
  let out = Array.make num_apps 0. in
  let kernel_pass est =
    for u = 0 to n_ucs - 1 do
      ignore
        (Contention.Analysis.estimate_periods_into ws est prepared
           ~usecase:ucs.(u) ~out)
    done
  in
  let reference_pass est =
    for u = 0 to n_ucs - 1 do
      ignore (Contention.Analysis.estimate_prepared_reference est pairs.(u))
    done
  in
  (* Adaptive repetition: one warm pass, then enough timed whole-sweep passes
     to cover ~0.2 s, so the per-use-case figure is stable on both the 1023
     use-cases of the full workload and CI's handful. *)
  let seconds_per_usecase f =
    f ();
    let t0 = Obs.Clock.now_ns () in
    f ();
    let once = elapsed_s t0 in
    let reps = Int.max 1 (int_of_float (0.2 /. Float.max 1e-6 once)) in
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to reps do
      f ()
    done;
    elapsed_s t0 /. float_of_int (reps * n_ucs)
  in
  let rows = ref [] and per_est = ref [] and speedups = ref [] in
  List.iter
    (fun est ->
      let kernel_s = seconds_per_usecase (fun () -> kernel_pass est) in
      let reference_s = seconds_per_usecase (fun () -> reference_pass est) in
      let speedup = reference_s /. Float.max 1e-12 kernel_s in
      speedups := speedup :: !speedups;
      let name = Contention.Analysis.estimator_name est in
      rows :=
        [
          name;
          Printf.sprintf "%.1f" (kernel_s *. 1e6);
          Printf.sprintf "%.1f" (reference_s *. 1e6);
          Printf.sprintf "%.2fx" speedup;
        ]
        :: !rows;
      per_est :=
        Serve.Json.Obj
          [
            ("name", Serve.Json.Str name);
            ("kernel_ns_per_usecase", Serve.Json.Num (kernel_s *. 1e9));
            ("reference_ns_per_usecase", Serve.Json.Num (reference_s *. 1e9));
            ( "kernel_usecases_per_s",
              Serve.Json.Num (1. /. Float.max 1e-12 kernel_s) );
            ("speedup", Serve.Json.Num speedup);
          ]
        :: !per_est)
    Contention.Analysis.all_paper_estimators;
  print_string
    (Repro_stats.Table.render
       ~header:[ "Estimator"; "Kernel us/uc"; "Reference us/uc"; "Speedup" ]
       (List.rev !rows));
  (* Allocation on the warm kernel path, from the GC's own counters.  The
     only allocation inside the measured window is Gc.minor_words boxing its
     float return — a constant few words independent of the pass count. *)
  let alloc_est = Contention.Analysis.Order 2 in
  kernel_pass alloc_est;
  let alloc_passes = 10 in
  let w0 = Gc.minor_words () in
  for _ = 1 to alloc_passes do
    kernel_pass alloc_est
  done;
  let dw = Gc.minor_words () -. w0 in
  let words_per_uc = dw /. float_of_int (alloc_passes * n_ucs) in
  let mean_speedup = Repro_stats.Stats.mean !speedups in
  Printf.printf
    "\nwarm kernel allocation: %.3f minor words/use-case (%d use-cases)\n\
     mean speedup over the reference path: %.2fx\n"
    words_per_uc n_ucs mean_speedup;
  Serve.Json.Obj
    [
      ("usecases", Serve.Json.Num (float_of_int n_ucs));
      ("per_estimator", Serve.Json.Arr (List.rev !per_est));
      ("kernel_minor_words_per_usecase", Serve.Json.Num words_per_uc);
      ("mean_speedup", Serve.Json.Num mean_speedup);
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: order of the Equation 5 truncation                        *)

let full_usecase = Contention.Usecase.full ~napps:num_apps
let full_apps = Exp.Workload.analysis_apps workload full_usecase

let simulated_full =
  (* Lazy: only the full-run ablation sections force this simulation. *)
  lazy
    (let results, _ =
       Desim.Engine.run ~horizon ~procs:workload.procs
         (Exp.Workload.sim_apps workload full_usecase)
     in
     Array.map (fun r -> r.Desim.Engine.avg_period) results)

let mean_err estimated =
  let simulated = Lazy.force simulated_full in
  Repro_stats.Stats.mean
    (List.mapi
       (fun i p -> Repro_stats.Stats.abs_pct_error ~reference:simulated.(i) p)
       estimated)

let periods est = List.map (fun (r : Contention.Analysis.estimate) -> r.period) (Contention.Analysis.estimate est full_apps)

let () =
  if full then begin
  section "ABLATION-ORDER";
  print_endline
    "Mean abs % period error on the maximum-contention use-case, by truncation order";
  let rows =
    List.map
      (fun est ->
        let t0 = Obs.Clock.now_ns () in
        let err = mean_err (periods est) in
        let dt = elapsed_s t0 *. 1000. in
        [ Contention.Analysis.estimator_name est;
          Repro_stats.Table.float_cell ~decimals:2 err;
          Repro_stats.Table.float_cell ~decimals:2 dt ])
      [ Contention.Analysis.Worst_case; Contention.Analysis.Order 2;
        Contention.Analysis.Order 3; Contention.Analysis.Order 4;
        Contention.Analysis.Order 6; Contention.Analysis.Composability;
        Contention.Analysis.Exact ]
  in
  print_string
    (Repro_stats.Table.render ~header:[ "Estimator"; "Err (%)"; "Time (ms)" ] rows)
  end

(* ------------------------------------------------------------------ *)
(* Ablation: single pass vs fixed-point refinement                     *)

let () =
  if full then begin
  section "ABLATION-ITERATION";
  print_endline "Fixed-point refinement of blocking probabilities (Order 2)";
  let rows =
    List.map
      (fun k ->
        let estimates =
          Contention.Analysis.estimate ~iterations:k (Contention.Analysis.Order 2)
            full_apps
        in
        let ps = List.map (fun (r : Contention.Analysis.estimate) -> r.period) estimates in
        [ string_of_int k; Repro_stats.Table.float_cell ~decimals:2 (mean_err ps) ])
      [ 1; 2; 3; 5 ]
  in
  print_string (Repro_stats.Table.render ~header:[ "Iterations"; "Err (%)" ] rows)
  end

(* ------------------------------------------------------------------ *)
(* Ablation: period computation backends                               *)

let () =
  if full then begin
  section "ABLATION-ENGINE";
  print_endline "Period backend parity on the workload graphs";
  let rows =
    Array.to_list
      (Array.map
         (fun (a : Contention.Analysis.app) ->
           let ss = Sdf.Statespace.period_exn a.graph in
           let mcm = Sdf.Hsdf.period a.graph in
           let exact = Sdf.Hsdf.period_rational a.graph in
           [ a.graph.Sdf.Graph.name;
             Repro_stats.Table.float_cell ~decimals:3 ss;
             Repro_stats.Table.float_cell ~decimals:3 mcm;
             Sdf.Rational.to_string exact;
             Repro_stats.Table.float_cell ~decimals:6 (Float.abs (ss -. mcm)) ])
         workload.apps)
  in
  print_string
    (Repro_stats.Table.render
       ~header:[ "App"; "Statespace"; "HSDF/MCM"; "Exact rational"; "Abs diff" ]
       rows)
  end

(* ------------------------------------------------------------------ *)
(* Ablation: variable execution times (Section 6 extension)            *)

let () =
  if full then begin
  section "ABLATION-STOCHASTIC";
  print_endline
    "Estimate vs stochastic simulation as execution-time spread grows\n\
     (apps A and B sharing all ten processors, uniform times, fixed means)";
  let g1 = workload.apps.(0).Contention.Analysis.graph in
  let g2 = workload.apps.(1).Contention.Analysis.graph in
  let m1 = workload.apps.(0).Contention.Analysis.mapping in
  let m2 = workload.apps.(1).Contention.Analysis.mapping in
  let rows =
    List.map
      (fun spread ->
        let dists_of (g : Sdf.Graph.t) =
          Array.map
            (fun (a : Sdf.Graph.actor) ->
              if spread = 0. then Contention.Dist.Constant a.exec_time
              else
                Contention.Dist.Uniform
                  {
                    lo = a.exec_time *. (1. -. spread);
                    hi = a.exec_time *. (1. +. spread);
                  })
            g.actors
        in
        let d1 = dists_of g1 and d2 = dists_of g2 in
        let a1 = Contention.Analysis.app ~procs:10 g1 ~mapping:m1 ~distributions:d1 in
        let a2 = Contention.Analysis.app ~procs:10 g2 ~mapping:m2 ~distributions:d2 in
        let estimated =
          match Contention.Analysis.estimate (Contention.Analysis.Order 2) [ a1; a2 ] with
          | r :: _ -> r.Contention.Analysis.period
          | [] -> assert false
        in
        let summaries =
          Exp.Replicate.run ~replications:7
            ~horizon:(Float.max (horizon /. 5.) 150_000.)
            ~seed ~procs:10
            ~distributions:[| d1; d2 |]
            [|
              { Desim.Engine.graph = g1; mapping = m1 };
              { Desim.Engine.graph = g2; mapping = m2 };
            |]
        in
        let s = summaries.(0) in
        [
          Printf.sprintf "+/-%.0f%%" (100. *. spread);
          Repro_stats.Table.float_cell ~decimals:1 estimated;
          Printf.sprintf "%s +/- %s"
            (Repro_stats.Table.float_cell ~decimals:1 s.Exp.Replicate.mean)
            (Repro_stats.Table.float_cell ~decimals:1 s.Exp.Replicate.ci95);
          Repro_stats.Table.float_cell ~decimals:1
            (Repro_stats.Stats.abs_pct_error ~reference:s.Exp.Replicate.mean estimated);
        ])
      [ 0.; 0.3; 0.6; 0.9 ]
  in
  print_string
    (Repro_stats.Table.render
       ~header:[ "Spread"; "Estimated"; "Simulated (95% CI)"; "Err (%)" ]
       rows)
  end

(* ------------------------------------------------------------------ *)
(* Ablation: run-time calibration (Section 6)                          *)

let () =
  if full then begin
  section "ABLATION-CALIBRATION";
  print_endline
    "Re-estimating with measured (simulated) periods as the probability\n\
     base — the paper's Section 6 run-time suggestion — on the full use-case.\n\
     Negative result: for re-estimating the SAME mix this double-counts the\n\
     contention discount (the measured periods already include the waiting),\n\
     so the calibrated estimate undershoots; the suggestion pays off for\n\
     admission control, where a NEW application is estimated against the\n\
     currently measured system (see Contention.Admission).";
  let measured =
    let simulated = Lazy.force simulated_full in
    List.mapi (fun i a -> (a, simulated.(i))) full_apps
  in
  let rows =
    List.map
      (fun est ->
        let plain = mean_err (periods est) in
        let calibrated =
          mean_err
            (List.map
               (fun (r : Contention.Analysis.estimate) -> r.period)
               (Contention.Analysis.estimate_calibrated est measured))
        in
        [ Contention.Analysis.estimator_name est;
          Repro_stats.Table.float_cell ~decimals:2 plain;
          Repro_stats.Table.float_cell ~decimals:2 calibrated ])
      [ Contention.Analysis.Order 2; Contention.Analysis.Order 4;
        Contention.Analysis.Composability ]
  in
  print_string
    (Repro_stats.Table.render
       ~header:[ "Estimator"; "Plain err (%)"; "Calibrated err (%)" ]
       rows)
  end

(* ------------------------------------------------------------------ *)
(* Ablation: contention density (processor count)                      *)

let () =
  if full then begin
  section "ABLATION-DENSITY";
  print_endline
    "Accuracy vs contention density: the same six applications squeezed onto\n\
     fewer processors (full use-case, mean abs % period error vs simulation)";
  let rows =
    List.map
      (fun procs ->
        let w = Exp.Workload.make ~seed ~num_apps:6 ~procs () in
        let uc = Contention.Usecase.full ~napps:6 in
        let apps = Exp.Workload.analysis_apps w uc in
        let sim, _ =
          Desim.Engine.run ~horizon:(Float.min horizon 200_000.) ~procs
            (Exp.Workload.sim_apps w uc)
        in
        let err est =
          let estimates = Contention.Analysis.estimate est apps in
          Repro_stats.Stats.mean
            (List.mapi
               (fun i (r : Contention.Analysis.estimate) ->
                 let s = sim.(i).Desim.Engine.avg_period in
                 if Float.is_nan s then 0.
                 else Repro_stats.Stats.abs_pct_error ~reference:s r.period)
               estimates)
        in
        let util =
          let stats = snd (Desim.Engine.run ~horizon:50_000. ~procs (Exp.Workload.sim_apps w uc)) in
          Repro_stats.Stats.mean_arr (Desim.Engine.utilisation stats)
        in
        [
          string_of_int procs;
          Repro_stats.Table.float_cell ~decimals:2 util;
          Repro_stats.Table.float_cell (err Contention.Analysis.Worst_case);
          Repro_stats.Table.float_cell (err (Contention.Analysis.Order 2));
          Repro_stats.Table.float_cell (err (Contention.Analysis.Order 4));
          Repro_stats.Table.float_cell (err Contention.Analysis.Exact);
        ])
      [ 10; 8; 6; 4; 3 ]
  in
  print_string
    (Repro_stats.Table.render
       ~header:
         [ "Procs"; "Mean util"; "Worst case"; "Second order"; "Fourth order"; "Exact" ]
       rows)
  end

(* ------------------------------------------------------------------ *)
(* Expected performance under a usage model                            *)

let () =
  if full then begin
  section "SCENARIO";
  print_endline
    "Expected period per application when every application is independently\n\
     active half the time (product-form usage model over the sweep)";
  print_string (Exp.Scenario.render (Exp.Scenario.uniform ~napps:num_apps 0.5) sweep)
  end

(* ------------------------------------------------------------------ *)
(* Robustness: do the conclusions survive a different random workload? *)

let () =
  if full then begin
  section "SEEDS";
  print_endline
    "Table-1 period inaccuracies on freshly generated workloads (sampled\n\
     sweep, every 16th use-case) — the conclusions are seed-independent";
  let rows =
    List.map
      (fun s ->
        let w = Exp.Workload.make ~seed:s ~num_apps ~procs:10 () in
        let usecases =
          let arr = Array.of_list (Contention.Usecase.all ~napps:num_apps) in
          Sdfgen.Rng.shuffle (Sdfgen.Rng.create s) arr;
          List.filteri (fun i _ -> i mod 16 = 0) (Array.to_list arr)
        in
        let sweep = Exp.Sweep.run ~horizon:(Float.min horizon 200_000.) ~usecases w in
        let cell est = Repro_stats.Table.float_cell (Exp.Sweep.inaccuracy_period sweep est) in
        [ string_of_int s;
          cell Contention.Analysis.Worst_case;
          cell (Contention.Analysis.Order 4);
          cell (Contention.Analysis.Order 2);
          cell Contention.Analysis.Composability ])
      [ seed; seed + 1; seed + 2 ]
  in
  print_string
    (Repro_stats.Table.render
       ~header:[ "Seed"; "Worst case"; "Fourth order"; "Second order"; "Composability" ]
       rows)
  end

(* ------------------------------------------------------------------ *)
(* Buffer/throughput trade-off (references [16]/[20] of the paper)     *)

let () =
  if full then begin
  section "CAPACITY";
  let g = workload.apps.(0).Contention.Analysis.graph in
  Printf.printf "Buffer/throughput trade-off for application A (period %.0f unbounded)\n\n"
    (Sdf.Statespace.period_exn g);
  let curve = Sdf.Capacity.sweep_uniform g ~max_capacity:12 in
  let rows =
    List.map
      (fun (k, period) ->
        [
          string_of_int k;
          (match period with
          | None -> "deadlock"
          | Some p -> Repro_stats.Table.float_cell ~decimals:1 p);
        ])
      curve
  in
  print_string
    (Repro_stats.Table.render ~header:[ "Uniform capacity"; "Period" ] rows);
  let sufficient = Sdf.Capacity.sufficient_capacities g in
  Printf.printf "\nschedule-preserving capacities: total %d tokens over %d channels\n"
    (Array.fold_left ( + ) 0 sufficient)
    (Array.length sufficient);
  (* A deeply pipelined graph shows the actual gradient: more buffering buys
     more overlap until the bottleneck actor saturates. *)
  let pipeline =
    Sdf.Graph.create ~name:"pipeline4"
      ~actors:[| ("s0", 20.); ("s1", 35.); ("s2", 25.); ("s3", 30.) |]
      ~channels:
        [| (0, 1, 1, 1, 0); (1, 2, 1, 1, 0); (2, 3, 1, 1, 0); (3, 0, 1, 1, 4) |]
  in
  Printf.printf
    "\nFour-stage pipeline (bottleneck 35, 4 frames in flight) under uniform bounds:\n\n";
  let rows =
    List.map
      (fun (k, period) ->
        [
          string_of_int k;
          (match period with
          | None -> "deadlock"
          | Some p -> Repro_stats.Table.float_cell ~decimals:1 p);
        ])
      (Sdf.Capacity.sweep_uniform pipeline ~max_capacity:5)
  in
  print_string (Repro_stats.Table.render ~header:[ "Uniform capacity"; "Period" ] rows)
  end

(* ------------------------------------------------------------------ *)
(* Arbitration policies vs the analysis assumption                     *)

let () =
  if full then begin
  section "ARBITRATION";
  print_endline
    "Simulated periods of the full use-case under FCFS (the paper's model),\n\
     non-preemptive fixed priority (app A highest), and a static order\n\
     derived from a steady FCFS window — the related-work [2] arbitration";
  let sim_apps = Exp.Workload.sim_apps workload full_usecase in
  let sim ?on_event arbitration =
    fst (Desim.Engine.run ?on_event ~horizon ~arbitration ~procs:workload.procs sim_apps)
  in
  let trace = Desim.Trace.create () in
  let fcfs = sim ~on_event:(Desim.Trace.on_event trace) Desim.Engine.Fcfs in
  let prio = sim Desim.Engine.Fixed_priority in
  let max_period =
    Array.fold_left (fun acc r -> Float.max acc r.Desim.Engine.avg_period) 0. fcfs
  in
  (* Derive the order from the start of the run so the first scheduled
     firings match the initial token distribution. *)
  let orders =
    Desim.Trace.static_order trace ~procs:workload.procs
      ~window:(0., 8. *. max_period)
  in
  let static = sim (Desim.Engine.Static_order orders) in
  let names = Exp.Workload.names workload in
  let iso = Exp.Workload.isolation_periods workload in
  let static_cell (r : Desim.Engine.result) =
    if Float.is_nan r.avg_period then
      Printf.sprintf "stalled (%d iters)" r.iterations
    else Repro_stats.Table.float_cell r.avg_period
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i name ->
           [
             name;
             Repro_stats.Table.float_cell (iso.(i));
             Repro_stats.Table.float_cell fcfs.(i).Desim.Engine.avg_period;
             Repro_stats.Table.float_cell prio.(i).Desim.Engine.avg_period;
             static_cell static.(i);
           ])
         names)
  in
  print_string
    (Repro_stats.Table.render
       ~header:[ "App"; "Isolation"; "FCFS"; "Fixed priority"; "Static order" ]
       rows);
  print_endline
    "\nA fixed service order freezes one window's interleaving; applications\n\
     with incommensurate rates cannot follow it and stall — the coupling the\n\
     paper's Section 2 holds against static-order analyses, and the reason\n\
     its own approach imposes no ordering."
  end

(* ------------------------------------------------------------------ *)
(* TDMA baseline (related work, reference [3])                         *)

let () =
  if full then begin
  section "TDMA";
  print_endline
    "TDMA (wheel 100, one slice per mapped actor): the preemptive simulation\n\
     validates the analytical worst case (simulated <= bound), and both sit\n\
     far above the probabilistic estimate — periods normalised to isolation";
  let iso = Exp.Workload.isolation_periods workload in
  let tdma = Contention.Tdma.estimate ~wheel:100. full_apps in
  let wc = Contention.Analysis.estimate Contention.Analysis.Worst_case full_apps in
  let o2 = Contention.Analysis.estimate (Contention.Analysis.Order 2) full_apps in
  let tdma_sim, _ =
    Desim.Preemptive.run ~horizon ~warmup_iterations:5 ~wheel:100. ~procs:workload.procs
      (Exp.Workload.sim_apps workload full_usecase)
  in
  let rows =
    List.mapi
      (fun i (t : Contention.Analysis.estimate) ->
        [
          (t.for_app.graph : Sdf.Graph.t).name;
          Repro_stats.Table.float_cell ~decimals:2
            ((List.nth o2 i).Contention.Analysis.period /. iso.(i));
          Repro_stats.Table.float_cell ~decimals:2
            ((List.nth wc i).Contention.Analysis.period /. iso.(i));
          Repro_stats.Table.float_cell ~decimals:2
            (tdma_sim.(i).Desim.Engine.avg_period /. iso.(i));
          Repro_stats.Table.float_cell ~decimals:2 (t.period /. iso.(i));
        ])
      tdma
  in
  print_string
    (Repro_stats.Table.render
       ~header:
         [ "App"; "Second order"; "RR worst case"; "TDMA simulated"; "TDMA bound" ]
       rows)
  end

(* ------------------------------------------------------------------ *)
(* Mapping exploration driven by the estimator                         *)

let () =
  if full then begin
  section "EXPLORE";
  let graphs =
    Array.to_list
      (Array.map (fun (a : Contention.Analysis.app) -> a.graph) (Array.sub workload.apps 0 4))
  in
  let packed =
    List.map
      (fun (g : Sdf.Graph.t) ->
        (g, Array.init (Sdf.Graph.num_actors g) (fun j -> j mod 2)))
      graphs
  in
  let t0 = Obs.Clock.now_ns () in
  let outcome = Contention.Explore.improve ~max_moves:16 ~procs:10 packed in
  Printf.printf
    "steepest descent on 4 apps / 10 procs: score %.3f -> %.3f, %d moves,\n\
     %d estimator evaluations in %.2f s\n"
    outcome.initial_score outcome.final_score outcome.moves outcome.evaluations
    (elapsed_s t0)
  end

(* ------------------------------------------------------------------ *)
(* The serve daemon: request throughput against an in-process server    *)

let serve_json =
  section "SERVE";
  let reqs = env_int "CONTENTION_SERVE_REQS" 2_000 in
  let config =
    {
      Serve.Server.default_config with
      port = Some 0;
      unix_path = None;
      jobs = Some 2;
    }
  in
  let server = Serve.Server.start ~config () in
  let port = Option.get (Serve.Server.tcp_port server) in
  let fail msg = failwith ("bench serve: " ^ msg) in
  let client =
    match Serve.Client.connect ~port () with
    | Ok c -> c
    | Error msg -> fail msg
  in
  let small = Exp.Workload.make ~seed ~num_apps:3 ~procs:2 () in
  let digest =
    match Serve.Client.upload client ~payload:(Exp.Workload.to_string small) with
    | Ok (up : Serve.Protocol.upload_reply) -> up.digest
    | Error msg -> fail msg
  in
  let time_reqs name f =
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to reqs do
      match f () with Ok _ -> () | Error msg -> fail msg
    done;
    let dt = elapsed_s t0 in
    let rate = float_of_int reqs /. Float.max 1e-9 dt in
    Printf.printf "%-28s %8.0f req/s  (%.1f us/req over %d requests)\n" name
      rate
      (dt /. float_of_int reqs *. 1e6)
      reqs;
    rate
  in
  let ping_rate = time_reqs "ping" (fun () -> Serve.Client.ping client) in
  let estimate_rate =
    time_reqs "estimate (cached)" (fun () ->
        Serve.Client.estimate client ~digest
          ~estimator:(Contention.Analysis.Order 2) ())
  in
  (match Serve.Client.stats client with
  | Ok (s : Serve.Protocol.stats_reply) ->
      Printf.printf
        "server counters: %d requests, cache hit rate %.1f%%, p99 latency %.0f us\n"
        s.requests_total
        (100. *. Serve.Protocol.cache_hit_rate s)
        s.latency_p99_us
  | Error msg -> fail msg);
  Serve.Client.close client;
  Serve.Server.stop server;
  Serve.Json.Obj
    [
      ("reqs", Serve.Json.Num (float_of_int reqs));
      ("ping_req_per_s", Serve.Json.Num ping_rate);
      ("estimate_req_per_s", Serve.Json.Num estimate_rate);
    ]

(* ------------------------------------------------------------------ *)
(* Shadow-audit overhead on the serve request path                      *)

let audit_json =
  section "AUDIT";
  let reqs = env_int "CONTENTION_SERVE_REQS" 2_000 in
  print_endline
    "Estimate throughput as the shadow audit samples none, 1 in 64 and\n\
     1 in 8 of served estimates.  Replays run on a background domain, so\n\
     the request path only pays the head-sampling check plus a bounded\n\
     queue submission — the three rates should be close; the gap is the\n\
     audit's request-path overhead (see EXPERIMENTS.md, AUDIT section)";
  let small = Exp.Workload.make ~seed ~num_apps:3 ~procs:2 () in
  let fail msg = failwith ("bench audit: " ^ msg) in
  let measure audit_sample =
    let config =
      {
        Serve.Server.default_config with
        port = Some 0;
        unix_path = None;
        jobs = Some 2;
        audit_sample;
      }
    in
    let server = Serve.Server.start ~config () in
    let port = Option.get (Serve.Server.tcp_port server) in
    let client =
      match Serve.Client.connect ~port () with
      | Ok c -> c
      | Error msg -> fail msg
    in
    let digest =
      match Serve.Client.upload client ~payload:(Exp.Workload.to_string small) with
      | Ok (up : Serve.Protocol.upload_reply) -> up.digest
      | Error msg -> fail msg
    in
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to reqs do
      match
        Serve.Client.estimate client ~digest
          ~estimator:(Contention.Analysis.Order 2) ()
      with
      | Ok _ -> ()
      | Error msg -> fail msg
    done;
    let dt = elapsed_s t0 in
    Serve.Client.close client;
    (* stop drains the audit queue, so the replay backlog is bounded by the
       queue capacity, not the request count — it never dominates the run. *)
    Serve.Server.stop server;
    let rate = float_of_int reqs /. Float.max 1e-9 dt in
    Printf.printf "%-28s %8.0f req/s  (%.1f us/req over %d requests)\n"
      (if audit_sample = 0 then "estimate (audit off)"
       else Printf.sprintf "estimate (audit 1-in-%d)" audit_sample)
      rate
      (dt /. float_of_int reqs *. 1e6)
      reqs;
    rate
  in
  let off = measure 0 in
  let sample_64 = measure 64 in
  let sample_8 = measure 8 in
  let side rate =
    Serve.Json.Obj [ ("estimate_req_per_s", Serve.Json.Num rate) ]
  in
  Serve.Json.Obj
    [
      ("reqs", Serve.Json.Num (float_of_int reqs));
      ("off", side off);
      ("sample_64", side sample_64);
      ("sample_8", side sample_8);
    ]

(* ------------------------------------------------------------------ *)
(* Sharded cluster: open-loop throughput, single shard vs the ring      *)

let cluster_json =
  section "CLUSTER";
  let shards = env_int "CONTENTION_CLUSTER_SHARDS" 4 in
  let rate = env_float "CONTENTION_CLUSTER_RATE" 12_000. in
  let duration = env_float "CONTENTION_CLUSTER_DURATION" 0.5 in
  let jobs = env_int "CONTENTION_CLUSTER_JOBS" 2 in
  let cache = env_int "CONTENTION_CLUSTER_CACHE" 8 in
  let working_set = env_int "CONTENTION_CLUSTER_DIGESTS" 16 in
  let fail msg = failwith ("bench cluster: " ^ msg) in
  Printf.printf
    "Open-loop load (%.0f req/s offered, uniform arrivals over %d digests,\n\
     %.1f s) against one shard, then the full %d-shard ring over unix\n\
     sockets — %d worker(s) and a %d-entry estimate cache per shard, client\n\
     pool sized to the workers.  The working set outgrows one node's cache\n\
     but the ring partitions it: aggregate cache capacity is what scales.\n"
    rate working_set duration shards jobs cache;
  let start_shard i =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "contention-bench-%d-%d.sock" (Unix.getpid ()) i)
    in
    (try Sys.remove path with Sys_error _ -> ());
    let config =
      {
        Serve.Server.default_config with
        port = None;
        unix_path = Some path;
        jobs = Some jobs;
        cache_capacity = cache;
      }
    in
    (Serve.Server.start ~config (), Cluster.Endpoint.Unix_sock path)
  in
  let servers = List.init shards start_shard in
  let endpoints = List.map snd servers in
  let payloads =
    List.init working_set (fun i ->
        Exp.Workload.to_string
          (Exp.Workload.make ~seed:(seed + i) ~num_apps:3 ~procs:2 ()))
  in
  let measure label eps =
    let router = Cluster.Router.create ~pool_size:jobs ~timeout:10. eps in
    Fun.protect
      ~finally:(fun () -> Cluster.Router.close router)
      (fun () ->
        let digests =
          Array.of_list
            (List.map
               (fun payload ->
                 match Cluster.Router.upload router ~payload with
                 | Ok (up : Serve.Protocol.upload_reply) -> up.digest
                 | Error msg -> fail msg)
               payloads)
        in
        let config =
          {
            Cluster.Loadgen.rate;
            duration_s = duration;
            concurrency = jobs * List.length eps;
            arrival = Cluster.Loadgen.Uniform;
            skew = 0.;
            seed;
            estimator = Contention.Analysis.Order 2;
            trace_sample = 0;
          }
        in
        let report =
          Cluster.Loadgen.run
            ~registry:(Obs.Metric.create_registry ())
            config ~router ~digests
        in
        Printf.printf
          "%-16s %8.0f req/s  p50 %8.3f ms  p99 %8.3f ms  (%d ok, %d shed, %d errors)\n"
          label report.Cluster.Loadgen.achieved_rps report.Cluster.Loadgen.p50_ms
          report.Cluster.Loadgen.p99_ms report.Cluster.Loadgen.ok
          report.Cluster.Loadgen.shed report.Cluster.Loadgen.errors;
        report)
  in
  let single = measure "single shard" [ List.hd endpoints ] in
  let multi = measure (Printf.sprintf "%d shards" shards) endpoints in
  List.iter (fun (server, _) -> Serve.Server.stop server) servers;
  let side (r : Cluster.Loadgen.report) =
    Serve.Json.Obj
      [
        ("req_per_s", Serve.Json.Num r.achieved_rps);
        ("p50_ms", Serve.Json.Num r.p50_ms);
        ("p99_ms", Serve.Json.Num r.p99_ms);
        ("ok", Serve.Json.Num (float_of_int r.ok));
        ("shed", Serve.Json.Num (float_of_int r.shed));
        ("errors", Serve.Json.Num (float_of_int r.errors));
      ]
  in
  Serve.Json.Obj
    [
      ("shards", Serve.Json.Num (float_of_int shards));
      ("offered_rps", Serve.Json.Num rate);
      ("single", side single);
      ("multi", side multi);
    ]

(* ------------------------------------------------------------------ *)
(* Differential fuzzing throughput and accuracy                        *)

let check_json =
  section "CHECK";
  let seeds = env_int "CONTENTION_CHECK_SEEDS" 200 in
  print_endline
    "Differential oracle campaign over random small workloads: every seed\n\
     cross-checks estimators against the simulator, brute force and the\n\
     metamorphic relations (see `contention check`)";
  let r = Check.Fuzz.run ~seeds () in
  print_string (Check.Report.render r);
  let seeds_per_s = float_of_int r.ran /. Float.max 1e-9 r.elapsed_s in
  Printf.printf "throughput: %.0f seeds/s (%d seeds in %.2f s)\n" seeds_per_s
    r.ran r.elapsed_s;
  Serve.Json.Obj
    [
      ("seeds", Serve.Json.Num (float_of_int r.ran));
      ("seeds_per_s", Serve.Json.Num seeds_per_s);
    ]

(* ------------------------------------------------------------------ *)
(* Incremental admission at scale                                       *)

let admit_json =
  section "ADMIT";
  let residents = env_int "CONTENTION_ADMIT_APPS" 1_000 in
  let procs = 4 in
  Printf.printf
    "Join/leave cycles at a %d-application resident population on %d\n\
     processors: the incremental controller (⊕/⊖ on the aggregates and the\n\
     kernel groups) against a per-join from-scratch re-fold of the same\n\
     state, plus the cost of serving a confidence margin per admit.\n"
    residents procs;
  (* Small resident applications, drawn like the churn fuzz tier: HSDF
     isolation periods (random state spaces are unbounded), no saturated
     actors (no ⊖ inverse), and activation periods inflated so the resident
     population sums to roughly one utilization per processor — thousands of
     light features, not thousands of saturating ones. *)
  let rng = Sdfgen.Rng.create seed in
  let period_slack = Float.max 12. (0.25 *. float_of_int residents) in
  let params =
    {
      Sdfgen.Generator.default_params with
      actors_min = 2;
      actors_max = 4;
      exec_min = 2;
      exec_max = 20;
    }
  in
  let gen name =
    let rec draw attempts =
      let g = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name in
      let app =
        Contention.Analysis.app g
          ~period:(period_slack *. Sdf.Hsdf.period g)
          ~mapping:(Contention.Mapping.modulo ~procs g)
      in
      if
        attempts < 50
        && Array.exists
             (fun (l : Contention.Prob.t) -> l.p >= 1.)
             (Contention.Analysis.loads app)
      then draw (attempts + 1)
      else app
    in
    draw 0
  in
  let apps = Array.init residents (fun i -> gen (Printf.sprintf "R%d" i)) in
  let extra = gen "EXTRA" in
  let ctl = Contention.Admission.create ~procs () in
  let admit app =
    match
      Contention.Admission.try_admit ctl app Contention.Admission.best_effort
    with
    | Contention.Admission.Admitted _ -> ()
    | _ -> failwith "bench admit: resident rejected"
  in
  let t0 = Obs.Clock.now_ns () in
  Array.iter admit apps;
  let ramp_s = elapsed_s t0 in
  (* Steady-state join/leave cycles (LIFO, so ⊖ is the exact inverse). *)
  let cycles = env_int "CONTENTION_ADMIT_CYCLES" 100 in
  let time_cycles ~refold =
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to cycles do
      admit extra;
      if refold then
        for proc = 0 to procs - 1 do
          (* What a non-incremental manager redoes per join: fold the whole
             population's aggregates and bases again. *)
          ignore (Contention.Admission.refolded_aggregate ctl ~proc);
          Contention.Kernel.Group.recompute
            (Contention.Admission.group ctl ~proc)
        done;
      Contention.Admission.withdraw ctl extra.Contention.Analysis.graph.Sdf.Graph.name
    done;
    elapsed_s t0 /. float_of_int cycles
  in
  let incremental_s = time_cycles ~refold:false in
  let refold_s = time_cycles ~refold:true in
  let speedup = refold_s /. Float.max 1e-12 incremental_s in
  (* Margin overhead per admitted request at this population. *)
  let name0 = apps.(0).Contention.Analysis.graph.Sdf.Graph.name in
  let time_margin method_ =
    let spec =
      { Contention.Admission.default_margin_spec with method_ } in
    let reps = 50 in
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to reps do
      ignore (Contention.Admission.margin_for ctl spec name0)
    done;
    elapsed_s t0 /. float_of_int reps
  in
  let margin_z_s = time_margin Contention.Margin.Z_score in
  let margin_q_s = time_margin Contention.Margin.Quantile in
  let counters = Contention.Admission.counters ctl in
  Printf.printf
    "ramp to %d residents           : %8.2f ms (%.0f joins/s)\n\
     join+leave, incremental        : %8.1f us/cycle (%.0f joins/s)\n\
     join+leave, re-fold baseline   : %8.1f us/cycle (%.0f joins/s)\n\
     incremental speedup            : %8.1fx\n\
     margin, z-score                : %8.1f us/request\n\
     margin, quantile (%d draws)   : %8.1f us/request\n\
     full rebuilds during the run   : %8d\n"
    residents (ramp_s *. 1e3)
    (float_of_int residents /. Float.max 1e-9 ramp_s)
    (incremental_s *. 1e6)
    (1. /. Float.max 1e-12 incremental_s)
    (refold_s *. 1e6)
    (1. /. Float.max 1e-12 refold_s)
    speedup (margin_z_s *. 1e6)
    Contention.Admission.default_margin_spec.Contention.Admission.samples
    (margin_q_s *. 1e6) counters.Contention.Admission.full_rebuilds;
  Serve.Json.Obj
    [
      ("resident_apps", Serve.Json.Num (float_of_int residents));
      ("ramp_joins_per_s",
        Serve.Json.Num (float_of_int residents /. Float.max 1e-9 ramp_s));
      ( "incremental_joins_per_s",
        Serve.Json.Num (1. /. Float.max 1e-12 incremental_s) );
      ( "refold_joins_per_s",
        Serve.Json.Num (1. /. Float.max 1e-12 refold_s) );
      ("speedup", Serve.Json.Num speedup);
      ("margin_z_us", Serve.Json.Num (margin_z_s *. 1e6));
      ("margin_quantile_us", Serve.Json.Num (margin_q_s *. 1e6));
      ( "full_rebuilds",
        Serve.Json.Num (float_of_int counters.Contention.Admission.full_rebuilds) );
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let nine_loads =
  (* A node of the full use-case carries ~9-10 contending actors. *)
  let rng = Sdfgen.Rng.create 77 in
  List.init 9 (fun _ ->
      Contention.Prob.make
        ~p:(0.05 +. Sdfgen.Rng.float rng 0.4)
        ~mu:(1. +. Sdfgen.Rng.float rng 50.)
        ~tau:(2. +. Sdfgen.Rng.float rng 100.))

let graph_a = workload.apps.(0).Contention.Analysis.graph

let admission_cycle () =
  let ctl = Contention.Admission.create ~procs:10 () in
  Array.iter
    (fun (a : Contention.Analysis.app) ->
      ignore (Contention.Admission.try_admit ctl a Contention.Admission.best_effort))
    workload.apps;
  Array.iter
    (fun (a : Contention.Analysis.app) ->
      Contention.Admission.withdraw ctl a.graph.Sdf.Graph.name)
    workload.apps

let tests =
  Test.make_grouped ~name:"contention"
    [
      (* TABLE1 path: one full analysis of the maximum-contention use-case
         per estimator. *)
      Test.make ~name:"table1/analysis-worst-case"
        (Staged.stage (fun () ->
             ignore (Contention.Analysis.estimate Contention.Analysis.Worst_case full_apps)));
      Test.make ~name:"table1/analysis-second-order"
        (Staged.stage (fun () ->
             ignore (Contention.Analysis.estimate (Contention.Analysis.Order 2) full_apps)));
      Test.make ~name:"table1/analysis-fourth-order"
        (Staged.stage (fun () ->
             ignore (Contention.Analysis.estimate (Contention.Analysis.Order 4) full_apps)));
      Test.make ~name:"table1/analysis-composability"
        (Staged.stage (fun () ->
             ignore (Contention.Analysis.estimate Contention.Analysis.Composability full_apps)));
      (* FIG5 path: one simulated use-case at a reduced horizon (50k). *)
      Test.make ~name:"fig5/simulation-50k"
        (Staged.stage (fun () ->
             ignore
               (Desim.Engine.run ~horizon:50_000. ~procs:workload.procs
                  (Exp.Workload.sim_apps workload full_usecase))));
      (* Waiting-time kernels with 9 contenders (FIG6 inner loop). *)
      Test.make ~name:"kernel/worst-case"
        (Staged.stage (fun () -> ignore (Contention.Wcrt.waiting_time nine_loads)));
      Test.make ~name:"kernel/second-order"
        (Staged.stage (fun () -> ignore (Contention.Approx.second_order nine_loads)));
      Test.make ~name:"kernel/fourth-order"
        (Staged.stage (fun () -> ignore (Contention.Approx.fourth_order nine_loads)));
      Test.make ~name:"kernel/composability"
        (Staged.stage (fun () -> ignore (Contention.Compose.waiting_time nine_loads)));
      Test.make ~name:"kernel/exact"
        (Staged.stage (fun () -> ignore (Contention.Exact.waiting_time nine_loads)));
      (* Period backends. *)
      Test.make ~name:"period/statespace"
        (Staged.stage (fun () -> ignore (Sdf.Statespace.period_exn graph_a)));
      Test.make ~name:"period/hsdf-mcm"
        (Staged.stage (fun () -> ignore (Sdf.Hsdf.period graph_a)));
      Test.make ~name:"period/rational"
        (Staged.stage (fun () -> ignore (Sdf.Hsdf.period_rational graph_a)));
      Test.make ~name:"period/maxplus"
        (Staged.stage (fun () -> ignore (Maxplus.period graph_a)));
      (* Admission control: admit and withdraw the whole workload. *)
      Test.make ~name:"admission/cycle-10-apps" (Staged.stage admission_cycle);
      (* Secondary SDF metrics and the exploration scoring function. *)
      Test.make ~name:"metrics/analyse"
        (Staged.stage (fun () -> ignore (Sdf.Metrics.analyse graph_a)));
      Test.make ~name:"explore/score-4-apps"
        (Staged.stage
           (let assignment =
              Contention.Explore.initial ~procs:10
                (Array.to_list
                   (Array.map
                      (fun (a : Contention.Analysis.app) -> a.graph)
                      (Array.sub workload.apps 0 4)))
            in
            fun () -> ignore (Contention.Explore.score ~procs:10 assignment)));
    ]

let () =
  if full then begin
  section "MICRO";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some (value :: _) -> value
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      analysis []
  in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let cells =
    List.map
      (fun (name, ns) ->
        let cell =
          if Float.is_nan ns then "-"
          else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
          else Printf.sprintf "%.1f ns" ns
        in
        [ name; cell ])
      rows
  in
  print_string (Repro_stats.Table.render ~header:[ "Benchmark"; "Time/run" ] cells)
  end

(* ------------------------------------------------------------------ *)
(* Trajectory output                                                   *)

let () =
  (match json_path with
  | None -> ()
  | Some path ->
      let rev =
        match Sys.getenv_opt "CONTENTION_REV" with Some r -> r | None -> "dev"
      in
      let doc =
        Serve.Json.Obj
          [
            ("schema", Serve.Json.Str "contention-bench/1");
            ("rev", Serve.Json.Str rev);
            ("seed", Serve.Json.Num (float_of_int seed));
            ("apps", Serve.Json.Num (float_of_int num_apps));
            ("horizon", Serve.Json.Num horizon);
            ("quick", Serve.Json.Bool quick);
            ("sweep", sweep_json);
            ("estimator", estimator_json);
            ("serve", serve_json);
            ("audit", audit_json);
            ("cluster", cluster_json);
            ("check", check_json);
            ("admit", admit_json);
          ]
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Serve.Json.to_string doc);
          output_char oc '\n');
      Printf.printf "\nwrote %s\n" path);
  (match trace_file with
  | None -> ()
  | Some path ->
      Obs.Span.set_enabled false;
      Obs.Trace.write_file ~path (Obs.Span.drain ());
      Printf.printf "\nwrote trace to %s\n" path);
  print_endline "\nbench: done"
