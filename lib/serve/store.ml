type t = {
  mutex : Mutex.t;
  table : (string, Exp.Workload.t) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let digest_of w = Digest.to_hex (Digest.string (Exp.Workload.to_string w))

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t w =
  let digest = digest_of w in
  locked t (fun () ->
      if not (Hashtbl.mem t.table digest) then Hashtbl.add t.table digest w);
  digest

let find t digest = locked t (fun () -> Hashtbl.find_opt t.table digest)
let count t = locked t (fun () -> Hashtbl.length t.table)
