(** Newline-delimited framing over a file descriptor, shared by the server
    and the blocking client.

    A frame is one line; a trailing ['\r'] is stripped so naive
    [telnet]/[nc] sessions work.  The reader enforces a maximum frame
    length: an over-long line yields {!Too_long} instead of buffering
    without bound, and the connection is expected to be dropped after an
    error reply. *)

type reader

val reader : ?max_line:int -> Unix.file_descr -> reader
(** [max_line] defaults to 8 MiB — comfortably above any realistic workload
    upload, far below a memory-exhaustion payload. *)

type frame =
  | Line of string
  | Eof  (** Peer closed (or reset) the connection. *)
  | Too_long  (** Frame exceeded [max_line] bytes before a newline. *)

val read_frame : reader -> frame
(** Blocking; retries [EINTR], maps [ECONNRESET] to {!Eof}. *)

val write_line : Unix.file_descr -> string -> unit
(** Write the string plus ['\n'], looping over partial writes and [EINTR].
    @raise Unix.Unix_error e.g. [EPIPE] when the peer is gone. *)
