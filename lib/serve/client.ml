type t = { fd : Unix.file_descr; reader : Wire.reader }

(* A server that hangs up mid-write must surface as EPIPE on the call, not
   kill the client process.  Set once, lazily, by the first connect; outside
   a Unix process (no sigpipe) the call raises and we carry on. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let wrap_transport f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "transport: %s (%s)" (Unix.error_message err) fn)

(* Connect with a deadline: flip the socket non-blocking, start the connect,
   wait for writability with [select], then read back SO_ERROR — the
   classic portable shape.  Infinite patience (no timeout) keeps the plain
   blocking connect. *)
let connect_fd fd addr ~timeout =
  match timeout with
  | None -> Unix.connect fd addr
  | Some limit ->
      Unix.set_nonblock fd;
      (match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
          match Unix.select [] [ fd ] [] limit with
          | [], [], [] ->
              raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
          | _ -> (
              match Unix.getsockopt_error fd with
              | None -> ()
              | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
      Unix.clear_nonblock fd

(* After connect the same deadline bounds every read and write via the
   socket-level timeouts, so a stuck server turns into EAGAIN instead of a
   hung client. *)
let apply_io_timeout fd = function
  | None -> ()
  | Some limit ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO limit;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO limit

let connect ?(host = "127.0.0.1") ?timeout ~port () =
  Lazy.force ignore_sigpipe;
  wrap_transport (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        connect_fd fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
          ~timeout;
        apply_io_timeout fd timeout;
        { fd; reader = Wire.reader fd }
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)

let connect_unix ?timeout path =
  Lazy.force ignore_sigpipe;
  wrap_transport (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        connect_fd fd (Unix.ADDR_UNIX path) ~timeout;
        apply_io_timeout fd timeout;
        { fd; reader = Wire.reader fd }
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let ( let* ) = Result.bind

let transport_error err =
  match err with
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> Error "transport: timeout"
  | Unix.EPIPE | Unix.ECONNRESET ->
      Error "transport: connection closed by peer"
  | _ -> Error (Printf.sprintf "transport: %s" (Unix.error_message err))

let exchange t json =
  let* () =
    match Wire.write_line t.fd (Json.to_string json) with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) -> transport_error err
  in
  match Wire.read_frame t.reader with
  | Wire.Eof -> Error "transport: connection closed by server"
  | Wire.Too_long -> Error "transport: oversized reply"
  | Wire.Line line ->
      Result.map_error (Printf.sprintf "transport: bad reply frame: %s")
        (Json.of_string line)
  | exception Unix.Unix_error (err, _, _) -> transport_error err

let request_classified t json =
  let* reply = exchange t json in
  Ok (Protocol.classify_reply reply)

let request t json =
  let* reply = exchange t json in
  Protocol.unwrap_reply reply

let typed t req decode =
  (* Every typed call carries the caller's ambient trace context (if any)
     in the request envelope, so the server's spans link back to ours. *)
  let* payload =
    request t
      (Protocol.request_to_json ?trace:(Obs.Span.current_context ()) req)
  in
  decode payload

let ping t = typed t Protocol.Ping (fun _ -> Ok ())

let upload t ~payload =
  typed t (Protocol.Upload { payload }) Protocol.upload_reply_of_json

let estimate t ~digest ?usecase ~estimator () =
  typed t
    (Protocol.Estimate { digest; usecase; estimator })
    Protocol.estimate_reply_of_json

let explain t ~digest ?usecase ~estimator () =
  typed t
    (Protocol.Explain { digest; usecase; estimator })
    Protocol.explain_reply_of_json

let cache_put t ~digest ~mask ~estimator ~rows =
  typed t
    (Protocol.Cache_put { digest; mask; estimator; rows })
    (fun _ -> Ok ())

let admit t ?(session = Protocol.default_session) ?confidence ?margin_method
    ~digest ~app ~min_throughput () =
  typed t
    (Protocol.Admit
       { session; digest; app; min_throughput; confidence; margin_method })
    Protocol.verdict_of_json

let release t ?(session = Protocol.default_session) ~app () =
  typed t (Protocol.Release { session; app }) (fun _ -> Ok ())

let stats t = typed t Protocol.Stats Protocol.stats_reply_of_json
let metrics t = typed t Protocol.Metrics Protocol.metrics_reply_of_json
let shutdown t = typed t Protocol.Shutdown (fun _ -> Ok ())
