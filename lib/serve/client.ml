type t = { fd : Unix.file_descr; reader : Wire.reader }

let wrap_transport f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "transport: %s (%s)" (Unix.error_message err) fn)

let connect ?(host = "127.0.0.1") ~port () =
  wrap_transport (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        { fd; reader = Wire.reader fd }
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)

let connect_unix path =
  wrap_transport (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        { fd; reader = Wire.reader fd }
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let ( let* ) = Result.bind

let request t json =
  let* () =
    match Wire.write_line t.fd (Json.to_string json) with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "transport: %s" (Unix.error_message err))
  in
  match Wire.read_frame t.reader with
  | Wire.Eof -> Error "transport: connection closed by server"
  | Wire.Too_long -> Error "transport: oversized reply"
  | Wire.Line line ->
      let* reply =
        Result.map_error (Printf.sprintf "transport: bad reply frame: %s")
          (Json.of_string line)
      in
      Protocol.unwrap_reply reply

let typed t req decode =
  let* payload = request t (Protocol.request_to_json req) in
  decode payload

let ping t = typed t Protocol.Ping (fun _ -> Ok ())

let upload t ~payload =
  typed t (Protocol.Upload { payload }) Protocol.upload_reply_of_json

let estimate t ~digest ?usecase ~estimator () =
  typed t
    (Protocol.Estimate { digest; usecase; estimator })
    Protocol.estimate_reply_of_json

let admit t ?(session = Protocol.default_session) ~digest ~app ~min_throughput
    () =
  typed t
    (Protocol.Admit { session; digest; app; min_throughput })
    Protocol.verdict_of_json

let release t ?(session = Protocol.default_session) ~app () =
  typed t (Protocol.Release { session; app }) (fun _ -> Ok ())

let stats t = typed t Protocol.Stats Protocol.stats_reply_of_json
let metrics t = typed t Protocol.Metrics Protocol.metrics_reply_of_json
let shutdown t = typed t Protocol.Shutdown (fun _ -> Ok ())
