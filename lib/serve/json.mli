(** A minimal JSON codec for the wire protocol.

    The project deliberately carries no external JSON dependency; the daemon
    only needs objects, arrays, strings, finite numbers, booleans and null,
    with a printer whose float representation round-trips IEEE doubles
    bit-for-bit (so cached estimate answers equal direct
    {!Contention.Analysis} calls down to the last bit).

    {!of_string} is total: any byte string yields [Ok] or [Error], never an
    exception — malformed frames from the network must not crash the
    server.  Nesting depth is bounded to keep adversarial inputs like
    ["[[[[…"] from overflowing the stack. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Integral numbers of magnitude below
    1e15 print without a fractional part; all other finite numbers print
    with 17 significant digits, which reparses to the identical double.
    @raise Invalid_argument on a NaN or infinite number — JSON cannot
    represent them. *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace allowed;
    trailing bytes are an error).  The standard escapes — backslash-quote,
    backslash-backslash, [\/ \b \f \n \r \t \uXXXX] — are decoded ([\u]
    surrogate pairs become UTF-8).  Numbers that overflow the IEEE double
    range (["1e999"]) are an error, so every parsed value re-serializes.
    [max_depth] (default 512) bounds array/object nesting.  Error messages
    carry the byte offset. *)

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an object. *)

val get_str : t -> string option
val get_num : t -> float option
val get_int : t -> int option
(** Integral {!Num} only. *)

val get_bool : t -> bool option
val get_arr : t -> t list option
val get_obj : t -> (string * t) list option
