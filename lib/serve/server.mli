(** The `contention serve` daemon: an online resource manager answering
    estimate/admit queries analytically over a newline-delimited JSON
    protocol (see {!Protocol}).

    Connections are accepted on a TCP socket (port [0] picks an ephemeral
    port — used by the integration tests) and/or a Unix-domain socket, and
    handed to a fixed pool of worker domains modelled on {!Exp.Pool}: each
    connection is served by one worker, so a slow or idle client occupies at
    most one worker and cannot stall the others.  Workloads live in a
    content-addressed {!Store}; estimates are memoised in an {!Lru} cache
    keyed by [(workload digest, use-case mask, estimator name)]; admission
    state is a named {!Contention.Admission.t} per session, shared across
    connections so a manager survives reconnects.

    {!stop} is graceful: listeners close first, in-flight requests finish
    and get their reply, idle connections are torn down (their read side is
    shut down, which the worker sees as end-of-stream), accepted-but-unserved
    connections are closed, and the domains are joined. *)

type config = {
  host : string;  (** TCP bind address. *)
  port : int option;  (** [Some 0] = ephemeral; [None] = no TCP listener. *)
  unix_path : string option;  (** Unix-domain socket path, unlinked on stop. *)
  jobs : int option;  (** Worker domains; default {!Exp.Pool.default_jobs}. *)
  cache_capacity : int;  (** Estimate-cache entries. *)
  max_line : int;  (** Maximum request frame in bytes. *)
  max_queue : int;
      (** Accept-queue bound: a connection arriving when this many accepted
          connections are already waiting for a worker is answered with one
          [{"shed": ...}] frame and closed — explicit backpressure instead
          of unbounded queueing.  [0] disables the bound. *)
  hot_threshold : int;
      (** Estimate requests per cache key before the entry counts as hot and
          the [on_hot] hook (see {!start}) fires.  [0] disables hot
          tracking. *)
  journal_path : string option;
      (** When set, sampled per-request records are appended there as JSONL
          (see {!Journal}).  [None] disables the journal entirely. *)
  journal_sample : int;  (** Fallback 1-in-N rate for context-free requests. *)
  journal_max_bytes : int;  (** Journal rotation threshold; [<= 0] = never. *)
  slo_objective_ms : float;
      (** Latency objective: a request finishing slower burns error budget
          (see {!Slo}). *)
  slo_target : float;  (** Availability target, e.g. [0.999]. *)
  shard : string option;
      (** This server's shard label, stamped into journal records so a
          cluster's journals can be told apart after collection. *)
  audit_sample : int;
      (** Shadow-audit 1 in [N] served estimates through the simulator on a
          background domain (see {!Audit}).  [0] disables auditing. *)
  audit_horizon : float;  (** Simulation horizon of audit replays. *)
  audit_drift_delta : float;
      (** Page–Hinkley per-step slack: mean shifts below this magnitude
          never accumulate toward an alarm (see {!Audit.Drift}). *)
  audit_drift_lambda : float;
      (** Page–Hinkley alarm threshold on the cumulative deviation.  Scale
          it to the error spread of the served workload population: a
          multi-workload mix needs a larger [lambda] than the default,
          which is tuned for a stream of near-identical errors. *)
}

val default_config : config
(** 127.0.0.1, TCP port 4557, no Unix socket, default jobs, 256 cache
    entries, 8 MiB frames, 1024-deep accept queue, hot tracking off, no
    journal (1-in-16 sampling, 8 MiB rotation when enabled), 50 ms / 99.9%
    SLO, no shard label, auditing off ({!Audit.default_config} horizon). *)

type hot_entry = {
  hot_digest : string;
  hot_mask : Contention.Usecase.t;
  hot_estimator : string;  (** Canonical estimator name. *)
  hot_rows : Protocol.estimate_row list;
}
(** A cache entry whose request count just crossed [hot_threshold] — exactly
    what a peer needs to install it via [cache-put]. *)

type t

val start : ?on_hot:(hot_entry -> unit) -> ?config:config -> unit -> t
(** Bind, listen and spawn the accept/worker domains.  [SIGPIPE] is set to
    ignore (a dead peer must surface as [EPIPE] on the worker, not kill the
    daemon).

    [on_hot] fires at most once per cache key, from the worker domain
    serving the request that crossed [config.hot_threshold]; exceptions it
    raises are swallowed.  The cluster layer uses it to replicate hot
    estimate-cache entries to peers ({!Cluster} lives above {!Serve}, so
    the wiring happens in the binary, not here).
    @raise Invalid_argument if no listener is configured or
    [cache_capacity < 1]; @raise Unix.Unix_error if binding fails. *)

val tcp_port : t -> int option
(** The actually bound TCP port (resolves an ephemeral request). *)

val shutdown_requested : t -> bool
(** True once a client issued the [shutdown] command; the owner of the
    handle is expected to react by calling {!stop}. *)

val handle_line : t -> string -> string
(** One request line through the exact parse-and-dispatch path a connection
    worker uses, returning the serialized reply line (no trailing newline).
    Total: malformed JSON, unknown commands and dispatch exceptions all come
    back as [{"error": ...}] envelopes.  This is the in-process fuzzing entry
    used by {!Check.Wirefuzz} — arbitrary bytes in, one JSON reply out,
    never an exception. *)

val audit : t -> Audit.t option
(** The shadow auditor, when [audit_sample > 0] — tests use it to
    {!Audit.drain} before asserting on audit counters. *)

val metrics_registry : t -> Obs.Metric.registry
(** The server's own metric registry — per-command request counters and
    latency histograms, cache hit/miss counters, pool gauges.  This is what
    the [metrics] protocol command renders with {!Obs.Prometheus.expose};
    each server owns a private registry so co-hosted instances (as in the
    tests) do not mix series. *)

val stop : t -> unit
(** Graceful shutdown as described above.  Idempotent. *)

val run_until_stopped : ?poll_interval:float -> ?should_stop:(unit -> bool) -> t -> unit
(** Block until [should_stop ()] (e.g. a SIGINT flag) or a client's
    [shutdown] command, then {!stop}.  [poll_interval] defaults to 0.1 s. *)
