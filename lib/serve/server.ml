type config = {
  host : string;
  port : int option;
  unix_path : string option;
  jobs : int option;
  cache_capacity : int;
  max_line : int;
  max_queue : int;
  hot_threshold : int;
  journal_path : string option;
  journal_sample : int;
  journal_max_bytes : int;
  slo_objective_ms : float;
  slo_target : float;
  shard : string option;
  audit_sample : int;  (* audit 1-in-N served estimates; 0 = off *)
  audit_horizon : float;  (* simulation horizon of audit replays *)
  audit_drift_delta : float;  (* Page-Hinkley per-step slack *)
  audit_drift_lambda : float;  (* Page-Hinkley alarm threshold *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = Some 4557;
    unix_path = None;
    jobs = None;
    cache_capacity = 256;
    max_line = 8 * 1024 * 1024;
    max_queue = 1024;
    hot_threshold = 0;
    journal_path = None;
    journal_sample = 16;
    journal_max_bytes = 8 * 1024 * 1024;
    slo_objective_ms = 50.;
    slo_target = 0.999;
    shard = None;
    audit_sample = 0;
    audit_horizon = Audit.default_config.Audit.horizon;
    audit_drift_delta = Audit.default_config.Audit.drift_delta;
    audit_drift_lambda = Audit.default_config.Audit.drift_lambda;
  }

type hot_entry = {
  hot_digest : string;
  hot_mask : Contention.Usecase.t;
  hot_estimator : string;
  hot_rows : Protocol.estimate_row list;
}

(* ------------------------------------------------------------------ *)
(* A closeable blocking queue of accepted connections                  *)

module Chan = struct
  type 'a t = {
    q : 'a Queue.t;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable closed : bool;
  }

  let create () =
    {
      q = Queue.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      closed = false;
    }

  let push t x =
    Mutex.lock t.mutex;
    let accepted = not t.closed in
    if accepted then begin
      Queue.push x t.q;
      Condition.signal t.cond
    end;
    Mutex.unlock t.mutex;
    accepted

  (* Blocks until an element or close; keeps draining queued elements after
     close so already accepted connections are still served. *)
  let pop t =
    Mutex.lock t.mutex;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.cond t.mutex
    done;
    let x = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.mutex;
    x

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let length t =
    Mutex.lock t.mutex;
    let n = Queue.length t.q in
    Mutex.unlock t.mutex;
    n
end

(* ------------------------------------------------------------------ *)

type cache_key = string * Contention.Usecase.t * string

type t = {
  config : config;
  store : Store.t;
  cache : (cache_key, Protocol.estimate_row list) Lru.t;
  metrics : Metrics.t;
  workers : int;  (* worker-domain count — the pool's capacity *)
  registry : Obs.Metric.registry;
  m_active : Obs.Metric.Gauge.t;  (* connections being served right now *)
  m_queue_depth : Obs.Metric.Gauge.t;  (* accepted, waiting for a worker *)
  m_cache_hits : Obs.Metric.Counter.t;
  m_cache_misses : Obs.Metric.Counter.t;
  m_shed : Obs.Metric.Counter.t;  (* connections refused: queue full *)
  m_burn_1m : Obs.Metric.Gauge.t;  (* SLO burn rates, refreshed on scrape *)
  m_burn_1h : Obs.Metric.Gauge.t;
  slo : Slo.t;
  journal : Journal.t option;
  audit : Audit.t option;
  (* Hot-digest tracking: estimate-request counts per cache key.  When a
     key's count crosses [hot_threshold], [on_hot] fires once with the rows
     so the owner (the CLI's cluster glue) can replicate them to peers. *)
  hot : (cache_key, int) Hashtbl.t;
  hot_mutex : Mutex.t;
  on_hot : (hot_entry -> unit) option;
  sessions : (string, Contention.Admission.t) Hashtbl.t;
  sessions_mutex : Mutex.t;
  (* Per-workload analysis caches (loads, HSDF expansion, kernel graph),
     keyed by digest: computed once, shared by every estimate served. *)
  prepared : (string, Contention.Analysis.cache array) Hashtbl.t;
  prepared_mutex : Mutex.t;
  conns : Unix.file_descr Chan.t;
  listeners : Unix.file_descr list;
  bound_tcp_port : int option;
  (* Connections currently being served, so stop can shut their read side
     down and unblock workers idling on keep-alive clients. *)
  active : (Unix.file_descr, unit) Hashtbl.t;
  active_mutex : Mutex.t;
  stop_requested : bool Atomic.t;  (* a client sent the shutdown command *)
  stopping : bool Atomic.t;  (* stop () has begun *)
  stopped : bool Atomic.t;
  mutable domains : unit Domain.t list;
}

let tcp_port t = t.bound_tcp_port
let audit t = t.audit
let shutdown_requested t = Atomic.get t.stop_requested
let metrics_registry t = t.registry

(* Register a connection as active; refuse when the server is stopping (the
   caller then closes it unserved).  Registration and the stop-side sweep
   take the same mutex, so no connection can slip past the sweep. *)
let register_active t fd =
  Mutex.lock t.active_mutex;
  let accepted = not (Atomic.get t.stopping) in
  if accepted then Hashtbl.replace t.active fd ();
  let n = Hashtbl.length t.active in
  Mutex.unlock t.active_mutex;
  if accepted then Obs.Metric.Gauge.set t.m_active (float_of_int n);
  accepted

let unregister_active t fd =
  Mutex.lock t.active_mutex;
  Hashtbl.remove t.active fd;
  let n = Hashtbl.length t.active in
  Mutex.unlock t.active_mutex;
  Obs.Metric.Gauge.set t.m_active (float_of_int n)

let active_count t =
  Mutex.lock t.active_mutex;
  let n = Hashtbl.length t.active in
  Mutex.unlock t.active_mutex;
  n

(* ------------------------------------------------------------------ *)
(* Session registry                                                    *)

let with_sessions t f =
  Mutex.lock t.sessions_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sessions_mutex) f

let session_count t = with_sessions t (fun () -> Hashtbl.length t.sessions)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let resolve_usecase w = function
  | None -> Ok (Contention.Usecase.full ~napps:(Exp.Workload.num_apps w))
  | Some [] -> Error "usecase must name at least one application"
  | Some names ->
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ as e -> e
          | Ok mask -> (
              match Exp.Workload.app_index w name with
              | i -> Ok (Contention.Usecase.add i mask)
              | exception Not_found ->
                  Error (Printf.sprintf "unknown application %S" name)))
        (Ok 0) names

let prepared_for t ~digest (w : Exp.Workload.t) =
  Mutex.lock t.prepared_mutex;
  match Hashtbl.find_opt t.prepared digest with
  | Some caches ->
      Mutex.unlock t.prepared_mutex;
      caches
  | None ->
      Mutex.unlock t.prepared_mutex;
      (* Prepare outside the lock — it is pure per-app work, and two workers
         racing on a fresh digest just compute identical caches. *)
      let caches = Array.map Contention.Analysis.prepare w.apps in
      Mutex.lock t.prepared_mutex;
      let caches =
        match Hashtbl.find_opt t.prepared digest with
        | Some existing -> existing
        | None ->
            Hashtbl.add t.prepared digest caches;
            caches
      in
      Mutex.unlock t.prepared_mutex;
      caches

let estimate_rows estimator pairs =
  List.map
    (fun (r : Contention.Analysis.estimate) ->
      {
        Protocol.app = r.for_app.graph.Sdf.Graph.name;
        period = r.period;
        isolation_period = r.for_app.isolation_period;
        throughput = Contention.Analysis.throughput r;
      })
    (* The kernel engine over this worker domain's workspace; bit-identical
       to [Contention.Analysis.estimate estimator apps], so cached and fresh
       replies stay equal. *)
    (Contention.Analysis.estimate_prepared
       ~workspace:(Contention.Analysis.shared_workspace ())
       estimator pairs)

(* Bump the request count of a cache key; the crossing of [hot_threshold]
   (exactly once per key) hands the rows to [on_hot] so the cluster glue can
   replicate the entry to peers.  A failing hook must not fail the request. *)
let note_hot t ~digest ~mask ~name rows =
  match t.on_hot with
  | None -> ()
  | Some hook when t.config.hot_threshold > 0 ->
      let key = (digest, mask, name) in
      Mutex.lock t.hot_mutex;
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.hot key) in
      Hashtbl.replace t.hot key n;
      Mutex.unlock t.hot_mutex;
      if n = t.config.hot_threshold then begin
        try
          hook
            {
              hot_digest = digest;
              hot_mask = mask;
              hot_estimator = name;
              hot_rows = rows;
            }
        with _ -> ()
      end
  | Some _ -> ()

let handle_estimate t ~digest ~usecase ~estimator =
  match Store.find t.store digest with
  | None -> Protocol.error (Printf.sprintf "unknown workload digest %S" digest)
  | Some w -> (
      match resolve_usecase w usecase with
      | Error msg -> Protocol.error msg
      | Ok mask ->
          let name = Protocol.estimator_to_string estimator in
          let key = (digest, mask, name) in
          let cached, rows =
            match Lru.find t.cache key with
            | Some rows ->
                Obs.Metric.Counter.inc t.m_cache_hits;
                (true, rows)
            | None ->
                Obs.Metric.Counter.inc t.m_cache_misses;
                let caches = prepared_for t ~digest w in
                let pairs =
                  List.map
                    (fun i -> (w.apps.(i), caches.(i)))
                    (Contention.Usecase.to_list mask)
                in
                let rows = estimate_rows estimator pairs in
                Lru.put t.cache key rows;
                (false, rows)
          in
          note_hot t ~digest ~mask ~name rows;
          (* Shadow audit: hand a head-sampled fraction of served estimates
             (cached or fresh — both were served) to the background replay
             domain, tagged with the originating trace context.  A full
             queue drops the sample; the serve path never blocks on it. *)
          (match t.audit with
          | Some audit when Audit.sampled audit ->
              ignore
                (Audit.submit audit
                   {
                     Audit.digest;
                     workload = w;
                     mask;
                     estimator = name;
                     rows;
                     ctx = Obs.Span.current_context ();
                   })
          | _ -> ());
          Protocol.ok
            (Protocol.estimate_reply_to_json
               { Protocol.cached; estimator = name; rows }))

let handle_explain t ~digest ~usecase ~estimator =
  match Store.find t.store digest with
  | None -> Protocol.error (Printf.sprintf "unknown workload digest %S" digest)
  | Some w -> (
      match resolve_usecase w usecase with
      | Error msg -> Protocol.error msg
      | Ok mask ->
          (* The reference pass over the same apps the estimate ran on:
             bit-identical to the kernel-served rows (the PR 5 contract),
             so the record reproduces what was actually answered. *)
          let apps =
            List.map (fun i -> w.apps.(i)) (Contention.Usecase.to_list mask)
          in
          let e = Contention.Explain.compute estimator apps in
          Protocol.ok (Protocol.explain_reply_to_json e))

let handle_cache_put t ~digest ~mask ~estimator ~rows =
  (* Accept only keys an estimate request could produce: a stored workload
     and a canonical estimator name — otherwise the entry could never hit. *)
  match Store.find t.store digest with
  | None -> Protocol.error (Printf.sprintf "unknown workload digest %S" digest)
  | Some w -> (
      match Protocol.estimator_of_string estimator with
      | Error msg -> Protocol.error msg
      | Ok est ->
          let napps = Exp.Workload.num_apps w in
          if mask <= 0 || mask >= 1 lsl napps then
            Protocol.error
              (Printf.sprintf "mask %d out of range for %d applications" mask
                 napps)
          else begin
            let name = Protocol.estimator_to_string est in
            Lru.put t.cache (digest, mask, name) rows;
            Protocol.ok
              (Json.Obj
                 [ ("installed", Json.Bool true); ("estimator", Json.Str name) ])
          end)

(* The session's admitted applications that resolve in this workload — the
   population mix an audit replay of a served margin is simulated under.
   Names admitted from another workload in the same session are skipped:
   they cannot be replayed against [w]. *)
let session_mask w ctl =
  List.fold_left
    (fun mask (name, _, _) ->
      match Exp.Workload.app_index w name with
      | exception Not_found -> mask
      | i -> Contention.Usecase.add i mask)
    (Contention.Usecase.of_list [])
    (Contention.Admission.admitted ctl)

let handle_admit t ~session ~digest ~app ~min_throughput ~confidence
    ~margin_method =
  match Store.find t.store digest with
  | None -> Protocol.error (Printf.sprintf "unknown workload digest %S" digest)
  | Some w -> (
      match Exp.Workload.app_index w app with
      | exception Not_found ->
          Protocol.error (Printf.sprintf "unknown application %S" app)
      | i ->
          let a = w.apps.(i) in
          let margin_spec =
            Option.map
              (fun c ->
                {
                  Contention.Admission.default_margin_spec with
                  confidence = c;
                  method_ =
                    Option.value margin_method
                      ~default:Contention.Margin.Z_score;
                })
              confidence
          in
          with_sessions t (fun () ->
              let ctl =
                match Hashtbl.find_opt t.sessions session with
                | Some ctl -> ctl
                | None ->
                    let ctl = Contention.Admission.create ~procs:w.procs () in
                    Hashtbl.add t.sessions session ctl;
                    ctl
              in
              match ctl with
              | ctl when Contention.Admission.procs ctl <> w.procs ->
                  Protocol.error
                    (Printf.sprintf
                       "session %S manages %d processors but the workload has %d"
                       session
                       (Contention.Admission.procs ctl)
                       w.procs)
              | ctl -> (
                  match
                    Contention.Admission.try_admit ?margin:margin_spec ctl a
                      { Contention.Admission.min_throughput }
                  with
                  | exception Invalid_argument msg -> Protocol.error msg
                  | paper_verdict ->
                      let verdict =
                        match paper_verdict with
                        | Contention.Admission.Admitted { margin } ->
                            Protocol.Admitted
                              {
                                throughput =
                                  Contention.Admission.estimated_throughput ctl
                                    app;
                                margin;
                              }
                        | Contention.Admission.Rejected_candidate
                            { estimated; required } ->
                            Protocol.Rejected_candidate { estimated; required }
                        | Contention.Admission.Rejected_victim
                            { app = victim; estimated; required } ->
                            Protocol.Rejected_victim
                              { victim; estimated; required }
                      in
                      Metrics.record_admission_verdict t.metrics verdict;
                      (match verdict with
                      | Protocol.Admitted { margin = Some m; _ } -> (
                          Obs.Metric.Histogram.observe
                            (Obs.Metric.Histogram.v ~registry:t.registry
                               ~help:
                                 "Relative width (width/period) of served \
                                  admission margins."
                               "contention_serve_margin_rel_width")
                            (Contention.Margin.rel_width m);
                          (* Sampled margins get the same shadow-audit
                             treatment as estimates: replay the admitted mix
                             and test coverage of the served interval. *)
                          match t.audit with
                          | Some audit when Audit.sampled audit ->
                              ignore
                                (Audit.submit_margin audit
                                   {
                                     Audit.m_digest = digest;
                                     m_workload = w;
                                     m_mask = session_mask w ctl;
                                     m_app = app;
                                     m_margin = m;
                                     m_ctx = Obs.Span.current_context ();
                                   })
                          | _ -> ())
                      | _ -> ());
                      Protocol.ok (Protocol.verdict_to_json verdict))))

let handle_release t ~session ~app =
  with_sessions t (fun () ->
      match Hashtbl.find_opt t.sessions session with
      | None -> Protocol.error (Printf.sprintf "unknown session %S" session)
      | Some ctl -> (
          (* Total: an unknown app id is an error reply, never an exception
             escaping the worker (the stale-release wirefuzz contract). *)
          match Contention.Admission.release ctl app with
          | Ok () ->
              Metrics.incr_released t.metrics;
              Protocol.ok
                (Json.Obj
                   [ ("released", Json.Str app); ("session", Json.Str session) ])
          | Error _ ->
              Protocol.error
                (Printf.sprintf "application %S is not admitted in session %S"
                   app session)))

(* The burn gauges are computed, not incremented: refresh them from the
   ring whenever somebody looks (stats or a Prometheus scrape). *)
let refresh_slo_gauges t =
  let s = Slo.snapshot t.slo in
  Obs.Metric.Gauge.set t.m_burn_1m s.burn_1m;
  Obs.Metric.Gauge.set t.m_burn_1h s.burn_1h;
  s

let handle_stats t =
  let slo = refresh_slo_gauges t in
  let m = Metrics.snapshot t.metrics in
  Protocol.ok
    (Protocol.stats_reply_to_json
       {
         Protocol.uptime_s = m.uptime_s;
         connections = m.connections;
         requests = m.requests;
         requests_total = m.requests_total;
         workloads = Store.count t.store;
         sessions = session_count t;
         cache_entries = Lru.length t.cache;
         cache_capacity = Lru.capacity t.cache;
         cache_hits = Lru.hits t.cache;
         cache_misses = Lru.misses t.cache;
         active_connections = active_count t;
         workers = t.workers;
         queue_capacity = t.config.max_queue;
         shed = m.shed;
         admitted = m.admitted;
         rejected_candidate = m.rejected_candidate;
         rejected_victim = m.rejected_victim;
         released = m.released;
         margins_served = m.margins_served;
         margin_mean_rel_width = m.margin_mean_rel_width;
         latency_mean_us = m.latency_mean_us;
         latency_p50_us = m.latency_p50_us;
         latency_p90_us = m.latency_p90_us;
         latency_p99_us = m.latency_p99_us;
         latency_max_us = m.latency_max_us;
         latency_samples = m.latency_samples;
         slo_objective_ms = slo.objective_ms;
         slo_target = slo.target;
         slo_burn_1m = slo.burn_1m;
         slo_burn_1h = slo.burn_1h;
         audit =
           (match t.audit with
           | None -> Protocol.no_audit
           | Some audit -> Audit.stats audit);
       })

let dispatch t (request : Protocol.request) =
  match request with
  | Protocol.Ping -> Protocol.ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Upload { payload } -> (
      match Exp.Workload.of_string payload with
      | Error msg -> Protocol.error (Printf.sprintf "bad workload: %s" msg)
      | Ok w ->
          let digest = Store.add t.store w in
          Protocol.ok
            (Protocol.upload_reply_to_json
               {
                 Protocol.digest;
                 apps = Array.to_list (Exp.Workload.names w);
                 procs = w.procs;
               }))
  | Protocol.Estimate { digest; usecase; estimator } ->
      handle_estimate t ~digest ~usecase ~estimator
  | Protocol.Explain { digest; usecase; estimator } ->
      handle_explain t ~digest ~usecase ~estimator
  | Protocol.Admit { session; digest; app; min_throughput; confidence; margin_method }
    ->
      handle_admit t ~session ~digest ~app ~min_throughput ~confidence
        ~margin_method
  | Protocol.Release { session; app } -> handle_release t ~session ~app
  | Protocol.Cache_put { digest; mask; estimator; rows } ->
      handle_cache_put t ~digest ~mask ~estimator ~rows
  | Protocol.Stats -> handle_stats t
  | Protocol.Metrics ->
      ignore (refresh_slo_gauges t);
      Protocol.ok
        (Protocol.metrics_reply_to_json
           { Protocol.prometheus = Obs.Prometheus.expose t.registry })
  | Protocol.Shutdown ->
      Atomic.set t.stop_requested true;
      Protocol.ok (Json.Obj [ ("stopping", Json.Bool true) ])

let cmd_name = function
  | Protocol.Ping -> "ping"
  | Protocol.Upload _ -> "upload"
  | Protocol.Estimate _ -> "estimate"
  | Protocol.Explain _ -> "explain"
  | Protocol.Admit _ -> "admit"
  | Protocol.Release _ -> "release"
  | Protocol.Cache_put _ -> "cache-put"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)

(* One journal line: everything needed to reconstruct what this request
   experienced and join it against a merged trace by trace id.  The upload
   payload is a whole workload file, so its digest is taken from the reply
   rather than the request. *)
let journal_entry t ~ctx ~cmd ~digest ~queue_depth ~reply ~latency_s =
  let outcome, payload =
    match Protocol.classify_reply reply with
    | Protocol.Reply_ok p -> ("ok", Some p)
    | Protocol.Reply_error _ -> ("error", None)
    | Protocol.Reply_shed _ -> ("shed", None)
  in
  let digest =
    match digest with
    | Some _ as d -> d
    | None ->
        Option.bind payload (fun p ->
            Option.bind (Json.member "digest" p) Json.get_str)
  in
  let opt name conv = function
    | None -> []
    | Some v -> [ (name, conv v) ]
  in
  Json.Obj
    ([ ("ts", Json.Num (Unix.gettimeofday ())) ]
    @ opt "trace"
        (fun (c : Obs.Span.ctx) -> Json.Str (Obs.Span.id_to_hex c.trace_id))
        ctx
    @ [ ("cmd", Json.Str cmd) ]
    @ opt "workload" (fun d -> Json.Str d) digest
    @ opt "shard" (fun s -> Json.Str s) t.config.shard
    @ [
        ("queue_depth", Json.Num (float_of_int queue_depth));
        ("outcome", Json.Str outcome);
      ]
    @ opt "cached"
        (fun b -> Json.Bool b)
        (Option.bind payload (fun p ->
             Option.bind (Json.member "cached" p) Json.get_bool))
    @ opt "confidence"
        (fun c -> Json.Num c)
        (Option.bind payload (fun p ->
             Option.bind (Json.member "margin" p) (fun m ->
                 Option.bind (Json.member "confidence" m) Json.get_num)))
    @ opt "verdict"
        (fun v -> Json.Str v)
        (Option.bind payload (fun p ->
             Option.bind (Json.member "verdict" p) Json.get_str))
    @ [ ("latency_us", Json.Num (latency_s *. 1e6)) ])

(* One request line through the full parse-and-dispatch path, returning the
   reply line.  Shared by the connection workers and exposed as the
   in-process fuzzing entry ({!Check.Wirefuzz}): whatever bytes come in, the
   result is a serialized reply envelope, never an exception. *)
let handle_line t line =
  let queue_depth = Chan.length t.conns in
  let t0 = Obs.Clock.now_ns () in
  let cmd, ctx, digest, reply =
    match Json.of_string line with
    | Error msg ->
        ("invalid", None, None, Protocol.error (Printf.sprintf "bad frame: %s" msg))
    | Ok json -> (
        match Protocol.request_of_json json with
        | Error msg ->
            ( "invalid",
              None,
              None,
              Protocol.error (Printf.sprintf "bad request: %s" msg) )
        | Ok request -> (
            let cmd = cmd_name request in
            (* The trace envelope re-establishes the caller's context here,
               so the serve span (and anything under it) links back to the
               client's span across the process boundary.  Malformed trace
               decorations read as None — they never fail the request. *)
            let ctx = Protocol.trace_of_request json in
            let digest =
              match request with
              | Protocol.Upload _ -> None
              | _ -> Option.bind (Json.member "workload" json) Json.get_str
            in
            let run () =
              Obs.Span.with_ ~name:("serve." ^ cmd)
                ~args:(fun () -> [ ("cmd", cmd) ])
                (fun () -> dispatch t request)
            in
            let body () =
              match ctx with
              | None -> run ()
              | Some c -> Obs.Span.with_context c run
            in
            match body () with
            | reply -> (cmd, ctx, digest, reply)
            | exception e ->
                (* A dispatch bug must never take the daemon down with
                   the connection. *)
                ( cmd,
                  ctx,
                  digest,
                  Protocol.error
                    (Printf.sprintf "internal error: %s"
                       (Printexc.to_string e)) )))
  in
  let reply_line = Json.to_string reply in
  let latency_s = Obs.Clock.elapsed_s ~since:t0 in
  Metrics.record t.metrics ~cmd ~latency_s;
  Slo.record t.slo ~latency_s;
  Obs.Metric.Counter.inc
    (Obs.Metric.Counter.v ~registry:t.registry
       ~help:"Requests served, by command." ~labels:[ ("cmd", cmd) ]
       "contention_serve_requests_total");
  Obs.Metric.Histogram.observe
    (Obs.Metric.Histogram.v ~registry:t.registry
       ~help:"Request latency in seconds, by command."
       ~labels:[ ("cmd", cmd) ] "contention_serve_request_seconds")
    latency_s;
  (match t.journal with
  | Some j when Journal.sampled j ~ctx ->
      Journal.record j
        (journal_entry t ~ctx ~cmd ~digest ~queue_depth ~reply ~latency_s)
  | _ -> ());
  reply_line

let handle_connection t fd =
  Metrics.incr_connections t.metrics;
  let reader = Wire.reader ~max_line:t.config.max_line fd in
  let rec serve () =
    (* Keep answering until the peer hangs up; stop () unblocks us by
       shutting the read side down, which reads as EOF here. *)
    match Wire.read_frame reader with
    | Wire.Eof -> ()
    | Wire.Too_long ->
        Wire.write_line fd
          (Json.to_string (Protocol.error "request line too long"))
    | Wire.Line "" -> serve ()
    | Wire.Line line ->
        Wire.write_line fd (handle_line t line);
        serve ()
  in
  (match serve () with
  | () -> ()
  | exception Unix.Unix_error _ ->
      (* Peer vanished mid-reply (EPIPE, reset…): just drop the
         connection. *)
      ())

let worker t () =
  let rec loop () =
    match Chan.pop t.conns with
    | None -> ()
    | Some fd ->
        Obs.Metric.Gauge.set t.m_queue_depth
          (float_of_int (Chan.length t.conns));
        if register_active t fd then begin
          (match handle_connection t fd with
          | () -> ()
          | exception _ -> ());
          unregister_active t fd
        end;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

(* Backpressure: the accept queue is bounded.  A connection arriving when
   [max_queue] connections are already waiting for a worker is answered with
   one shed frame and closed — the daemon's load-shedding verdict, preferred
   over unbounded queueing (latency collapse) or silent drops (client
   timeouts).  The write is a single small frame into a fresh socket buffer,
   so it cannot block the acceptor. *)
let shed_connection t fd ~queue_depth =
  Metrics.incr_shed t.metrics;
  Obs.Metric.Counter.inc t.m_shed;
  (* A shed request never met the latency objective: it burns budget. *)
  Slo.record_bad t.slo;
  (try Wire.write_line fd (Json.to_string (Protocol.shed ~queue_depth))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let acceptor t listener () =
  let rec loop () =
    (* Re-checked after every wake-up: stop () nudges a blocked accept with
       a shutdown plus a self-connection, since merely closing the listener
       from another domain does not unblock accept on Linux. *)
    if Atomic.get t.stopping then ()
    else
      match Unix.accept ~cloexec:true listener with
      | fd, _ ->
          let depth = Chan.length t.conns in
          if t.config.max_queue > 0 && depth >= t.config.max_queue then
            shed_connection t fd ~queue_depth:depth
          else if Chan.push t.conns fd then
            Obs.Metric.Gauge.set t.m_queue_depth
              (float_of_int (Chan.length t.conns))
          else (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
          (* Out of descriptors: back off instead of spinning or dying. *)
          Unix.sleepf 0.05;
          loop ()
      | exception Unix.Unix_error _ ->
          (* The listener was shut down or closed by stop: exit. *)
          ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?on_hot ?(config = default_config) () =
  if config.cache_capacity < 1 then
    invalid_arg "Serve.Server.start: cache_capacity < 1";
  if config.port = None && config.unix_path = None then
    invalid_arg "Serve.Server.start: no TCP port and no Unix socket";
  (* A worker writing to a hung-up client must get EPIPE, not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let tcp =
    Option.map
      (fun port ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd
             (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, port));
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | Unix.ADDR_UNIX _ -> port
        in
        (fd, bound))
      config.port
  in
  let unix_listener =
    Option.map
      (fun path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd)
      config.unix_path
  in
  let listeners =
    (match tcp with Some (fd, _) -> [ fd ] | None -> [])
    @ (match unix_listener with Some fd -> [ fd ] | None -> [])
  in
  let jobs =
    match config.jobs with
    | Some j when j < 1 -> invalid_arg "Serve.Server.start: jobs < 1"
    | Some j -> j
    | None -> Exp.Pool.default_jobs ()
  in
  (* Each server owns its registry: two servers in one process (the tests
     start several) must not see each other's series. *)
  let registry = Obs.Metric.create_registry () in
  let m_active =
    Obs.Metric.Gauge.v ~registry
      ~help:"Connections being served right now."
      "contention_serve_active_connections"
  in
  let m_queue_depth =
    Obs.Metric.Gauge.v ~registry
      ~help:"Accepted connections waiting for a worker domain."
      "contention_serve_queue_depth"
  in
  let m_shed =
    Obs.Metric.Counter.v ~registry
      ~help:"Connections refused with a shed verdict (accept queue full)."
      "contention_serve_shed_total"
  in
  let m_cache_hits =
    Obs.Metric.Counter.v ~registry
      ~help:"Estimate-cache lookups answered from the cache."
      "contention_serve_cache_hits_total"
  in
  let m_cache_misses =
    Obs.Metric.Counter.v ~registry
      ~help:"Estimate-cache lookups that ran the analysis."
      "contention_serve_cache_misses_total"
  in
  let m_burn_1m =
    Obs.Metric.Gauge.v ~registry
      ~help:"SLO error-budget burn rate over the trailing minute."
      "contention_serve_slo_burn_1m"
  in
  let m_burn_1h =
    Obs.Metric.Gauge.v ~registry
      ~help:"SLO error-budget burn rate over the trailing hour."
      "contention_serve_slo_burn_1h"
  in
  Obs.Metric.Gauge.set
    (Obs.Metric.Gauge.v ~registry
       ~help:"Latency objective requests are judged by, in milliseconds."
       "contention_serve_slo_objective_ms")
    config.slo_objective_ms;
  Obs.Metric.Gauge.set
    (Obs.Metric.Gauge.v ~registry
       ~help:"Worker domains — the pool's capacity."
       "contention_serve_workers")
    (float_of_int jobs);
  let journal =
    Option.map
      (Journal.create ~sample_every:config.journal_sample
         ~max_bytes:config.journal_max_bytes)
      config.journal_path
  in
  let audit =
    if config.audit_sample <= 0 then None
    else
      Some
        (Audit.create
           ~config:
             {
               Audit.default_config with
               Audit.sample_every = config.audit_sample;
               horizon = config.audit_horizon;
               drift_delta = config.audit_drift_delta;
               drift_lambda = config.audit_drift_lambda;
             }
           ~registry ?journal ?shard:config.shard ())
  in
  let t =
    {
      config;
      store = Store.create ();
      cache = Lru.create ~capacity:config.cache_capacity;
      metrics = Metrics.create ();
      workers = jobs;
      registry;
      m_active;
      m_queue_depth;
      m_shed;
      m_burn_1m;
      m_burn_1h;
      slo =
        Slo.create ~objective_ms:config.slo_objective_ms
          ~target:config.slo_target ();
      journal;
      audit;
      m_cache_hits;
      m_cache_misses;
      hot = Hashtbl.create 8;
      hot_mutex = Mutex.create ();
      on_hot;
      sessions = Hashtbl.create 8;
      sessions_mutex = Mutex.create ();
      prepared = Hashtbl.create 8;
      prepared_mutex = Mutex.create ();
      conns = Chan.create ();
      listeners;
      bound_tcp_port = Option.map snd tcp;
      active = Hashtbl.create 16;
      active_mutex = Mutex.create ();
      stop_requested = Atomic.make false;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      domains = [];
    }
  in
  let workers = List.init jobs (fun _ -> Domain.spawn (worker t)) in
  let acceptors = List.map (fun l -> Domain.spawn (acceptor t l)) listeners in
  t.domains <- workers @ acceptors;
  t

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Order matters: flag first (new connections are refused at
       registration), then listeners (acceptors exit), then the queue (idle
       workers exit after draining), then unblock workers parked on idle
       connections. *)
    Atomic.set t.stop_requested true;
    Mutex.lock t.active_mutex;
    Atomic.set t.stopping true;
    Hashtbl.iter
      (fun fd () ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      t.active;
    Mutex.unlock t.active_mutex;
    (* Closing a listening socket from this domain does not unblock an
       accept parked on it in an acceptor domain (Linux keeps the accept
       waiting on the old file description).  Shut the listeners down —
       which does wake a blocked TCP accept — and additionally poke each
       address with a throwaway connection in case shutdown is a no-op for
       the socket family.  The acceptors re-check [t.stopping] on every
       wake-up, so any nudge suffices. *)
    List.iter
      (fun l -> try Unix.shutdown l Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.listeners;
    let nudge addr =
      match Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr)
              Unix.SOCK_STREAM 0 with
      | fd ->
          (try Unix.connect fd addr with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ()
    in
    Option.iter
      (fun port ->
        nudge (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, port)))
      t.bound_tcp_port;
    Option.iter (fun path -> nudge (Unix.ADDR_UNIX path)) t.config.unix_path;
    List.iter
      (fun l -> try Unix.close l with Unix.Unix_error _ -> ())
      t.listeners;
    Chan.close t.conns;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* Finish queued audit replays (they may still journal) before the
       journal closes under them. *)
    Option.iter Audit.stop t.audit;
    Option.iter Journal.close t.journal;
    match t.config.unix_path with
    | Some path when Sys.file_exists path -> (
        try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end

let run_until_stopped ?(poll_interval = 0.1) ?(should_stop = fun () -> false) t =
  let rec loop () =
    if Atomic.get t.stop_requested || should_stop () then stop t
    else begin
      (try Unix.sleepf poll_interval
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()
