type estimate_row = {
  app : string;
  period : float;
  isolation_period : float;
  throughput : float;
}

type request =
  | Ping
  | Upload of { payload : string }
  | Estimate of {
      digest : string;
      usecase : string list option;
      estimator : Contention.Analysis.estimator;
    }
  | Admit of {
      session : string;
      digest : string;
      app : string;
      min_throughput : float;
      confidence : float option;
      margin_method : Contention.Margin.method_ option;
    }
  | Release of { session : string; app : string }
  | Cache_put of {
      digest : string;
      mask : int;
      estimator : string;
      rows : estimate_row list;
    }
      (** Peer-to-peer: install precomputed estimate rows into the receiving
          server's cache, keyed by [(digest, mask, estimator)].  Sent by the
          cluster router to replicate hot entries. *)
  | Explain of {
      digest : string;
      usecase : string list option;
      estimator : Contention.Analysis.estimator;
    }
  | Stats
  | Metrics
  | Shutdown

let default_session = "default"

let estimator_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "worst-case" | "wc" -> Ok Contention.Analysis.Worst_case
  | "second-order" | "o2" -> Ok (Contention.Analysis.Order 2)
  | "fourth-order" | "o4" -> Ok (Contention.Analysis.Order 4)
  | "composability" | "comp" -> Ok Contention.Analysis.Composability
  | "exact" -> Ok Contention.Analysis.Exact
  | s -> (
      let order m =
        if m >= 2 then Ok (Contention.Analysis.Order m)
        else Error (Printf.sprintf "estimator order must be >= 2, got %d" m)
      in
      match int_of_string_opt s with
      | Some m -> order m
      | None -> (
          (* The canonical name of Order m for m outside {2, 4}. *)
          match String.index_opt s '-' with
          | Some i
            when String.sub s 0 i = "order" -> (
              match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
              | Some m -> order m
              | None -> Error (Printf.sprintf "unknown estimator %S" s))
          | _ -> Error (Printf.sprintf "unknown estimator %S" s)))

let estimator_to_string = Contention.Analysis.estimator_name

(* ------------------------------------------------------------------ *)
(* Field helpers                                                       *)

let ( let* ) = Result.bind

let field name conv json =
  match Json.member name json with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let opt_field name conv json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let str_list json =
  match Json.get_arr json with
  | None -> None
  | Some xs ->
      List.fold_right
        (fun x acc ->
          match (Json.get_str x, acc) with
          | Some s, Some rest -> Some (s :: rest)
          | _ -> None)
        xs (Some [])

let estimate_row_to_json r =
  Json.Obj
    [
      ("app", Json.Str r.app);
      ("period", Json.Num r.period);
      ("isolation_period", Json.Num r.isolation_period);
      ("throughput", Json.Num r.throughput);
    ]

let estimate_row_of_json json =
  let* app = field "app" Json.get_str json in
  let* period = field "period" Json.get_num json in
  let* isolation_period = field "isolation_period" Json.get_num json in
  let* throughput = field "throughput" Json.get_num json in
  Ok { app; period; isolation_period; throughput }

let rows_of_json rows_json =
  List.fold_right
    (fun r acc ->
      let* acc = acc in
      let* row = estimate_row_of_json r in
      Ok (row :: acc))
    rows_json (Ok [])

(* ------------------------------------------------------------------ *)
(* Trace context envelope                                              *)

(* The optional "trace" field of a request envelope.  Serialization is
   exact; parsing is deliberately lenient and total: a request is NEVER
   rejected because of its trace field.  A malformed or unparseable trace
   object simply reads as "no context", and unknown members inside it are
   ignored — peers of different versions must interoperate, and a fuzzer
   must not be able to fail a valid command via its trace decoration. *)

let trace_to_json (c : Obs.Span.ctx) =
  Json.Obj
    [
      ("id", Json.Str (Obs.Span.id_to_hex c.trace_id));
      ("parent", Json.Str (Obs.Span.id_to_hex c.parent_span));
      ("sampled", Json.Bool c.sampled);
    ]

let trace_of_request json : Obs.Span.ctx option =
  match Json.member "trace" json with
  | None -> None
  | Some t -> (
      match Option.bind (Json.member "id" t) Json.get_str with
      | None -> None
      | Some id_hex -> (
          match Obs.Span.id_of_hex id_hex with
          | None | Some 0L -> None
          | Some trace_id ->
              let parent_span =
                match
                  Option.bind
                    (Option.bind (Json.member "parent" t) Json.get_str)
                    Obs.Span.id_of_hex
                with
                | Some p -> p
                | None -> 0L
              in
              let sampled =
                match Option.bind (Json.member "sampled" t) Json.get_bool with
                | Some b -> b
                | None -> true
              in
              Some { Obs.Span.trace_id; parent_span; sampled }))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let base_request_to_json = function
  | Ping -> Json.Obj [ ("cmd", Json.Str "ping") ]
  | Upload { payload } ->
      Json.Obj [ ("cmd", Json.Str "upload"); ("workload", Json.Str payload) ]
  | Estimate { digest; usecase; estimator } ->
      Json.Obj
        ([ ("cmd", Json.Str "estimate"); ("workload", Json.Str digest) ]
        @ (match usecase with
          | None -> []
          | Some apps ->
              [ ("usecase", Json.Arr (List.map (fun a -> Json.Str a) apps)) ])
        @ [ ("estimator", Json.Str (estimator_to_string estimator)) ])
  | Admit { session; digest; app; min_throughput; confidence; margin_method } ->
      Json.Obj
        ([
           ("cmd", Json.Str "admit");
           ("session", Json.Str session);
           ("workload", Json.Str digest);
           ("app", Json.Str app);
           ("min_throughput", Json.Num min_throughput);
         ]
        @ (match confidence with
          | None -> []
          | Some c -> [ ("confidence", Json.Num c) ])
        @
        match margin_method with
        | None -> []
        | Some m ->
            [ ("margin_method", Json.Str (Contention.Margin.method_to_string m)) ])
  | Release { session; app } ->
      Json.Obj
        [
          ("cmd", Json.Str "release");
          ("session", Json.Str session);
          ("app", Json.Str app);
        ]
  | Cache_put { digest; mask; estimator; rows } ->
      Json.Obj
        [
          ("cmd", Json.Str "cache-put");
          ("workload", Json.Str digest);
          ("mask", Json.Num (float_of_int mask));
          ("estimator", Json.Str estimator);
          ("results", Json.Arr (List.map estimate_row_to_json rows));
        ]
  | Explain { digest; usecase; estimator } ->
      Json.Obj
        ([ ("cmd", Json.Str "explain"); ("workload", Json.Str digest) ]
        @ (match usecase with
          | None -> []
          | Some apps ->
              [ ("usecase", Json.Arr (List.map (fun a -> Json.Str a) apps)) ])
        @ [ ("estimator", Json.Str (estimator_to_string estimator)) ])
  | Stats -> Json.Obj [ ("cmd", Json.Str "stats") ]
  | Metrics -> Json.Obj [ ("cmd", Json.Str "metrics") ]
  | Shutdown -> Json.Obj [ ("cmd", Json.Str "shutdown") ]

let request_to_json ?trace req =
  match (trace, base_request_to_json req) with
  | Some c, Json.Obj fields -> Json.Obj (fields @ [ ("trace", trace_to_json c) ])
  | _, json -> json

let request_of_json json =
  match Json.get_obj json with
  | None -> Error "request must be a JSON object"
  | Some _ -> (
      let* cmd = field "cmd" Json.get_str json in
      match cmd with
      | "ping" -> Ok Ping
      | "upload" ->
          let* payload = field "workload" Json.get_str json in
          Ok (Upload { payload })
      | "estimate" | "explain" ->
          let* digest = field "workload" Json.get_str json in
          let* usecase = opt_field "usecase" str_list json in
          let* name =
            match Json.member "estimator" json with
            | None | Some Json.Null -> Ok "second-order"
            | Some v -> (
                match Json.get_str v with
                | Some s -> Ok s
                | None -> Error "field \"estimator\" has the wrong type")
          in
          let* estimator = estimator_of_string name in
          if cmd = "explain" then Ok (Explain { digest; usecase; estimator })
          else Ok (Estimate { digest; usecase; estimator })
      | "admit" ->
          let* session =
            Result.map
              (Option.value ~default:default_session)
              (opt_field "session" Json.get_str json)
          in
          let* digest = field "workload" Json.get_str json in
          let* app = field "app" Json.get_str json in
          let* min_throughput = field "min_throughput" Json.get_num json in
          let* confidence = opt_field "confidence" Json.get_num json in
          let* confidence =
            match confidence with
            | None -> Ok None
            | Some c ->
                if Float.is_finite c && c > 0. && c < 1. then Ok (Some c)
                else Error "confidence must be in (0,1)"
          in
          let* margin_method =
            match Json.member "margin_method" json with
            | None | Some Json.Null -> Ok None
            | Some v -> (
                match Json.get_str v with
                | None -> Error "field \"margin_method\" has the wrong type"
                | Some s ->
                    Result.map Option.some
                      (Contention.Margin.method_of_string s))
          in
          if Float.is_finite min_throughput && min_throughput >= 0. then
            Ok
              (Admit
                 { session; digest; app; min_throughput; confidence; margin_method })
          else Error "min_throughput must be finite and non-negative"
      | "release" ->
          let* session =
            Result.map
              (Option.value ~default:default_session)
              (opt_field "session" Json.get_str json)
          in
          let* app = field "app" Json.get_str json in
          Ok (Release { session; app })
      | "cache-put" ->
          let* digest = field "workload" Json.get_str json in
          let* mask = field "mask" Json.get_int json in
          let* estimator = field "estimator" Json.get_str json in
          let* rows_json = field "results" Json.get_arr json in
          let* rows = rows_of_json rows_json in
          if mask < 0 then Error "mask must be non-negative"
          else Ok (Cache_put { digest; mask; estimator; rows })
      | "stats" -> Ok Stats
      | "metrics" -> Ok Metrics
      | "shutdown" -> Ok Shutdown
      | cmd -> Error (Printf.sprintf "unknown command %S" cmd))

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

type upload_reply = { digest : string; apps : string list; procs : int }

type estimate_reply = {
  cached : bool;
  estimator : string;
  rows : estimate_row list;
}

type verdict =
  | Admitted of { throughput : float; margin : Contention.Margin.t option }
  | Rejected_candidate of { estimated : float; required : float }
  | Rejected_victim of { victim : string; estimated : float; required : float }

type audit_stats = {
  audit_sample : int;
  audit_submitted : int;
  audit_completed : int;
  audit_dropped : int;
  audit_failed : int;
  audit_mean_err : float;
  audit_max_abs_err : float;
  audit_alarms : int;
  audit_drifting : string list;
  audit_margin_checked : int;
  audit_margin_missed : int;
}

let no_audit =
  {
    audit_sample = 0;
    audit_submitted = 0;
    audit_completed = 0;
    audit_dropped = 0;
    audit_failed = 0;
    audit_mean_err = 0.;
    audit_max_abs_err = 0.;
    audit_alarms = 0;
    audit_drifting = [];
    audit_margin_checked = 0;
    audit_margin_missed = 0;
  }

type stats_reply = {
  uptime_s : float;
  connections : int;
  requests : (string * int) list;
  requests_total : int;
  workloads : int;
  sessions : int;
  cache_entries : int;
  cache_capacity : int;
  cache_hits : int;
  cache_misses : int;
  active_connections : int;
  workers : int;
  queue_capacity : int;
  shed : int;
  admitted : int;
  rejected_candidate : int;
  rejected_victim : int;
  released : int;
  margins_served : int;
  margin_mean_rel_width : float;
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p90_us : float;
  latency_p99_us : float;
  latency_max_us : float;
  latency_samples : int;
  slo_objective_ms : float;
  slo_target : float;
  slo_burn_1m : float;
  slo_burn_1h : float;
  audit : audit_stats;
}

let cache_hit_rate s =
  let lookups = s.cache_hits + s.cache_misses in
  if lookups = 0 then 0. else float_of_int s.cache_hits /. float_of_int lookups

let pool_occupancy s =
  if s.workers = 0 then 0.
  else float_of_int s.active_connections /. float_of_int s.workers

type metrics_reply = { prometheus : string }

let metrics_reply_to_json r = Json.Obj [ ("prometheus", Json.Str r.prometheus) ]

let metrics_reply_of_json json =
  let* prometheus = field "prometheus" Json.get_str json in
  Ok { prometheus }

let upload_reply_to_json r =
  Json.Obj
    [
      ("digest", Json.Str r.digest);
      ("apps", Json.Arr (List.map (fun a -> Json.Str a) r.apps));
      ("procs", Json.Num (float_of_int r.procs));
    ]

let upload_reply_of_json json =
  let* digest = field "digest" Json.get_str json in
  let* apps = field "apps" str_list json in
  let* procs = field "procs" Json.get_int json in
  Ok { digest; apps; procs }

let estimate_reply_to_json r =
  Json.Obj
    [
      ("cached", Json.Bool r.cached);
      ("estimator", Json.Str r.estimator);
      ("results", Json.Arr (List.map estimate_row_to_json r.rows));
    ]

let estimate_reply_of_json json =
  let* cached = field "cached" Json.get_bool json in
  let* estimator = field "estimator" Json.get_str json in
  let* rows_json = field "results" Json.get_arr json in
  let* rows = rows_of_json rows_json in
  Ok { cached; estimator; rows }

(* The provenance record's JSON lives in [Contention.Explain] (core cannot
   see the serve layer's codec); the two ASTs are structurally identical, so
   the bridge is a plain structural copy in each direction. *)
let rec json_of_explain : Contention.Explain.json -> Json.t = function
  | Contention.Explain.Null -> Json.Null
  | Contention.Explain.Bool b -> Json.Bool b
  | Contention.Explain.Num n -> Json.Num n
  | Contention.Explain.Str s -> Json.Str s
  | Contention.Explain.Arr xs -> Json.Arr (List.map json_of_explain xs)
  | Contention.Explain.Obj fields ->
      Json.Obj (List.map (fun (k, v) -> (k, json_of_explain v)) fields)

let rec explain_json_of_json : Json.t -> Contention.Explain.json = function
  | Json.Null -> Contention.Explain.Null
  | Json.Bool b -> Contention.Explain.Bool b
  | Json.Num n -> Contention.Explain.Num n
  | Json.Str s -> Contention.Explain.Str s
  | Json.Arr xs -> Contention.Explain.Arr (List.map explain_json_of_json xs)
  | Json.Obj fields ->
      Contention.Explain.Obj
        (List.map (fun (k, v) -> (k, explain_json_of_json v)) fields)

let explain_reply_to_json (e : Contention.Explain.t) =
  json_of_explain (Contention.Explain.to_json e)

let explain_reply_of_json json =
  Contention.Explain.of_json (explain_json_of_json json)

let margin_to_json (m : Contention.Margin.t) =
  Json.Obj
    [
      ("confidence", Json.Num m.confidence);
      ("method", Json.Str (Contention.Margin.method_to_string m.method_));
      ("period", Json.Num m.period);
      ("lo", Json.Num m.lo);
      ("hi", Json.Num m.hi);
      ("mean", Json.Num m.mean);
      ("std", Json.Num m.std);
      ("samples", Json.Num (float_of_int m.samples));
    ]

let margin_of_json json =
  let* confidence = field "confidence" Json.get_num json in
  let* method_name = field "method" Json.get_str json in
  let* method_ = Contention.Margin.method_of_string method_name in
  let* period = field "period" Json.get_num json in
  let* lo = field "lo" Json.get_num json in
  let* hi = field "hi" Json.get_num json in
  let* mean = field "mean" Json.get_num json in
  let* std = field "std" Json.get_num json in
  let* samples = field "samples" Json.get_int json in
  let m =
    { Contention.Margin.confidence; method_; period; lo; hi; mean; std; samples }
  in
  let* () = Contention.Margin.validate m in
  Ok m

let verdict_to_json = function
  | Admitted { throughput; margin } ->
      Json.Obj
        ([ ("verdict", Json.Str "admitted"); ("throughput", Json.Num throughput) ]
        @
        match margin with
        | None -> []
        | Some m -> [ ("margin", margin_to_json m) ])
  | Rejected_candidate { estimated; required } ->
      Json.Obj
        [
          ("verdict", Json.Str "rejected-candidate");
          ("estimated", Json.Num estimated);
          ("required", Json.Num required);
        ]
  | Rejected_victim { victim; estimated; required } ->
      Json.Obj
        [
          ("verdict", Json.Str "rejected-victim");
          ("victim", Json.Str victim);
          ("estimated", Json.Num estimated);
          ("required", Json.Num required);
        ]

let verdict_of_json json =
  let* kind = field "verdict" Json.get_str json in
  match kind with
  | "admitted" ->
      let* throughput = field "throughput" Json.get_num json in
      let* margin =
        match Json.member "margin" json with
        | None | Some Json.Null -> Ok None
        | Some m -> Result.map Option.some (margin_of_json m)
      in
      Ok (Admitted { throughput; margin })
  | "rejected-candidate" ->
      let* estimated = field "estimated" Json.get_num json in
      let* required = field "required" Json.get_num json in
      Ok (Rejected_candidate { estimated; required })
  | "rejected-victim" ->
      let* victim = field "victim" Json.get_str json in
      let* estimated = field "estimated" Json.get_num json in
      let* required = field "required" Json.get_num json in
      Ok (Rejected_victim { victim; estimated; required })
  | k -> Error (Printf.sprintf "unknown verdict %S" k)

let stats_reply_to_json s =
  Json.Obj
    [
      ("uptime_s", Json.Num s.uptime_s);
      ("connections", Json.Num (float_of_int s.connections));
      ( "requests",
        Json.Obj
          (("total", Json.Num (float_of_int s.requests_total))
          :: List.map
               (fun (cmd, n) -> (cmd, Json.Num (float_of_int n)))
               s.requests) );
      ("workloads", Json.Num (float_of_int s.workloads));
      ("sessions", Json.Num (float_of_int s.sessions));
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Num (float_of_int s.cache_entries));
            ("capacity", Json.Num (float_of_int s.cache_capacity));
            ("hits", Json.Num (float_of_int s.cache_hits));
            ("misses", Json.Num (float_of_int s.cache_misses));
          ] );
      ( "pool",
        Json.Obj
          [
            ("active_connections", Json.Num (float_of_int s.active_connections));
            ("workers", Json.Num (float_of_int s.workers));
            ("queue_capacity", Json.Num (float_of_int s.queue_capacity));
            ("shed", Json.Num (float_of_int s.shed));
          ] );
      ( "admission",
        Json.Obj
          [
            ("admitted", Json.Num (float_of_int s.admitted));
            ("rejected_candidate", Json.Num (float_of_int s.rejected_candidate));
            ("rejected_victim", Json.Num (float_of_int s.rejected_victim));
            ("released", Json.Num (float_of_int s.released));
            ("margins", Json.Num (float_of_int s.margins_served));
            ("margin_mean_rel_width", Json.Num s.margin_mean_rel_width);
          ] );
      ( "latency_us",
        Json.Obj
          [
            ("mean", Json.Num s.latency_mean_us);
            ("p50", Json.Num s.latency_p50_us);
            ("p90", Json.Num s.latency_p90_us);
            ("p99", Json.Num s.latency_p99_us);
            ("max", Json.Num s.latency_max_us);
            ("samples", Json.Num (float_of_int s.latency_samples));
          ] );
      ( "slo",
        Json.Obj
          [
            ("objective_ms", Json.Num s.slo_objective_ms);
            ("target", Json.Num s.slo_target);
            ("burn_1m", Json.Num s.slo_burn_1m);
            ("burn_1h", Json.Num s.slo_burn_1h);
          ] );
      ( "audit",
        Json.Obj
          [
            ("sample", Json.Num (float_of_int s.audit.audit_sample));
            ("submitted", Json.Num (float_of_int s.audit.audit_submitted));
            ("completed", Json.Num (float_of_int s.audit.audit_completed));
            ("dropped", Json.Num (float_of_int s.audit.audit_dropped));
            ("failed", Json.Num (float_of_int s.audit.audit_failed));
            ("mean_err", Json.Num s.audit.audit_mean_err);
            ("max_abs_err", Json.Num s.audit.audit_max_abs_err);
            ("alarms", Json.Num (float_of_int s.audit.audit_alarms));
            ( "drifting",
              Json.Arr
                (List.map (fun e -> Json.Str e) s.audit.audit_drifting) );
            ( "margin_checked",
              Json.Num (float_of_int s.audit.audit_margin_checked) );
            ( "margin_missed",
              Json.Num (float_of_int s.audit.audit_margin_missed) );
          ] );
    ]

let stats_reply_of_json json =
  let* uptime_s = field "uptime_s" Json.get_num json in
  let* connections = field "connections" Json.get_int json in
  let* requests_obj = field "requests" Json.get_obj json in
  let* requests_total =
    field "total" Json.get_int (Json.Obj requests_obj)
  in
  let requests =
    List.filter_map
      (fun (k, v) ->
        if k = "total" then None
        else Option.map (fun n -> (k, n)) (Json.get_int v))
      requests_obj
  in
  let* workloads = field "workloads" Json.get_int json in
  let* sessions = field "sessions" Json.get_int json in
  let* cache = field "cache" (fun j -> Some j) json in
  let* cache_entries = field "entries" Json.get_int cache in
  let* cache_capacity = field "capacity" Json.get_int cache in
  let* cache_hits = field "hits" Json.get_int cache in
  let* cache_misses = field "misses" Json.get_int cache in
  let* pool = field "pool" (fun j -> Some j) json in
  let* active_connections = field "active_connections" Json.get_int pool in
  let* workers = field "workers" Json.get_int pool in
  let* queue_capacity = field "queue_capacity" Json.get_int pool in
  let* shed = field "shed" Json.get_int pool in
  let* admission = field "admission" (fun j -> Some j) json in
  let* admitted = field "admitted" Json.get_int admission in
  let* rejected_candidate = field "rejected_candidate" Json.get_int admission in
  let* rejected_victim = field "rejected_victim" Json.get_int admission in
  let* released = field "released" Json.get_int admission in
  (* Margin accounting is absent from pre-margin servers: default to zero so
     a new client can still read an old server's stats. *)
  let margins_served =
    Option.value ~default:0
      (Option.bind (Json.member "margins" admission) Json.get_int)
  in
  let margin_mean_rel_width =
    Option.value ~default:0.
      (Option.bind (Json.member "margin_mean_rel_width" admission) Json.get_num)
  in
  let* latency = field "latency_us" (fun j -> Some j) json in
  let* latency_mean_us = field "mean" Json.get_num latency in
  let* latency_p50_us = field "p50" Json.get_num latency in
  let* latency_p90_us = field "p90" Json.get_num latency in
  let* latency_p99_us = field "p99" Json.get_num latency in
  let* latency_max_us = field "max" Json.get_num latency in
  let* latency_samples = field "samples" Json.get_int latency in
  (* SLO block is absent from pre-SLO servers: default to zeros so a new
     client can still read an old server's stats. *)
  let slo_num name =
    match Json.member "slo" json with
    | None -> 0.
    | Some slo -> (
        match Option.bind (Json.member name slo) Json.get_num with
        | None -> 0.
        | Some v -> v)
  in
  let slo_objective_ms = slo_num "objective_ms" in
  let slo_target = slo_num "target" in
  let slo_burn_1m = slo_num "burn_1m" in
  let slo_burn_1h = slo_num "burn_1h" in
  (* Like the SLO block, the audit block is absent from pre-audit servers
     (and from servers running with auditing off the section is all-zero):
     default everything so old and new peers interoperate. *)
  let audit =
    match Json.member "audit" json with
    | None -> no_audit
    | Some a ->
        let num name =
          Option.value ~default:0.
            (Option.bind (Json.member name a) Json.get_num)
        in
        let int name = int_of_float (num name) in
        {
          audit_sample = int "sample";
          audit_submitted = int "submitted";
          audit_completed = int "completed";
          audit_dropped = int "dropped";
          audit_failed = int "failed";
          audit_mean_err = num "mean_err";
          audit_max_abs_err = num "max_abs_err";
          audit_alarms = int "alarms";
          audit_drifting =
            Option.value ~default:[]
              (Option.bind (Json.member "drifting" a) str_list);
          audit_margin_checked = int "margin_checked";
          audit_margin_missed = int "margin_missed";
        }
  in
  Ok
    {
      uptime_s;
      connections;
      requests;
      requests_total;
      workloads;
      sessions;
      cache_entries;
      cache_capacity;
      cache_hits;
      cache_misses;
      active_connections;
      workers;
      queue_capacity;
      shed;
      admitted;
      rejected_candidate;
      rejected_victim;
      released;
      margins_served;
      margin_mean_rel_width;
      latency_mean_us;
      latency_p50_us;
      latency_p90_us;
      latency_p99_us;
      latency_max_us;
      latency_samples;
      slo_objective_ms;
      slo_target;
      slo_burn_1m;
      slo_burn_1h;
      audit;
    }

(* ------------------------------------------------------------------ *)
(* Envelope                                                            *)

let ok payload = Json.Obj [ ("ok", payload) ]
let error msg = Json.Obj [ ("error", Json.Str msg) ]

let shed ~queue_depth =
  Json.Obj
    [ ("shed", Json.Obj [ ("queue_depth", Json.Num (float_of_int queue_depth)) ]) ]

type reply =
  | Reply_ok of Json.t
  | Reply_error of string
  | Reply_shed of { queue_depth : int }

let classify_reply json =
  match Json.member "ok" json with
  | Some payload -> Reply_ok payload
  | None -> (
      match Option.bind (Json.member "error" json) Json.get_str with
      | Some msg -> Reply_error msg
      | None -> (
          match Json.member "shed" json with
          | Some payload ->
              let queue_depth =
                Option.value ~default:0
                  (Option.bind (Json.member "queue_depth" payload) Json.get_int)
              in
              Reply_shed { queue_depth }
          | None ->
              Reply_error "malformed reply: neither \"ok\", \"error\" nor \"shed\""))

let unwrap_reply json =
  match classify_reply json with
  | Reply_ok payload -> Ok payload
  | Reply_error msg -> Error msg
  | Reply_shed { queue_depth } ->
      Error
        (Printf.sprintf "shed: server overloaded (queue depth %d)" queue_depth)
