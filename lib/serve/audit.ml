module Drift = struct
  type t = {
    delta : float;
    lambda : float;
    min_samples : int;
    mutable n : int;
    mutable mean : float;
    mutable m_up : float;  (* cumulative upward deviation *)
    mutable min_up : float;
    mutable m_dn : float;  (* cumulative downward deviation *)
    mutable max_dn : float;
    mutable alarm_count : int;
  }

  let create ?(delta = 0.005) ?(lambda = 0.25) ?(min_samples = 20) () =
    {
      delta;
      lambda;
      min_samples;
      n = 0;
      mean = 0.;
      m_up = 0.;
      min_up = 0.;
      m_dn = 0.;
      max_dn = 0.;
      alarm_count = 0;
    }

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.m_up <- 0.;
    t.min_up <- 0.;
    t.m_dn <- 0.;
    t.max_dn <- 0.

  let observe t x =
    t.n <- t.n + 1;
    t.mean <- t.mean +. ((x -. t.mean) /. float_of_int t.n);
    t.m_up <- t.m_up +. (x -. t.mean -. t.delta);
    if t.m_up < t.min_up then t.min_up <- t.m_up;
    t.m_dn <- t.m_dn +. (x -. t.mean +. t.delta);
    if t.m_dn > t.max_dn then t.max_dn <- t.m_dn;
    let alarm =
      t.n >= t.min_samples
      && (t.m_up -. t.min_up > t.lambda || t.max_dn -. t.m_dn > t.lambda)
    in
    if alarm then begin
      t.alarm_count <- t.alarm_count + 1;
      (* Restart detection, but leave the alarm count (and with it the
         flagged bit) up: drift wants operator attention, not self-clear. *)
      reset t
    end;
    alarm

  let flagged t = t.alarm_count > 0
  let alarms t = t.alarm_count
end

type config = {
  sample_every : int;
  horizon : float;
  queue_capacity : int;
  drift_delta : float;
  drift_lambda : float;
  drift_min_samples : int;
}

let default_config =
  {
    sample_every = 64;
    horizon = 50_000.;
    queue_capacity = 64;
    drift_delta = 0.005;
    drift_lambda = 0.25;
    drift_min_samples = 20;
  }

type task = {
  digest : string;
  workload : Exp.Workload.t;
  mask : Contention.Usecase.t;
  estimator : string;
  rows : Protocol.estimate_row list;
  ctx : Obs.Span.ctx option;
}

type margin_task = {
  m_digest : string;
  m_workload : Exp.Workload.t;
  m_mask : Contention.Usecase.t;  (* the admitted population, candidate included *)
  m_app : string;  (* the application whose margin was served *)
  m_margin : Contention.Margin.t;
  m_ctx : Obs.Span.ctx option;
}

type item = Estimate of task | Margin_check of margin_task

type t = {
  config : config;
  registry : Obs.Metric.registry;
  journal : Journal.t option;
  shard : string option;
  queue : item Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
  mutable in_flight : bool;
  head : int Atomic.t;  (* estimate-request counter for 1-in-N sampling *)
  (* Aggregates for the stats reply, all under [mutex]. *)
  mutable submitted : int;
  mutable completed : int;
  mutable dropped : int;
  mutable failed : int;
  mutable err_sum : float;
  mutable err_n : int;
  mutable max_abs_err : float;
  mutable margin_checked : int;
  mutable margin_missed : int;
  drift_by_estimator : (string, Drift.t) Hashtbl.t;
  m_dropped : Obs.Metric.Counter.t;
  m_failed : Obs.Metric.Counter.t;
  mutable domain : unit Domain.t option;
}

(* Symmetric buckets around zero: the error is signed, and the sign is the
   signal (even truncations should sit right of zero, odd ones left). *)
let error_buckets =
  [|
    -0.5; -0.2; -0.1; -0.05; -0.02; -0.01; 0.; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5;
  |]

let m_total t est =
  Obs.Metric.Counter.v ~registry:t.registry
    ~help:"Served estimates replayed through the simulator, by estimator."
    ~labels:[ ("estimator", est) ]
    "contention_serve_audit_total"

let m_error t est =
  Obs.Metric.Histogram.v ~registry:t.registry
    ~help:
      "Signed relative period error of served estimates vs simulation, by \
       estimator."
    ~buckets:error_buckets
    ~labels:[ ("estimator", est) ]
    "contention_serve_audit_error"

let m_drift t est =
  Obs.Metric.Gauge.v ~registry:t.registry
    ~help:"1 when the estimator's error stream has drifted (sticky)."
    ~labels:[ ("estimator", est) ]
    "contention_serve_audit_drift"

let m_alarms t est =
  Obs.Metric.Counter.v ~registry:t.registry
    ~help:"Page-Hinkley drift alarms, by estimator."
    ~labels:[ ("estimator", est) ]
    "contention_serve_audit_alarms_total"

let drift_for t est =
  match Hashtbl.find_opt t.drift_by_estimator est with
  | Some d -> d
  | None ->
      let d =
        Drift.create ~delta:t.config.drift_delta ~lambda:t.config.drift_lambda
          ~min_samples:t.config.drift_min_samples ()
      in
      Hashtbl.add t.drift_by_estimator est d;
      (* Materialise the gauge at 0 so the exposition shows the estimator
         as audited-and-healthy, not merely absent. *)
      Obs.Metric.Gauge.set (m_drift t est) 0.;
      d

let journal_record t (task : task) ~errs ~outcome =
  match t.journal with
  | Some j when Journal.sampled j ~ctx:task.ctx ->
      let opt name conv = function
        | None -> []
        | Some v -> [ (name, conv v) ]
      in
      let mean_err, max_abs =
        match errs with
        | [] -> (0., 0.)
        | errs ->
            let n = float_of_int (List.length errs) in
            ( List.fold_left ( +. ) 0. errs /. n,
              List.fold_left (fun m e -> Float.max m (Float.abs e)) 0. errs )
      in
      Journal.record j
        (Json.Obj
           ([ ("ts", Json.Num (Unix.gettimeofday ())) ]
           @ opt "trace"
               (fun (c : Obs.Span.ctx) ->
                 Json.Str (Obs.Span.id_to_hex c.trace_id))
               task.ctx
           @ [ ("cmd", Json.Str "audit"); ("workload", Json.Str task.digest) ]
           @ opt "shard" (fun s -> Json.Str s) t.shard
           @ [
               ("estimator", Json.Str task.estimator);
               ("outcome", Json.Str outcome);
               ("rows", Json.Num (float_of_int (List.length task.rows)));
               ("mean_err", Json.Num mean_err);
               ("max_abs_err", Json.Num max_abs);
             ]))
  | _ -> ()

(* Replay one served estimate: simulate the same use-case and compare each
   application's estimated period against its simulated average period.
   Rows and simulator results share Usecase.to_list order. *)
let replay t (task : task) =
  let w = task.workload in
  let results, _ =
    Desim.Engine.run ~horizon:t.config.horizon
      ?firing_time:(Exp.Workload.sim_firing_time w task.mask)
      ~procs:w.procs
      (Exp.Workload.sim_apps w task.mask)
  in
  if Array.length results <> List.length task.rows then
    failwith "row/result arity mismatch"
  else
    List.filter_map Fun.id
      (List.mapi
         (fun pos (row : Protocol.estimate_row) ->
           let sim = results.(pos).Desim.Engine.avg_period in
           (* The simulation can finish with < 2 post-warmup iterations
              (nan) or a degenerate period; such rows carry no error
              signal. *)
           if Float.is_finite sim && sim > 0. then
             Some ((row.Protocol.period -. sim) /. sim)
           else None)
         task.rows)

let process t (task : task) =
  let audit () =
    Obs.Span.with_ ~name:"audit.replay"
      ~args:(fun () ->
        [ ("digest", task.digest); ("estimator", task.estimator) ])
      (fun () -> replay t task)
  in
  let outcome =
    (* Re-establish the originating request's trace context, so the replay
       span (and the journal line) join the request that triggered it. *)
    match
      match task.ctx with
      | None -> audit ()
      | Some c -> Obs.Span.with_context c audit
    with
    | errs -> Ok errs
    | exception e -> Error (Printexc.to_string e)
  in
  match outcome with
  | Error _ ->
      Obs.Metric.Counter.inc t.m_failed;
      Mutex.lock t.mutex;
      t.failed <- t.failed + 1;
      Mutex.unlock t.mutex;
      journal_record t task ~errs:[] ~outcome:"failed"
  | Ok errs ->
      Obs.Metric.Counter.inc (m_total t task.estimator);
      let hist = m_error t task.estimator in
      List.iter (fun e -> Obs.Metric.Histogram.observe hist e) errs;
      let alarmed =
        Mutex.lock t.mutex;
        let drift = drift_for t task.estimator in
        let alarmed =
          List.fold_left (fun a e -> Drift.observe drift e || a) false errs
        in
        t.completed <- t.completed + 1;
        List.iter
          (fun e ->
            t.err_sum <- t.err_sum +. e;
            t.err_n <- t.err_n + 1;
            t.max_abs_err <- Float.max t.max_abs_err (Float.abs e))
          errs;
        Mutex.unlock t.mutex;
        alarmed
      in
      if alarmed then begin
        Obs.Metric.Counter.inc (m_alarms t task.estimator);
        Obs.Metric.Gauge.set (m_drift t task.estimator) 1.
      end;
      journal_record t task ~errs ~outcome:"ok"

let m_margin_total t =
  Obs.Metric.Counter.v ~registry:t.registry
    ~help:"Served admission margins replayed through the simulator."
    "contention_serve_audit_margin_total"

let m_margin_missed t =
  Obs.Metric.Counter.v ~registry:t.registry
    ~help:
      "Margin replays whose simulated period fell outside the served bounds."
    "contention_serve_audit_margin_missed_total"

let margin_journal_record t (task : margin_task) ~observed ~outcome =
  match t.journal with
  | Some j when Journal.sampled j ~ctx:task.m_ctx ->
      let opt name conv = function
        | None -> []
        | Some v -> [ (name, conv v) ]
      in
      Journal.record j
        (Json.Obj
           ([ ("ts", Json.Num (Unix.gettimeofday ())) ]
           @ opt "trace"
               (fun (c : Obs.Span.ctx) ->
                 Json.Str (Obs.Span.id_to_hex c.trace_id))
               task.m_ctx
           @ [
               ("cmd", Json.Str "audit-margin");
               ("workload", Json.Str task.m_digest);
             ]
           @ opt "shard" (fun s -> Json.Str s) t.shard
           @ [
               ("app", Json.Str task.m_app);
               ("confidence", Json.Num task.m_margin.Contention.Margin.confidence);
               ("lo", Json.Num task.m_margin.Contention.Margin.lo);
               ("hi", Json.Num task.m_margin.Contention.Margin.hi);
               ("outcome", Json.Str outcome);
             ]
           @ opt "observed" (fun p -> Json.Num p) observed))
  | _ -> ()

(* Replay one served margin: simulate the admitted population and check the
   application's observed average period against the served interval.  One
   replay is one Bernoulli trial at the margin's confidence — the aggregate
   miss rate is the signal, not any single miss. *)
let process_margin t (task : margin_task) =
  let simulate () =
    let w = task.m_workload in
    let results, _ =
      Desim.Engine.run ~horizon:t.config.horizon
        ?firing_time:(Exp.Workload.sim_firing_time w task.m_mask)
        ~procs:w.procs
        (Exp.Workload.sim_apps w task.m_mask)
    in
    (* Results share Usecase.to_list order with the mask. *)
    let names = Exp.Workload.names w in
    let rec find pos = function
      | [] -> failwith "margin app not in population mask"
      | idx :: rest -> if names.(idx) = task.m_app then pos else find (pos + 1) rest
    in
    let pos = find 0 (Contention.Usecase.to_list task.m_mask) in
    results.(pos).Desim.Engine.avg_period
  in
  let run () =
    Obs.Span.with_ ~name:"audit.margin"
      ~args:(fun () -> [ ("digest", task.m_digest); ("app", task.m_app) ])
      simulate
  in
  match
    match task.m_ctx with
    | None -> run ()
    | Some c -> Obs.Span.with_context c run
  with
  | exception e ->
      Obs.Metric.Counter.inc t.m_failed;
      Mutex.lock t.mutex;
      t.failed <- t.failed + 1;
      Mutex.unlock t.mutex;
      margin_journal_record t task ~observed:None
        ~outcome:(Printf.sprintf "failed: %s" (Printexc.to_string e))
  | observed when not (Float.is_finite observed && observed > 0.) ->
      Obs.Metric.Counter.inc t.m_failed;
      Mutex.lock t.mutex;
      t.failed <- t.failed + 1;
      Mutex.unlock t.mutex;
      margin_journal_record t task ~observed:None ~outcome:"degenerate"
  | observed ->
      let covered = Contention.Margin.covers task.m_margin observed in
      Obs.Metric.Counter.inc (m_margin_total t);
      if not covered then Obs.Metric.Counter.inc (m_margin_missed t);
      Mutex.lock t.mutex;
      t.margin_checked <- t.margin_checked + 1;
      if not covered then t.margin_missed <- t.margin_missed + 1;
      Mutex.unlock t.mutex;
      margin_journal_record t task ~observed:(Some observed)
        ~outcome:(if covered then "covered" else "missed")

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.cond t.mutex
    done;
    let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    (match task with Some _ -> t.in_flight <- true | None -> ());
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        (* A replay bug must not take the audit domain down. *)
        (try
           match task with
           | Estimate task -> process t task
           | Margin_check task -> process_margin t task
         with _ -> ());
        Mutex.lock t.mutex;
        t.in_flight <- false;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ?(config = default_config) ~registry ?journal ?shard () =
  let config =
    { config with sample_every = max 1 config.sample_every;
      queue_capacity = max 1 config.queue_capacity }
  in
  let t =
    {
      config;
      registry;
      journal;
      shard;
      queue = Queue.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      closed = false;
      in_flight = false;
      head = Atomic.make 0;
      submitted = 0;
      completed = 0;
      dropped = 0;
      failed = 0;
      err_sum = 0.;
      err_n = 0;
      max_abs_err = 0.;
      margin_checked = 0;
      margin_missed = 0;
      drift_by_estimator = Hashtbl.create 4;
      m_dropped =
        Obs.Metric.Counter.v ~registry
          ~help:"Audit samples dropped because the audit queue was full."
          "contention_serve_audit_dropped_total";
      m_failed =
        Obs.Metric.Counter.v ~registry
          ~help:"Audit replays that raised or produced no usable period."
          "contention_serve_audit_failed_total";
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (worker t));
  t

let sampled t =
  let n = Atomic.fetch_and_add t.head 1 in
  n mod t.config.sample_every = 0

let submit_item t item =
  Mutex.lock t.mutex;
  let verdict =
    if t.closed then `Closed
    else if Queue.length t.queue >= t.config.queue_capacity then begin
      t.dropped <- t.dropped + 1;
      `Dropped
    end
    else begin
      Queue.push item t.queue;
      t.submitted <- t.submitted + 1;
      Condition.signal t.cond;
      `Accepted
    end
  in
  Mutex.unlock t.mutex;
  (match verdict with
  | `Dropped -> Obs.Metric.Counter.inc t.m_dropped
  | `Closed | `Accepted -> ());
  verdict = `Accepted

let submit t task = submit_item t (Estimate task)
let submit_margin t task = submit_item t (Margin_check task)

let stats t =
  Mutex.lock t.mutex;
  let alarms =
    Hashtbl.fold (fun _ d acc -> acc + Drift.alarms d) t.drift_by_estimator 0
  in
  let drifting =
    List.sort String.compare
      (Hashtbl.fold
         (fun est d acc -> if Drift.flagged d then est :: acc else acc)
         t.drift_by_estimator [])
  in
  let s =
    {
      Protocol.audit_sample = t.config.sample_every;
      audit_submitted = t.submitted;
      audit_completed = t.completed;
      audit_dropped = t.dropped;
      audit_failed = t.failed;
      audit_mean_err =
        (if t.err_n = 0 then 0. else t.err_sum /. float_of_int t.err_n);
      audit_max_abs_err = t.max_abs_err;
      audit_alarms = alarms;
      audit_drifting = drifting;
      audit_margin_checked = t.margin_checked;
      audit_margin_missed = t.margin_missed;
    }
  in
  Mutex.unlock t.mutex;
  s

let drain t =
  Mutex.lock t.mutex;
  while not (Queue.is_empty t.queue) || t.in_flight do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex

let stop t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not was_closed then begin
    Option.iter Domain.join t.domain;
    t.domain <- None
  end
