(* Classic doubly-linked list + hash table.  The list runs through a
   sentinel node: sentinel.next is the most recently used entry,
   sentinel.prev the eviction candidate.  All operations take the mutex, so
   a cache can be shared by every worker domain. *)

type ('k, 'v) node = {
  mutable key : 'k option;  (* None only on the sentinel *)
  mutable value : 'v option;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  mutex : Mutex.t;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  sentinel : ('k, 'v) node;
  cap : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Lru.create: capacity < 1";
  let rec sentinel =
    { key = None; value = None; prev = sentinel; next = sentinel }
  in
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    sentinel;
    cap = capacity;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  node.next <- t.sentinel.next;
  node.prev <- t.sentinel;
  t.sentinel.next.prev <- node;
  t.sentinel.next <- node

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some node ->
          t.hits <- t.hits + 1;
          unlink node;
          push_front t node;
          node.value)

let put t k v =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some node ->
          node.value <- Some v;
          unlink node;
          push_front t node
      | None ->
          if Hashtbl.length t.table >= t.cap then begin
            let victim = t.sentinel.prev in
            (* cap >= 1 and the table is non-empty, so the tail is a real
               node, not the sentinel. *)
            (match victim.key with
            | Some vk -> Hashtbl.remove t.table vk
            | None -> assert false);
            unlink victim
          end;
          let node = { key = Some k; value = Some v; prev = t.sentinel; next = t.sentinel } in
          push_front t node;
          Hashtbl.add t.table k node)

let length t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
