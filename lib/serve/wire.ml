let default_max_line = 8 * 1024 * 1024

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable start : int;  (* unread window into [chunk] *)
  mutable stop : int;
  acc : Buffer.t;  (* partial line carried across chunks *)
  max_line : int;
  mutable eof : bool;
}

let reader ?(max_line = default_max_line) fd =
  {
    fd;
    chunk = Bytes.create 65536;
    start = 0;
    stop = 0;
    acc = Buffer.create 256;
    max_line;
    eof = false;
  }

type frame = Line of string | Eof | Too_long

let rec refill r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> r.eof <- true
  | n ->
      r.start <- 0;
      r.stop <- n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      r.eof <- true

let take_line r =
  let line = Buffer.contents r.acc in
  Buffer.clear r.acc;
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec read_frame r =
  if r.eof then Eof
  else if r.start >= r.stop then begin
    refill r;
    if r.eof then
      (* A final unterminated line counts as a frame; plain EOF otherwise. *)
      if Buffer.length r.acc > 0 then Line (take_line r) else Eof
    else read_frame r
  end
  else
    match Bytes.index_from_opt r.chunk r.start '\n' with
    | Some i when i < r.stop ->
        Buffer.add_subbytes r.acc r.chunk r.start (i - r.start);
        r.start <- i + 1;
        if Buffer.length r.acc > r.max_line then begin
          Buffer.clear r.acc;
          Too_long
        end
        else Line (take_line r)
    | _ ->
        Buffer.add_subbytes r.acc r.chunk r.start (r.stop - r.start);
        r.start <- r.stop;
        if Buffer.length r.acc > r.max_line then begin
          Buffer.clear r.acc;
          (* Swallow the rest of the oversized line so the reader could in
             principle resynchronise; the server drops the connection
             anyway. *)
          Too_long
        end
        else read_frame r

let write_line fd s =
  let payload = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length payload in
  let rec go off =
    if off < len then
      match Unix.write fd payload off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
