let reservoir_size = 4096

type t = {
  mutex : Mutex.t;
  started : int64;  (* Obs.Clock.now_ns; uptime survives wall-clock steps *)
  mutable connections : int;
  per_cmd : (string, int) Hashtbl.t;
  mutable total : int;
  mutable admitted : int;
  mutable rejected_candidate : int;
  mutable rejected_victim : int;
  mutable released : int;
  mutable shed : int;  (* connections refused with a shed verdict *)
  mutable margins_served : int;
  mutable margin_rel_width_sum : float;
  reservoir : float array;  (* seconds; ring buffer of recent latencies *)
  mutable samples : int;  (* total recorded; ring index = samples mod size *)
  mutable latency_sum : float;
  mutable latency_max : float;
}

let create () =
  {
    mutex = Mutex.create ();
    started = Obs.Clock.now_ns ();
    connections = 0;
    per_cmd = Hashtbl.create 8;
    total = 0;
    admitted = 0;
    rejected_candidate = 0;
    rejected_victim = 0;
    released = 0;
    shed = 0;
    margins_served = 0;
    margin_rel_width_sum = 0.;
    reservoir = Array.make reservoir_size 0.;
    samples = 0;
    latency_sum = 0.;
    latency_max = 0.;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr_connections t = locked t (fun () -> t.connections <- t.connections + 1)

let record t ~cmd ~latency_s =
  locked t (fun () ->
      Hashtbl.replace t.per_cmd cmd
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_cmd cmd));
      t.total <- t.total + 1;
      t.reservoir.(t.samples mod reservoir_size) <- latency_s;
      t.samples <- t.samples + 1;
      t.latency_sum <- t.latency_sum +. latency_s;
      t.latency_max <- Float.max t.latency_max latency_s)

let record_admission_verdict t verdict =
  locked t (fun () ->
      match (verdict : Protocol.verdict) with
      | Protocol.Admitted { margin; _ } ->
          t.admitted <- t.admitted + 1;
          Option.iter
            (fun m ->
              t.margins_served <- t.margins_served + 1;
              t.margin_rel_width_sum <-
                t.margin_rel_width_sum +. Contention.Margin.rel_width m)
            margin
      | Protocol.Rejected_candidate _ ->
          t.rejected_candidate <- t.rejected_candidate + 1
      | Protocol.Rejected_victim _ ->
          t.rejected_victim <- t.rejected_victim + 1)

let incr_released t = locked t (fun () -> t.released <- t.released + 1)
let incr_shed t = locked t (fun () -> t.shed <- t.shed + 1)

type snapshot = {
  uptime_s : float;
  connections : int;
  requests : (string * int) list;
  requests_total : int;
  admitted : int;
  rejected_candidate : int;
  rejected_victim : int;
  released : int;
  shed : int;
  margins_served : int;
  margin_mean_rel_width : float;
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p90_us : float;
  latency_p99_us : float;
  latency_max_us : float;
  latency_samples : int;
}

let snapshot t =
  locked t (fun () ->
      let us x = 1e6 *. x in
      let n = Int.min t.samples reservoir_size in
      let recent = Array.to_list (Array.sub t.reservoir 0 n) in
      let pct q = if n = 0 then 0. else us (Repro_stats.Stats.percentile q recent) in
      {
        uptime_s = Obs.Clock.elapsed_s ~since:t.started;
        connections = t.connections;
        requests =
          List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_cmd []);
        requests_total = t.total;
        admitted = t.admitted;
        rejected_candidate = t.rejected_candidate;
        rejected_victim = t.rejected_victim;
        released = t.released;
        shed = t.shed;
        margins_served = t.margins_served;
        margin_mean_rel_width =
          (if t.margins_served = 0 then 0.
           else t.margin_rel_width_sum /. float_of_int t.margins_served);
        latency_mean_us =
          (if t.total = 0 then 0. else us (t.latency_sum /. float_of_int t.total));
        latency_p50_us = pct 50.;
        latency_p90_us = pct 90.;
        latency_p99_us = pct 99.;
        latency_max_us = us t.latency_max;
        latency_samples = t.samples;
      })
