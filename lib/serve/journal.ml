(* Sampled request journal: one JSON object per line, size-rotated.

   The journal answers "what exactly happened to request X" after the
   fact, where metrics only say how many.  It is sampled so a loaded
   server does not turn its disk into the bottleneck: the decision is
   head-based — a request carrying a trace context uses the context's
   [sampled] bit (decided once, at the edge, and carried to every shard
   the request touches, so a sampled request journals everywhere or
   nowhere), and a context-free request falls back to a local
   1-in-[sample_every] counter. *)

type t = {
  path : string;
  sample_every : int;
  max_bytes : int;
  mutex : Mutex.t;
  mutable oc : out_channel;
  mutable written : int; (* lines written since open/create *)
  mutable seq : int; (* context-free requests seen, for fallback sampling *)
}

let create ?(sample_every = 16) ?(max_bytes = 8 * 1024 * 1024) path =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  in
  {
    path;
    sample_every = (if sample_every < 1 then 1 else sample_every);
    max_bytes;
    mutex = Mutex.create ();
    oc;
    written = 0;
    seq = 0;
  }

let sampled t ~ctx =
  match (ctx : Obs.Span.ctx option) with
  | Some c -> c.sampled
  | None ->
      Mutex.lock t.mutex;
      let n = t.seq in
      t.seq <- n + 1;
      Mutex.unlock t.mutex;
      n mod t.sample_every = 0

(* Rotation keeps exactly one predecessor: path -> path.1.  Two files
   bound the disk to ~2 * max_bytes, and the pair is enough to reconstruct
   a recent incident. *)
let rotate_locked t =
  close_out t.oc;
  (try Sys.rename t.path (t.path ^ ".1") with Sys_error _ -> ());
  t.oc <- open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 t.path

let record t json =
  let line = Json.to_string json in
  Mutex.lock t.mutex;
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  t.written <- t.written + 1;
  if t.max_bytes > 0 && pos_out t.oc > t.max_bytes then rotate_locked t;
  Mutex.unlock t.mutex

let written t =
  Mutex.lock t.mutex;
  let n = t.written in
  Mutex.unlock t.mutex;
  n

let close t =
  Mutex.lock t.mutex;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.mutex
