(** Blocking client for the {!Server} protocol — used by
    [contention query] and by the integration tests, so the wire format is
    exercised end-to-end from both sides.

    One request/reply round-trip per call; replies are decoded into the
    {!Protocol} payload types.  Transport failures surface as
    [Error "transport: …"]; protocol-level failures carry the server's
    message.  The first connect sets [SIGPIPE] to ignore, so a peer that
    hangs up mid-write yields [Error "transport: connection closed by
    peer"] instead of killing the process. *)

type t

val connect : ?host:string -> ?timeout:float -> port:int -> unit -> (t, string) result
(** TCP to [host] (default 127.0.0.1).  [timeout] (seconds) bounds the
    connect {e and} every subsequent read/write on the connection
    ([SO_RCVTIMEO]/[SO_SNDTIMEO]); an expired deadline surfaces as
    [Error "transport: timeout"].  Omitted = block forever, as before. *)

val connect_unix : ?timeout:float -> string -> (t, string) result
(** Unix-domain socket at the given path; [timeout] as in {!connect}. *)

val close : t -> unit

val request : t -> Json.t -> (Json.t, string) result
(** Raw round-trip: send one frame, read one frame, unwrap the ok/error
    envelope.  A shed verdict maps to [Error "shed: …"]; use
    {!request_classified} to tell sheds from errors.  The typed helpers
    below are built on this. *)

val request_classified : t -> Json.t -> (Protocol.reply, string) result
(** Like {!request} but returns the classified envelope, keeping the shed
    verdict distinct — what the cluster router and load generator need to
    count sheds without string-matching error messages.  [Error] is
    reserved for transport failures. *)

val ping : t -> (unit, string) result
val upload : t -> payload:string -> (Protocol.upload_reply, string) result

val estimate :
  t ->
  digest:string ->
  ?usecase:string list ->
  estimator:Contention.Analysis.estimator ->
  unit ->
  (Protocol.estimate_reply, string) result

val explain :
  t ->
  digest:string ->
  ?usecase:string list ->
  estimator:Contention.Analysis.estimator ->
  unit ->
  (Contention.Explain.t, string) result
(** The provenance record behind the corresponding {!estimate} — every
    number in it is bit-identical to the served rows. *)

val cache_put :
  t ->
  digest:string ->
  mask:int ->
  estimator:string ->
  rows:Protocol.estimate_row list ->
  (unit, string) result
(** Install precomputed estimate rows into the server's cache — the
    replication half of hot-entry forwarding (see {!Server.start}'s
    [on_hot]). *)

val admit :
  t ->
  ?session:string ->
  ?confidence:float ->
  ?margin_method:Contention.Margin.method_ ->
  digest:string ->
  app:string ->
  min_throughput:float ->
  unit ->
  (Protocol.verdict, string) result
(** With [?confidence], the admit reply's verdict carries a
    {!Contention.Margin.t} confidence interval around the candidate's
    contended period ([?margin_method] picks the z-score or
    empirical-quantile variant; z-score is the default). *)

val release :
  t -> ?session:string -> app:string -> unit -> (unit, string) result

val stats : t -> (Protocol.stats_reply, string) result

val metrics : t -> (Protocol.metrics_reply, string) result
(** The daemon's Prometheus exposition — scrape over the existing wire. *)

val shutdown : t -> (unit, string) result
(** Ask the daemon to stop; the reply arrives before it does. *)
