(** Blocking client for the {!Server} protocol — used by
    [contention query] and by the integration tests, so the wire format is
    exercised end-to-end from both sides.

    One request/reply round-trip per call; replies are decoded into the
    {!Protocol} payload types.  Transport failures surface as
    [Error "transport: …"]; protocol-level failures carry the server's
    message. *)

type t

val connect : ?host:string -> port:int -> unit -> (t, string) result
(** TCP to [host] (default 127.0.0.1). *)

val connect_unix : string -> (t, string) result
(** Unix-domain socket at the given path. *)

val close : t -> unit

val request : t -> Json.t -> (Json.t, string) result
(** Raw round-trip: send one frame, read one frame, unwrap the ok/error
    envelope.  The typed helpers below are built on this. *)

val ping : t -> (unit, string) result
val upload : t -> payload:string -> (Protocol.upload_reply, string) result

val estimate :
  t ->
  digest:string ->
  ?usecase:string list ->
  estimator:Contention.Analysis.estimator ->
  unit ->
  (Protocol.estimate_reply, string) result

val admit :
  t ->
  ?session:string ->
  digest:string ->
  app:string ->
  min_throughput:float ->
  unit ->
  (Protocol.verdict, string) result

val release :
  t -> ?session:string -> app:string -> unit -> (unit, string) result

val stats : t -> (Protocol.stats_reply, string) result

val metrics : t -> (Protocol.metrics_reply, string) result
(** The daemon's Prometheus exposition — scrape over the existing wire. *)

val shutdown : t -> (unit, string) result
(** Ask the daemon to stop; the reply arrives before it does. *)
