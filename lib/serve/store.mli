(** Content-addressed workload store.

    A workload's address is the MD5 digest (hex) of its canonical
    {!Exp.Workload.to_string} serialization, so re-uploading the same
    workload — or a textually different payload that parses to the same
    canonical form — lands on the same entry and the same cache keys.
    Thread-safe: worker domains share one store. *)

type t

val create : unit -> t

val add : t -> Exp.Workload.t -> string
(** Store (or re-reference) the workload; returns its digest. *)

val find : t -> string -> Exp.Workload.t option
val count : t -> int

val digest_of : Exp.Workload.t -> string
(** The address {!add} would file the workload under. *)
