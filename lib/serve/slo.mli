(** Rolling latency-SLO burn-rate accounting.

    The server defines one service-level objective — "a request completes
    within [objective_ms], [target] of the time" — and this module tracks
    how fast the error budget (the allowed [1 - target] fraction of slow
    or shed requests) is being spent, over two trailing windows in the
    style of multi-window burn-rate alerting: a fast 1-minute window that
    reacts to incidents and a slow 1-hour window that ignores blips.

    Burn rate reads as a multiple of sustainable spend: [1.0] consumes the
    budget exactly as fast as it accrues, [> 1.0] is on track to violate
    the SLO, [0.] is a clean (or empty) window.

    Implementation: 3600 per-second ring buckets, lazily invalidated by an
    absolute-second stamp — no sweeper thread, O(1) record, O(3600) read.
    Thread-safe. *)

type t

val create : ?now_s:(unit -> int) -> objective_ms:float -> target:float -> unit -> t
(** [now_s] (default wall-clock seconds) is injectable so tests can drive
    the windows deterministically.  [target] is clamped away from [1.]
    only in the burn computation (budget floor [1e-9]), never stored
    modified. *)

val record : t -> latency_s:float -> unit
(** Count one finished request; it burns budget iff
    [latency_s *. 1000. > objective_ms]. *)

val record_bad : t -> unit
(** Count one request as burning budget regardless of latency — sheds and
    transport-level failures never met the objective by definition. *)

type snapshot = {
  objective_ms : float;
  target : float;
  burn_1m : float;
  burn_1h : float;
}

val snapshot : t -> snapshot
