(** A bounded least-recently-used cache, thread-safe.

    The daemon keys it by [(workload digest, use-case mask, estimator name)]
    so a repeated estimate is an O(1) table lookup instead of an analysis
    run.  Hit/miss counters feed the [stats] command. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used; counts a hit or a miss. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or refresh; evicts the least-recently-used entry when full. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
