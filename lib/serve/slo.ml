(* Rolling latency-SLO accounting over per-second ring buckets.

   3600 buckets cover the longest window (1 h).  Each bucket carries the
   absolute second it was last written; a stale bucket is reset lazily on
   the next write and skipped by reads, so there is no sweeper thread and
   no wipe loop on the hot path.  All counters live under one mutex —
   recording is two integer increments, far off the serve critical path's
   scale. *)

type t = {
  objective_ms : float;
  target : float;
  now_s : unit -> int;
  mutex : Mutex.t;
  total : int array; (* requests finished in that second *)
  bad : int array; (* of those, over-objective or shed *)
  stamp : int array; (* absolute second the bucket belongs to *)
}

let buckets = 3600

let default_now () = int_of_float (Unix.gettimeofday ())

let create ?(now_s = default_now) ~objective_ms ~target () =
  {
    objective_ms;
    target;
    now_s;
    mutex = Mutex.create ();
    total = Array.make buckets 0;
    bad = Array.make buckets 0;
    stamp = Array.make buckets (-1);
  }

let touch t sec =
  let idx = sec mod buckets in
  if t.stamp.(idx) <> sec then begin
    t.stamp.(idx) <- sec;
    t.total.(idx) <- 0;
    t.bad.(idx) <- 0
  end;
  idx

let record t ~latency_s =
  let sec = t.now_s () in
  Mutex.lock t.mutex;
  let idx = touch t sec in
  t.total.(idx) <- t.total.(idx) + 1;
  if latency_s *. 1000. > t.objective_ms then t.bad.(idx) <- t.bad.(idx) + 1;
  Mutex.unlock t.mutex

let record_bad t =
  let sec = t.now_s () in
  Mutex.lock t.mutex;
  let idx = touch t sec in
  t.total.(idx) <- t.total.(idx) + 1;
  t.bad.(idx) <- t.bad.(idx) + 1;
  Mutex.unlock t.mutex

(* Burn rate over the trailing [window] seconds ending now: the fraction
   of requests out of objective, divided by the error budget (1 - target).
   1.0 means the budget is being spent exactly as fast as it accrues;
   above 1.0 the objective is being missed.  An empty window burns 0. *)
let burn_locked t ~window ~sec =
  let total = ref 0 and bad = ref 0 in
  for i = 0 to buckets - 1 do
    let s = t.stamp.(i) in
    if s > sec - window && s <= sec then begin
      total := !total + t.total.(i);
      bad := !bad + t.bad.(i)
    end
  done;
  if !total = 0 then 0.
  else
    let budget = Float.max (1. -. t.target) 1e-9 in
    float_of_int !bad /. float_of_int !total /. budget

type snapshot = {
  objective_ms : float;
  target : float;
  burn_1m : float;
  burn_1h : float;
}

let snapshot t =
  let sec = t.now_s () in
  Mutex.lock t.mutex;
  let burn_1m = burn_locked t ~window:60 ~sec in
  let burn_1h = burn_locked t ~window:3600 ~sec in
  Mutex.unlock t.mutex;
  { objective_ms = t.objective_ms; target = t.target; burn_1m; burn_1h }
