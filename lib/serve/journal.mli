(** Sampled request journal: per-request JSONL records on disk.

    Where metrics aggregate, the journal itemises: each line is one served
    request with its trace id, command, workload digest, shard, queue
    depth at accept, cache outcome, admission verdict and latency — enough
    to reconstruct what one request experienced, and to join it against a
    merged trace by trace id.

    Sampling is head-based.  A request carrying a trace context journals
    iff the context's [sampled] bit is set — that bit was decided once
    where the trace started, so one request is journalled on {e every}
    shard it touches or on none, and cross-shard joins never dangle.
    Context-free requests fall back to a local 1-in-[sample_every]
    counter.

    The file is size-rotated: when it exceeds [max_bytes] it is renamed to
    [path ^ ".1"] (replacing any previous rotation) and a fresh file is
    started, bounding disk use to roughly twice [max_bytes].

    Thread-safe; writes are line-atomic under an internal mutex. *)

type t

val create : ?sample_every:int -> ?max_bytes:int -> string -> t
(** Opens [path] for append (creating it if needed).  [sample_every]
    defaults to 16 (clamped to [>= 1]); [max_bytes] defaults to 8 MiB,
    [<= 0] disables rotation.
    @raise Sys_error when the path cannot be opened. *)

val sampled : t -> ctx:Obs.Span.ctx option -> bool
(** Whether this request should be journalled (see sampling rules above).
    Call once per request and reuse the answer. *)

val record : t -> Json.t -> unit
(** Append one record as a single line, flush, rotate if over budget. *)

val written : t -> int
(** Lines written since {!create} (not reset by rotation). *)

val close : t -> unit
(** Flush and close.  Further {!record} calls raise. *)
