(** The daemon's wire protocol.

    One request per line, one reply per line, both JSON objects.  A request
    carries a ["cmd"] field naming the command plus command-specific fields;
    a reply is [{"ok": <payload>}] on success, [{"error": "<message>"}] on
    failure, or [{"shed": {"queue_depth": N}}] when the server's bounded
    accept queue is full and the connection is refused under load (the
    backpressure verdict — see {!Server}).  Protocol errors (malformed JSON,
    unknown command, missing fields, unknown digests…) are {e replies},
    never connection drops — a misbehaving client must not crash or stall
    the server.

    Both the server's dispatcher and {!Client} are written against this
    module, so the codecs are exercised from both ends in the tests. *)

type estimate_row = {
  app : string;
  period : float;
  isolation_period : float;
  throughput : float;
}

type request =
  | Ping
  | Upload of { payload : string }
      (** A workload in the {!Exp.Workload.save} text format. *)
  | Estimate of {
      digest : string;  (** Content digest returned by upload. *)
      usecase : string list option;  (** App names; [None] = all apps. *)
      estimator : Contention.Analysis.estimator;
    }
  | Admit of {
      session : string;
      digest : string;
      app : string;
      min_throughput : float;
      confidence : float option;
          (** Requested confidence level for the admission margin; [None]
              means a plain point estimate (the pre-margin wire shape). *)
      margin_method : Contention.Margin.method_ option;
          (** Margin variant; defaults to z-score when only a confidence is
              given. *)
    }
  | Release of { session : string; app : string }
  | Cache_put of {
      digest : string;  (** Content digest of the (uploaded) workload. *)
      mask : int;  (** Use-case mask, the cache key's second component. *)
      estimator : string;  (** Canonical estimator name. *)
      rows : estimate_row list;
    }
      (** Peer-to-peer cache replication: install precomputed estimate rows
          into the receiving server's estimate cache.  The cluster router
          forwards hot entries this way so a failover peer can answer from
          cache.  The digest must name a workload the receiver has (upload
          is broadcast in cluster mode), and the estimator must be a valid
          {!estimator_of_string} name — the key is re-canonicalised so a
          forwarded entry actually hits. *)
  | Explain of {
      digest : string;
      usecase : string list option;
      estimator : Contention.Analysis.estimator;
    }
      (** Like [Estimate], but the reply is the full provenance record
          ({!Contention.Explain.t}) the estimate derives from — every
          recorded number is bit-identical to the served estimate. *)
  | Stats
  | Metrics
      (** Prometheus exposition of the server's {!Obs.Metric} registry, so
          an operator can scrape over the existing wire. *)
  | Shutdown

val default_session : string
(** ["default"] — used when a client does not name a session. *)

val estimator_of_string :
  string -> (Contention.Analysis.estimator, string) result
(** Accepts the canonical names of {!Contention.Analysis.estimator_name}
    ("worst-case", "second-order", "fourth-order", "order-M",
    "composability", "exact"), the short aliases "wc", "o2", "o4", "comp",
    and a bare integer M >= 2 for [Order M]. *)

val estimator_to_string : Contention.Analysis.estimator -> string
(** [Contention.Analysis.estimator_name] — the canonical wire name, also
    the estimator component of the cache key. *)

val request_to_json : ?trace:Obs.Span.ctx -> request -> Json.t
(** With [?trace], appends a ["trace"] envelope member
    ([{"id": "<16 hex>", "parent": "<16 hex>", "sampled": bool}]) so the
    receiving server re-establishes the caller's trace context.  Servers
    that predate the field ignore it ({!request_of_json} skips unknown
    members), so mixed-version clusters interoperate. *)

val request_of_json : Json.t -> (request, string) result

val trace_to_json : Obs.Span.ctx -> Json.t

val trace_of_request : Json.t -> Obs.Span.ctx option
(** The request envelope's trace context, if present and well-formed.
    Total and lenient: a malformed ["trace"] member (wrong type, bad hex,
    zero id) yields [None] — a broken trace header must never reject an
    otherwise valid request.  [sampled] defaults to [true]. *)

(** {1 Reply payloads} *)

type upload_reply = { digest : string; apps : string list; procs : int }

type estimate_reply = {
  cached : bool;  (** Whether the answer came from the estimate cache. *)
  estimator : string;  (** Canonical estimator name. *)
  rows : estimate_row list;
}

type verdict =
  | Admitted of { throughput : float; margin : Contention.Margin.t option }
      (** The candidate's estimated throughput under the new mix, plus the
          confidence interval around its served period when the request
          asked for one. *)
  | Rejected_candidate of { estimated : float; required : float }
  | Rejected_victim of { victim : string; estimated : float; required : float }

type audit_stats = {
  audit_sample : int;  (** 1-in-N head sampling rate; [0] = auditing off. *)
  audit_submitted : int;  (** Estimates handed to the shadow auditor. *)
  audit_completed : int;  (** Replays finished (each covers every row). *)
  audit_dropped : int;  (** Submissions refused: audit queue full. *)
  audit_failed : int;  (** Replays that raised or produced no period. *)
  audit_mean_err : float;  (** Running mean signed relative error. *)
  audit_max_abs_err : float;  (** Largest absolute relative error seen. *)
  audit_alarms : int;  (** Page–Hinkley drift alarms raised since start. *)
  audit_drifting : string list;  (** Estimators currently flagged. *)
  audit_margin_checked : int;
      (** Served margins replayed against the simulator so far. *)
  audit_margin_missed : int;
      (** Replays whose observed period fell outside the served margin. *)
}

val no_audit : audit_stats
(** All-zero: what a pre-audit (or audit-disabled) server reports. *)

type stats_reply = {
  uptime_s : float;
  connections : int;
  requests : (string * int) list;  (** Per command, served so far. *)
  requests_total : int;
  workloads : int;
  sessions : int;
  cache_entries : int;
  cache_capacity : int;
  cache_hits : int;
  cache_misses : int;
  active_connections : int;  (** Connections being served right now. *)
  workers : int;  (** Worker domains — the pool's capacity. *)
  queue_capacity : int;  (** Accept-queue bound; 0 = unbounded. *)
  shed : int;  (** Connections refused with a shed verdict so far. *)
  admitted : int;
  rejected_candidate : int;
  rejected_victim : int;
  released : int;
  margins_served : int;  (** Admit replies that carried a margin. *)
  margin_mean_rel_width : float;
      (** Running mean of served margins' relative width ([width/period]). *)
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p90_us : float;
  latency_p99_us : float;
  latency_max_us : float;
  latency_samples : int;
  slo_objective_ms : float;  (** Latency objective requests are judged by. *)
  slo_target : float;  (** Availability target, e.g. [0.999]. *)
  slo_burn_1m : float;  (** Error-budget burn rate over the last minute. *)
  slo_burn_1h : float;  (** Burn rate over the last hour (see {!Slo}). *)
  audit : audit_stats;  (** Shadow-audit accuracy accounting ({!Audit}). *)
}

val cache_hit_rate : stats_reply -> float
(** Hits over lookups, [0.] before any lookup. *)

val pool_occupancy : stats_reply -> float
(** Active connections over worker domains, [0.] when workers is 0. *)

type metrics_reply = { prometheus : string }
(** The Prometheus text payload ({!Obs.Prometheus.expose}). *)

val upload_reply_to_json : upload_reply -> Json.t
val upload_reply_of_json : Json.t -> (upload_reply, string) result
val estimate_reply_to_json : estimate_reply -> Json.t
val estimate_reply_of_json : Json.t -> (estimate_reply, string) result

val json_of_explain : Contention.Explain.json -> Json.t
(** Structural copy between the core provenance AST and the wire codec. *)

val explain_json_of_json : Json.t -> Contention.Explain.json

val explain_reply_to_json : Contention.Explain.t -> Json.t

val explain_reply_of_json : Json.t -> (Contention.Explain.t, string) result
val margin_to_json : Contention.Margin.t -> Json.t
val margin_of_json : Json.t -> (Contention.Margin.t, string) result
(** Strict: a present-but-malformed margin object is an error (the lenient
    case — an {e absent} margin — is handled by {!verdict_of_json}). *)

val verdict_to_json : verdict -> Json.t
val verdict_of_json : Json.t -> (verdict, string) result
val stats_reply_to_json : stats_reply -> Json.t
val stats_reply_of_json : Json.t -> (stats_reply, string) result
val metrics_reply_to_json : metrics_reply -> Json.t
val metrics_reply_of_json : Json.t -> (metrics_reply, string) result

(** {1 Reply envelope} *)

val ok : Json.t -> Json.t
(** [{"ok": payload}] *)

val error : string -> Json.t
(** [{"error": message}] *)

val shed : queue_depth:int -> Json.t
(** [{"shed": {"queue_depth": N}}] — the backpressure verdict: the server's
    bounded accept queue was full, the request was not served, and the
    client should back off and retry (possibly against another shard). *)

type reply =
  | Reply_ok of Json.t
  | Reply_error of string
  | Reply_shed of { queue_depth : int }

val classify_reply : Json.t -> reply
(** Total classification of a reply envelope; a frame that is none of the
    three cases classifies as [Reply_error]. *)

val unwrap_reply : Json.t -> (Json.t, string) result
(** [Ok payload] for an ok envelope, [Error msg] otherwise; a shed verdict
    maps to [Error "shed: …"] so shed-unaware callers degrade cleanly
    (use {!classify_reply} to tell sheds apart). *)
