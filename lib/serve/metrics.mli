(** Server-side counters and request-latency statistics.

    Latencies are kept in a fixed-size reservoir of the most recent samples
    (large enough for stable p50/p90/p99, bounded so a long-lived daemon
    cannot grow without limit); mean and max are tracked over {e all}
    requests.  Percentiles come from {!Repro_stats.Stats.percentile}.
    Thread-safe. *)

type t

val create : unit -> t

val incr_connections : t -> unit

val record : t -> cmd:string -> latency_s:float -> unit
(** One served request: bumps the per-command counter and folds the latency
    into the reservoir and the running mean/max. *)

val record_admission_verdict : t -> Protocol.verdict -> unit
(** Bumps the verdict counter; an [Admitted] verdict carrying a margin also
    feeds the margins-served count and the relative-width running mean. *)

val incr_released : t -> unit

val incr_shed : t -> unit
(** A connection was refused with a shed verdict (bounded queue full). *)

type snapshot = {
  uptime_s : float;
  connections : int;
  requests : (string * int) list;  (** Per command, sorted by name. *)
  requests_total : int;
  admitted : int;
  rejected_candidate : int;
  rejected_victim : int;
  released : int;
  shed : int;  (** Connections refused with a shed verdict. *)
  margins_served : int;  (** Admit replies that carried a margin. *)
  margin_mean_rel_width : float;
      (** Mean relative width ([width/period]) of the served margins. *)
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p90_us : float;
  latency_p99_us : float;
  latency_max_us : float;
  latency_samples : int;  (** Total requests timed (not reservoir size). *)
}

val snapshot : t -> snapshot
(** Latency fields are [0.] before the first request. *)
