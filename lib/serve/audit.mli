(** Online shadow-audit of served estimates.

    The daemon answers estimate requests analytically (Eq. 4/5/9 — that is
    the point of the paper), which leaves a production question open: {e how
    wrong is the estimator right now?}  The auditor answers it continuously:
    a head-sampled fraction of served estimates is replayed through the
    discrete-event simulator ({!Desim.Engine.run}) on a dedicated background
    domain, and the signed relative period error of every application row is
    recorded into per-estimator calibration histograms plus a Page–Hinkley
    drift detector — the observability analogue of the offline [check]
    oracles.

    The serve path only pays a queue push: replays never run on worker
    domains, and a full audit queue {e drops} the sample (counted) rather
    than blocking a request.  Audit outcomes join the request journal under
    the originating trace id, and the replay spans re-establish the
    originating context, so a merged trace shows the audit work hanging off
    the request that triggered it. *)

(** Two-sided Page–Hinkley change detector over a stream of signed errors.

    Alarms when the cumulative deviation from the running mean exceeds
    [lambda] in either direction (with slack [delta] per step); on alarm the
    cumulative state resets so detection restarts, but the [flagged] bit
    stays up — drift is an operator-attention condition, not a blip. *)
module Drift : sig
  type t

  val create : ?delta:float -> ?lambda:float -> ?min_samples:int -> unit -> t
  (** Defaults: [delta = 0.005], [lambda = 0.25], [min_samples = 20]
      (no alarm before [min_samples] observations). *)

  val observe : t -> float -> bool
  (** Feed one signed error; [true] iff this observation raised an alarm. *)

  val flagged : t -> bool
  (** Whether any alarm has fired so far (sticky). *)

  val alarms : t -> int
end

type config = {
  sample_every : int;  (** Audit 1 in [N] estimate requests (head count). *)
  horizon : float;  (** Simulation horizon of the replay. *)
  queue_capacity : int;  (** Pending replays beyond this are dropped. *)
  drift_delta : float;
  drift_lambda : float;
  drift_min_samples : int;
}

val default_config : config
(** [sample_every = 64], [horizon = 50_000.], [queue_capacity = 64], and
    the {!Drift.create} defaults.  The horizon is deliberately a tenth of
    the paper's 500k-cycle evaluation setting: the audit wants a cheap,
    continuous accuracy signal, not a publication-grade data point. *)

type task = {
  digest : string;
  workload : Exp.Workload.t;
  mask : Contention.Usecase.t;
  estimator : string;  (** Canonical estimator name (the cache-key form). *)
  rows : Protocol.estimate_row list;
      (** The served rows, in {!Contention.Usecase.to_list} order — the
          same order {!Desim.Engine.run} reports results in. *)
  ctx : Obs.Span.ctx option;  (** Originating trace context, if any. *)
}

type margin_task = {
  m_digest : string;
  m_workload : Exp.Workload.t;
  m_mask : Contention.Usecase.t;
      (** The admitted population of the session, candidate included —
          the mix the margin's confidence claim is about. *)
  m_app : string;  (** The application whose margin was served. *)
  m_margin : Contention.Margin.t;
  m_ctx : Obs.Span.ctx option;
}

type t

val create :
  ?config:config ->
  registry:Obs.Metric.registry ->
  ?journal:Journal.t ->
  ?shard:string ->
  unit ->
  t
(** Spawns the background replay domain.  Metrics land in [registry]:
    [contention_serve_audit_total]/[_error] (histogram)/[_drift] (gauge)/
    [_alarms_total] per estimator label, plus [_dropped_total] and
    [_failed_total]. *)

val sampled : t -> bool
(** Head-based 1-in-[sample_every] counter; call once per estimate served
    and submit iff [true]. *)

val submit : t -> task -> bool
(** Enqueue a replay; [false] (and a drop count) when the queue is full or
    the auditor is stopping.  Never blocks. *)

val submit_margin : t -> margin_task -> bool
(** Enqueue a margin coverage check: the population is simulated and the
    application's observed average period tested against the served bounds.
    One replay is one Bernoulli trial at the stated confidence — the
    aggregate miss rate ([margin_missed / margin_checked], exposed in
    {!stats} and as [contention_serve_audit_margin_total] /
    [_margin_missed_total]) is the signal.  Same queue and drop policy as
    {!submit}. *)

val stats : t -> Protocol.audit_stats
(** Snapshot for the [stats] reply. *)

val drain : t -> unit
(** Block until the queue is empty and no replay is in flight — test and
    shutdown aid; new submissions may still arrive after it returns. *)

val stop : t -> unit
(** Finish the queued replays, then join the domain.  Idempotent. *)
