type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if not (Float.is_finite x) then
    invalid_arg "Serve.Json.to_string: non-finite number";
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else
    (* 17 significant digits reparse to the identical IEEE double. *)
    Buffer.add_string buf (Printf.sprintf "%.17g" x)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> add_num buf x
    | Str s -> add_escaped buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of string * int

let utf8_add buf cp =
  let add b = Buffer.add_char buf (Char.chr b) in
  if cp < 0x80 then add cp
  else if cp < 0x800 then begin
    add (0xC0 lor (cp lsr 6));
    add (0x80 lor (cp land 0x3F))
  end
  else if cp < 0x10000 then begin
    add (0xE0 lor (cp lsr 12));
    add (0x80 lor ((cp lsr 6) land 0x3F));
    add (0x80 lor (cp land 0x3F))
  end
  else begin
    add (0xF0 lor (cp lsr 18));
    add (0x80 lor ((cp lsr 12) land 0x3F));
    add (0x80 lor ((cp lsr 6) land 0x3F));
    add (0x80 lor (cp land 0x3F))
  end

let of_string ?(max_depth = 512) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
          | '"' -> incr pos; Buffer.add_char buf '"'
          | '\\' -> incr pos; Buffer.add_char buf '\\'
          | '/' -> incr pos; Buffer.add_char buf '/'
          | 'b' -> incr pos; Buffer.add_char buf '\b'
          | 'f' -> incr pos; Buffer.add_char buf '\012'
          | 'n' -> incr pos; Buffer.add_char buf '\n'
          | 'r' -> incr pos; Buffer.add_char buf '\r'
          | 't' -> incr pos; Buffer.add_char buf '\t'
          | 'u' ->
              incr pos;
              let cp = hex4 () in
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* High surrogate: a low surrogate must follow. *)
                if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                then fail "unpaired high surrogate";
                pos := !pos + 2;
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
                utf8_add buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                fail "unpaired low surrogate"
              else utf8_add buf cp
          | _ -> fail "invalid escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          incr pos;
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = d0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin incr pos; digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x when Float.is_finite x -> Num x
    | Some _ -> fail "number out of range"  (* e.g. 1e999 overflows *)
    | None -> fail "malformed number"
  in
  let keyword () =
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "invalid literal"
    in
    match peek () with
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | _ -> lit "null" Null
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ((k, v) :: acc)
            | Some '}' -> incr pos; List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Arr [] end
        else begin
          let rec elements acc =
            let v = value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements (v :: acc)
            | Some ']' -> incr pos; List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (string_lit ())
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let get_str = function Str s -> Some s | _ -> None
let get_num = function Num x -> Some x | _ -> None

let get_int = function
  | Num x when Float.is_integer x && Float.abs x <= 1e15 -> Some (int_of_float x)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_arr = function Arr xs -> Some xs | _ -> None
let get_obj = function Obj kvs -> Some kvs | _ -> None
