type t = Tcp of { host : string; port : int } | Unix_sock of string

let to_string = function
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port
  | Unix_sock path -> "unix:" ^ path

let of_string s =
  let s = String.trim s in
  if s = "" then Error "empty endpoint"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "unix: endpoint needs a socket path"
    else Ok (Unix_sock path)
  end
  else
    match String.rindex_opt s ':' with
    | None ->
        Error
          (Printf.sprintf "%S: expected \"host:port\" or \"unix:PATH\"" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp { host; port })
        | Some port -> Error (Printf.sprintf "%d: port out of range" port)
        | None -> Error (Printf.sprintf "%S: malformed port" s))

let ( let* ) = Result.bind

let check_peers endpoints =
  let* () = if endpoints = [] then Error "no peers given" else Ok () in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc e ->
      let* () = acc in
      let key = to_string e in
      if Hashtbl.mem seen key then
        Error (Printf.sprintf "duplicate peer %s" key)
      else begin
        Hashtbl.replace seen key ();
        Ok ()
      end)
    (Ok ()) endpoints
  |> Result.map (fun () -> endpoints)

let parse_all specs =
  let* endpoints =
    List.fold_right
      (fun spec acc ->
        let* acc = acc in
        let* e = of_string spec in
        Ok (e :: acc))
      specs (Ok [])
  in
  check_peers endpoints

let parse_list s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> parse_all

let load_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines ->
      lines
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> parse_all
  | exception Sys_error msg -> Error msg

let connect ?timeout = function
  | Tcp { host; port } -> Serve.Client.connect ~host ?timeout ~port ()
  | Unix_sock path -> Serve.Client.connect_unix ?timeout path
