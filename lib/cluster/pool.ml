type t = {
  endpoint : Endpoint.t;
  size : int;
  timeout : float option;
  dial_attempts : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable idle : Serve.Client.t list;
  mutable outstanding : int;  (* checked out + idle *)
  mutable dials : int;
  mutable discarded : int;
  mutable closed : bool;
}

let create ?(size = 8) ?timeout ?(dial_attempts = 4) endpoint =
  if size < 1 then invalid_arg "Cluster.Pool.create: size < 1";
  if dial_attempts < 1 then invalid_arg "Cluster.Pool.create: dial_attempts < 1";
  {
    endpoint;
    size;
    timeout;
    dial_attempts;
    mutex = Mutex.create ();
    cond = Condition.create ();
    idle = [];
    outstanding = 0;
    dials = 0;
    discarded = 0;
    closed = false;
  }

let endpoint t = t.endpoint

let dial t =
  let rec go attempt =
    match Endpoint.connect ?timeout:t.timeout t.endpoint with
    | Ok c -> Ok c
    | Error _ as e when attempt >= t.dial_attempts -> e
    | Error _ ->
        (* 20 ms, 40 ms, 80 ms, … — enough for a restarting shard to come
           back without turning a dead one into a long stall. *)
        Unix.sleepf (0.02 *. Float.of_int (1 lsl (attempt - 1)));
        go (attempt + 1)
  in
  go 1

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let checkout t =
  let action =
    locked t (fun () ->
        let rec wait () =
          if t.closed then `Closed
          else
            match t.idle with
            | c :: rest ->
                t.idle <- rest;
                `Conn c
            | [] ->
                if t.outstanding < t.size then begin
                  (* Reserve the slot before dialing so concurrent checkouts
                     cannot overshoot [size]; the dial itself happens outside
                     the lock. *)
                  t.outstanding <- t.outstanding + 1;
                  t.dials <- t.dials + 1;
                  `Dial
                end
                else begin
                  Condition.wait t.cond t.mutex;
                  wait ()
                end
        in
        wait ())
  in
  match action with
  | `Closed -> Error "pool: closed"
  | `Conn c -> Ok c
  | `Dial -> (
      match dial t with
      | Ok c -> Ok c
      | Error _ as e ->
          locked t (fun () ->
              t.outstanding <- t.outstanding - 1;
              Condition.signal t.cond);
          e)

let checkin t c =
  let keep =
    locked t (fun () ->
        if t.closed then begin
          t.outstanding <- t.outstanding - 1;
          false
        end
        else begin
          t.idle <- c :: t.idle;
          Condition.signal t.cond;
          true
        end)
  in
  if not keep then Serve.Client.close c

let discard t c =
  Serve.Client.close c;
  locked t (fun () ->
      t.outstanding <- t.outstanding - 1;
      t.discarded <- t.discarded + 1;
      Condition.signal t.cond)

let is_transport_error msg =
  String.length msg >= 10 && String.sub msg 0 10 = "transport:"

let ( let* ) = Result.bind

let with_client t f =
  let* c = checkout t in
  let run c =
    match f c with
    | v -> v
    | exception e ->
        discard t c;
        raise e
  in
  match run c with
  | Error msg when is_transport_error msg -> (
      discard t c;
      (* The connection may have idled past a server restart: one retry on
         a fresh dial, then the error stands. *)
      let* c = checkout t in
      match run c with
      | Error msg as e when is_transport_error msg ->
          discard t c;
          e
      | v ->
          checkin t c;
          v)
  | v ->
      checkin t c;
      v

let reconnects t = locked t (fun () -> t.discarded)

let close t =
  let idle =
    locked t (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          let idle = t.idle in
          t.idle <- [];
          t.outstanding <- t.outstanding - List.length idle;
          Condition.broadcast t.cond;
          idle
        end)
  in
  List.iter Serve.Client.close idle
