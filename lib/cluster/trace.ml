(* Load a per-process Chrome trace file (written by {!Obs.Trace.write_file})
   back into an {!Obs.Trace.process} for cross-process merging.

   Parsing reuses the wire protocol's JSON codec — obs itself only emits
   traces, and teaching it to parse would duplicate {!Serve.Json}.  The
   loader is lenient about events it does not recognise (counter events, a
   future phase) and strict only about what the merge needs: timestamps,
   names and the id args. *)

module Json = Serve.Json

let ( let* ) = Result.bind

let str_member name json = Option.bind (Json.member name json) Json.get_str
let num_member name json = Option.bind (Json.member name json) Json.get_num

(* Microsecond float (the "ts"/"dur" fields, emitted as "12.345") back to
   integer nanoseconds. *)
let ns_of_us us = Int64.of_float (Float.round (us *. 1000.))

let span_of_event ~epoch_ns json : Obs.Span.t option =
  match (str_member "name" json, num_member "ts" json, num_member "dur" json) with
  | Some name, Some ts, Some dur ->
      let args =
        match Option.bind (Json.member "args" json) Json.get_obj with
        | None -> []
        | Some members ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.get_str v))
              members
      in
      let id key =
        match List.assoc_opt key args with
        | None -> 0L
        | Some hex -> Option.value ~default:0L (Obs.Span.id_of_hex hex)
      in
      let plain_args =
        List.filter
          (fun (k, _) -> k <> "trace" && k <> "span" && k <> "parent")
          args
      in
      Some
        {
          Obs.Span.name;
          args = plain_args;
          ts_ns = Int64.add epoch_ns (ns_of_us ts);
          dur_ns = ns_of_us dur;
          domain =
            (match num_member "tid" json with
            | Some tid -> int_of_float tid
            | None -> 0);
          trace_id = id "trace";
          span_id = id "span";
          parent_id = id "parent";
        }
  | _ -> None

let of_json ?name json : (Obs.Trace.process, string) result =
  let* events =
    match Option.bind (Json.member "traceEvents" json) Json.get_arr with
    | Some evs -> Ok evs
    | None -> Error "not a trace file: no traceEvents array"
  in
  let p_name = ref (Option.value ~default:"contention" name) in
  let anchor = ref None in
  let epoch = ref 0L in
  (* First pass: metadata.  The clock_sync epoch is what turns the file's
     rebased microseconds back into absolute monotonic nanoseconds, which
     is the timescale the anchor's mono_ns lives on. *)
  List.iter
    (fun ev ->
      match (str_member "ph" ev, str_member "name" ev) with
      | Some "M", Some "process_name" ->
          if name = None then
            Option.iter
              (fun n -> p_name := n)
              (Option.bind (Json.member "args" ev) (str_member "name"))
      | Some "M", Some "clock_sync" -> (
          match Json.member "args" ev with
          | None -> ()
          | Some args -> (
              let i64 key =
                Option.bind (str_member key args) Int64.of_string_opt
              in
              match (i64 "wall_ns", i64 "mono_ns", i64 "epoch_ns") with
              | Some wall_ns, Some mono_ns, Some e ->
                  anchor := Some { Obs.Trace.wall_ns; mono_ns };
                  epoch := e
              | _ -> ()))
      | _ -> ())
    events;
  let spans =
    List.filter_map
      (fun ev ->
        match str_member "ph" ev with
        | Some "X" -> span_of_event ~epoch_ns:!epoch ev
        | _ -> None)
      events
  in
  Ok { Obs.Trace.p_name = !p_name; p_anchor = !anchor; p_spans = spans }

let load ?name path : (Obs.Trace.process, string) result =
  let* text =
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> Ok text
    | exception Sys_error msg -> Error msg
  in
  let* json =
    Result.map_error
      (fun e -> Printf.sprintf "%s: %s" path e)
      (Json.of_string text)
  in
  of_json ?name json
