module Rng = Sdfgen.Rng

type arrival = Poisson | Uniform

type config = {
  rate : float;
  duration_s : float;
  concurrency : int;
  arrival : arrival;
  skew : float;
  seed : int;
  estimator : Contention.Analysis.estimator;
  trace_sample : int;
}

let default_config =
  {
    rate = 200.;
    duration_s = 5.;
    concurrency = 16;
    arrival = Poisson;
    skew = 1.0;
    seed = 2007;
    estimator = Contention.Analysis.Order 2;
    trace_sample = 0;
  }

type shard_stats = {
  s_ok : int;
  s_shed : int;
  s_errors : int;
  s_p50_ms : float;
  s_p99_ms : float;
}

type progress = {
  elapsed_s : float;
  offered_so_far : int;
  completed : int;
  ok_so_far : int;
  shed_so_far : int;
  errors_so_far : int;
  rolling_p50_ms : float;
  rolling_p99_ms : float;
}

type report = {
  target_rps : float;
  arrival : arrival;
  offered : int;
  ok : int;
  shed : int;
  errors : int;
  wall_s : float;
  achieved_rps : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  per_shard : (string * shard_stats) list;
}

(* Arrival offsets in seconds from the run's start, one per request. *)
let schedule cfg rng =
  let n = Int.max 1 (int_of_float (cfg.rate *. cfg.duration_s)) in
  let times = Array.make n 0. in
  (match cfg.arrival with
  | Uniform ->
      for i = 0 to n - 1 do
        times.(i) <- float_of_int i /. cfg.rate
      done
  | Poisson ->
      (* Exponential gaps via inverse transform; log1p keeps u -> 0 exact. *)
      let t = ref 0. in
      for i = 0 to n - 1 do
        t := !t +. (-.Float.log1p (-.Rng.float rng 1.) /. cfg.rate);
        times.(i) <- !t
      done);
  times

(* Zipf CDF over ranks 0..k-1 with exponent [skew]; request i draws its
   digest by inverting a uniform sample against it. *)
let zipf_cdf ~skew k =
  let weights =
    Array.init k (fun i -> 1. /. Float.pow (float_of_int (i + 1)) skew)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make k 0. in
  let acc = ref 0. in
  for i = 0 to k - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(k - 1) <- 1.;
  cdf

let pick_rank cdf u =
  let n = Array.length cdf in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1)

type accum = {
  mutable a_ok : int;
  mutable a_shed : int;
  mutable a_errors : int;
  mutable a_latencies : float list;  (* seconds, served requests only *)
  a_shards : (string, saccum) Hashtbl.t;  (* outcome/latency per shard *)
}

and saccum = {
  mutable sa_ok : int;
  mutable sa_shed : int;
  mutable sa_errors : int;
  mutable sa_latencies : float list;
}

let saccum_for acc shard =
  match Hashtbl.find_opt acc.a_shards shard with
  | Some s -> s
  | None ->
      let s = { sa_ok = 0; sa_shed = 0; sa_errors = 0; sa_latencies = [] } in
      Hashtbl.add acc.a_shards shard s;
      s

(* How many scheduled arrivals fall at or before [elapsed] — the offered
   count a progress line reports.  [times] is nondecreasing for both
   arrival processes, so a binary search gives the answer. *)
let offered_before times elapsed =
  let n = Array.length times in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if times.(mid) <= elapsed then search (mid + 1) hi else search lo mid
  in
  search 0 n

let run ?(registry = Obs.Metric.default) ?on_progress cfg ~router ~digests =
  if Array.length digests = 0 then
    invalid_arg "Cluster.Loadgen.run: empty working set";
  if cfg.rate <= 0. then invalid_arg "Cluster.Loadgen.run: rate <= 0";
  if cfg.duration_s <= 0. then invalid_arg "Cluster.Loadgen.run: duration <= 0";
  if cfg.concurrency < 1 then invalid_arg "Cluster.Loadgen.run: concurrency < 1";
  let h_latency =
    Obs.Metric.Histogram.v ~registry
      ~help:"Served-request latency from scheduled arrival."
      "contention_loadgen_latency_seconds"
  in
  let count outcome =
    Obs.Metric.Counter.inc
      (Obs.Metric.Counter.v ~registry
         ~help:"Loadgen requests by outcome."
         ~labels:[ ("outcome", outcome) ]
         "contention_loadgen_requests_total")
  in
  let rng = Rng.create cfg.seed in
  let times = schedule cfg (Rng.split rng) in
  let n = Array.length times in
  let cdf = zipf_cdf ~skew:cfg.skew (Array.length digests) in
  let choice_rng = Rng.split rng in
  let choices =
    Array.init n (fun _ -> pick_rank cdf (Rng.float choice_rng 1.))
  in
  let next = Atomic.make 0 in
  let accums =
    Array.init cfg.concurrency (fun _ ->
        {
          a_ok = 0;
          a_shed = 0;
          a_errors = 0;
          a_latencies = [];
          a_shards = Hashtbl.create 4;
        })
  in
  let t0 = Obs.Clock.now_ns () in
  let worker acc =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let target_s = times.(i) in
        let now_s = Obs.Clock.elapsed_s ~since:t0 in
        if target_s > now_s then Unix.sleepf (target_s -. now_s);
        let issue () =
          Obs.Span.with_ ~name:"client.estimate"
            ~args:(fun () -> [ ("request", string_of_int i) ])
            (fun () ->
              Router.estimate_routed router ~digest:digests.(choices.(i))
                ~estimator:cfg.estimator ())
        in
        let outcome, shard =
          (* Every request roots its own trace; the sampled bit (1 in
             [trace_sample]) is the head-based journal decision the shards
             honour.  [trace_sample = 0] disables contexts entirely. *)
          if cfg.trace_sample > 0 then
            Obs.Span.with_context
              (Obs.Span.new_trace ~sampled:(i mod cfg.trace_sample = 0) ())
              issue
          else issue ()
        in
        let latency = Obs.Clock.elapsed_s ~since:t0 -. target_s in
        let sa = saccum_for acc shard in
        (match outcome with
        | Router.Served _ ->
            acc.a_ok <- acc.a_ok + 1;
            acc.a_latencies <- latency :: acc.a_latencies;
            sa.sa_ok <- sa.sa_ok + 1;
            sa.sa_latencies <- latency :: sa.sa_latencies;
            Obs.Metric.Histogram.observe h_latency latency;
            count "ok"
        | Router.Shed _ ->
            acc.a_shed <- acc.a_shed + 1;
            sa.sa_shed <- sa.sa_shed + 1;
            count "shed"
        | Router.Failed _ ->
            acc.a_errors <- acc.a_errors + 1;
            sa.sa_errors <- sa.sa_errors + 1;
            count "error");
        loop ()
      end
    in
    loop ()
  in
  let threads =
    Array.to_list
      (Array.map (fun acc -> Thread.create worker acc) accums)
  in
  (* The optional progress monitor reads the worker accumulators racily:
     the counters are plain ints (a stale read is just a slightly old
     number) and the latency lists are immutable spines, so a snapshot of
     the head pointer is always a valid list. *)
  let done_flag = Atomic.make false in
  let monitor =
    Option.map
      (fun report ->
        Thread.create
          (fun () ->
            while not (Atomic.get done_flag) do
              Unix.sleepf 1.0;
              if not (Atomic.get done_flag) then begin
                let elapsed_s = Obs.Clock.elapsed_s ~since:t0 in
                let ok = Array.fold_left (fun s a -> s + a.a_ok) 0 accums in
                let shed = Array.fold_left (fun s a -> s + a.a_shed) 0 accums in
                let errors =
                  Array.fold_left (fun s a -> s + a.a_errors) 0 accums
                in
                let lats =
                  Array.fold_left
                    (fun l a -> List.rev_append a.a_latencies l)
                    [] accums
                in
                let pct q =
                  if lats = [] then 0.
                  else 1e3 *. Repro_stats.Stats.percentile q lats
                in
                report
                  {
                    elapsed_s;
                    offered_so_far = offered_before times elapsed_s;
                    completed = ok + shed + errors;
                    ok_so_far = ok;
                    shed_so_far = shed;
                    errors_so_far = errors;
                    rolling_p50_ms = pct 50.;
                    rolling_p99_ms = pct 99.;
                  }
              end
            done)
          ())
      on_progress
  in
  List.iter Thread.join threads;
  Atomic.set done_flag true;
  Option.iter Thread.join monitor;
  let wall_s = Obs.Clock.elapsed_s ~since:t0 in
  let ok = Array.fold_left (fun s a -> s + a.a_ok) 0 accums in
  let shed = Array.fold_left (fun s a -> s + a.a_shed) 0 accums in
  let errors = Array.fold_left (fun s a -> s + a.a_errors) 0 accums in
  let latencies =
    Array.fold_left (fun l a -> List.rev_append a.a_latencies l) [] accums
  in
  let ms x = 1e3 *. x in
  let pct q =
    if latencies = [] then 0.
    else ms (Repro_stats.Stats.percentile q latencies)
  in
  let per_shard =
    (* Merge the workers' per-shard tallies; shards sorted by name so the
       report is deterministic for a fixed outcome multiset. *)
    let merged : (string, saccum) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun acc ->
        Hashtbl.iter
          (fun shard (sa : saccum) ->
            let m =
              match Hashtbl.find_opt merged shard with
              | Some m -> m
              | None ->
                  let m =
                    { sa_ok = 0; sa_shed = 0; sa_errors = 0; sa_latencies = [] }
                  in
                  Hashtbl.add merged shard m;
                  m
            in
            m.sa_ok <- m.sa_ok + sa.sa_ok;
            m.sa_shed <- m.sa_shed + sa.sa_shed;
            m.sa_errors <- m.sa_errors + sa.sa_errors;
            m.sa_latencies <- List.rev_append sa.sa_latencies m.sa_latencies)
          acc.a_shards)
      accums;
    Hashtbl.fold (fun shard m l -> (shard, m) :: l) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (shard, (m : saccum)) ->
           let spct q =
             if m.sa_latencies = [] then 0.
             else ms (Repro_stats.Stats.percentile q m.sa_latencies)
           in
           ( shard,
             {
               s_ok = m.sa_ok;
               s_shed = m.sa_shed;
               s_errors = m.sa_errors;
               s_p50_ms = spct 50.;
               s_p99_ms = spct 99.;
             } ))
  in
  {
    target_rps = cfg.rate;
    arrival = cfg.arrival;
    offered = n;
    ok;
    shed;
    errors;
    wall_s;
    achieved_rps = (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
    mean_ms =
      (if latencies = [] then 0.
       else ms (List.fold_left ( +. ) 0. latencies /. float_of_int ok));
    p50_ms = pct 50.;
    p90_ms = pct 90.;
    p99_ms = pct 99.;
    max_ms = (if latencies = [] then 0. else ms (List.fold_left Float.max 0. latencies));
    per_shard;
  }

let arrival_name = function Poisson -> "poisson" | Uniform -> "uniform"

let report_to_json r =
  let open Serve.Json in
  let rev =
    match Sys.getenv_opt "CONTENTION_REV" with Some r -> r | None -> "dev"
  in
  Obj
    [
      ("schema", Str "contention-bench/1");
      ("rev", Str rev);
      ( "loadgen",
        Obj
          [
            ("target_rps", Num r.target_rps);
            ("arrival", Str (arrival_name r.arrival));
            ("offered", Num (float_of_int r.offered));
            ("ok", Num (float_of_int r.ok));
            ("shed", Num (float_of_int r.shed));
            ("errors", Num (float_of_int r.errors));
            ("wall_s", Num r.wall_s);
            ("achieved_rps", Num r.achieved_rps);
            ( "latency_ms",
              Obj
                [
                  ("mean", Num r.mean_ms);
                  ("p50", Num r.p50_ms);
                  ("p90", Num r.p90_ms);
                  ("p99", Num r.p99_ms);
                  ("max", Num r.max_ms);
                ] );
            ( "per_shard",
              Obj
                (List.map
                   (fun (shard, s) ->
                     ( shard,
                       Obj
                         [
                           ("ok", Num (float_of_int s.s_ok));
                           ("shed", Num (float_of_int s.s_shed));
                           ("errors", Num (float_of_int s.s_errors));
                           ("p50_ms", Num s.s_p50_ms);
                           ("p99_ms", Num s.s_p99_ms);
                         ] ))
                   r.per_shard) );
          ] );
    ]

let render r =
  Repro_stats.Table.render
    ~header:[ "Metric"; "Value" ]
    [
      [ "target req/s"; Printf.sprintf "%.1f" r.target_rps ];
      [ "arrivals"; arrival_name r.arrival ];
      [ "offered"; string_of_int r.offered ];
      [ "ok"; string_of_int r.ok ];
      [ "shed"; string_of_int r.shed ];
      [ "errors"; string_of_int r.errors ];
      [ "wall s"; Printf.sprintf "%.2f" r.wall_s ];
      [ "achieved req/s"; Printf.sprintf "%.1f" r.achieved_rps ];
      [ "latency mean ms"; Printf.sprintf "%.3f" r.mean_ms ];
      [ "latency p50 ms"; Printf.sprintf "%.3f" r.p50_ms ];
      [ "latency p90 ms"; Printf.sprintf "%.3f" r.p90_ms ];
      [ "latency p99 ms"; Printf.sprintf "%.3f" r.p99_ms ];
      [ "latency max ms"; Printf.sprintf "%.3f" r.max_ms ];
    ]

let render_per_shard r =
  Repro_stats.Table.render
    ~header:[ "Shard"; "ok"; "shed"; "errors"; "p50 ms"; "p99 ms" ]
    (List.map
       (fun (shard, s) ->
         [
           shard;
           string_of_int s.s_ok;
           string_of_int s.s_shed;
           string_of_int s.s_errors;
           Printf.sprintf "%.3f" s.s_p50_ms;
           Printf.sprintf "%.3f" s.s_p99_ms;
         ])
       r.per_shard)

let progress_line p =
  Printf.sprintf
    "[%6.1fs] offered %d  completed %d  ok %d  shed %d  errors %d  p50 %.2fms  p99 %.2fms"
    p.elapsed_s p.offered_so_far p.completed p.ok_so_far p.shed_so_far
    p.errors_so_far p.rolling_p50_ms p.rolling_p99_ms
