(* Points are raw 16-byte MD5 digests compared as strings: an arbitrary but
   total order, which is all a ring needs. *)

type t = {
  replicas : int;
  order : string list;  (* insertion order, for [peers] *)
  points : (string * string) array;  (* (point, peer), sorted by point *)
}

let point_of key = Digest.string key

let vnode_points ~replicas peer =
  List.init replicas (fun i ->
      (Digest.string (Printf.sprintf "%s\000%d" peer i), peer))

let sort_points points =
  let arr = Array.of_list points in
  (* Tie-break on the peer name so equal points (astronomically unlikely,
     but possible) still sort deterministically. *)
  Array.sort compare arr;
  arr

let create ?(replicas = 128) order =
  if replicas < 1 then invalid_arg "Cluster.Ring.create: replicas < 1";
  if order = [] then invalid_arg "Cluster.Ring.create: no peers";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then
        invalid_arg ("Cluster.Ring.create: duplicate peer " ^ p);
      Hashtbl.replace seen p ())
    order;
  let points =
    sort_points (List.concat_map (vnode_points ~replicas) order)
  in
  { replicas; order; points }

let peers t = t.order

(* Index of the first point >= [p], or 0 (wrap) when [p] is past the last
   point. *)
let owner_index t p =
  let n = Array.length t.points in
  let rec search lo hi =
    (* Invariant: points below [lo] are < p, points at/above [hi] are >= p. *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < p then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  if i = n then 0 else i

let lookup t key = snd t.points.(owner_index t (point_of key))

let successors t key =
  let n = Array.length t.points in
  let start = owner_index t (point_of key) in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for off = 0 to n - 1 do
    let peer = snd t.points.((start + off) mod n) in
    if not (Hashtbl.mem seen peer) then begin
      Hashtbl.replace seen peer ();
      out := peer :: !out
    end
  done;
  List.rev !out

let remove t peer =
  if not (List.mem peer t.order) then t
  else begin
    let order = List.filter (fun p -> p <> peer) t.order in
    if order = [] then invalid_arg "Cluster.Ring.remove: removing last peer";
    {
      t with
      order;
      points = Array.of_seq
          (Seq.filter (fun (_, p) -> p <> peer) (Array.to_seq t.points));
    }
  end
