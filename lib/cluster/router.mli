(** Client-side shard router: consistent-hash placement over a static peer
    list, one connection {!Pool} per shard.

    Placement is by workload content digest, so every client agrees on the
    owning shard with no coordination and a workload's estimate cache warms
    exactly one shard.  Uploads are the exception: they are {e broadcast}
    (content-addressed, so replays are idempotent and cheap), which keeps
    every peer able to serve any digest after a failover.

    Routed requests distinguish three outcomes: the decoded reply, a shed
    verdict (the shard's bounded accept queue was full — the caller should
    back off; the router never retries a shed, an open-loop caller must not
    amplify load), or a failure.  On a {e transport} failure the router
    fails over once to the next peer in ring order — the peer that
    hot-entry replication (see {!forward_hot}) has been warming. *)

type t

type 'a outcome =
  | Served of 'a
  | Shed of { queue_depth : int }  (** Back off; do not immediately retry. *)
  | Failed of string

val create :
  ?replicas:int ->
  ?pool_size:int ->
  ?timeout:float ->
  Endpoint.t list ->
  t
(** [replicas] is the ring's virtual-node count per peer; [pool_size] and
    [timeout] configure each shard's {!Pool}.
    @raise Invalid_argument on an empty or duplicate peer list. *)

val endpoints : t -> Endpoint.t list
val ring : t -> Ring.t

val route : t -> digest:string -> Endpoint.t
(** The shard owning the digest. *)

val upload : t -> payload:string -> (Serve.Protocol.upload_reply, string) result
(** Broadcast to every peer; [Ok] only if every peer accepted (the reply is
    the owner shard's).  A partial upload would leave failover broken, so
    any refusal is an error naming the peer. *)

val estimate :
  t ->
  digest:string ->
  ?usecase:string list ->
  estimator:Contention.Analysis.estimator ->
  unit ->
  Serve.Protocol.estimate_reply outcome

val estimate_routed :
  t ->
  digest:string ->
  ?usecase:string list ->
  estimator:Contention.Analysis.estimator ->
  unit ->
  Serve.Protocol.estimate_reply outcome * string
(** {!estimate}, also naming the shard that actually answered (the
    failover peer when the primary failed at the transport level; [""]
    only when there are no peers) — the load generator's per-shard
    breakdown keys on it.  Routed calls run under a [router.estimate] span
    and stamp the caller's trace context into the wire envelope, so the
    shard's serve span nests under the router's in a merged trace. *)

val admit :
  t ->
  ?session:string ->
  ?confidence:float ->
  ?margin_method:Contention.Margin.method_ ->
  digest:string ->
  app:string ->
  min_throughput:float ->
  unit ->
  Serve.Protocol.verdict outcome
(** Routed by digest: a session's admission state lives on the shard owning
    the workload it governs.  [?confidence]/[?margin_method] travel in the
    wire request unchanged, so a routed admit carries the shard's margin
    back to the caller. *)

val admit_routed :
  t ->
  ?session:string ->
  ?confidence:float ->
  ?margin_method:Contention.Margin.method_ ->
  digest:string ->
  app:string ->
  min_throughput:float ->
  unit ->
  Serve.Protocol.verdict outcome * string
(** {!admit} with the answering shard, as {!estimate_routed}. *)

val forward_hot :
  t -> self:Endpoint.t option -> Serve.Server.hot_entry -> unit
(** Replicate a hot estimate-cache entry to the digest's first failover
    peer (the successor on the ring, skipping [self]) with a [cache-put].
    Fire-and-forget on a detached thread over a fresh, immediately-closed
    connection: the serving worker never blocks on a busy peer, no peer
    worker gets pinned by an idle pooled connection, and failures only
    bump {!forward_counts} — replication is an optimisation, not a
    dependency.  This is what a serving binary passes to
    {!Serve.Server.start} as [on_hot], closing the loop the server itself
    cannot (the cluster layer sits above {!Serve}). *)

val forward_counts : t -> int * int
(** [(succeeded, failed)] hot-entry forwards completed so far. *)

val ping_all : t -> (Endpoint.t * (unit, string) result) list

val stats_all :
  t -> (Endpoint.t * (Serve.Protocol.stats_reply, string) result) list

val metrics_all :
  t -> (Endpoint.t * (Serve.Protocol.metrics_reply, string) result) list
(** Every peer's Prometheus exposition — the raw material for
    {!Promerge.merge}'s cluster-wide, shard-labelled view. *)

val pool_for : t -> Endpoint.t -> Pool.t option
(** The shard's pool, for reconnect counters in tests and reports. *)

val close : t -> unit
