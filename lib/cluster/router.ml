module Protocol = Serve.Protocol

type t = {
  ring : Ring.t;
  endpoints : (string * Endpoint.t) list;  (* keyed by rendered endpoint *)
  pools : (string * Pool.t) list;
  timeout : float option;
  forward_mutex : Mutex.t;
  mutable forwarded : int;
  mutable forward_failures : int;
}

type 'a outcome =
  | Served of 'a
  | Shed of { queue_depth : int }
  | Failed of string

let create ?replicas ?pool_size ?timeout endpoints =
  let names = List.map Endpoint.to_string endpoints in
  let ring = Ring.create ?replicas names in
  {
    ring;
    endpoints = List.combine names endpoints;
    pools =
      List.map
        (fun e -> (Endpoint.to_string e, Pool.create ?size:pool_size ?timeout e))
        endpoints;
    timeout;
    forward_mutex = Mutex.create ();
    forwarded = 0;
    forward_failures = 0;
  }

let endpoints t = List.map snd t.endpoints
let ring t = t.ring
let pool_of t name = List.assoc name t.pools
let pool_for t e = List.assoc_opt (Endpoint.to_string e) t.pools
let route t ~digest = List.assoc (Ring.lookup t.ring digest) t.endpoints

let is_transport_error msg =
  String.length msg >= 10 && String.sub msg 0 10 = "transport:"

(* One classified round-trip on a shard's pool.  A shed frame is the last
   thing the server sends before closing, so the connection is discarded
   along with any transport casualty; only a served reply (ok or error
   payload) leaves the connection reusable. *)
let request_on pool json decode =
  match Pool.checkout pool with
  | Error msg -> Failed msg
  | Ok c -> (
      match Serve.Client.request_classified c json with
      | Error msg ->
          Pool.discard pool c;
          Failed msg
      | Ok (Protocol.Reply_shed { queue_depth }) ->
          Pool.discard pool c;
          Shed { queue_depth }
      | Ok (Protocol.Reply_error msg) ->
          Pool.checkin pool c;
          Failed msg
      | Ok (Protocol.Reply_ok payload) -> (
          Pool.checkin pool c;
          match decode payload with
          | Ok v -> Served v
          | Error e -> Failed ("bad reply payload: " ^ e))
      | exception e ->
          Pool.discard pool c;
          raise e)

(* Route by digest; on a transport failure, one failover hop to the next
   peer in ring order.  Sheds and protocol errors are never retried: a shed
   is the shard telling us to back off, and an error reply will not improve
   on a different shard.  Also returns which shard actually answered (the
   failover peer on a retried transport failure) so callers can attribute
   the outcome per shard. *)
let routed t ~digest json decode =
  match Ring.successors t.ring digest with
  | [] -> (Failed "cluster: no peers", "")
  | primary :: rest -> (
      match request_on (pool_of t primary) json decode with
      | Failed msg when is_transport_error msg -> (
          match rest with
          | [] -> (Failed msg, primary)
          | next :: _ -> (request_on (pool_of t next) json decode, next))
      | v -> (v, primary))

(* The routed calls open a router-side span and build the request envelope
   inside it, so the trace context the wire carries names the router span
   as parent — the server's serve.<cmd> span nests under it, and with
   tracing disabled the only cost is the ambient-context read. *)
let estimate_routed t ~digest ?usecase ~estimator () =
  Obs.Span.with_ ~name:"router.estimate"
    ~args:(fun () -> [ ("digest", digest) ])
    (fun () ->
      routed t ~digest
        (Protocol.request_to_json
           ?trace:(Obs.Span.current_context ())
           (Protocol.Estimate { digest; usecase; estimator }))
        Protocol.estimate_reply_of_json)

let estimate t ~digest ?usecase ~estimator () =
  fst (estimate_routed t ~digest ?usecase ~estimator ())

let admit_routed t ?(session = Protocol.default_session) ?confidence
    ?margin_method ~digest ~app ~min_throughput () =
  Obs.Span.with_ ~name:"router.admit"
    ~args:(fun () -> [ ("digest", digest); ("app", app) ])
    (fun () ->
      routed t ~digest
        (Protocol.request_to_json
           ?trace:(Obs.Span.current_context ())
           (Protocol.Admit
              { session; digest; app; min_throughput; confidence; margin_method }))
        Protocol.verdict_of_json)

let admit t ?session ?confidence ?margin_method ~digest ~app ~min_throughput ()
    =
  fst
    (admit_routed t ?session ?confidence ?margin_method ~digest ~app
       ~min_throughput ())

let on_all t f =
  List.map
    (fun (name, e) -> (e, f (pool_of t name)))
    t.endpoints

let ( let* ) = Result.bind

let upload t ~payload =
  let results =
    (* One span covers the whole broadcast; each per-peer upload inherits
       the ambient context through {!Serve.Client.typed}. *)
    Obs.Span.with_ ~name:"router.upload" (fun () ->
        on_all t (fun pool ->
            Pool.with_client pool (fun c -> Serve.Client.upload c ~payload)))
  in
  let* () =
    List.fold_left
      (fun acc (e, r) ->
        let* () = acc in
        match r with
        | Ok _ -> Ok ()
        | Error msg ->
            Error
              (Printf.sprintf "upload to %s failed: %s" (Endpoint.to_string e)
                 msg))
      (Ok ()) results
  in
  match results with
  | (_, Ok reply) :: _ -> Ok reply
  | _ -> Error "cluster: no peers"

let ping_all t =
  on_all t (fun pool -> Pool.with_client pool Serve.Client.ping)

let stats_all t =
  on_all t (fun pool -> Pool.with_client pool Serve.Client.stats)

let metrics_all t =
  on_all t (fun pool -> Pool.with_client pool Serve.Client.metrics)

(* Forwarding happens on a detached thread over a fresh connection, not via
   the pools: the caller is a worker domain mid-request (it must not block
   on a busy peer), and a pooled connection would pin one of the peer's
   worker domains for as long as it stays idle in the pool.  At most one
   forward per cache key ever fires, so the dial cost is irrelevant. *)
let forward_hot t ~self (entry : Serve.Server.hot_entry) =
  let self_name = Option.map Endpoint.to_string self in
  let target =
    List.find_opt
      (fun peer -> Some peer <> self_name)
      (Ring.successors t.ring entry.hot_digest)
  in
  match target with
  | None -> ()
  | Some peer ->
      let endpoint = List.assoc peer t.endpoints in
      (* The detached thread starts with a blank ambient context, so the
         request that made the entry hot hands its context over explicitly —
         the replication write then shares that request's trace id and shows
         up in the merged timeline as part of the same request. *)
      let ctx = Obs.Span.current_context () in
      let thread () =
        let replicate () =
          Obs.Span.with_ ~name:"router.cache_put"
            ~args:(fun () ->
              [ ("digest", entry.hot_digest); ("peer", peer) ])
            (fun () ->
              match Endpoint.connect ?timeout:t.timeout endpoint with
              | Error _ as e -> e
              | Ok c ->
                  Fun.protect
                    ~finally:(fun () -> Serve.Client.close c)
                    (fun () ->
                      Serve.Client.cache_put c ~digest:entry.hot_digest
                        ~mask:entry.hot_mask ~estimator:entry.hot_estimator
                        ~rows:entry.hot_rows))
        in
        let result =
          match ctx with
          | None -> replicate ()
          | Some c -> Obs.Span.with_context c replicate
        in
        Mutex.lock t.forward_mutex;
        (match result with
        | Ok () -> t.forwarded <- t.forwarded + 1
        | Error _ -> t.forward_failures <- t.forward_failures + 1);
        Mutex.unlock t.forward_mutex
      in
      ignore (Thread.create thread () : Thread.t)

let forward_counts t =
  Mutex.lock t.forward_mutex;
  let v = (t.forwarded, t.forward_failures) in
  Mutex.unlock t.forward_mutex;
  v

let close t = List.iter (fun (_, pool) -> Pool.close pool) t.pools
