(** Open-loop load harness for a serve cluster.

    Open loop means the arrival schedule is fixed {e before} the run
    (Poisson or uniform gaps at a target rate) and never slows down because
    the server is slow — unlike a closed loop, which hides overload by
    waiting for replies before sending more.  Latency is measured from the
    {e scheduled} arrival, not the actual send, so queueing delay inside
    the harness counts against the server (the standard correction for
    coordinated omission).

    The working set is a fixed array of uploaded workload digests with
    Zipf-skewed popularity: [skew = 0] is uniform, [skew ≈ 1] gives the
    hot-key traffic that exercises estimate-cache hits and hot-entry
    forwarding.  Schedule and digest choices are precomputed from the seed,
    so two runs at the same seed issue the identical request sequence
    regardless of thread interleaving. *)

type arrival = Poisson | Uniform

type config = {
  rate : float;  (** Target aggregate request rate, req/s. *)
  duration_s : float;
  concurrency : int;  (** Worker threads issuing requests. *)
  arrival : arrival;
  skew : float;  (** Zipf exponent over the working set; 0 = uniform. *)
  seed : int;
  estimator : Contention.Analysis.estimator;
  trace_sample : int;
      (** When positive, every request roots a fresh trace context carried
          to the shards on the wire, with the head-based journal-sampling
          bit set on 1 in [trace_sample] requests.  [0] (the default)
          issues context-free requests. *)
}

val default_config : config
(** 200 req/s for 5 s, 16 threads, Poisson arrivals, skew 1.0, seed 2007,
    second-order estimator, no trace contexts. *)

type shard_stats = {
  s_ok : int;
  s_shed : int;
  s_errors : int;
  s_p50_ms : float;
  s_p99_ms : float;
}
(** One shard's share of the run, attributed to the shard that actually
    answered (the failover peer for retried transport failures). *)

type progress = {
  elapsed_s : float;
  offered_so_far : int;  (** Scheduled arrivals at or before [elapsed_s]. *)
  completed : int;  (** [ok + shed + errors] so far. *)
  ok_so_far : int;
  shed_so_far : int;
  errors_so_far : int;
  rolling_p50_ms : float;  (** Over all served requests so far. *)
  rolling_p99_ms : float;
}

type report = {
  target_rps : float;
  arrival : arrival;
  offered : int;  (** Scheduled (= issued) requests. *)
  ok : int;
  shed : int;  (** Backpressure verdicts — the server saying "later". *)
  errors : int;  (** Transport and protocol failures. *)
  wall_s : float;
  achieved_rps : float;  (** [ok] over wall time. *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;  (** Latency of served requests, scheduled-arrival based. *)
  per_shard : (string * shard_stats) list;  (** Sorted by shard name. *)
}

val run :
  ?registry:Obs.Metric.registry ->
  ?on_progress:(progress -> unit) ->
  config ->
  router:Router.t ->
  digests:string array ->
  report
(** Drive the cluster through [router] over the given working set.  Each
    served request lands in the
    [contention_loadgen_latency_seconds] histogram and every outcome bumps
    [contention_loadgen_requests_total{outcome=...}] in [registry]
    (default {!Obs.Metric.default}), so a long-running harness can be
    scraped mid-flight.

    [on_progress], when given, is called about once per second from a
    dedicated monitor thread with a racy-but-safe snapshot of the run so
    far — the CLI turns it into a live progress line.
    @raise Invalid_argument on an empty digest array, [rate <= 0],
    [duration_s <= 0] or [concurrency < 1]. *)

val report_to_json : report -> Serve.Json.t
(** A [{"schema": "contention-bench/1", ...}] document with the run under a
    ["loadgen"] key — same envelope as [contention bench --json], so the
    same tooling ingests both. *)

val render : report -> string
(** Human-readable summary table. *)

val render_per_shard : report -> string
(** Per-shard outcome and latency breakdown as a table. *)

val progress_line : progress -> string
(** One-line rendering of a {!progress} snapshot. *)
