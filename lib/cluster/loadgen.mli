(** Open-loop load harness for a serve cluster.

    Open loop means the arrival schedule is fixed {e before} the run
    (Poisson or uniform gaps at a target rate) and never slows down because
    the server is slow — unlike a closed loop, which hides overload by
    waiting for replies before sending more.  Latency is measured from the
    {e scheduled} arrival, not the actual send, so queueing delay inside
    the harness counts against the server (the standard correction for
    coordinated omission).

    The working set is a fixed array of uploaded workload digests with
    Zipf-skewed popularity: [skew = 0] is uniform, [skew ≈ 1] gives the
    hot-key traffic that exercises estimate-cache hits and hot-entry
    forwarding.  Schedule and digest choices are precomputed from the seed,
    so two runs at the same seed issue the identical request sequence
    regardless of thread interleaving. *)

type arrival = Poisson | Uniform

type config = {
  rate : float;  (** Target aggregate request rate, req/s. *)
  duration_s : float;
  concurrency : int;  (** Worker threads issuing requests. *)
  arrival : arrival;
  skew : float;  (** Zipf exponent over the working set; 0 = uniform. *)
  seed : int;
  estimator : Contention.Analysis.estimator;
}

val default_config : config
(** 200 req/s for 5 s, 16 threads, Poisson arrivals, skew 1.0, seed 2007,
    second-order estimator. *)

type report = {
  target_rps : float;
  arrival : arrival;
  offered : int;  (** Scheduled (= issued) requests. *)
  ok : int;
  shed : int;  (** Backpressure verdicts — the server saying "later". *)
  errors : int;  (** Transport and protocol failures. *)
  wall_s : float;
  achieved_rps : float;  (** [ok] over wall time. *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;  (** Latency of served requests, scheduled-arrival based. *)
}

val run :
  ?registry:Obs.Metric.registry ->
  config ->
  router:Router.t ->
  digests:string array ->
  report
(** Drive the cluster through [router] over the given working set.  Each
    served request lands in the
    [contention_loadgen_latency_seconds] histogram and every outcome bumps
    [contention_loadgen_requests_total{outcome=...}] in [registry]
    (default {!Obs.Metric.default}), so a long-running harness can be
    scraped mid-flight.
    @raise Invalid_argument on an empty digest array, [rate <= 0],
    [duration_s <= 0] or [concurrency < 1]. *)

val report_to_json : report -> Serve.Json.t
(** A [{"schema": "contention-bench/1", ...}] document with the run under a
    ["loadgen"] key — same envelope as [contention bench --json], so the
    same tooling ingests both. *)

val render : report -> string
(** Human-readable summary table. *)
