(* Merge several shards' Prometheus expositions into one, telling series
   apart with an injected [shard] label.

   The parser is deliberately line-oriented and shallow: the expositions
   come from {!Obs.Prometheus.expose}, whose output grammar is small (one
   [# HELP] and [# TYPE] per family, then samples), but unknown lines pass
   through untouched per shard so a future exposition feature degrades to
   ugly-but-present rather than dropped. *)

type family = {
  f_name : string;
  f_help : string option; (* full "# HELP name text" line *)
  f_type : string option; (* full "# TYPE name kind" line *)
  f_samples : (string * string) list; (* (shard, sample line), in order *)
}

(* "name{labels} value" or "name value"; the family a sample belongs to is
   the metric name up to '{' or ' ', minus a histogram/summary suffix so
   _bucket/_sum/_count stay inside their family block. *)
let sample_family line =
  let stop =
    match String.index_opt line '{' with
    | Some i -> i
    | None -> ( match String.index_opt line ' ' with
        | Some i -> i
        | None -> String.length line)
  in
  let name = String.sub line 0 stop in
  let strip suffix =
    let n = String.length name and s = String.length suffix in
    if n > s && String.sub name (n - s) s = suffix then
      Some (String.sub name 0 (n - s))
    else None
  in
  match strip "_bucket" with
  | Some base -> base
  | None -> (
      match strip "_sum" with
      | Some base -> base
      | None -> ( match strip "_count" with Some b -> b | None -> name))

(* Inject [shard="<name>"] as the first label of a sample line.  The label
   value is escaped per the exposition format. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_sample ~shard line =
  let tag = Printf.sprintf "shard=\"%s\"" (escape_label_value shard) in
  match String.index_opt line '{' with
  | Some i ->
      String.sub line 0 (i + 1)
      ^ tag ^ ","
      ^ String.sub line (i + 1) (String.length line - i - 1)
  | None -> (
      match String.index_opt line ' ' with
      | Some i ->
          String.sub line 0 i
          ^ "{" ^ tag ^ "}"
          ^ String.sub line i (String.length line - i)
      | None -> line)

let split_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let header_name line =
  (* "# HELP name …" / "# TYPE name …" *)
  match String.split_on_char ' ' line with
  | _ :: _ :: name :: _ -> name
  | _ -> ""

let merge expositions =
  (* Deterministic: shards in sorted order, families sorted by name,
     samples in per-shard order within a family — independent of the order
     the expositions were handed in. *)
  let expositions =
    List.sort (fun (a, _) (b, _) -> String.compare a b) expositions
  in
  let families : (string, family) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let family name =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
        let f = { f_name = name; f_help = None; f_type = None; f_samples = [] } in
        Hashtbl.replace families name f;
        order := name :: !order;
        f
  in
  let set name f = Hashtbl.replace families name f in
  List.iter
    (fun (shard, text) ->
      List.iter
        (fun line ->
          if starts_with "# HELP " line then begin
            let name = header_name line in
            let f = family name in
            if f.f_help = None then set name { f with f_help = Some line }
          end
          else if starts_with "# TYPE " line then begin
            let name = header_name line in
            let f = family name in
            if f.f_type = None then set name { f with f_type = Some line }
          end
          else if starts_with "#" line then ()
          else begin
            let name = sample_family line in
            let f = family name in
            set name
              {
                f with
                f_samples = (shard, label_sample ~shard line) :: f.f_samples;
              }
          end)
        (split_lines text))
    expositions;
  let names = List.sort String.compare !order in
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let f = Hashtbl.find families name in
      Option.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        f.f_help;
      Option.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        f.f_type;
      List.iter
        (fun (_, l) ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (List.rev f.f_samples))
    names;
  Buffer.contents buf
