(** Where a shard listens: a TCP host/port or a Unix-domain socket path.

    The textual form is what [--peers] takes on the command line and what a
    peers file holds, and it doubles as the peer's identity on the
    {!Ring} — two shards are the same peer iff their endpoints render to
    the same string. *)

type t =
  | Tcp of { host : string; port : int }
  | Unix_sock of string  (** Socket path. *)

val to_string : t -> string
(** ["host:port"] or ["unix:/path"].  [of_string (to_string e) = Ok e]. *)

val of_string : string -> (t, string) result
(** Accepts ["host:port"] (host defaults to 127.0.0.1 when empty, as in
    [":4557"]) and ["unix:PATH"].  Total: never raises. *)

val parse_list : string -> (t list, string) result
(** A comma-separated [--peers] value.  Rejects an empty list and duplicate
    endpoints — a duplicated peer would silently own twice the ring. *)

val load_file : string -> (t list, string) result
(** One endpoint per line; blank lines and [#] comments ignored.  Same
    duplicate/empty checks as {!parse_list}. *)

val connect :
  ?timeout:float -> t -> (Serve.Client.t, string) result
(** Dial the endpoint with {!Serve.Client.connect} / [connect_unix],
    passing [timeout] through. *)
