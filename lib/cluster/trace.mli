(** Load Chrome trace files back into mergeable processes.

    The inverse of {!Obs.Trace.write_file}, feeding
    {!Obs.Trace.merged_chrome_json}: [contention trace-merge] loads each
    per-process file (client, shards), recovers the process name, clock
    anchor and spans — including the trace/span/parent ids riding in the
    args — and fuses them into one Perfetto-loadable timeline.

    Lenient where it can be: unknown event phases are skipped, a missing
    [clock_sync] yields a process without an anchor (its spans stay on
    their own timebase), and non-string args are dropped.  Only a file
    that is not a trace at all (unparseable JSON, no [traceEvents]) is an
    error. *)

val of_json : ?name:string -> Serve.Json.t -> (Obs.Trace.process, string) result
(** [name] overrides the file's [process_name] metadata. *)

val load : ?name:string -> string -> (Obs.Trace.process, string) result
(** Read and parse one trace file. *)
