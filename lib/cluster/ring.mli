(** Consistent-hash ring over peer names.

    Each peer owns [replicas] virtual points on the ring (MD5 of
    ["peer\000index"]); a key (here: a workload's content digest) belongs
    to the peer owning the first point at or after MD5 of the key, wrapping
    around.  Virtual points give balance — with the default 128 replicas,
    4 peers split 10k random keys well within 15% of each other — and make
    membership changes cheap: removing a peer remaps {e only} the keys that
    peer owned, because every other peer's points are untouched.

    Lookup is a binary search over a sorted point array: O(log(peers ×
    replicas)), no allocation beyond the key digest.  The ring is
    immutable; {!remove} returns a new one. *)

type t

val create : ?replicas:int -> string list -> t
(** [replicas] defaults to 128 points per peer.
    @raise Invalid_argument on an empty or duplicate-containing peer list,
    or [replicas < 1]. *)

val peers : t -> string list
(** In insertion order. *)

val lookup : t -> string -> string
(** The peer owning the key. *)

val successors : t -> string -> string list
(** All peers in ring order starting at the key's owner — the failover
    order: if the owner is unreachable, the next distinct peer clockwise
    takes over, deterministically and agreed on by every client. *)

val remove : t -> string -> t
(** Ring without the given peer's points.  Unknown peers are a no-op.
    @raise Invalid_argument when removing the last peer. *)
