(** Merge per-shard Prometheus expositions into one cluster-wide page.

    [contention stats --cluster --prometheus] scrapes every peer over the
    wire protocol's [metrics] command and needs to present the union
    without colliding series: the merge injects a [shard="<name>"] label
    (as the first label) into every sample line, groups samples under one
    [# HELP]/[# TYPE] header per metric family, and keeps histogram
    companion series ([_bucket]/[_sum]/[_count]) inside their family
    block.

    Deterministic: output depends only on the {e contents} of the input —
    shards are sorted by name, families by metric name, and each shard's
    samples keep their original relative order (bucket order matters), so
    any permutation of the same inputs merges byte-identically. *)

val merge : (string * string) list -> string
(** [merge [(shard, exposition); …]] — shard names must be distinct; an
    empty list merges to the empty string. *)
