(** A blocking pool of {!Serve.Client} connections to one shard.

    The pool bounds the shard's concurrency from this process: at most
    [size] connections exist at once (the server pins one worker domain per
    live connection, so an unbounded pool would silently queue on the
    server instead).  {!checkout} hands out an idle connection, dials a new
    one when under the bound, and blocks otherwise until a connection is
    returned.  Dialing retries with exponential backoff — a shard that is
    restarting looks like a slow dial, not an error.

    Connections returned with {!checkin} are reused; {!discard} closes a
    connection whose transport failed (or that received a shed frame — the
    server has already closed its end).  The next checkout reconnects. *)

type t

val create :
  ?size:int -> ?timeout:float -> ?dial_attempts:int -> Endpoint.t -> t
(** [size] defaults to 8 connections, [dial_attempts] to 4 (backoff sleeps
    20 ms, 40 ms, 80 ms between tries).  [timeout] is passed to
    {!Serve.Client.connect} and so also bounds reads/writes on every pooled
    connection.
    @raise Invalid_argument if [size < 1] or [dial_attempts < 1]. *)

val endpoint : t -> Endpoint.t

val checkout : t -> (Serve.Client.t, string) result
(** Blocks while [size] connections are outstanding and none is idle.
    [Error] after all dial attempts fail, or once the pool is closed. *)

val checkin : t -> Serve.Client.t -> unit
(** Return a healthy connection for reuse. *)

val discard : t -> Serve.Client.t -> unit
(** Close a broken connection and free its slot. *)

val with_client :
  t -> (Serve.Client.t -> ('a, string) result) -> ('a, string) result
(** Checkout, run, checkin — with one transparent retry on a fresh
    connection when [f] reports a transport error (an [Error] whose message
    starts with ["transport:"]): the pooled connection may simply have gone
    stale since its last use.  The broken connection is discarded either
    way. *)

val reconnects : t -> int
(** Connections discarded as broken so far — each one forces a fresh dial
    on some later checkout. *)

val close : t -> unit
(** Close idle connections and fail all future checkouts.  Outstanding
    connections are closed as they come back.  Idempotent. *)
