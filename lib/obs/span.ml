type t = {
  name : string;
  args : (string * string) list;
  ts_ns : int64;
  dur_ns : int64;
  domain : int;
  trace_id : int64;
  span_id : int64;
  parent_id : int64;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* Trace context                                                       *)

type ctx = { trace_id : int64; parent_span : int64; sampled : bool }

(* Span/trace ids: a SplitMix64 walk over an atomic counter, seeded from
   the pid and the clock so two processes started in the same nanosecond
   still diverge.  Zero is reserved for "no id" and never produced. *)
let id_counter =
  let seed =
    Int64.logxor
      (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (Unix.getpid () + 1)))
      (Int64.logxor
         (Clock.now_ns ())
         (Int64.bits_of_float (Unix.gettimeofday ())))
  in
  Atomic.make seed

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rec next_id () =
  let rec bump () =
    let old = Atomic.get id_counter in
    let next = Int64.add old 0x9e3779b97f4a7c15L in
    if Atomic.compare_and_set id_counter old next then next else bump ()
  in
  let id = mix64 (bump ()) in
  if Int64.equal id 0L then next_id () else id

let new_trace ?(sampled = true) () =
  { trace_id = next_id (); parent_span = 0L; sampled }

let id_to_hex id = Printf.sprintf "%016Lx" id

let id_of_hex s =
  if
    String.length s = 16
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
         s
  then
    (* Int64.of_string on "0x…" accepts the full unsigned range, wrapping
       the high bit into the sign — exactly the round-trip of %016Lx. *)
    Some (Int64.of_string ("0x" ^ s))
  else None

(* The ambient context is keyed by systhread, not by domain: the load
   generator and the hot-entry forwarder run many threads inside one
   domain, and Domain.DLS would bleed one request's context into another.
   Thread ids are process-unique and never reused, so a plain table under
   a mutex is correct; contexts are only written on traced/propagated
   request boundaries, so the lock is uncontended in practice. *)
let ctx_mutex = Mutex.create ()
let ctx_table : (int, ctx) Hashtbl.t = Hashtbl.create 32

let current_context () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock ctx_mutex;
  let c = Hashtbl.find_opt ctx_table tid in
  Mutex.unlock ctx_mutex;
  c

let set_context tid = function
  | None -> Hashtbl.remove ctx_table tid
  | Some c -> Hashtbl.replace ctx_table tid c

let with_context c f =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock ctx_mutex;
  let saved = Hashtbl.find_opt ctx_table tid in
  Hashtbl.replace ctx_table tid c;
  Mutex.unlock ctx_mutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock ctx_mutex;
      set_context tid saved;
      Mutex.unlock ctx_mutex)
    f

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

(* Every domain owns one buffer (a cons-list under an Atomic).  The global
   registry of buffers is only touched once per domain, on its first
   record; buffers outlive their domain so a sweep's worker spans survive
   the pool join. *)
let registry_mutex = Mutex.create ()
let registry : t list Atomic.t list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let buf = Atomic.make [] in
      Mutex.lock registry_mutex;
      registry := buf :: !registry;
      Mutex.unlock registry_mutex;
      buf)

let push span =
  let buf = Domain.DLS.get buffer_key in
  let rec go () =
    let old = Atomic.get buf in
    (* Single writer per buffer: the CAS only retries against a concurrent
       [drain], so this is wait-free in practice. *)
    if not (Atomic.compare_and_set buf old (span :: old)) then go ()
  in
  go ()

let record span = push span

let with_ ?args ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let ctx = current_context () in
    let trace_id, span_id, parent_id =
      match ctx with
      | None -> (0L, 0L, 0L)
      | Some c -> (c.trace_id, next_id (), c.parent_span)
    in
    let t0 = Clock.now_ns () in
    let finish () =
      let t1 = Clock.now_ns () in
      push
        {
          name;
          args = (match args with None -> [] | Some g -> g ());
          ts_ns = t0;
          dur_ns = Int64.sub t1 t0;
          domain = (Domain.self () :> int);
          trace_id;
          span_id;
          parent_id;
        }
    in
    let body () =
      match ctx with
      | None -> f ()
      | Some c ->
          (* Children started inside [f] hang off this span. *)
          with_context { c with parent_span = span_id } f
    in
    match body () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let buffers () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  bufs

let order a b =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> (
      match Int.compare a.domain b.domain with
      | 0 -> String.compare a.name b.name
      | c -> c)
  | c -> c

let collect () =
  List.sort order (List.concat_map Atomic.get (buffers ()))

let drain () =
  List.sort order (List.concat_map (fun b -> Atomic.exchange b []) (buffers ()))

let reset () =
  set_enabled false;
  ignore (drain ())
