type t = {
  name : string;
  args : (string * string) list;
  ts_ns : int64;
  dur_ns : int64;
  domain : int;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Every domain owns one buffer (a cons-list under an Atomic).  The global
   registry of buffers is only touched once per domain, on its first
   record; buffers outlive their domain so a sweep's worker spans survive
   the pool join. *)
let registry_mutex = Mutex.create ()
let registry : t list Atomic.t list ref = ref []

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let buf = Atomic.make [] in
      Mutex.lock registry_mutex;
      registry := buf :: !registry;
      Mutex.unlock registry_mutex;
      buf)

let push span =
  let buf = Domain.DLS.get buffer_key in
  let rec go () =
    let old = Atomic.get buf in
    (* Single writer per buffer: the CAS only retries against a concurrent
       [drain], so this is wait-free in practice. *)
    if not (Atomic.compare_and_set buf old (span :: old)) then go ()
  in
  go ()

let record span = push span

let with_ ?args ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let finish () =
      let t1 = Clock.now_ns () in
      push
        {
          name;
          args = (match args with None -> [] | Some g -> g ());
          ts_ns = t0;
          dur_ns = Int64.sub t1 t0;
          domain = (Domain.self () :> int);
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let buffers () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  bufs

let order a b =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> (
      match Int.compare a.domain b.domain with
      | 0 -> String.compare a.name b.name
      | c -> c)
  | c -> c

let collect () =
  List.sort order (List.concat_map Atomic.get (buffers ()))

let drain () =
  List.sort order (List.concat_map (fun b -> Atomic.exchange b []) (buffers ()))

let reset () =
  set_enabled false;
  ignore (drain ())
