(* Fallback: gettimeofday with an atomic high-water mark, so a backwards
   NTP step stalls the clock instead of producing negative durations. *)
let high_water = Atomic.make Int64.min_int

let fallback_now () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get high_water in
    if Int64.compare t prev <= 0 then prev
    else if Atomic.compare_and_set high_water prev t then t
    else clamp ()
  in
  clamp ()

(* The stub returns 0 when the platform clock is unavailable. *)
let stub_usable =
  Int64.compare (Monotonic_clock.now ()) 0L > 0

let now_ns () = if stub_usable then Monotonic_clock.now () else fallback_now ()

let elapsed_s ~since = Int64.to_float (Int64.sub (now_ns ()) since) *. 1e-9

let source =
  if stub_usable then "clock_gettime(CLOCK_MONOTONIC)"
  else "gettimeofday (monotonicized)"
