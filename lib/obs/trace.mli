(** Chrome trace-event export: a finished run's spans as a JSON file that
    chrome://tracing and {{:https://ui.perfetto.dev}Perfetto} open
    directly.

    Each domain becomes one named track ([thread_name] metadata events);
    every span is a complete ([ph:"X"]) event with microsecond timestamps
    rebased to the earliest span.  Output is deterministic for a fixed
    span list (spans are sorted the same way {!Span.collect} sorts). *)

val to_chrome_json : ?process_name:string -> Span.t list -> string
(** [process_name] defaults to ["contention"]. *)

val write_file : path:string -> Span.t list -> unit
(** @raise Sys_error on an unwritable path. *)
