(** Chrome trace-event export: a finished run's spans as a JSON file that
    chrome://tracing and {{:https://ui.perfetto.dev}Perfetto} open
    directly.

    Each domain becomes one named track ([thread_name] metadata events);
    every span is a complete ([ph:"X"]) event with microsecond timestamps
    rebased to the earliest span.  Spans carrying trace-context ids (see
    {!Span.ctx}) get [trace]/[span]/[parent] entries in their args; spans
    without ids render byte-identically to the pre-tracing format.  Output
    is deterministic for a fixed span list (spans are sorted the same way
    {!Span.collect} sorts).

    {!write_file} embeds a [clock_sync] metadata event — one wall-clock /
    monotonic-clock instant plus the rebasing epoch — because
    {!Clock.now_ns} epochs are per-process: the anchor is what lets
    {!merged_chrome_json} place several processes' spans on one shared
    wall timeline. *)

type anchor = { wall_ns : int64; mono_ns : int64 }
(** The same instant read on the wall clock ([Unix.gettimeofday], ns) and
    on {!Clock.now_ns} — the bridge between a process's private monotonic
    epoch and a cross-process timeline. *)

val now_anchor : unit -> anchor

val to_chrome_json : ?process_name:string -> ?anchor:anchor -> Span.t list -> string
(** [process_name] defaults to ["contention"]; [anchor] (omitted by
    default) adds the [clock_sync] metadata event. *)

val write_file : ?process_name:string -> path:string -> Span.t list -> unit
(** {!to_chrome_json} with a fresh {!now_anchor}, written to [path].
    @raise Sys_error on an unwritable path. *)

(** {1 Cross-process merge} *)

type process = {
  p_name : string;  (** Process label, e.g. a shard endpoint. *)
  p_anchor : anchor option;
      (** Clock anchor from the file's [clock_sync] event; [None] for a
          pre-anchor file (its spans stay on their own timeline). *)
  p_spans : Span.t list;  (** Timestamps on that process's clock. *)
}

val merged_chrome_json : process list -> string
(** Fuse per-process traces into one timeline: each process becomes a pid,
    every span's timestamp is shifted onto the shared wall clock via its
    anchor, and parent/child links whose endpoints live in {e different}
    processes become flow arrows ([ph:"s"]/[ph:"f"]) keyed by the child's
    span id — in Perfetto, a request's client span, shard span and
    replication write connect visually across processes.

    Deterministic: the output depends only on the {e contents} of
    [processes] (they are sorted by name, spans by time), never on list
    order — byte-identical for any permutation of the same inputs. *)
