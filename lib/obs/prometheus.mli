(** Prometheus text exposition format (version 0.0.4) for a
    {!Metric.registry}.

    Output is deterministic: families sorted by name, series by label set,
    so a fixed registry renders byte-stable text (goldens pin this). *)

val expose : Metric.registry -> string
(** [# HELP]/[# TYPE] lines per family, then one line per series;
    histograms render cumulative [_bucket] lines (including [le="+Inf"]),
    [_sum] and [_count]. *)

val fmt_value : float -> string
(** Prometheus number rendering: integers without a decimal point, [+Inf],
    [-Inf] and [NaN] spelled the Prometheus way. *)
