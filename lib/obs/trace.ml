(* Minimal JSON string emission — obs sits below every library that owns a
   JSON codec, so it carries its own escaper for the handful of strings a
   trace contains. *)
let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Nanoseconds to a decimal-microsecond literal, exactly: "12.345". *)
let us_of_ns ns =
  Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L)

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf k;
      Buffer.add_char buf ':';
      add_escaped buf v)
    args;
  Buffer.add_char buf '}'

let to_chrome_json ?(process_name = "contention") spans =
  let spans =
    List.sort
      (fun (a : Span.t) (b : Span.t) ->
        match Int64.compare a.ts_ns b.ts_ns with
        | 0 -> (
            match Int.compare a.domain b.domain with
            | 0 -> String.compare a.name b.name
            | c -> c)
        | c -> c)
      spans
  in
  let epoch =
    match spans with [] -> 0L | s :: _ -> s.Span.ts_ns
  in
  let domains =
    List.sort_uniq Int.compare (List.map (fun (s : Span.t) -> s.domain) spans)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string buf "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",";
  add_args buf [ ("name", process_name) ];
  Buffer.add_char buf '}';
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf ",{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\"," d);
      add_args buf [ ("name", Printf.sprintf "domain %d" d) ];
      Buffer.add_char buf '}')
    domains;
  List.iter
    (fun (s : Span.t) ->
      Buffer.add_string buf
        (Printf.sprintf ",{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":"
           s.domain
           (us_of_ns (Int64.sub s.ts_ns epoch))
           (us_of_ns s.dur_ns));
      add_escaped buf s.name;
      Buffer.add_char buf ',';
      add_args buf s.args;
      Buffer.add_char buf '}')
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_file ~path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json spans))
