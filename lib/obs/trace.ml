(* Minimal JSON string emission — obs sits below every library that owns a
   JSON codec, so it carries its own escaper for the handful of strings a
   trace contains. *)
let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Nanoseconds to a decimal-microsecond literal, exactly: "12.345". *)
let us_of_ns ns =
  Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L)

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf k;
      Buffer.add_char buf ':';
      add_escaped buf v)
    args;
  Buffer.add_char buf '}'

(* Trace/span/parent ids ride in the args object (hex, as emitted on the
   wire) — Perfetto shows them on the slice, and the merge loader reads
   them back.  Spans recorded without an ambient context stay exactly as
   before, so id-free traces are byte-identical to the previous format. *)
let id_args (s : Span.t) =
  if Int64.equal s.span_id 0L then []
  else
    [ ("trace", Span.id_to_hex s.trace_id); ("span", Span.id_to_hex s.span_id) ]
    @
    if Int64.equal s.parent_id 0L then []
    else [ ("parent", Span.id_to_hex s.parent_id) ]

let span_order (a : Span.t) (b : Span.t) =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> (
      match Int.compare a.domain b.domain with
      | 0 -> String.compare a.name b.name
      | c -> c)
  | c -> c

type anchor = { wall_ns : int64; mono_ns : int64 }

let now_anchor () =
  (* Read the two clocks back to back; the instant between the reads is
     "the same moment" on both, good to well under a microsecond — plenty
     for aligning traces of processes that exchange network requests. *)
  let wall = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let mono = Clock.now_ns () in
  { wall_ns = wall; mono_ns = mono }

let to_chrome_json ?(process_name = "contention") ?anchor spans =
  let spans = List.sort span_order spans in
  let epoch =
    match spans with [] -> 0L | s :: _ -> s.Span.ts_ns
  in
  let domains =
    List.sort_uniq Int.compare (List.map (fun (s : Span.t) -> s.domain) spans)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string buf "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",";
  add_args buf [ ("name", process_name) ];
  Buffer.add_char buf '}';
  (match anchor with
  | None -> ()
  | Some a ->
      (* One wall/monotonic clock pair plus the rebasing epoch: everything
         a merger needs to place this file's relative timestamps on a
         cross-process wall timeline.  Values are strings — int64
         nanoseconds do not survive a float JSON number. *)
      Buffer.add_string buf
        ",{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"clock_sync\",";
      add_args buf
        [
          ("wall_ns", Int64.to_string a.wall_ns);
          ("mono_ns", Int64.to_string a.mono_ns);
          ("epoch_ns", Int64.to_string epoch);
        ];
      Buffer.add_char buf '}');
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf ",{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\"," d);
      add_args buf [ ("name", Printf.sprintf "domain %d" d) ];
      Buffer.add_char buf '}')
    domains;
  List.iter
    (fun (s : Span.t) ->
      Buffer.add_string buf
        (Printf.sprintf ",{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":"
           s.domain
           (us_of_ns (Int64.sub s.ts_ns epoch))
           (us_of_ns s.dur_ns));
      add_escaped buf s.name;
      Buffer.add_char buf ',';
      add_args buf (s.args @ id_args s);
      Buffer.add_char buf '}')
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_file ?process_name ~path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (to_chrome_json ?process_name ~anchor:(now_anchor ()) spans))

(* ------------------------------------------------------------------ *)
(* Cross-process merge                                                 *)

type process = {
  p_name : string;
  p_anchor : anchor option;
  p_spans : Span.t list;
}

(* A span's start on the shared wall timeline: shift its monotonic
   timestamp by the process's wall/monotonic offset.  Without an anchor
   (a pre-anchor trace file) the raw timestamp is the best available. *)
let wall_of p (s : Span.t) =
  match p.p_anchor with
  | Some a -> Int64.add a.wall_ns (Int64.sub s.ts_ns a.mono_ns)
  | None -> s.ts_ns

let merged_chrome_json processes =
  (* Deterministic: process order (and so pid assignment) depends only on
     the contents, never on the order the files were given in. *)
  let processes =
    List.sort
      (fun a b ->
        match String.compare a.p_name b.p_name with
        | 0 ->
            Int64.compare
              (match a.p_anchor with Some x -> x.wall_ns | None -> 0L)
              (match b.p_anchor with Some x -> x.wall_ns | None -> 0L)
        | c -> c)
      processes
  in
  let tagged =
    List.concat
      (List.mapi
         (fun i p ->
           List.map (fun s -> (i + 1, p.p_name, wall_of p s, s)) p.p_spans)
         processes)
  in
  let epoch =
    List.fold_left
      (fun acc (_, _, w, _) -> if Int64.compare w acc < 0 then w else acc)
      (match tagged with [] -> 0L | (_, _, w, _) :: _ -> w)
      tagged
  in
  let events =
    List.sort
      (fun (p1, _, w1, (s1 : Span.t)) (p2, _, w2, (s2 : Span.t)) ->
        match Int64.compare w1 w2 with
        | 0 -> (
            match Int.compare p1 p2 with
            | 0 -> (
                match Int.compare s1.domain s2.domain with
                | 0 -> String.compare s1.name s2.name
                | c -> c)
            | c -> c)
        | c -> c)
      tagged
  in
  (* span_id -> (pid, wall start, domain): the flow-event endpoints. *)
  let index = Hashtbl.create 256 in
  List.iter
    (fun (pid, _, w, (s : Span.t)) ->
      if not (Int64.equal s.span_id 0L) then
        Hashtbl.replace index s.span_id (pid, w, s.domain))
    events;
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\","
           (i + 1));
      add_args buf [ ("name", p.p_name) ];
      Buffer.add_char buf '}';
      let domains =
        List.sort_uniq Int.compare
          (List.map (fun (s : Span.t) -> s.domain) p.p_spans)
      in
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf
               ",{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
               (i + 1) d);
          add_args buf [ ("name", Printf.sprintf "domain %d" d) ];
          Buffer.add_char buf '}')
        domains)
    processes;
  List.iter
    (fun (pid, _, w, (s : Span.t)) ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":"
           pid s.domain
           (us_of_ns (Int64.sub w epoch))
           (us_of_ns s.dur_ns));
      add_escaped buf s.name;
      Buffer.add_char buf ',';
      add_args buf (s.args @ id_args s);
      Buffer.add_char buf '}')
    events;
  (* Flow arrows for parent/child links that cross a process boundary —
     within a process, slice nesting already shows the relationship.  The
     flow id is the child's span id (unique per arrow). *)
  let flows =
    List.filter_map
      (fun (pid, _, w, (s : Span.t)) ->
        if Int64.equal s.parent_id 0L || Int64.equal s.span_id 0L then None
        else
          match Hashtbl.find_opt index s.parent_id with
          | Some (ppid, pw, pdom) when ppid <> pid ->
              Some (s.span_id, (ppid, pw, pdom), (pid, w, s.domain))
          | _ -> None)
      events
  in
  let flows =
    List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b) flows
  in
  List.iter
    (fun (id, (ppid, pw, pdom), (cpid, cw, cdom)) ->
      let hex = Span.id_to_hex id in
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"ph\":\"s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":\"request\",\"cat\":\"trace\",\"id\":\"0x%s\"}"
           ppid pdom
           (us_of_ns (Int64.sub pw epoch))
           hex);
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":\"request\",\"cat\":\"trace\",\"id\":\"0x%s\"}"
           cpid cdom
           (us_of_ns (Int64.sub cw epoch))
           hex))
    flows;
  Buffer.add_string buf "]}";
  Buffer.contents buf
