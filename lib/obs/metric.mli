(** A registry of named counters, gauges and fixed-bucket histograms.

    Metric handles are get-or-create: [Counter.v ~labels name] returns the
    same time series every time, so call sites need not thread handles
    around.  All mutation is serialised on the owning registry's mutex —
    cheap next to any request or analysis the metric measures.

    Names must match [[a-zA-Z_:][a-zA-Z0-9_:]*], label names
    [[a-zA-Z_][a-zA-Z0-9_]*] (the Prometheus grammar); registering an
    existing name with a different metric kind raises [Invalid_argument]. *)

type registry

val create_registry : unit -> registry

val default : registry
(** The process-wide registry, used when [?registry] is omitted. *)

module Counter : sig
  type t

  val v :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    t

  val inc : ?by:float -> t -> unit
  (** [by] defaults to [1.]; @raise Invalid_argument if [by < 0.]. *)

  val value : t -> float
end

module Gauge : sig
  type t

  val v :
    ?registry:registry ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Latency-flavoured upper bounds, 100 µs … 10 s, in seconds. *)

  val v :
    ?registry:registry ->
    ?help:string ->
    ?buckets:float array ->
    ?labels:(string * string) list ->
    string ->
    t
  (** [buckets] are strictly increasing upper bounds (the implicit [+Inf]
      bucket is added at exposition); only the first creation of a family
      fixes them.  @raise Invalid_argument on empty or non-increasing
      bounds. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
end

(** {2 Exposition support} *)

type series =
  | Sample of float  (** Counter or gauge value. *)
  | Buckets of {
      bounds : float array;
      counts : int array;  (** Per-bucket (not cumulative), same length. *)
      sum : float;
      count : int;
    }

type exposed = {
  e_name : string;
  e_help : string;
  e_kind : [ `Counter | `Gauge | `Histogram ];
  e_series : ((string * string) list * series) list;
      (** Sorted by rendered label set. *)
}

val export : registry -> exposed list
(** A consistent snapshot of the whole registry, families sorted by name —
    the input {!Prometheus.expose} renders. *)
