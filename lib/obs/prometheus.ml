let fmt_value x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labels_str = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let expose registry =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (e : Metric.exposed) ->
      if e.e_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" e.e_name (escape_help e.e_help));
      let kind =
        match e.e_kind with
        | `Counter -> "counter"
        | `Gauge -> "gauge"
        | `Histogram -> "histogram"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" e.e_name kind);
      List.iter
        (fun (labels, series) ->
          match (series : Metric.series) with
          | Metric.Sample v ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" e.e_name (labels_str labels) (fmt_value v))
          | Metric.Buckets { bounds; counts; sum; count } ->
              let cumulative = ref 0 in
              Array.iteri
                (fun i bound ->
                  cumulative := !cumulative + counts.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" e.e_name
                       (labels_str (labels @ [ ("le", fmt_value bound) ]))
                       !cumulative))
                bounds;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" e.e_name
                   (labels_str (labels @ [ ("le", "+Inf") ]))
                   count);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" e.e_name (labels_str labels)
                   (fmt_value sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" e.e_name (labels_str labels) count))
        e.e_series)
    (Metric.export registry);
  Buffer.contents buf
