(** A monotonic clock for spans and latency measurement.

    Wall-clock time ([Unix.gettimeofday]) is NTP-skewable: a clock step
    between two reads makes a latency negative or wildly wrong.  Every
    duration in the repository is measured against this clock instead.

    The primary source is [clock_gettime(CLOCK_MONOTONIC)] via a tiny C
    stub (the same one Bechamel benchmarks with).  On platforms where the
    stub is unusable the clock falls back to [Unix.gettimeofday]
    monotonicized with an atomic high-water mark — timestamps then never
    go backwards, though they can stall across a backwards step. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary (per-process) epoch.  Never decreases
    within a process; comparable only within the process. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since a previous {!now_ns} reading. *)

val source : string
(** Human-readable name of the selected time source. *)
