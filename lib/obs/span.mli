(** Begin/end spans recorded into per-domain lock-free buffers.

    Instrumentation sites call {!with_}; when tracing is disabled (the
    default) the only cost is one atomic load, so spans can live on hot
    paths and inside {!Exp.Pool} workers.  When enabled, each span is a
    single allocation pushed onto the calling domain's private buffer with
    a compare-and-set — no lock is ever taken on the recording path, so
    domains never contend with each other or with a collector.

    Spans carry W3C-style identifiers ([trace_id]/[span_id]/[parent_id],
    [0L] meaning "none") assigned from the ambient trace {!ctx}, which
    rides a per-{e thread} store: a process boundary (the serve wire
    protocol) re-establishes the context on the other side with
    {!with_context}, so one request's spans link up across client, shard,
    failover peer and replication writer.

    Buffers grow without bound while tracing is enabled; tracing is meant
    to be switched on around a bounded run (a sweep, a benchmark section)
    and drained into a trace file afterwards. *)

type t = {
  name : string;  (** Span name, e.g. ["sweep.simulate"]. *)
  args : (string * string) list;  (** Free-form key/value annotations. *)
  ts_ns : int64;  (** Start, {!Clock.now_ns} epoch. *)
  dur_ns : int64;  (** Duration; [>= 0]. *)
  domain : int;  (** Recording domain's id — one trace track per domain. *)
  trace_id : int64;  (** Request trace this span belongs to; [0L] = none. *)
  span_id : int64;  (** This span's own id; [0L] = no ambient context. *)
  parent_id : int64;  (** Parent span (possibly remote); [0L] = root. *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Globally enable/disable recording.  Spans already in flight when the
    flag flips record (or not) according to the flag at their start. *)

val with_ : ?args:(unit -> (string * string) list) -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f ()]; when tracing is enabled, records a span
    covering the call (also when [f] raises — the exception is re-raised).
    [args] is a thunk so annotation strings are only built when tracing is
    on.  When an ambient {!ctx} is set, the span gets a fresh [span_id],
    inherits the context's trace id, parents onto the context, and becomes
    the parent of spans started inside [f]. *)

val record : t -> unit
(** Push an externally constructed span (tests, replayed data).  Recorded
    regardless of {!enabled}. *)

val collect : unit -> t list
(** Snapshot of all spans recorded so far, across every domain that ever
    recorded, sorted by [(ts_ns, domain, name)].  Does not clear. *)

val drain : unit -> t list
(** {!collect}, then empty every buffer. *)

val reset : unit -> unit
(** Empty every buffer and disable recording. *)

(** {1 Trace context} *)

type ctx = {
  trace_id : int64;  (** Never [0L]. *)
  parent_span : int64;  (** Span new children parent onto; [0L] = root. *)
  sampled : bool;
      (** Head-based sampling decision, made once where the trace starts
          and carried to every hop — the request journal records exactly
          the sampled requests on every shard they touch. *)
}
(** The ambient trace context, independent of whether span {e recording}
    is enabled: context propagation (and with it journal sampling) works
    with tracing off, at the cost of a hash-table read per hop. *)

val new_trace : ?sampled:bool -> unit -> ctx
(** Fresh root context with a process-unique nonzero trace id.  [sampled]
    defaults to [true]. *)

val next_id : unit -> int64
(** A fresh nonzero span id (the generator behind {!new_trace}). *)

val current_context : unit -> ctx option
(** The calling {e thread}'s ambient context, if any. *)

val with_context : ctx -> (unit -> 'a) -> 'a
(** Run with the ambient context set for the calling thread; restores the
    previous context (also on exceptions).  Contexts are per systhread, so
    concurrent workers in one domain do not see each other's context. *)

val id_to_hex : int64 -> string
(** 16 lowercase hex characters, the wire rendering of an id. *)

val id_of_hex : string -> int64 option
(** Inverse of {!id_to_hex}: exactly 16 hex characters, else [None]. *)
