(** Begin/end spans recorded into per-domain lock-free buffers.

    Instrumentation sites call {!with_}; when tracing is disabled (the
    default) the only cost is one atomic load, so spans can live on hot
    paths and inside {!Exp.Pool} workers.  When enabled, each span is a
    single allocation pushed onto the calling domain's private buffer with
    a compare-and-set — no lock is ever taken on the recording path, so
    domains never contend with each other or with a collector.

    Buffers grow without bound while tracing is enabled; tracing is meant
    to be switched on around a bounded run (a sweep, a benchmark section)
    and drained into a trace file afterwards. *)

type t = {
  name : string;  (** Span name, e.g. ["sweep.simulate"]. *)
  args : (string * string) list;  (** Free-form key/value annotations. *)
  ts_ns : int64;  (** Start, {!Clock.now_ns} epoch. *)
  dur_ns : int64;  (** Duration; [>= 0]. *)
  domain : int;  (** Recording domain's id — one trace track per domain. *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Globally enable/disable recording.  Spans already in flight when the
    flag flips record (or not) according to the flag at their start. *)

val with_ : ?args:(unit -> (string * string) list) -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f ()]; when tracing is enabled, records a span
    covering the call (also when [f] raises — the exception is re-raised).
    [args] is a thunk so annotation strings are only built when tracing is
    on. *)

val record : t -> unit
(** Push an externally constructed span (tests, replayed data).  Recorded
    regardless of {!enabled}. *)

val collect : unit -> t list
(** Snapshot of all spans recorded so far, across every domain that ever
    recorded, sorted by [(ts_ns, domain, name)].  Does not clear. *)

val drain : unit -> t list
(** {!collect}, then empty every buffer. *)

val reset : unit -> unit
(** Empty every buffer and disable recording. *)
