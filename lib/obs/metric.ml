type cell =
  | CCounter of { mutable c : float }
  | CGauge of { mutable g : float }
  | CHist of {
      bounds : float array;
      counts : int array;
      mutable sum : float;
      mutable count : int;
    }

type kind = [ `Counter | `Gauge | `Histogram ]

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_series : ((string * string) list, cell) Hashtbl.t;
}

type registry = { mutex : Mutex.t; families : (string, family) Hashtbl.t }

let create_registry () = { mutex = Mutex.create (); families = Hashtbl.create 16 }
let default = create_registry ()

let locked r f =
  Mutex.lock r.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mutex) f

let name_ok ~allow_colon s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | ':' -> allow_colon | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | ':' -> allow_colon
         | _ -> false)
       s

let check_labels labels =
  let names = List.map fst labels in
  List.iter
    (fun n ->
      if not (name_ok ~allow_colon:false n) then
        invalid_arg (Printf.sprintf "Obs.Metric: invalid label name %S" n))
    names;
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Obs.Metric: duplicate label name";
  List.sort compare labels

(* Caller holds the registry mutex. *)
let family r ~kind ~help ~name =
  match Hashtbl.find_opt r.families name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Obs.Metric: %S is already registered with another kind" name);
      f
  | None ->
      if not (name_ok ~allow_colon:true name) then
        invalid_arg (Printf.sprintf "Obs.Metric: invalid metric name %S" name);
      let f = { f_name = name; f_help = help; f_kind = kind; f_series = Hashtbl.create 4 } in
      Hashtbl.add r.families name f;
      f

let series f ~labels ~make =
  match Hashtbl.find_opt f.f_series labels with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add f.f_series labels c;
      c

module Counter = struct
  type t = { r : registry; cell : cell }

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    let labels = check_labels labels in
    locked registry (fun () ->
        let f = family registry ~kind:`Counter ~help ~name in
        { r = registry; cell = series f ~labels ~make:(fun () -> CCounter { c = 0. }) })

  let inc ?(by = 1.) t =
    if by < 0. then invalid_arg "Obs.Metric.Counter.inc: negative increment";
    locked t.r (fun () ->
        match t.cell with CCounter c -> c.c <- c.c +. by | _ -> assert false)

  let value t =
    locked t.r (fun () -> match t.cell with CCounter c -> c.c | _ -> assert false)
end

module Gauge = struct
  type t = { r : registry; cell : cell }

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    let labels = check_labels labels in
    locked registry (fun () ->
        let f = family registry ~kind:`Gauge ~help ~name in
        { r = registry; cell = series f ~labels ~make:(fun () -> CGauge { g = 0. }) })

  let set t x =
    locked t.r (fun () ->
        match t.cell with CGauge g -> g.g <- x | _ -> assert false)

  let add t x =
    locked t.r (fun () ->
        match t.cell with CGauge g -> g.g <- g.g +. x | _ -> assert false)

  let value t =
    locked t.r (fun () -> match t.cell with CGauge g -> g.g | _ -> assert false)
end

module Histogram = struct
  type t = { r : registry; cell : cell }

  let default_buckets =
    [| 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25;
       0.5; 1.; 2.5; 5.; 10. |]

  let check_buckets b =
    if Array.length b = 0 then invalid_arg "Obs.Metric.Histogram: no buckets";
    Array.iteri
      (fun i x ->
        if not (Float.is_finite x) then
          invalid_arg "Obs.Metric.Histogram: non-finite bucket bound";
        if i > 0 && x <= b.(i - 1) then
          invalid_arg "Obs.Metric.Histogram: bucket bounds must increase")
      b

  let v ?(registry = default) ?(help = "") ?(buckets = default_buckets) ?(labels = [])
      name =
    check_buckets buckets;
    let labels = check_labels labels in
    locked registry (fun () ->
        let f = family registry ~kind:`Histogram ~help ~name in
        {
          r = registry;
          cell =
            series f ~labels ~make:(fun () ->
                CHist
                  {
                    bounds = Array.copy buckets;
                    counts = Array.make (Array.length buckets) 0;
                    sum = 0.;
                    count = 0;
                  });
        })

  let observe t x =
    locked t.r (fun () ->
        match t.cell with
        | CHist h ->
            let n = Array.length h.bounds in
            let rec find i = if i >= n then n else if x <= h.bounds.(i) then i else find (i + 1) in
            let i = find 0 in
            if i < n then h.counts.(i) <- h.counts.(i) + 1;
            (* i = n falls into the implicit +Inf bucket, counted via [count]. *)
            h.sum <- h.sum +. x;
            h.count <- h.count + 1
        | _ -> assert false)

  let count t =
    locked t.r (fun () -> match t.cell with CHist h -> h.count | _ -> assert false)

  let sum t =
    locked t.r (fun () -> match t.cell with CHist h -> h.sum | _ -> assert false)
end

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

type series =
  | Sample of float
  | Buckets of { bounds : float array; counts : int array; sum : float; count : int }

type exposed = {
  e_name : string;
  e_help : string;
  e_kind : kind;
  e_series : ((string * string) list * series) list;
}

let export r =
  locked r (fun () ->
      let families =
        List.sort
          (fun a b -> String.compare a.f_name b.f_name)
          (Hashtbl.fold (fun _ f acc -> f :: acc) r.families [])
      in
      List.map
        (fun f ->
          let rows =
            Hashtbl.fold
              (fun labels cell acc ->
                let s =
                  match cell with
                  | CCounter c -> Sample c.c
                  | CGauge g -> Sample g.g
                  | CHist h ->
                      Buckets
                        {
                          bounds = Array.copy h.bounds;
                          counts = Array.copy h.counts;
                          sum = h.sum;
                          count = h.count;
                        }
                in
                (labels, s) :: acc)
              f.f_series []
          in
          {
            e_name = f.f_name;
            e_help = f.f_help;
            e_kind = f.f_kind;
            e_series = List.sort compare rows;
          })
        families)
