type params = {
  actors_min : int;
  actors_max : int;
  exec_min : int;
  exec_max : int;
  repetition_max : int;
  extra_channels : int;
}

let default_params =
  {
    actors_min = 8;
    actors_max = 10;
    exec_min = 5;
    exec_max = 100;
    repetition_max = 3;
    extra_channels = 3;
  }

(* Rates for a channel u -> v consistent with repetition vector q:
   q.(u) * produce = q.(v) * consume. *)
let rates q u v =
  let g = Sdf.Rational.gcd q.(u) q.(v) in
  (q.(v) / g, q.(u) / g)

(* Initial tokens making channel u -> v unable to block v for a full
   iteration: v can fire q.(v) times consuming q.(v)*consume tokens. *)
let full_iteration_tokens q v ~consume = q.(v) * consume

let generate ?(params = default_params) rng ~name =
  let p = params in
  if p.actors_min < 2 || p.actors_max < p.actors_min then
    invalid_arg "Sdfgen.Generator: invalid actor count bounds";
  if p.exec_min < 1 || p.exec_max < p.exec_min then
    invalid_arg "Sdfgen.Generator: invalid execution time bounds";
  if p.repetition_max < 1 then invalid_arg "Sdfgen.Generator: repetition_max < 1";
  let n = Rng.int_in rng p.actors_min p.actors_max in
  let q = Array.init n (fun _ -> Rng.int_in rng 1 p.repetition_max) in
  (* Normalising q's gcd to 1 keeps iterations minimal. *)
  let g = Array.fold_left Sdf.Rational.gcd 0 q in
  let q = Array.map (fun v -> v / g) q in
  let actors =
    Array.init n (fun i ->
        (Printf.sprintf "%s%d" (String.lowercase_ascii name) i,
         float_of_int (Rng.int_in rng p.exec_min p.exec_max)))
  in
  (* Random actor order for the strongly-connecting cycle. *)
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  let position = Array.make n 0 in
  Array.iteri (fun pos id -> position.(id) <- pos) order;
  let channels = ref [] in
  let add_channel ~src ~dst ~tokens_for_backward =
    let produce, consume = rates q src dst in
    let backward = position.(dst) <= position.(src) in
    let tokens =
      if backward || tokens_for_backward then full_iteration_tokens q dst ~consume
      else 0
    in
    channels := (src, dst, produce, consume, tokens) :: !channels
  in
  for i = 0 to n - 1 do
    let src = order.(i) and dst = order.((i + 1) mod n) in
    add_channel ~src ~dst ~tokens_for_backward:false
  done;
  let extra = ref 0 in
  let attempts = ref 0 in
  while !extra < p.extra_channels && !attempts < 50 * p.extra_channels do
    incr attempts;
    let src = Rng.int rng n and dst = Rng.int rng n in
    let duplicate =
      List.exists (fun (s, d, _, _, _) -> s = src && d = dst) !channels
    in
    if src <> dst && not duplicate then begin
      add_channel ~src ~dst ~tokens_for_backward:false;
      incr extra
    end
  done;
  let build token_boost =
    let boosted =
      List.map
        (fun (s, d, pr, co, tk) ->
          let tk = if tk > 0 then tk * token_boost else tk in
          (s, d, pr, co, tk))
        !channels
    in
    Sdf.Graph.create ~name ~actors ~channels:(Array.of_list boosted)
  in
  (* Liveness is expected by construction (every backward channel lets its
     consumer run a full iteration); verify and boost tokens if needed. *)
  let rec ensure_live boost =
    if boost > 8 then
      invalid_arg "Sdfgen.Generator: could not make graph live (internal error)"
    else
      let g = build boost in
      if Sdf.Statespace.is_live g then g else ensure_live (boost * 2)
  in
  let g = ensure_live 1 in
  assert (Sdf.Graph.is_strongly_connected g);
  assert (Sdf.Repetition.is_consistent g);
  g

let fuzz_params ?(actors_min = 2) ?(actors_max = 6) rng =
  if actors_min < 2 || actors_max < actors_min then
    invalid_arg "Sdfgen.Generator.fuzz_params: invalid actor count bounds";
  let exec_min = Rng.int_in rng 1 10 in
  {
    actors_min;
    actors_max;
    exec_min;
    exec_max = Rng.int_in rng exec_min (exec_min + 99);
    repetition_max = Rng.int_in rng 1 4;
    extra_channels = Rng.int_in rng 0 4;
  }

let generate_many ?params ~seed count =
  let rng = Rng.create seed in
  Array.init count (fun i ->
      let name = String.make 1 (Char.chr (Char.code 'A' + (i mod 26))) in
      let name = if i < 26 then name else Printf.sprintf "%s%d" name (i / 26) in
      generate ?params (Rng.split rng) ~name)
