(** Random SDFG generator — substitute for the SDF3 tool used in the paper's
    evaluation (Stuijk, Geilen & Basten, ACSD 2006).

    Generated graphs satisfy exactly the properties the paper relies on:
    - strongly connected (every actor reachable from every actor),
    - consistent (a repetition vector exists), with small repetition entries
      like DSP/multimedia graphs,
    - live (self-timed execution never deadlocks; checked constructively),
    - random integer execution times and rates.

    Consistency is obtained by construction: a target repetition vector [q]
    is drawn first and every channel's rates are derived from it
    ([produce = q.(dst)/g], [consume = q.(src)/g], [g = gcd]), optionally
    scaled.  Strong connectivity comes from a random Hamiltonian cycle plus
    extra random channels.  Liveness is ensured by seeding enough initial
    tokens on cycle-closing channels and verified with {!Sdf.Statespace};
    the generator retries with more tokens in the unlikely failure case. *)

type params = {
  actors_min : int;  (** Inclusive lower bound on actor count (paper: 8). *)
  actors_max : int;  (** Inclusive upper bound (paper: 10). *)
  exec_min : int;  (** Execution times drawn uniformly from [exec_min ..] *)
  exec_max : int;  (** ... [exec_max] (integers, stored as floats). *)
  repetition_max : int;  (** Repetition entries drawn from [1 .. repetition_max]. *)
  extra_channels : int;  (** Random channels beyond the Hamiltonian cycle. *)
}

val default_params : params
(** 8–10 actors, execution times 5–100, repetition entries ≤ 3, 3 extra
    channels — mimicking the paper's "random SDFGs that mimic DSP or
    multimedia applications". *)

val fuzz_params : ?actors_min:int -> ?actors_max:int -> Rng.t -> params
(** A randomly drawn parameter set — the fuzzing hook of the {!Check}
    differential harness.  Execution-time range, repetition bound and extra
    channel count are sampled from [rng] (deterministically), so a fuzz seed
    explores the generator's parameter space as well as its graph space.
    The actor-count bounds are taken as given (default [2]–[6]: small graphs
    keep oracle runs fast and shrunk counterexamples readable).
    @raise Invalid_argument if [actors_min < 2] or [actors_max < actors_min]. *)

val generate : ?params:params -> Rng.t -> name:string -> Sdf.Graph.t
(** A fresh random graph drawn from [params].  Deterministic given the
    generator state.  Guaranteed strongly connected, consistent and live. *)

val generate_many : ?params:params -> seed:int -> int -> Sdf.Graph.t array
(** [generate_many ~seed n] is [n] independent graphs named ["A"], ["B"], …
    reproducibly derived from [seed]. *)
