(** Elementary symmetric polynomials.

    [e_j(x_1..x_n) = sum over all j-element subsets S of (product of x_i, i in S)],
    with [e_0 = 1].  These are the [Pi_j] terms of the paper's Equation 4. *)

val all : float array -> float array
(** [all xs] is [[| e_0; e_1; ...; e_n |]] computed by the Newton-like
    recurrence in O(n²) time (each element folded into a running coefficient
    vector). *)

val up_to : int -> float array -> float array
(** [up_to k xs] is [[| e_0; ...; e_min(k,n) |]] in O(n·k) time — the
    truncation used by the m-th order approximation. *)

val without : float array -> float -> float array
(** [without es x_i] removes element [x_i] (by value) from the polynomial
    basis:
    given [es = all xs] it returns [all (xs minus one occurrence of x_i)]
    in O(n) time by deconvolution: [e'_j = e_j - x_i * e'_(j-1)].
    Raw primitive: well-conditioned for [|x_i| <= 1] (probabilities) as long
    as the remaining coefficients keep a comparable magnitude, but the
    subtraction cancels catastrophically when they do not (removing an
    [x_i ~ 1] whose co-elements are tiny).  {!remove} is the guarded form
    that detects this and recomputes. *)

val remove : xs:float array -> skip:int -> float array -> float array
(** [remove ~xs ~skip es] is [all (xs minus the element at skip)] given
    [es = all xs]: the O(n) deconvolution of {!without}, guarded — when a
    running coefficient turns negative or has lost eight decimal digits to
    cancellation ([e'_j < 1e-8 e_j]), the result is recomputed from [xs]
    directly (O(n²), bit-identical to [all] of the remaining elements).
    This is the ⊖ of the incremental estimator state; {!fold_in} is its ⊕.
    @raise Invalid_argument if [skip] is out of range or [es] was not built
    from [xs]. *)

val fold_in : float array -> float -> float array
(** [fold_in es x] extends the basis by one element in O(n): given
    [es = all xs] it returns [all (xs + [x])], bit-identical to folding [x]
    last in {!all}.  @raise Invalid_argument on an empty basis. *)

val brute_force : int -> float array -> float
(** [brute_force j xs]: direct subset-sum definition, exponential; used only
    by tests as an oracle.  @raise Invalid_argument if [j < 0]. *)

(** {1 Allocation-free primitives}

    The building blocks behind {!remove}, shared with {!Kernel} and the
    guarded deconvolutions of {!Exact}/{!Approx}.  All of them operate on
    caller-provided buffers, take elements as [(array, index)] pairs rather
    than raw floats (so nothing is boxed at the call boundary), and perform
    no allocation — they are safe inside the zero-allocation estimator
    loops. *)

val deconvolve_into :
  es:float array -> xs:float array -> skip:int -> out:float array -> n:int -> unit
(** Write degrees [0..n-1] of the basis minus [xs.(skip)] into [out]
    ([out.(0) = 1]), reading degrees [1..n-1] of [es].  Unguarded. *)

val deconv_stable : es:float array -> out:float array -> n:int -> bool
(** Whether a {!deconvolve_into} result is trustworthy: no coefficient in
    degrees [1..n-1] went negative or fell below [1e-8] of the corresponding
    full-basis coefficient (eight decimal digits lost to cancellation). *)

val refold_skip_into :
  xs:float array -> m:int -> skip:int -> out:float array -> unit
(** Recompute fallback: degrees [0..m-1] of [xs.(0..m-1)] minus [xs.(skip)]
    by the {!all} recurrence (bit-identical to [all] of a compacted copy). *)

val refold_trunc_into :
  xs:float array -> m:int -> skip:int -> k:int -> out:float array -> unit
(** As {!refold_skip_into} but truncated at degree [k] ({!up_to}'s
    recurrence) — the fallback of the order-m estimator's deconvolution. *)
