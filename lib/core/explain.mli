(** Structured provenance for contention estimates.

    An {!Analysis.estimate} is a handful of numbers; this module records
    {e why} they came out that way: for every actor of every application in
    the use-case, the co-mapped contenders with their feasible-set
    probabilities [P] and expected blocking times [mu] (the inputs of
    Eq. 4/5/7), the resulting expected wait [W] and response time, the
    truncation order with its sandwich error bound (even truncations of
    Eq. 4 over-estimate, odd ones under-estimate), the ⊕/⊗ fold lineage of
    the composability estimator, and per application the isolation period,
    contended period and contention factor.

    The record is {e reproducing}: {!verify} re-derives every waiting time
    from the recorded contender descriptors alone and every period from the
    application graphs plus the re-derived response times, and demands
    bit-for-bit equality with the recorded values.  Since the kernel engine
    ({!Analysis.estimate_prepared}) replicates the reference floating-point
    operation sequences, a provenance record produced by {!compute} also
    reproduces a served estimate exactly — which is what the serve daemon's
    [explain] command and the shadow auditor lean on.

    The JSON codec is total: {!of_json} never raises, and
    [of_json (to_json t) = Ok t]. *)

(** A minimal JSON document — structurally the same shape as the serve
    layer's codec, which cannot be used here because [serve] sits above
    [contention].  The serve layer converts between the two representations
    at the wire boundary. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

type contender = {
  c_app : string;  (** Application the contender belongs to. *)
  c_actor : int;  (** Actor index within that application. *)
  c_p : float;  (** Blocking (feasible-set) probability [P]. *)
  c_mu : float;  (** Expected residual blocking time [mu]. *)
  c_tau : float;  (** Execution time the load was derived from. *)
}

type fold_step = {
  f_app : string;
  f_actor : int;
  f_p : float;  (** Aggregate [P] after ⊕-folding this contender (Eq. 6). *)
  f_w : float;  (** Aggregate [W] after ⊗-folding this contender (Eq. 7). *)
}

type sandwich = {
  s_order : int;  (** The truncation order [m] of Eq. 5 that was served. *)
  s_lower : float;  (** Under-estimating bracket (odd-order truncation). *)
  s_upper : float;  (** Over-estimating bracket (even-order truncation). *)
}
(** [s_upper -. s_lower] bounds the truncation error: the exact Eq. 4 value
    lies inside the bracket (Section 4.1's alternating-series argument). *)

type actor = {
  a_index : int;
  a_name : string;
  a_proc : int;  (** Processor the actor is mapped on. *)
  a_exec : float;  (** Execution time τ. *)
  a_p : float;  (** The actor's own blocking probability. *)
  a_mu : float;
  a_contenders : contender list;
      (** Co-mapped actors, in the exact order the estimator folds them. *)
  a_fold : fold_step list;
      (** ⊕/⊗ lineage — one step per contender; non-empty only for the
          composability estimator. *)
  a_sandwich : sandwich option;  (** Present only for [Order m]. *)
  a_wait : float;  (** Expected waiting time [W]. *)
  a_response : float;  (** [a_exec +. a_wait]. *)
}

type app = {
  x_app : string;
  x_isolation : float;  (** Isolation period (the application alone). *)
  x_period : float;  (** Estimated period inside the use-case. *)
  x_factor : float;  (** Contention factor: [x_period /. x_isolation]. *)
  x_throughput : float;  (** [1. /. x_period]. *)
  x_margin : Margin.t option;
      (** Confidence interval around [x_period], when one was attached
          ({!with_margins}) — statistical, so excluded from {!verify}'s
          bit-identical reproduction contract. *)
  x_actors : actor list;
}

type t = {
  estimator : string;  (** Canonical estimator name. *)
  engine : string;  (** ["mcm"] or ["statespace"]. *)
  usecase : string list;  (** Active application names, ascending. *)
  apps : app list;
}

val estimator_of_name : string -> (Analysis.estimator, string) result
(** Parse a canonical {!Analysis.estimator_name} back — exactly the names
    {!compute} stores, nothing looser. *)

val compute :
  ?engine:Analysis.period_engine ->
  Analysis.estimator ->
  Analysis.app list ->
  t
(** Run one Figure-4 pass over exactly the given applications (the
    use-case), recording provenance along the way.  Every recorded number
    is bit-identical to what {!Analysis.estimate} (and the kernel path
    behind {!Analysis.estimate_prepared}) produces for the same inputs.
    [x_margin] is [None] everywhere; see {!with_margins}. *)

val with_margins : t -> (string * Margin.t) list -> t
(** Attach confidence margins to the named applications (unknown names are
    ignored, apps not named keep [x_margin = None]).  Margins are
    statistical — produced by {!Admission.margin_for} or a {!Margin}
    constructor, not recomputed here — so attaching them never perturbs the
    record's reproducible numbers. *)

val verify : t -> Analysis.app list -> (unit, string) result
(** Re-derive the estimate from the provenance record: waiting times from
    the recorded contender descriptors via the named estimator, response
    times from the recorded execution times, periods from the application
    graphs under the re-derived response times.  [Ok ()] iff every value
    matches the record bit for bit ([Error] names the first divergence).
    The [apps] must be the use-case the record was computed for, in record
    order. *)

val to_json : t -> json

val of_json : json -> (t, string) result
(** Total: malformed documents yield [Error], never an exception. *)

val render : t -> string
(** Human-readable explanation: one block per application with its period
    provenance, one table row per actor, contenders and bounds inline. *)
