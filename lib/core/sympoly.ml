let all xs =
  let n = Array.length xs in
  let e = Array.make (n + 1) 0. in
  e.(0) <- 1.;
  Array.iteri
    (fun i x ->
      (* After folding x_0..x_i, e.(j) holds e_j of those elements; update
         from high to low degree so each x is counted once. *)
      for j = i + 1 downto 1 do
        e.(j) <- e.(j) +. (x *. e.(j - 1))
      done)
    xs;
  e

let up_to k xs =
  let n = Array.length xs in
  let k = Int.min k n in
  let e = Array.make (k + 1) 0. in
  e.(0) <- 1.;
  Array.iteri
    (fun i x ->
      for j = Int.min k (i + 1) downto 1 do
        e.(j) <- e.(j) +. (x *. e.(j - 1))
      done)
    xs;
  e

let without es x =
  let n = Array.length es - 1 in
  let e' = Array.make n 0. in
  if n > 0 then begin
    e'.(0) <- 1.;
    for j = 1 to n - 1 do
      e'.(j) <- es.(j) -. (x *. e'.(j - 1))
    done
  end
  else if n = 0 then ()
  else invalid_arg "Contention.Sympoly.without: empty polynomial";
  e'

let fold_in es x =
  let n = Array.length es in
  if n = 0 then invalid_arg "Contention.Sympoly.fold_in: empty polynomial";
  let e' = Array.make (n + 1) 0. in
  Array.blit es 0 e' 0 n;
  for j = n downto 1 do
    e'.(j) <- e'.(j) +. (x *. e'.(j - 1))
  done;
  e'

(* ------------------------------------------------------------------ *)
(* Allocation-free primitives shared with {!Kernel}.  Every function below
   takes arrays plus integer indices (never raw floats) so callers on the
   zero-allocation hot path pass values without boxing them at the call
   boundary, and none of them allocates itself. *)

(* The deconvolution e'_j = e_j - x e'_(j-1) loses precision exactly when the
   subtraction cancels: the remaining coefficient is orders of magnitude below
   the full one (e.g. removing x = 1 from a basis whose co-elements are ~1e-12
   leaves e'_j ~1e-12 computed as a difference of ~1 terms).  Flag a result
   once it has lost this many decimal digits — or turned negative, which is
   impossible for non-negative inputs — and recompute from scratch instead. *)
let cancellation_tolerance = 1e-8

let deconvolve_into ~es ~xs ~skip ~out ~n =
  if n > 0 then begin
    out.(0) <- 1.;
    let x = xs.(skip) in
    for j = 1 to n - 1 do
      out.(j) <- es.(j) -. (x *. out.(j - 1))
    done
  end

(* Coefficients this far below the (monic, e_0 = 1) basis are underflow
   beyond the distribution's support, not cancellation: a large population
   of small probabilities drives deep-degree coefficients to (sub)denormal
   range, where the recurrence leaves epsilon-negative garbage that
   contributes nothing to any downstream waiting sum (and the recurrence
   multiplier x <= 1 keeps the garbage bounded). *)
let underflow_floor = 1e-12

let rec deconv_stable_from ~es ~out ~n j =
  j >= n
  || ((es.(j) <= underflow_floor && Float.abs out.(j) <= underflow_floor)
      || (out.(j) >= 0. && out.(j) >= cancellation_tolerance *. es.(j)))
     && deconv_stable_from ~es ~out ~n (j + 1)

let deconv_stable ~es ~out ~n = deconv_stable_from ~es ~out ~n 1

(* Recompute-from-scratch fallback: the full basis of xs.(0..m-1) minus
   xs.(skip), by the same Newton recurrence as {!all} (bit-identical to
   [all] of a compacted copy).  [out] needs room for degrees 0..m-1. *)
let refold_skip_into ~xs ~m ~skip ~out =
  for j = 0 to m - 1 do
    out.(j) <- 0.
  done;
  out.(0) <- 1.;
  for i = 0 to m - 1 do
    if i <> skip then begin
      (* Fold position of element i in the compacted sequence. *)
      let pos = if i < skip then i else i - 1 in
      let x = xs.(i) in
      for j = pos + 1 downto 1 do
        out.(j) <- out.(j) +. (x *. out.(j - 1))
      done
    end
  done

(* Truncated variant (degrees 0..k), mirroring {!up_to}. *)
let refold_trunc_into ~xs ~m ~skip ~k ~out =
  for j = 0 to k do
    out.(j) <- 0.
  done;
  out.(0) <- 1.;
  for i = 0 to m - 1 do
    if i <> skip then begin
      let pos = if i < skip then i else i - 1 in
      let x = xs.(i) in
      for j = Int.min k (pos + 1) downto 1 do
        out.(j) <- out.(j) +. (x *. out.(j - 1))
      done
    end
  done

let remove ~xs ~skip es =
  let m = Array.length xs in
  if skip < 0 || skip >= m then invalid_arg "Contention.Sympoly.remove: bad index";
  if Array.length es <> m + 1 then
    invalid_arg "Contention.Sympoly.remove: basis/elements mismatch";
  let out = Array.make m 0. in
  deconvolve_into ~es ~xs ~skip ~out ~n:m;
  if not (deconv_stable ~es ~out ~n:m) then refold_skip_into ~xs ~m ~skip ~out;
  out

let brute_force j xs =
  if j < 0 then invalid_arg "Contention.Sympoly.brute_force: negative degree";
  let n = Array.length xs in
  let rec go idx remaining =
    if remaining = 0 then 1.
    else if idx >= n || n - idx < remaining then 0.
    else (xs.(idx) *. go (idx + 1) (remaining - 1)) +. go (idx + 1) remaining
  in
  go 0 j
