let waiting_time ~order loads =
  if order < 2 then invalid_arg "Contention.Approx.waiting_time: order < 2";
  match loads with
  | [] -> 0.
  | loads ->
      let ps = Array.of_list (List.map (fun (l : Prob.t) -> l.p) loads) in
      let n = Array.length ps in
      let max_degree = Int.min (order - 1) (n - 1) in
      let es = Sympoly.up_to (max_degree + 1) ps in
      let acc = ref 0. in
      List.iteri
        (fun i (l : Prob.t) ->
          (* Deconvolve only the degrees the truncation needs; on catastrophic
             cancellation fall back to refolding the other loads directly
             (same guard as {!Sympoly.remove}, truncated). *)
          let others = Array.make (max_degree + 1) 0. in
          Sympoly.deconvolve_into ~es ~xs:ps ~skip:i ~out:others ~n:(max_degree + 1);
          if not (Sympoly.deconv_stable ~es ~out:others ~n:(max_degree + 1)) then
            Sympoly.refold_trunc_into ~xs:ps ~m:n ~skip:i ~k:max_degree ~out:others;
          let series = ref 1. in
          for j = 1 to max_degree do
            series := !series +. (Exact.series_coefficient j *. others.(j))
          done;
          acc := !acc +. (Prob.waiting_product l *. !series))
        loads;
      !acc

let second_order loads =
  (* Closed form of Equation 5: W = sum_i w_i (1 + 1/2 sum_(j<>i) P_j). *)
  let p_total = List.fold_left (fun acc (l : Prob.t) -> acc +. l.p) 0. loads in
  List.fold_left
    (fun acc (l : Prob.t) ->
      acc +. (Prob.waiting_product l *. (1. +. (0.5 *. (p_total -. l.p)))))
    0. loads

let fourth_order loads = waiting_time ~order:4 loads
