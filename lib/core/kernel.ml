(* Zero-allocation estimator kernel.

   Everything here evaluates over preallocated flat float arrays: after the
   scratch buffers have grown to the workload's high-water mark (warm-up), no
   function in this module allocates on either heap.  Three rules make that
   hold on a non-flambda native compiler:

   - floats cross function boundaries as [(array, index)] pairs, never as
     arguments or results (a float argument or return value is boxed at every
     non-inlined call);
   - loop accumulators live in small float/int/bool register arrays inside
     the scratch, never in [ref] cells (each [:=] of a float ref boxes);
   - every helper is a top-level function taking its state explicitly, so no
     closure is ever built on the hot path.

   The evaluators replicate the exact floating-point operation sequences of
   the list-based reference implementations ({!Wcrt}, {!Approx}, {!Compose},
   {!Exact}, {!Sdf.Mcm}) — same fold orders, same parenthesisation, same
   guarded deconvolutions — so their results are bit-identical, which is what
   lets {!Analysis.estimate_prepared} switch engines without disturbing the
   golden 1e-9 pins or the serve daemon's cache-equality guarantees. *)

(* ------------------------------------------------------------------ *)
(* Scratch *)

type scratch = {
  mutable es : float array;  (* symmetric-polynomial basis of a target's others *)
  mutable de : float array;  (* per-contender deconvolved basis *)
  mutable ps : float array;  (* the target's others, compacted *)
  mutable dist : float array;  (* Bellman-Ford longest-path distances *)
  mutable wshift : float array;  (* lambda-shifted edge weights *)
  mutable par : int array;  (* relaxation parents, for cycle extraction *)
  f : float array;  (* float registers *)
  i : int array;  (* int registers *)
  b : bool array;  (* bool registers *)
}

let scratch () =
  {
    es = Array.make 16 0.;
    de = Array.make 16 0.;
    ps = Array.make 16 0.;
    dist = Array.make 64 0.;
    wshift = Array.make 64 0.;
    par = Array.make 64 0;
    f = Array.make 8 0.;
    i = Array.make 4 0;
    b = Array.make 4 false;
  }

let grow a n = if Array.length a < n then Array.make (Int.max n (2 * Array.length a)) 0. else a

let grow_int a n =
  if Array.length a < n then Array.make (Int.max n (2 * Array.length a)) 0 else a

let reserve_group s n =
  (* Waiting-time evaluation over a group of n members needs basis room for
     degrees 0..n and an n-element compaction buffer. *)
  s.es <- grow s.es (n + 2);
  s.de <- grow s.de (n + 2);
  s.ps <- grow s.ps (n + 2)

(* ------------------------------------------------------------------ *)
(* Waiting-time evaluators.

   Group members live in parallel arrays [p]/[mu]/[tau] at [off..off+n-1], in
   the same order the reference path's per-processor contender list has them;
   the wait inflicted on member t by the other members is written to
   [out.(off + t)].  All evaluators handle n = 1 (no contenders, wait 0). *)

let wc_into ~tau ~off ~n ~out =
  let f = out in
  for t = 0 to n - 1 do
    let m = off + t in
    f.(m) <- 0.
  done;
  (* Reference: List.fold_left (+. tau) 0. over the others in group order. *)
  for t = 0 to n - 1 do
    let m = off + t in
    for o = 0 to n - 1 do
      if o <> t then f.(m) <- f.(m) +. tau.(off + o)
    done
  done

(* Compact the target's others into s.ps (group order minus self); returns
   nothing, count is n - 1. *)
let fill_others s ~p ~off ~n ~t =
  for o = 0 to t - 1 do
    s.ps.(o) <- p.(off + o)
  done;
  for o = t + 1 to n - 1 do
    s.ps.(o - 1) <- p.(off + o)
  done

(* j-th coefficient of the Eq. 4 series: (-1)^(j+1) / (j+1), inlined from
   {!Exact.series_coefficient} (a cross-module float return would box). *)
let order_into s ~order ~p ~mu ~off ~n ~out =
  for t = 0 to n - 1 do
    let m = n - 1 in
    if m = 0 then out.(off + t) <- 0.
    else begin
      fill_others s ~p ~off ~n ~t;
      let max_degree = Int.min (order - 1) (m - 1) in
      let k = Int.min (max_degree + 1) m in
      (* es = Sympoly.up_to (max_degree + 1) ps, inlined. *)
      for j = 0 to k do
        s.es.(j) <- 0.
      done;
      s.es.(0) <- 1.;
      for i = 0 to m - 1 do
        let x = s.ps.(i) in
        for j = Int.min k (i + 1) downto 1 do
          s.es.(j) <- s.es.(j) +. (x *. s.es.(j - 1))
        done
      done;
      s.f.(0) <- 0.;
      (* acc *)
      for o = 0 to m - 1 do
        Sympoly.deconvolve_into ~es:s.es ~xs:s.ps ~skip:o ~out:s.de
          ~n:(max_degree + 1);
        if not (Sympoly.deconv_stable ~es:s.es ~out:s.de ~n:(max_degree + 1))
        then
          Sympoly.refold_trunc_into ~xs:s.ps ~m ~skip:o ~k:max_degree ~out:s.de;
        s.f.(1) <- 1.;
        (* series *)
        for j = 1 to max_degree do
          s.f.(1) <-
            s.f.(1)
            +. ((if j mod 2 = 1 then 1. else -1.)
                /. float_of_int (j + 1)
                *. s.de.(j))
        done;
        (* waiting_product l *. series, with the member index of other o *)
        let g = off + if o < t then o else o + 1 in
        s.f.(0) <- s.f.(0) +. (mu.(g) *. p.(g) *. s.f.(1))
      done;
      out.(off + t) <- s.f.(0)
    end
  done

let exact_into s ~p ~mu ~off ~n ~out =
  for t = 0 to n - 1 do
    let m = n - 1 in
    if m = 0 then out.(off + t) <- 0.
    else begin
      fill_others s ~p ~off ~n ~t;
      (* es = Sympoly.all ps, inlined. *)
      for j = 0 to m do
        s.es.(j) <- 0.
      done;
      s.es.(0) <- 1.;
      for i = 0 to m - 1 do
        let x = s.ps.(i) in
        for j = i + 1 downto 1 do
          s.es.(j) <- s.es.(j) +. (x *. s.es.(j - 1))
        done
      done;
      s.f.(0) <- 0.;
      for o = 0 to m - 1 do
        (* Guarded removal, as {!Sympoly.remove}. *)
        Sympoly.deconvolve_into ~es:s.es ~xs:s.ps ~skip:o ~out:s.de ~n:m;
        if not (Sympoly.deconv_stable ~es:s.es ~out:s.de ~n:m) then
          Sympoly.refold_skip_into ~xs:s.ps ~m ~skip:o ~out:s.de;
        s.f.(1) <- 1.;
        for j = 1 to m - 1 do
          s.f.(1) <-
            s.f.(1)
            +. ((if j mod 2 = 1 then 1. else -1.)
                /. float_of_int (j + 1)
                *. s.de.(j))
        done;
        let g = off + if o < t then o else o + 1 in
        s.f.(0) <- s.f.(0) +. (mu.(g) *. p.(g) *. s.f.(1))
      done;
      out.(off + t) <- s.f.(0)
    end
  done

let comp_into s ~p ~mu ~off ~n ~out =
  for t = 0 to n - 1 do
    (* Reference: (Compose.combine_all (List.map of_load others)).w — a left
       fold of the ⊗ of Eq. 9 from the empty aggregate, in group order.  ⊗ is
       only second-order associative, so the fold order below must match the
       reference list exactly. *)
    s.f.(0) <- 0.;
    (* aggregate p *)
    s.f.(1) <- 0.;
    (* aggregate w *)
    for o = 0 to n - 1 do
      if o <> t then begin
        let g = off + o in
        let bp = p.(g) in
        let bw = mu.(g) *. p.(g) in
        let ap = s.f.(0) and aw = s.f.(1) in
        s.f.(0) <- ap +. bp -. (ap *. bp);
        s.f.(1) <- (aw *. (1. +. (bp /. 2.))) +. (bw *. (1. +. (ap /. 2.)))
      end
    done;
    out.(off + t) <- s.f.(1)
  done

(* ------------------------------------------------------------------ *)
(* Flat maximum cycle ratio *)

type graph = {
  nnodes : int;
  src : int array;
  dst : int array;
  wactor : int array;  (* actor index weighting each edge (its source node) *)
  delay : float array;  (* pre-converted to float; >= 0 by construction *)
  zero_delay_cycle : bool;  (* topology-invariant, hoisted out of the search *)
  source_name : string;  (* for error messages *)
}

let graph ~nnodes ~name edges =
  let ne = Array.length edges in
  let src = Array.make (Int.max 1 ne) 0
  and dst = Array.make (Int.max 1 ne) 0
  and wactor = Array.make (Int.max 1 ne) 0
  and delay = Array.make (Int.max 1 ne) 0. in
  Array.iteri
    (fun e (u, v, a, d) ->
      if d < 0 then invalid_arg "Contention.Kernel.graph: negative delay";
      if u < 0 || u >= nnodes || v < 0 || v >= nnodes then
        invalid_arg "Contention.Kernel.graph: edge endpoint out of range";
      src.(e) <- u;
      dst.(e) <- v;
      wactor.(e) <- a;
      delay.(e) <- float_of_int d)
    edges;
  (* Zero-delay-cycle DFS, once per graph (Sdf.Mcm recomputes it per period
     call; the answer only depends on topology). *)
  let adj = Array.make (Int.max 1 nnodes) [] in
  Array.iter (fun (u, v, _, d) -> if d = 0 then adj.(u) <- v :: adj.(u)) edges;
  let color = Array.make (Int.max 1 nnodes) 0 in
  let found = ref false in
  let rec visit u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if not !found then
          if color.(v) = 1 then found := true else if color.(v) = 0 then visit v)
      adj.(u);
    color.(u) <- 2
  in
  for u = 0 to nnodes - 1 do
    if color.(u) = 0 && not !found then visit u
  done;
  {
    nnodes;
    src;
    dst;
    wactor;
    delay;
    zero_delay_cycle = !found;
    source_name = name;
  }

let num_edges g = Array.length g.src

let reserve_graph s g =
  s.dist <- grow s.dist g.nnodes;
  s.par <- grow_int s.par g.nnodes;
  s.wshift <- grow s.wshift (num_edges g)

(* One positive-cycle probe at lambda = s.f.(4), result in s.b.(0).
   Bit-identical to Sdf.Mcm.has_positive_cycle over the shifted edges
   (relaxation tolerance 1e-12, round bound, edge order). *)
let probe s g ~exec ~exec_off =
  let ne = num_edges g in
  for e = 0 to ne - 1 do
    s.wshift.(e) <- exec.(exec_off + g.wactor.(e)) -. (s.f.(4) *. g.delay.(e))
  done;
  for v = 0 to g.nnodes - 1 do
    s.dist.(v) <- 0.
  done;
  s.b.(0) <- true;
  (* changed *)
  s.i.(0) <- 0;
  (* round *)
  while s.b.(0) && s.i.(0) <= g.nnodes do
    s.b.(0) <- false;
    s.i.(0) <- s.i.(0) + 1;
    for e = 0 to ne - 1 do
      let candidate = s.dist.(g.src.(e)) +. s.wshift.(e) in
      if candidate > s.dist.(g.dst.(e)) +. 1e-12 then begin
        s.dist.(g.dst.(e)) <- candidate;
        s.b.(0) <- true
      end
    done
  done

let no_cycle_msg g =
  Printf.sprintf "Sdf.Hsdf.period: graph %S has no cycle (unbounded rate)"
    g.source_name

(* Positive-cycle probe at lambda = s.f.(4) with parent tracking: when a
   positive cycle exists (s.b.(0)), a witness cycle is extracted from the
   relaxation parents and its exact ratio (sum of weights over sum of
   delays) is written to s.f.(5).  The standard Bellman-Ford argument
   guarantees that a node still relaxed after [nnodes] rounds has a parent
   chain longer than [nnodes], so walking [nnodes] parents lands inside a
   cycle, and every parent-graph cycle has strictly positive shifted
   weight — hence a ratio strictly above lambda. *)
let probe_extract s g ~exec ~exec_off =
  let ne = num_edges g in
  for e = 0 to ne - 1 do
    s.wshift.(e) <- exec.(exec_off + g.wactor.(e)) -. (s.f.(4) *. g.delay.(e))
  done;
  for v = 0 to g.nnodes - 1 do
    s.dist.(v) <- 0.;
    s.par.(v) <- -1
  done;
  s.b.(0) <- true;
  s.i.(0) <- 0;
  s.i.(1) <- -1;
  (* witness: last node relaxed *)
  while s.b.(0) && s.i.(0) <= g.nnodes do
    s.b.(0) <- false;
    s.i.(0) <- s.i.(0) + 1;
    for e = 0 to ne - 1 do
      let candidate = s.dist.(g.src.(e)) +. s.wshift.(e) in
      if candidate > s.dist.(g.dst.(e)) +. 1e-12 then begin
        s.dist.(g.dst.(e)) <- candidate;
        s.par.(g.dst.(e)) <- e;
        s.b.(0) <- true;
        s.i.(1) <- g.dst.(e)
      end
    done
  done;
  if s.b.(0) then begin
    s.i.(2) <- s.i.(1);
    for _ = 1 to g.nnodes do
      s.i.(2) <- g.src.(s.par.(s.i.(2)))
    done;
    s.f.(5) <- 0.;
    (* weight sum *)
    s.f.(6) <- 0.;
    (* delay sum; >= 1 — zero-delay cycles were rejected up front *)
    s.i.(1) <- s.i.(2);
    s.b.(1) <- true;
    while s.b.(1) do
      let e = s.par.(s.i.(1)) in
      s.f.(5) <- s.f.(5) +. exec.(exec_off + g.wactor.(e));
      s.f.(6) <- s.f.(6) +. g.delay.(e);
      s.i.(1) <- g.src.(e);
      if s.i.(1) = s.i.(2) then s.b.(1) <- false
    done;
    s.f.(5) <- s.f.(5) /. s.f.(6)
  end

(* Dinkelbach (critical-cycle) iteration: starting from lambda = 0, repeatedly
   jump to the ratio of a witness positive cycle until no positive cycle
   remains.  On success (s.b.(2)) the converged lambda in s.f.(7) equals the
   maximum cycle ratio to within Bellman-Ford's relaxation fuzz: it IS some
   cycle's ratio (a lower bound up to roundoff) and the final probe certifies
   no cycle beats it.  Bails out (s.b.(2) false) on a numerical stall or
   failure to converge; callers then fall back to uncertified search. *)
let mcr_estimate s g ~exec ~exec_off =
  s.f.(7) <- 0.;
  s.b.(2) <- true;
  s.i.(3) <- 0;
  s.b.(3) <- true;
  while s.b.(3) do
    s.f.(4) <- s.f.(7);
    probe_extract s g ~exec ~exec_off;
    if not s.b.(0) then s.b.(3) <- false
    else if s.f.(5) <= s.f.(7) then begin
      (* The witness ratio did not improve: roundoff territory, and the
         no-cycle-above-lambda certificate does not hold.  Bail out. *)
      s.b.(3) <- false;
      s.b.(2) <- false
    end
    else begin
      s.f.(7) <- s.f.(5);
      s.i.(3) <- s.i.(3) + 1;
      if s.i.(3) > 64 then begin
        s.b.(3) <- false;
        s.b.(2) <- false
      end
    end
  done

let period_into s g ~exec ~exec_off ~out ~out_idx =
  reserve_graph s g;
  let ne = num_edges g in
  for e = 0 to ne - 1 do
    if exec.(exec_off + g.wactor.(e)) < 0. then
      invalid_arg "Sdf.Mcm: negative weight or delay"
  done;
  if ne = 0 then invalid_arg (no_cycle_msg g);
  if g.zero_delay_cycle then
    invalid_arg "Sdf.Mcm.max_cycle_ratio: zero-delay cycle (deadlock)";
  (* total_weight, folded in edge order like the reference. *)
  s.f.(0) <- 0.;
  for e = 0 to ne - 1 do
    s.f.(0) <- s.f.(0) +. exec.(exec_off + g.wactor.(e))
  done;
  s.f.(4) <- -1.;
  probe s g ~exec ~exec_off;
  if not s.b.(0) then invalid_arg (no_cycle_msg g);
  (* A certified ratio estimate first: probes of the Lawler search landing
     outside its guard band have a provable outcome and are skipped, leaving
     only the handful of probes near the answer to run for real.  The guard
     dwarfs the Bellman-Ford relaxation fuzz (edges x ulp of the largest
     longest-path distance, itself bounded by the total weight), so every
     predicted outcome equals what the probe would have computed and the
     bisection trajectory — hence the result — is bit-identical to the
     reference, just cheaper. *)
  mcr_estimate s g ~exec ~exec_off;
  let certified = s.b.(2) in
  let mcr = s.f.(7) in
  (* Fuzz scales with ulp of the largest longest-path distance (bounded by
     the total weight) times the round count; the factor below keeps two to
     three orders of magnitude of margin over that while leaving only the
     final ~10 probes to run for real. *)
  let guard = (s.f.(0) +. Float.abs mcr +. 2.) *. 1e-11 in
  (* Lawler binary search: lo in f.(1), hi in f.(2), epsilon 1e-9. *)
  s.f.(1) <- 0.;
  s.f.(2) <- s.f.(0) +. 1.;
  while s.f.(2) -. s.f.(1) > 1e-9 do
    s.f.(4) <- 0.5 *. (s.f.(1) +. s.f.(2));
    if certified && s.f.(4) > mcr +. guard then s.b.(0) <- false
    else if certified && s.f.(4) < mcr -. guard then s.b.(0) <- true
    else probe s g ~exec ~exec_off;
    if s.b.(0) then s.f.(1) <- s.f.(4) else s.f.(2) <- s.f.(4)
  done;
  out.(out_idx) <- 0.5 *. (s.f.(1) +. s.f.(2))

(* ------------------------------------------------------------------ *)
(* Incremental per-processor symmetric-polynomial state *)

module Group = struct
  type t = {
    mutable n : int;
    mutable ids : int array;
    mutable ps : float array;
    mutable mus : float array;
    mutable taus : float array;
    mutable es : float array;  (* degrees 0..n valid *)
    mutable sc1 : float array;  (* basis minus the excluded member *)
    mutable sc2 : float array;  (* basis minus excluded and contender *)
    mutable xs : float array;  (* compaction buffer for fallbacks *)
    drift_bound : float;
    mutable drift : float;  (* accumulated deconvolution error estimate *)
    mutable rebuilds : int;  (* guard fallbacks on the state path *)
    mutable drift_refolds : int;  (* refolds forced by the drift bound *)
  }

  let create ?(capacity = 8) ?(drift_bound = 1e-6) () =
    if not (drift_bound > 0.) then
      invalid_arg "Contention.Kernel.Group.create: non-positive drift bound";
    let c = Int.max 2 capacity in
    {
      n = 0;
      ids = Array.make c 0;
      ps = Array.make c 0.;
      mus = Array.make c 0.;
      taus = Array.make c 0.;
      es = (let e = Array.make (c + 1) 0. in e.(0) <- 1.; e);
      sc1 = Array.make (c + 1) 0.;
      sc2 = Array.make (c + 1) 0.;
      xs = Array.make (c + 1) 0.;
      drift_bound;
      drift = 0.;
      rebuilds = 0;
      drift_refolds = 0;
    }

  let size g = g.n
  let es g = g.es
  let drift g = g.drift
  let rebuilds g = g.rebuilds
  let drift_refolds g = g.drift_refolds

  let grow_int a n = if Array.length a < n then (
    let b = Array.make (Int.max n (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a); b)
    else a

  let grow_keep a n =
    if Array.length a < n then (
      let b = Array.make (Int.max n (2 * Array.length a)) 0. in
      Array.blit a 0 b 0 (Array.length a);
      b)
    else a

  let reserve g n =
    g.ids <- grow_int g.ids n;
    g.ps <- grow_keep g.ps n;
    g.mus <- grow_keep g.mus n;
    g.taus <- grow_keep g.taus n;
    g.es <- grow_keep g.es (n + 1);
    g.sc1 <- grow_keep g.sc1 (n + 1);
    g.sc2 <- grow_keep g.sc2 (n + 1);
    g.xs <- grow_keep g.xs (n + 1)

  let index_of g id =
    let rec go i = if i >= g.n then -1 else if g.ids.(i) = id then i else go (i + 1) in
    go 0

  let mem g id = index_of g id >= 0

  (* Rebuild es from the member list — the O(n²) reference the deltas are
     checked against, and the fallback when a removal cancels.  Exact in the
     member list, so it zeroes the drift accumulator. *)
  let recompute g =
    for j = 0 to g.n do
      g.es.(j) <- 0.
    done;
    g.es.(0) <- 1.;
    for i = 0 to g.n - 1 do
      let x = g.ps.(i) in
      for j = i + 1 downto 1 do
        g.es.(j) <- g.es.(j) +. (x *. g.es.(j - 1))
      done
    done;
    g.drift <- 0.

  let es_reference g =
    let out = Array.make (g.n + 1) 0. in
    out.(0) <- 1.;
    for i = 0 to g.n - 1 do
      let x = g.ps.(i) in
      for j = i + 1 downto 1 do
        out.(j) <- out.(j) +. (x *. out.(j - 1))
      done
    done;
    out

  let add g ~id ~p ~mu ~tau =
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Contention.Kernel.Group.add: probability outside [0,1]";
    if mem g id then invalid_arg "Contention.Kernel.Group.add: duplicate id";
    reserve g (g.n + 1);
    g.ids.(g.n) <- id;
    g.ps.(g.n) <- p;
    g.mus.(g.n) <- mu;
    g.taus.(g.n) <- tau;
    (* ⊕: one O(n) reconvolution step, es := es ⊛ (1 + p·z). *)
    for j = g.n + 1 downto 1 do
      g.es.(j) <- g.es.(j) +. (p *. g.es.(j - 1))
    done;
    g.n <- g.n + 1

  (* ⊖: guarded O(n) deconvolution of member [i]'s probability, with the
     O(n²) recompute fallback of {!Sympoly.remove}.  Returns [true] when the
     guard fired and sc1 was rebuilt exactly from the member list. *)
  let deconvolve_member g i =
    Sympoly.deconvolve_into ~es:g.es ~xs:g.ps ~skip:i ~out:g.sc1 ~n:g.n;
    let stable = Sympoly.deconv_stable ~es:g.es ~out:g.sc1 ~n:g.n in
    if not stable then
      Sympoly.refold_skip_into ~xs:g.ps ~m:g.n ~skip:i ~out:g.sc1;
    not stable

  (* Account one state-changing deconvolution: a guard fallback leaves an
     exact basis (rebuilds++, drift := 0); an unguarded deconvolution keeps
     relative error O(n·ulp), which we accumulate pessimistically and trade
     for one exact O(n²) refold once it crosses [drift_bound]. *)
  let account_state_deconv g ~fell_back =
    if fell_back then begin
      g.rebuilds <- g.rebuilds + 1;
      g.drift <- 0.
    end
    else begin
      g.drift <- g.drift +. (float_of_int (g.n + 1) *. epsilon_float);
      if g.drift > g.drift_bound then begin
        recompute g;
        g.drift_refolds <- g.drift_refolds + 1
      end
    end

  let remove g ~id =
    let i = index_of g id in
    if i < 0 then invalid_arg "Contention.Kernel.Group.remove: unknown id";
    let fell_back = deconvolve_member g i in
    (* sc1 now holds the basis without member i; it becomes the new es. *)
    let last = g.n - 1 in
    g.ids.(i) <- g.ids.(last);
    g.ps.(i) <- g.ps.(last);
    g.mus.(i) <- g.mus.(last);
    g.taus.(i) <- g.taus.(last);
    g.n <- last;
    for j = 0 to last do
      g.es.(j) <- g.sc1.(j)
    done;
    g.es.(last + 1) <- 0.;
    account_state_deconv g ~fell_back

  let update g ~id ~p ~mu ~tau =
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Contention.Kernel.Group.update: probability outside [0,1]";
    let i = index_of g id in
    if i < 0 then invalid_arg "Contention.Kernel.Group.update: unknown id";
    (* Replace = deconvolve the old probability, refold the new one: the O(n)
       delta of the issue's incremental Eq. 4 state. *)
    let fell_back = deconvolve_member g i in
    g.ps.(i) <- p;
    g.mus.(i) <- mu;
    g.taus.(i) <- tau;
    for j = 0 to g.n - 1 do
      g.es.(j) <- g.sc1.(j)
    done;
    g.es.(g.n) <- 0.;
    for j = g.n downto 1 do
      g.es.(j) <- g.es.(j) +. (p *. g.es.(j - 1))
    done;
    account_state_deconv g ~fell_back

  (* Expected wait inflicted by the group on one observer.  [excluding] is
     the observer's own member index for an admitted actor (its load must not
     block itself), or -1 for an outside candidate.  Uses the maintained
     basis: one guarded deconvolution for the observer, one per contender —
     O(n) each, never an O(n²) rebuild unless a guard fires. *)
  let series_waiting g ~excluding ~max_degree_of =
    let m = if excluding >= 0 then g.n - 1 else g.n in
    if m = 0 then 0.
    else begin
      (* Contenders, compacted; their basis in sc1. *)
      let base =
        if excluding >= 0 then begin
          (* Query path: the fallback rebuilds sc1 exactly but leaves es
             untouched, so it is not a state rebuild. *)
          let (_ : bool) = deconvolve_member g excluding in
          g.sc1
        end
        else g.es
      in
      for i = 0 to g.n - 1 do
        if i <> excluding then
          g.xs.(if excluding >= 0 && i > excluding then i - 1 else i) <- g.ps.(i)
      done;
      let max_degree = max_degree_of m in
      let acc = ref 0. in
      for o = 0 to m - 1 do
        Sympoly.deconvolve_into ~es:base ~xs:g.xs ~skip:o ~out:g.sc2
          ~n:(max_degree + 1);
        if not (Sympoly.deconv_stable ~es:base ~out:g.sc2 ~n:(max_degree + 1))
        then
          Sympoly.refold_trunc_into ~xs:g.xs ~m ~skip:o ~k:max_degree ~out:g.sc2;
        let series = ref 1. in
        for j = 1 to max_degree do
          series :=
            !series
            +. ((if j mod 2 = 1 then 1. else -1.)
                /. float_of_int (j + 1)
                *. g.sc2.(j))
        done;
        let gi = if excluding >= 0 && o >= excluding then o + 1 else o in
        acc := !acc +. (g.mus.(gi) *. g.ps.(gi) *. !series)
      done;
      !acc
    end

  let exact_waiting g ~excluding:id =
    let t = match id with None -> -1 | Some id -> index_of g id in
    (match id with
    | Some id when t < 0 ->
        invalid_arg
          (Printf.sprintf "Contention.Kernel.Group.exact_waiting: unknown id %d" id)
    | _ -> ());
    series_waiting g ~excluding:t ~max_degree_of:(fun m -> m - 1)

  let order_waiting g ~order ~excluding:id =
    if order < 2 then invalid_arg "Contention.Approx.waiting_time: order < 2";
    let t = match id with None -> -1 | Some id -> index_of g id in
    (match id with
    | Some id when t < 0 ->
        invalid_arg
          (Printf.sprintf "Contention.Kernel.Group.order_waiting: unknown id %d" id)
    | _ -> ());
    series_waiting g ~excluding:t ~max_degree_of:(fun m ->
        Int.min (order - 1) (m - 1))

  let wc_waiting g ~excluding:id =
    let t = match id with None -> -1 | Some id -> index_of g id in
    (match id with
    | Some id when t < 0 ->
        invalid_arg
          (Printf.sprintf "Contention.Kernel.Group.wc_waiting: unknown id %d" id)
    | _ -> ());
    let acc = ref 0. in
    for i = 0 to g.n - 1 do
      if i <> t then acc := !acc +. g.taus.(i)
    done;
    !acc
end
