(** Execution-time distributions — the paper's Section 6 extension to
    "varying execution times ... that follow a probabilistic distribution".

    The analysis needs exactly two moments of an actor's execution time [X]:
    - the {e mean} [E X], which drives the blocking probability
      [P = E X * q / Per];
    - the {e mean residual life} [E X² / (2 E X)], which replaces the
      constant-time [mu = tau / 2] as the average blocking time.  (For an
      observer arriving at a random busy instant, longer firings are
      proportionally more likely to be in progress — the inspection paradox —
      so the residual is larger than half the mean unless [X] is constant.) *)

type t =
  | Constant of float  (** The paper's base model; residual [tau / 2]. *)
  | Uniform of { lo : float; hi : float }
      (** Uniform on [\[lo, hi\]], e.g. data-dependent decode times. *)
  | Discrete of (float * float) list
      (** [(value, weight)] pairs; weights need not be normalised.  Models
          profiled execution-time histograms. *)
  | Exponential of { mean : float }
      (** Memoryless tail; residual equals the mean. *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive values, empty or negative-weight
    discrete lists, or [lo > hi]. *)

val mean : t -> float
val second_moment : t -> float
val variance : t -> float
val third_moment : t -> float

val residual : t -> float
(** Mean residual life [second_moment / (2 * mean)] — the generalised
    average blocking time [mu]. *)

val residual_second_moment : t -> float
(** Second moment of the stationary residual life,
    [third_moment / (3 * mean)] — the ingredient of a blocking-time
    {e variance}, which the admission margins need on top of the mean
    ({!Margin}). *)

val residual_variance : t -> float
(** [residual_second_moment - residual²]. *)

val residual_sample : t -> u1:float -> u2:float -> float
(** One draw from the stationary residual-life distribution: the
    length-biased firing is selected by inversion with [u1] and the position
    inside it with [u2] (for the memoryless exponential only [u1] matters).
    Deterministic in [(u1, u2)]; its expectation is {!residual}.
    @raise Invalid_argument if either uniform is outside [\[0,1)]. *)

val sample : t -> u:float -> float
(** [sample d ~u] maps a uniform [u] in [\[0,1)] to a draw from [d] by
    inversion.  Deterministic in [u], so simulations stay reproducible.
    @raise Invalid_argument if [u] is outside [\[0,1)]. *)

val pp : Format.formatter -> t -> unit
