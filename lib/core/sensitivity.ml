type impact = {
  victim : string;
  removed : string;
  period_with : float;
  period_without : float;
  relief_pct : float;
}

let name_of (a : Analysis.app) = a.graph.Sdf.Graph.name

let period_of results name =
  List.find_map
    (fun (r : Analysis.estimate) ->
      if name_of r.for_app = name then Some r.period else None)
    results

let leave_one_out ?(pmap = List.map) ?(estimator = Analysis.Order 2) apps =
  let full = Analysis.estimate estimator apps in
  List.concat
  @@ pmap
       (fun (removed : Analysis.app) ->
      let rest = List.filter (fun a -> a != removed) apps in
      let partial = Analysis.estimate estimator rest in
      List.filter_map
        (fun (victim : Analysis.app) ->
          if victim == removed then None
          else
            let vname = name_of victim in
            match (period_of full vname, period_of partial vname) with
            | Some period_with, Some period_without ->
                Some
                  {
                    victim = vname;
                    removed = name_of removed;
                    period_with;
                    period_without;
                    relief_pct =
                      100. *. (period_with -. period_without) /. period_with;
                  }
            | _ -> None)
        apps)
       apps

let rank_for ?pmap ?estimator ~victim apps =
  if not (List.exists (fun a -> name_of a = victim) apps) then raise Not_found;
  leave_one_out ?pmap ?estimator apps
  |> List.filter (fun i -> i.victim = victim)
  |> List.sort (fun a b -> Float.compare b.relief_pct a.relief_pct)

let render impacts =
  let rows =
    List.map
      (fun i ->
        [
          i.victim;
          i.removed;
          Repro_stats.Table.float_cell i.period_with;
          Repro_stats.Table.float_cell i.period_without;
          Repro_stats.Table.float_cell i.relief_pct;
        ])
      impacts
  in
  Repro_stats.Table.render
    ~header:[ "Victim"; "Removed"; "Period with"; "Period without"; "Relief %" ]
    rows
