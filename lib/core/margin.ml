type method_ = Z_score | Quantile

let method_to_string = function Z_score -> "z-score" | Quantile -> "quantile"

let method_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "z-score" | "zscore" | "z" -> Ok Z_score
  | "quantile" | "q" -> Ok Quantile
  | s -> Error (Printf.sprintf "unknown margin method %S" s)

type t = {
  confidence : float;
  method_ : method_;
  period : float;
  lo : float;
  hi : float;
  mean : float;
  std : float;
  samples : int;
}

let validate m =
  let finite x = Float.is_finite x in
  if not (m.confidence > 0. && m.confidence < 1.) then
    Error "margin confidence outside (0,1)"
  else if not (finite m.period && finite m.lo && finite m.hi) then
    Error "margin bounds must be finite"
  else if m.lo > m.hi then Error "margin lo > hi"
  else if m.period < m.lo || m.period > m.hi then
    Error "margin bounds do not contain the period"
  else if not (finite m.mean && finite m.std) || m.std < 0. then
    Error "margin std must be finite and non-negative"
  else if m.samples < 0 then Error "margin samples must be non-negative"
  else Ok ()

(* Acklam's rational approximation of the standard-normal inverse CDF,
   relative error below 1.2e-9 over (0,1) — more than enough for a
   safety-margin z. *)
let probit p =
  let a =
    [|
      -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
      1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00;
    |]
  and b =
    [|
      -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
      6.680131188771972e+01; -1.328068155288572e+01;
    |]
  and c =
    [|
      -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
      -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00;
    |]
  and d =
    [|
      7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
     *. q +. c.(5))
    /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  else if p > 1. -. p_low then
    let q = sqrt (-2. *. log (1. -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q +. c.(5))
    /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
     *. r +. a.(5))
    *. q
    /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
        *. r +. 1.)

let z_of_confidence confidence =
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Contention.Margin.z_of_confidence: confidence outside (0,1)";
  probit ((1. +. confidence) /. 2.)

let quantile xs ~q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Contention.Margin.quantile: empty array";
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Contention.Margin.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let i = Int.min (n - 2) (Int.max 0 (int_of_float pos)) in
    let frac = pos -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))

let of_bounds ~confidence ~period ~lo ~hi =
  let z = z_of_confidence confidence in
  if lo > hi then invalid_arg "Contention.Margin.of_bounds: lo > hi";
  let lo = Float.min lo period and hi = Float.max hi period in
  let std = (hi -. lo) /. (2. *. z) in
  { confidence; method_ = Z_score; period; lo; hi; mean = period; std; samples = 0 }

let of_samples ~confidence ~period samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Contention.Margin.of_samples: no samples";
  let z = z_of_confidence confidence in
  ignore z;
  let alpha = (1. -. confidence) /. 2. in
  let lo = quantile samples ~q:alpha and hi = quantile samples ~q:(1. -. alpha) in
  let mean = Array.fold_left ( +. ) 0. samples /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. samples
    /. float_of_int n
  in
  {
    confidence;
    method_ = Quantile;
    period;
    lo = Float.min lo period;
    hi = Float.max hi period;
    mean;
    std = sqrt (Float.max 0. var);
    samples = n;
  }

let covers m x = m.lo <= x && x <= m.hi
let width m = m.hi -. m.lo
let rel_width m = if m.period > 0. then width m /. m.period else 0.

module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  let next t =
    t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let uniform t =
    (* 53 high bits into [0,1). *)
    let bits = Int64.shift_right_logical (next t) 11 in
    Int64.to_float bits *. (1. /. 9007199254740992.)
end
