type estimator = Worst_case | Order of int | Composability | Exact

let estimator_name = function
  | Worst_case -> "worst-case"
  | Order 2 -> "second-order"
  | Order 4 -> "fourth-order"
  | Order m -> Printf.sprintf "order-%d" m
  | Composability -> "composability"
  | Exact -> "exact"

let all_paper_estimators = [ Worst_case; Order 4; Order 2; Composability ]

type period_engine = Mcm | Statespace

type app = {
  graph : Sdf.Graph.t;
  mapping : Mapping.t;
  repetition : int array;
  isolation_period : float;
  distributions : Dist.t array option;
}

let app ?period ?procs ?distributions graph ~mapping =
  (match procs with
  | Some procs -> Mapping.validate ~procs graph mapping
  | None ->
      if Array.length mapping <> Sdf.Graph.num_actors graph then
        invalid_arg "Contention.Analysis.app: mapping length mismatch");
  let graph =
    match distributions with
    | None -> graph
    | Some dists ->
        if Array.length dists <> Sdf.Graph.num_actors graph then
          invalid_arg "Contention.Analysis.app: distributions length mismatch";
        Array.iter Dist.validate dists;
        (* Throughput computations run on the mean execution times. *)
        Sdf.Graph.with_exec_times graph (Array.map Dist.mean dists)
  in
  let repetition = Sdf.Repetition.compute_exn graph in
  let isolation_period =
    match period with Some p -> p | None -> Sdf.Statespace.period_exn graph
  in
  if isolation_period <= 0. then
    invalid_arg "Contention.Analysis.app: non-positive period";
  { graph; mapping; repetition; isolation_period; distributions }

let loads_with_period a period =
  Array.init (Sdf.Graph.num_actors a.graph) (fun i ->
      match a.distributions with
      | Some dists ->
          Prob.of_distribution ~dist:dists.(i) ~repetitions:a.repetition.(i) ~period
      | None ->
          Prob.of_actor
            ~exec_time:(Sdf.Graph.actor a.graph i).exec_time
            ~repetitions:a.repetition.(i) ~period)

let loads a = loads_with_period a a.isolation_period

let loads_at_period a ~period =
  if period <= 0. then invalid_arg "Contention.Analysis.loads_at_period: period <= 0";
  loads_with_period a period

type estimate = {
  for_app : app;
  waiting_times : float array;
  response_times : float array;
  period : float;
}

let throughput e = 1. /. e.period

let adjusted_graph e = Sdf.Graph.with_exec_times e.for_app.graph e.response_times

let contended_metrics e = Sdf.Metrics.analyse (adjusted_graph e)

let waiting_time_for est others =
  match est with
  | Worst_case -> Wcrt.waiting_time others
  | Order m -> Approx.waiting_time ~order:m others
  | Composability -> Compose.waiting_time others
  | Exact -> Exact.waiting_time others

type cache = { cached_loads : Prob.t array; expansion : Sdf.Hsdf.t }

let prepare a =
  Obs.Span.with_ ~name:"analysis.prepare"
    ~args:(fun () -> [ ("app", a.graph.Sdf.Graph.name) ])
    (fun () ->
      let cached_loads =
        Obs.Span.with_ ~name:"analysis.loads" (fun () -> loads a)
      in
      let expansion =
        Obs.Span.with_ ~name:"hsdf.expand" (fun () -> Sdf.Hsdf.expand a.graph)
      in
      { cached_loads; expansion })

(* Period of [a] with response times as execution times.  A cached HSDF
   expansion short-circuits the expensive part of the MCM engine: the
   expansion topology is execution-time-invariant, only the node weights
   change between passes. *)
let compute_period engine expansion (a : app) response_times =
  match (engine, expansion) with
  | Mcm, Some h -> Sdf.Hsdf.period_of_expansion h ~exec_times:response_times
  | Mcm, None -> Sdf.Hsdf.period (Sdf.Graph.with_exec_times a.graph response_times)
  | Statespace, _ ->
      Sdf.Statespace.period_exn (Sdf.Graph.with_exec_times a.graph response_times)

(* One pass of the Figure 4 algorithm given per-app loads. *)
let one_pass engine est (apps : app array) (app_loads : Prob.t array array)
    (expansions : Sdf.Hsdf.t option array) =
  (* Node occupancy: which (app, actor) pairs share each processor. *)
  let by_node = Hashtbl.create 16 in
  Array.iteri
    (fun ai a ->
      Array.iteri
        (fun actor proc ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_node proc) in
          Hashtbl.replace by_node proc ((ai, actor) :: existing))
        a.mapping)
    apps;
  let span_args a () = [ ("app", a.graph.Sdf.Graph.name); ("estimator", estimator_name est) ] in
  let estimate_one ai a =
    let n = Sdf.Graph.num_actors a.graph in
    (* Eq. 4/5/6: blocking probabilities folded into per-actor waits. *)
    let waiting_times =
      Obs.Span.with_ ~name:"analysis.waiting" ~args:(span_args a) (fun () ->
          Array.init n (fun actor ->
              let proc = a.mapping.(actor) in
              let on_node = Option.value ~default:[] (Hashtbl.find_opt by_node proc) in
              let others =
                List.filter_map
                  (fun (aj, actor_j) ->
                    if aj = ai && actor_j = actor then None
                    else Some app_loads.(aj).(actor_j))
                  on_node
              in
              waiting_time_for est others))
    in
    let response_times =
      Array.init n (fun actor ->
          (Sdf.Graph.actor a.graph actor).exec_time +. waiting_times.(actor))
    in
    let period =
      Obs.Span.with_ ~name:"analysis.period" ~args:(span_args a) (fun () ->
          compute_period engine expansions.(ai) a response_times)
    in
    { for_app = a; waiting_times; response_times; period }
  in
  Array.mapi estimate_one apps

let expansions_for engine apps =
  match engine with
  | Mcm -> Array.map (fun (a : app) -> Some (Sdf.Hsdf.expand a.graph)) apps
  | Statespace -> Array.map (fun _ -> None) apps

let estimate_args est n () =
  [ ("estimator", estimator_name est); ("apps", string_of_int n) ]

let estimate ?(engine = Mcm) ?(iterations = 1) est apps =
  if iterations < 1 then invalid_arg "Contention.Analysis.estimate: iterations < 1";
  match apps with
  | [] -> []
  | apps ->
      Obs.Span.with_ ~name:"analysis.estimate"
        ~args:(estimate_args est (List.length apps))
        (fun () ->
          let apps = Array.of_list apps in
          let expansions = expansions_for engine apps in
          let rec refine pass loads_now =
            let results = one_pass engine est apps loads_now expansions in
            if pass >= iterations then results
            else
              (* Fixed-point refinement: blocking probabilities from the newly
                 estimated periods (execution times stay the original tau). *)
              let next =
                Array.mapi (fun ai a -> loads_with_period a results.(ai).period) apps
              in
              refine (pass + 1) next
          in
          Array.to_list (refine 1 (Array.map loads apps)))

let estimate_prepared ?(engine = Mcm) est pairs =
  match pairs with
  | [] -> []
  | pairs ->
      Obs.Span.with_ ~name:"analysis.estimate"
        ~args:(estimate_args est (List.length pairs))
        (fun () ->
          let apps = Array.of_list (List.map fst pairs) in
          let caches = Array.of_list (List.map snd pairs) in
          Array.iteri
            (fun i (a : app) ->
              if Array.length caches.(i).cached_loads <> Sdf.Graph.num_actors a.graph then
                invalid_arg "Contention.Analysis.estimate_prepared: cache/app mismatch")
            apps;
          let loads = Array.map (fun c -> c.cached_loads) caches in
          let expansions =
            match engine with
            | Mcm -> Array.map (fun c -> Some c.expansion) caches
            | Statespace -> Array.map (fun _ -> None) caches
          in
          Array.to_list (one_pass engine est apps loads expansions))

let estimate_with_loads ?(engine = Mcm) est pairs =
  match pairs with
  | [] -> []
  | pairs ->
      let apps = Array.of_list (List.map fst pairs) in
      let loads =
        Array.of_list
          (List.map
             (fun ((a : app), loads) ->
               if Array.length loads <> Sdf.Graph.num_actors a.graph then
                 invalid_arg "Contention.Analysis.estimate_with_loads: length mismatch";
               loads)
             pairs)
      in
      Array.to_list (one_pass engine est apps loads (expansions_for engine apps))

let estimate_calibrated ?engine est measured =
  estimate_with_loads ?engine est
    (List.map
       (fun (a, period) ->
         if period <= 0. then
           invalid_arg "Contention.Analysis.estimate_calibrated: period <= 0";
         (a, loads_with_period a period))
       measured)
