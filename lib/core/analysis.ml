type estimator = Worst_case | Order of int | Composability | Exact

let estimator_name = function
  | Worst_case -> "worst-case"
  | Order 2 -> "second-order"
  | Order 4 -> "fourth-order"
  | Order m -> Printf.sprintf "order-%d" m
  | Composability -> "composability"
  | Exact -> "exact"

let all_paper_estimators = [ Worst_case; Order 4; Order 2; Composability ]

type period_engine = Mcm | Statespace

type app = {
  graph : Sdf.Graph.t;
  mapping : Mapping.t;
  repetition : int array;
  isolation_period : float;
  distributions : Dist.t array option;
}

let app ?period ?procs ?distributions graph ~mapping =
  (match procs with
  | Some procs -> Mapping.validate ~procs graph mapping
  | None ->
      if Array.length mapping <> Sdf.Graph.num_actors graph then
        invalid_arg "Contention.Analysis.app: mapping length mismatch");
  let graph =
    match distributions with
    | None -> graph
    | Some dists ->
        if Array.length dists <> Sdf.Graph.num_actors graph then
          invalid_arg "Contention.Analysis.app: distributions length mismatch";
        Array.iter Dist.validate dists;
        (* Throughput computations run on the mean execution times. *)
        Sdf.Graph.with_exec_times graph (Array.map Dist.mean dists)
  in
  let repetition = Sdf.Repetition.compute_exn graph in
  let isolation_period =
    match period with Some p -> p | None -> Sdf.Statespace.period_exn graph
  in
  if isolation_period <= 0. then
    invalid_arg "Contention.Analysis.app: non-positive period";
  { graph; mapping; repetition; isolation_period; distributions }

let loads_with_period a period =
  Array.init (Sdf.Graph.num_actors a.graph) (fun i ->
      match a.distributions with
      | Some dists ->
          Prob.of_distribution ~dist:dists.(i) ~repetitions:a.repetition.(i) ~period
      | None ->
          Prob.of_actor
            ~exec_time:(Sdf.Graph.actor a.graph i).exec_time
            ~repetitions:a.repetition.(i) ~period)

let loads a = loads_with_period a a.isolation_period

let loads_at_period a ~period =
  if period <= 0. then invalid_arg "Contention.Analysis.loads_at_period: period <= 0";
  loads_with_period a period

type estimate = {
  for_app : app;
  waiting_times : float array;
  response_times : float array;
  period : float;
}

let throughput e = 1. /. e.period

let adjusted_graph e = Sdf.Graph.with_exec_times e.for_app.graph e.response_times

let contended_metrics e = Sdf.Metrics.analyse (adjusted_graph e)

let waiting_time_for est others =
  match est with
  | Worst_case -> Wcrt.waiting_time others
  | Order m -> Approx.waiting_time ~order:m others
  | Composability -> Compose.waiting_time others
  | Exact -> Exact.waiting_time others

type cache = {
  cached_loads : Prob.t array;
  expansion : Sdf.Hsdf.t;
  cached_exec : float array;  (* per-actor execution times, flat *)
  mcr : Kernel.graph;  (* the expansion flattened for the kernel engine *)
}

(* The kernel engine's period search reads the expansion as flat edge arrays;
   the weight of an edge is the response time of its source node's actor, so
   each edge carries that actor index. *)
let flatten_expansion (a : app) (h : Sdf.Hsdf.t) =
  Kernel.graph
    ~nnodes:(Sdf.Hsdf.num_nodes h)
    ~name:a.graph.Sdf.Graph.name
    (Array.map
       (fun (e : Sdf.Hsdf.edge) ->
         (e.from_node, e.to_node, h.nodes.(e.from_node).Sdf.Hsdf.actor, e.delay))
       h.edges)

let prepare a =
  Obs.Span.with_ ~name:"analysis.prepare"
    ~args:(fun () -> [ ("app", a.graph.Sdf.Graph.name) ])
    (fun () ->
      let cached_loads =
        Obs.Span.with_ ~name:"analysis.loads" (fun () -> loads a)
      in
      let expansion =
        Obs.Span.with_ ~name:"hsdf.expand" (fun () -> Sdf.Hsdf.expand a.graph)
      in
      {
        cached_loads;
        expansion;
        cached_exec = Sdf.Graph.exec_times a.graph;
        mcr = flatten_expansion a expansion;
      })

(* Period of [a] with response times as execution times.  A cached HSDF
   expansion short-circuits the expensive part of the MCM engine: the
   expansion topology is execution-time-invariant, only the node weights
   change between passes. *)
let compute_period engine expansion (a : app) response_times =
  match (engine, expansion) with
  | Mcm, Some h -> Sdf.Hsdf.period_of_expansion h ~exec_times:response_times
  | Mcm, None -> Sdf.Hsdf.period (Sdf.Graph.with_exec_times a.graph response_times)
  | Statespace, _ ->
      Sdf.Statespace.period_exn (Sdf.Graph.with_exec_times a.graph response_times)

(* One pass of the Figure 4 algorithm given per-app loads. *)
let one_pass engine est (apps : app array) (app_loads : Prob.t array array)
    (expansions : Sdf.Hsdf.t option array) =
  (* Node occupancy: which (app, actor) pairs share each processor. *)
  let by_node = Hashtbl.create 16 in
  Array.iteri
    (fun ai a ->
      Array.iteri
        (fun actor proc ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_node proc) in
          Hashtbl.replace by_node proc ((ai, actor) :: existing))
        a.mapping)
    apps;
  let span_args a () = [ ("app", a.graph.Sdf.Graph.name); ("estimator", estimator_name est) ] in
  let estimate_one ai a =
    let n = Sdf.Graph.num_actors a.graph in
    (* Eq. 4/5/6: blocking probabilities folded into per-actor waits. *)
    let waiting_times =
      Obs.Span.with_ ~name:"analysis.waiting" ~args:(span_args a) (fun () ->
          Array.init n (fun actor ->
              let proc = a.mapping.(actor) in
              let on_node = Option.value ~default:[] (Hashtbl.find_opt by_node proc) in
              let others =
                List.filter_map
                  (fun (aj, actor_j) ->
                    if aj = ai && actor_j = actor then None
                    else Some app_loads.(aj).(actor_j))
                  on_node
              in
              waiting_time_for est others))
    in
    let response_times =
      Array.init n (fun actor ->
          (Sdf.Graph.actor a.graph actor).exec_time +. waiting_times.(actor))
    in
    let period =
      Obs.Span.with_ ~name:"analysis.period" ~args:(span_args a) (fun () ->
          compute_period engine expansions.(ai) a response_times)
    in
    { for_app = a; waiting_times; response_times; period }
  in
  Array.mapi estimate_one apps

let expansions_for engine apps =
  match engine with
  | Mcm -> Array.map (fun (a : app) -> Some (Sdf.Hsdf.expand a.graph)) apps
  | Statespace -> Array.map (fun _ -> None) apps

let estimate_args est n () =
  [ ("estimator", estimator_name est); ("apps", string_of_int n) ]

let estimate ?(engine = Mcm) ?(iterations = 1) est apps =
  if iterations < 1 then invalid_arg "Contention.Analysis.estimate: iterations < 1";
  match apps with
  | [] -> []
  | apps ->
      Obs.Span.with_ ~name:"analysis.estimate"
        ~args:(estimate_args est (List.length apps))
        (fun () ->
          let apps = Array.of_list apps in
          let expansions = expansions_for engine apps in
          let rec refine pass loads_now =
            let results = one_pass engine est apps loads_now expansions in
            if pass >= iterations then results
            else
              (* Fixed-point refinement: blocking probabilities from the newly
                 estimated periods (execution times stay the original tau). *)
              let next =
                Array.mapi (fun ai a -> loads_with_period a results.(ai).period) apps
              in
              refine (pass + 1) next
          in
          Array.to_list (refine 1 (Array.map loads apps)))

let estimate_prepared_reference ?(engine = Mcm) est pairs =
  match pairs with
  | [] -> []
  | pairs ->
      Obs.Span.with_ ~name:"analysis.estimate"
        ~args:(estimate_args est (List.length pairs))
        (fun () ->
          let apps = Array.of_list (List.map fst pairs) in
          let caches = Array.of_list (List.map snd pairs) in
          Array.iteri
            (fun i (a : app) ->
              if Array.length caches.(i).cached_loads <> Sdf.Graph.num_actors a.graph then
                invalid_arg "Contention.Analysis.estimate_prepared: cache/app mismatch")
            apps;
          let loads = Array.map (fun c -> c.cached_loads) caches in
          let expansions =
            match engine with
            | Mcm -> Array.map (fun c -> Some c.expansion) caches
            | Statespace -> Array.map (fun _ -> None) caches
          in
          Array.to_list (one_pass engine est apps loads expansions))

(* ------------------------------------------------------------------ *)
(* Kernel engine: the Figure-4 pass over preallocated flat arrays.

   The reference path above allocates per use-case (occupancy Hashtbl,
   contender lists, per-probe shifted-edge arrays in {!Sdf.Mcm}); the kernel
   path lays the use-case's actors out as contiguous per-processor member
   slots in a reusable {!workspace} and evaluates the {!Kernel} estimators
   over them.  Results are bit-identical to the reference — {!Kernel}
   replicates the floating-point operation sequences — which [exact_check]
   and the fuzzing oracle verify. *)

type workspace = {
  ker : Kernel.scratch;
  mutable group_of_proc : int array;  (* processor id -> group index this pass *)
  mutable gstart : int array;  (* per group: first member slot *)
  mutable gcount : int array;
  mutable gfill : int array;
  mutable app_off : int array;  (* per active app: base of its member range *)
  mutable slot : int array;  (* app_off + actor -> member slot *)
  mutable active : int array;  (* use-case's app indices, ascending *)
  mutable g_p : float array;  (* per member slot: blocking probability *)
  mutable g_mu : float array;
  mutable g_tau : float array;
  mutable g_wait : float array;
  mutable resp : float array;  (* one app's response times *)
  mutable periods : float array;
  r : int array;  (* int registers: counters without ref-cell boxing *)
}

let grow_f a n =
  if Array.length a < n then Array.make (Int.max n (2 * Array.length a)) 0. else a

let grow_i a n =
  if Array.length a < n then Array.make (Int.max n (2 * Array.length a)) 0 else a

let workspace () =
  {
    ker = Kernel.scratch ();
    group_of_proc = Array.make 16 0;
    gstart = Array.make 16 0;
    gcount = Array.make 16 0;
    gfill = Array.make 16 0;
    app_off = Array.make 16 0;
    slot = Array.make 64 0;
    active = Array.make 16 0;
    g_p = Array.make 64 0.;
    g_mu = Array.make 64 0.;
    g_tau = Array.make 64 0.;
    g_wait = Array.make 64 0.;
    resp = Array.make 32 0.;
    periods = Array.make 16 0.;
    r = Array.make 8 0;
  }

let workspace_key = Domain.DLS.new_key workspace
let shared_workspace () = Domain.DLS.get workspace_key

(* One Figure-4 pass on the kernel engine.  [active] lists the indices of the
   use-case's applications into [apps]/[caches] in ascending order (the order
   the reference receives its pairs in); the period of [active.(k)] is
   written to [out.(k)], the per-actor waits stay in [ws.g_wait] addressed
   through [ws.slot]/[ws.app_off].  Allocation-free once [ws] has grown to
   the workload's high-water mark. *)
let kernel_pass ws est (apps : app array) (caches : cache array)
    (active : int array) nactive ~(out : float array) =
  (* Member layout: one slot per (active app, actor). *)
  ws.app_off <- grow_i ws.app_off nactive;
  ws.r.(0) <- 0;
  (* total members *)
  ws.r.(2) <- 0;
  (* max processor id + 1 *)
  ws.r.(3) <- 0;
  (* max actors of one app *)
  for k = 0 to nactive - 1 do
    let a = apps.(active.(k)) in
    let n = Array.length a.mapping in
    ws.app_off.(k) <- ws.r.(0);
    ws.r.(0) <- ws.r.(0) + n;
    if n > ws.r.(3) then ws.r.(3) <- n;
    for actor = 0 to n - 1 do
      if a.mapping.(actor) + 1 > ws.r.(2) then ws.r.(2) <- a.mapping.(actor) + 1
    done
  done;
  let nmembers = ws.r.(0) in
  ws.slot <- grow_i ws.slot nmembers;
  ws.g_p <- grow_f ws.g_p nmembers;
  ws.g_mu <- grow_f ws.g_mu nmembers;
  ws.g_tau <- grow_f ws.g_tau nmembers;
  ws.g_wait <- grow_f ws.g_wait nmembers;
  ws.group_of_proc <- grow_i ws.group_of_proc ws.r.(2);
  ws.gstart <- grow_i ws.gstart (Int.max 1 nmembers);
  ws.gcount <- grow_i ws.gcount (Int.max 1 nmembers);
  ws.gfill <- grow_i ws.gfill (Int.max 1 nmembers);
  ws.resp <- grow_f ws.resp ws.r.(3);
  for p = 0 to ws.r.(2) - 1 do
    ws.group_of_proc.(p) <- -1
  done;
  (* Group the members by processor, groups numbered in first-seen order. *)
  ws.r.(1) <- 0;
  (* group count *)
  for k = 0 to nactive - 1 do
    let a = apps.(active.(k)) in
    for actor = 0 to Array.length a.mapping - 1 do
      let proc = a.mapping.(actor) in
      if ws.group_of_proc.(proc) < 0 then begin
        ws.group_of_proc.(proc) <- ws.r.(1);
        ws.gcount.(ws.r.(1)) <- 0;
        ws.r.(1) <- ws.r.(1) + 1
      end;
      let g = ws.group_of_proc.(proc) in
      ws.gcount.(g) <- ws.gcount.(g) + 1
    done
  done;
  let ngroups = ws.r.(1) in
  ws.r.(4) <- 0;
  for g = 0 to ngroups - 1 do
    ws.gstart.(g) <- ws.r.(4);
    ws.gfill.(g) <- 0;
    ws.r.(4) <- ws.r.(4) + ws.gcount.(g)
  done;
  (* Fill the member slots in descending (app, actor) order: the reference
     builds each per-processor contender list by prepending during an
     ascending scan, so its head is the largest (app, actor) pair and the
     fold over the others runs descending. *)
  for k = nactive - 1 downto 0 do
    let ai = active.(k) in
    let a = apps.(ai) in
    let loads = caches.(ai).cached_loads in
    for actor = Array.length a.mapping - 1 downto 0 do
      let g = ws.group_of_proc.(a.mapping.(actor)) in
      let s = ws.gstart.(g) + ws.gfill.(g) in
      ws.gfill.(g) <- ws.gfill.(g) + 1;
      ws.slot.(ws.app_off.(k) + actor) <- s;
      let l = loads.(actor) in
      ws.g_p.(s) <- l.Prob.p;
      ws.g_mu.(s) <- l.Prob.mu;
      ws.g_tau.(s) <- l.Prob.tau
    done
  done;
  (* Waiting times, one evaluator call per processor group. *)
  ws.r.(5) <- 0;
  for g = 0 to ngroups - 1 do
    if ws.gcount.(g) > ws.r.(5) then ws.r.(5) <- ws.gcount.(g)
  done;
  Kernel.reserve_group ws.ker ws.r.(5);
  (match est with
  | Worst_case ->
      for g = 0 to ngroups - 1 do
        Kernel.wc_into ~tau:ws.g_tau ~off:ws.gstart.(g) ~n:ws.gcount.(g)
          ~out:ws.g_wait
      done
  | Order m ->
      if m < 2 then invalid_arg "Contention.Approx.waiting_time: order < 2";
      for g = 0 to ngroups - 1 do
        Kernel.order_into ws.ker ~order:m ~p:ws.g_p ~mu:ws.g_mu
          ~off:ws.gstart.(g) ~n:ws.gcount.(g) ~out:ws.g_wait
      done
  | Composability ->
      for g = 0 to ngroups - 1 do
        Kernel.comp_into ws.ker ~p:ws.g_p ~mu:ws.g_mu ~off:ws.gstart.(g)
          ~n:ws.gcount.(g) ~out:ws.g_wait
      done
  | Exact ->
      for g = 0 to ngroups - 1 do
        Kernel.exact_into ws.ker ~p:ws.g_p ~mu:ws.g_mu ~off:ws.gstart.(g)
          ~n:ws.gcount.(g) ~out:ws.g_wait
      done);
  (* Response times and periods per application. *)
  for k = 0 to nactive - 1 do
    let c = caches.(active.(k)) in
    for actor = 0 to Array.length c.cached_exec - 1 do
      ws.resp.(actor) <-
        c.cached_exec.(actor) +. ws.g_wait.(ws.slot.(ws.app_off.(k) + actor))
    done;
    Kernel.period_into ws.ker c.mcr ~exec:ws.resp ~exec_off:0 ~out ~out_idx:k
  done

(* Materialise estimate records for the active apps of the last
   [kernel_pass] (this part allocates; the zero-allocation entry point is
   {!estimate_periods_into}). *)
let collect_results ws (apps : app array) (caches : cache array)
    (active : int array) nactive =
  Array.to_list
    (Array.init nactive (fun k ->
         let ai = active.(k) in
         let a = apps.(ai) in
         let n = Sdf.Graph.num_actors a.graph in
         let waiting_times =
           Array.init n (fun actor ->
               ws.g_wait.(ws.slot.(ws.app_off.(k) + actor)))
         in
         let response_times =
           Array.init n (fun actor ->
               caches.(ai).cached_exec.(actor) +. waiting_times.(actor))
         in
         { for_app = a; waiting_times; response_times; period = ws.periods.(k) }))

let exact_check_tolerance = 1e-9

let check_against_reference est pairs results =
  let refs = estimate_prepared_reference est pairs in
  List.iter2
    (fun (k : estimate) (r : estimate) ->
      let diverged = ref "" in
      let chk what a b =
        if
          !diverged = ""
          && (not (Float.is_nan a && Float.is_nan b))
          && not (Float.abs (a -. b) <= exact_check_tolerance)
        then diverged := Printf.sprintf "%s (%.17g vs %.17g)" what a b
      in
      chk "period" k.period r.period;
      Array.iteri
        (fun i w -> chk (Printf.sprintf "waiting_times.(%d)" i) w r.waiting_times.(i))
        k.waiting_times;
      Array.iteri
        (fun i w ->
          chk (Printf.sprintf "response_times.(%d)" i) w r.response_times.(i))
        k.response_times;
      if !diverged <> "" then
        failwith
          (Printf.sprintf
             "Contention.Analysis: kernel/reference divergence on app %S, \
              estimator %s: %s"
             k.for_app.graph.Sdf.Graph.name (estimator_name est) !diverged))
    results refs

let estimate_prepared ?(engine = Mcm) ?workspace:ws ?(exact_check = false) est
    pairs =
  match pairs with
  | [] -> []
  | pairs -> (
      match engine with
      | Statespace ->
          (* The kernel only implements the MCM period engine. *)
          estimate_prepared_reference ~engine est pairs
      | Mcm ->
          Obs.Span.with_ ~name:"analysis.estimate"
            ~args:(estimate_args est (List.length pairs))
            (fun () ->
              let apps = Array.of_list (List.map fst pairs) in
              let caches = Array.of_list (List.map snd pairs) in
              Array.iteri
                (fun i (a : app) ->
                  if
                    Array.length caches.(i).cached_loads
                    <> Sdf.Graph.num_actors a.graph
                  then
                    invalid_arg
                      "Contention.Analysis.estimate_prepared: cache/app mismatch")
                apps;
              let ws = match ws with Some w -> w | None -> shared_workspace () in
              let nactive = Array.length apps in
              let active = Array.init nactive Fun.id in
              ws.periods <- grow_f ws.periods nactive;
              kernel_pass ws est apps caches active nactive ~out:ws.periods;
              let results = collect_results ws apps caches active nactive in
              if exact_check then check_against_reference est pairs results;
              results))

(* ------------------------------------------------------------------ *)
(* Batched evaluation: many use-cases of one prepared workload. *)

type prepared = { papps : app array; pcaches : cache array }

let prepare_workload ?caches apps =
  let caches =
    match caches with Some cs -> cs | None -> Array.map prepare apps
  in
  if Array.length caches <> Array.length apps then
    invalid_arg "Contention.Analysis.prepare_workload: one cache per app";
  Array.iteri
    (fun i (a : app) ->
      if Array.length caches.(i).cached_loads <> Sdf.Graph.num_actors a.graph then
        invalid_arg "Contention.Analysis.prepare_workload: cache/app mismatch")
    apps;
  { papps = Array.copy apps; pcaches = Array.copy caches }

let estimate_periods_into ws est (p : prepared) ~usecase ~out =
  ws.active <- grow_i ws.active (Array.length p.papps);
  ws.r.(6) <- 0;
  for ai = 0 to Array.length p.papps - 1 do
    if Usecase.mem ai usecase then begin
      ws.active.(ws.r.(6)) <- ai;
      ws.r.(6) <- ws.r.(6) + 1
    end
  done;
  let nactive = ws.r.(6) in
  if nactive > 0 then
    kernel_pass ws est p.papps p.pcaches ws.active nactive ~out;
  nactive

let pairs_of p usecase =
  List.map (fun ai -> (p.papps.(ai), p.pcaches.(ai))) (Usecase.to_list usecase)

let estimate_batch ?(engine = Mcm) ?workspace:ws ?(exact_check = false) est p
    usecases =
  match engine with
  | Statespace ->
      List.map
        (fun usecase ->
          estimate_prepared_reference ~engine est (pairs_of p usecase))
        usecases
  | Mcm ->
      let ws = match ws with Some w -> w | None -> shared_workspace () in
      List.map
        (fun usecase ->
          Obs.Span.with_ ~name:"analysis.estimate"
            ~args:(estimate_args est (Usecase.cardinal usecase))
            (fun () ->
              ws.periods <- grow_f ws.periods (Array.length p.papps);
              let nactive =
                estimate_periods_into ws est p ~usecase ~out:ws.periods
              in
              let results =
                collect_results ws p.papps p.pcaches ws.active nactive
              in
              if exact_check then
                check_against_reference est (pairs_of p usecase) results;
              results))
        usecases

let estimate_with_loads ?(engine = Mcm) est pairs =
  match pairs with
  | [] -> []
  | pairs ->
      let apps = Array.of_list (List.map fst pairs) in
      let loads =
        Array.of_list
          (List.map
             (fun ((a : app), loads) ->
               if Array.length loads <> Sdf.Graph.num_actors a.graph then
                 invalid_arg "Contention.Analysis.estimate_with_loads: length mismatch";
               loads)
             pairs)
      in
      Array.to_list (one_pass engine est apps loads (expansions_for engine apps))

let estimate_calibrated ?engine est measured =
  estimate_with_loads ?engine est
    (List.map
       (fun (a, period) ->
         if period <= 0. then
           invalid_arg "Contention.Analysis.estimate_calibrated: period <= 0";
         (a, loads_with_period a period))
       measured)
