type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Discrete of (float * float) list
  | Exponential of { mean : float }

let validate = function
  | Constant v ->
      if v <= 0. then invalid_arg "Contention.Dist: non-positive constant"
  | Uniform { lo; hi } ->
      if lo <= 0. || hi < lo then invalid_arg "Contention.Dist: bad uniform bounds"
  | Discrete [] -> invalid_arg "Contention.Dist: empty discrete distribution"
  | Discrete pairs ->
      List.iter
        (fun (v, w) ->
          if v <= 0. then invalid_arg "Contention.Dist: non-positive discrete value";
          if w < 0. then invalid_arg "Contention.Dist: negative weight")
        pairs;
      if List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs <= 0. then
        invalid_arg "Contention.Dist: zero total weight"
  | Exponential { mean } ->
      if mean <= 0. then invalid_arg "Contention.Dist: non-positive mean"

let discrete_moment pairs power =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  List.fold_left (fun acc (v, w) -> acc +. (w *. (v ** power))) 0. pairs /. total

let mean d =
  validate d;
  match d with
  | Constant v -> v
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Discrete pairs -> discrete_moment pairs 1.
  | Exponential { mean } -> mean

let second_moment d =
  validate d;
  match d with
  | Constant v -> v *. v
  | Uniform { lo; hi } ->
      (* E X^2 = (hi^3 - lo^3) / (3 (hi - lo)), with the degenerate case. *)
      if hi = lo then lo *. lo
      else ((hi ** 3.) -. (lo ** 3.)) /. (3. *. (hi -. lo))
  | Discrete pairs -> discrete_moment pairs 2.
  | Exponential { mean } -> 2. *. mean *. mean

let variance d =
  let m = mean d in
  second_moment d -. (m *. m)

let third_moment d =
  validate d;
  match d with
  | Constant v -> v *. v *. v
  | Uniform { lo; hi } ->
      (* E X^3 = (hi^4 - lo^4) / (4 (hi - lo)), with the degenerate case. *)
      if hi = lo then lo *. lo *. lo
      else ((hi ** 4.) -. (lo ** 4.)) /. (4. *. (hi -. lo))
  | Discrete pairs -> discrete_moment pairs 3.
  | Exponential { mean } -> 6. *. mean *. mean *. mean

let residual d = second_moment d /. (2. *. mean d)

(* The stationary residual life R has density S(t) / E X, so
   E R^2 = integral t^2 S(t) dt / E X = E X^3 / (3 E X). *)
let residual_second_moment d = third_moment d /. (3. *. mean d)

let residual_variance d =
  let r = residual d in
  residual_second_moment d -. (r *. r)

let residual_sample d ~u1 ~u2 =
  validate d;
  if u1 < 0. || u1 >= 1. then
    invalid_arg "Contention.Dist.residual_sample: u1 outside [0,1)";
  if u2 < 0. || u2 >= 1. then
    invalid_arg "Contention.Dist.residual_sample: u2 outside [0,1)";
  (* Draw the firing the observer lands in from the length-biased
     distribution (density x f(x) / E X) with [u1], then a uniform position
     inside it with [u2] — the inspection-paradox construction of the
     stationary residual.  The exponential is memoryless, so its residual is
     itself exponential. *)
  match d with
  | Constant v -> u2 *. v
  | Uniform { lo; hi } ->
      if hi = lo then u2 *. lo
      else
        let x = sqrt ((lo *. lo) +. (u1 *. ((hi *. hi) -. (lo *. lo)))) in
        u2 *. x
  | Discrete pairs ->
      let total = List.fold_left (fun acc (v, w) -> acc +. (w *. v)) 0. pairs in
      let target = u1 *. total in
      let rec pick acc = function
        | [] -> assert false
        | [ (v, _) ] -> v
        | (v, w) :: rest ->
            if acc +. (w *. v) > target then v else pick (acc +. (w *. v)) rest
      in
      u2 *. pick 0. pairs
  | Exponential { mean } -> -.mean *. log (1. -. u1)

let sample d ~u =
  validate d;
  if u < 0. || u >= 1. then invalid_arg "Contention.Dist.sample: u outside [0,1)";
  match d with
  | Constant v -> v
  | Uniform { lo; hi } -> lo +. (u *. (hi -. lo))
  | Discrete pairs ->
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
      let target = u *. total in
      let rec pick acc = function
        | [] -> assert false
        | [ (v, _) ] -> v
        | (v, w) :: rest -> if acc +. w > target then v else pick (acc +. w) rest
      in
      pick 0. pairs
  | Exponential { mean } -> -.mean *. log (1. -. u)

let pp ppf = function
  | Constant v -> Format.fprintf ppf "const(%g)" v
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Discrete pairs ->
      Format.fprintf ppf "discrete(%s)"
        (String.concat "; " (List.map (fun (v, w) -> Printf.sprintf "%g:%g" v w) pairs))
  | Exponential { mean } -> Format.fprintf ppf "exp(%g)" mean
