(** Confidence margins for contended-period estimates.

    The admission controller ({!Admission}) answers with a {e point}
    estimate of the candidate's contended period; this module wraps that
    point in a probabilistic bound, in the style of WCET profiling
    (p99/p999 percentile bounds, z-score confidence intervals): the served
    period is accompanied by an interval [\[lo, hi\]] that the application's
    {e realised} period is claimed to fall into with the requested
    confidence.

    Two variants, selected per request:
    - {e z-score} ([Z_score]): a normal approximation around the analytic
      mean — cheap (two extra period evaluations), symmetric in the waiting
      times, exact only to the extent the aggregate wait is
      normal-ish;
    - {e empirical quantile} ([Quantile]): seeded Monte-Carlo draws of the
      per-node blocking (Bernoulli arrivals × residual-life draws from the
      per-actor execution-time distributions, {!Dist.residual_sample}),
      a period per draw, and order-statistic quantiles at
      [(1 ± confidence) / 2] — heavier, but faithful to skewed and
      multi-modal distributions.

    Margins are {e deterministic}: the Monte-Carlo variant derives its RNG
    stream from an explicit seed, so a served margin can be reproduced bit
    for bit (the [explain --verify] contract extends to margins). *)

type method_ = Z_score | Quantile

val method_to_string : method_ -> string
(** ["z-score"] | ["quantile"] — the wire names. *)

val method_of_string : string -> (method_, string) result
(** Accepts the canonical names plus the aliases ["z"] and ["q"]. *)

type t = {
  confidence : float;  (** Requested confidence level, in (0, 1). *)
  method_ : method_;
  period : float;  (** The served point estimate the margin wraps. *)
  lo : float;  (** Lower period bound, [lo <= period]. *)
  hi : float;  (** Upper period bound, [hi >= period]. *)
  mean : float;  (** Mean of the margin model (= [period] for z-score). *)
  std : float;  (** Spread of the margin model (z: implied, q: sample). *)
  samples : int;  (** Monte-Carlo draws behind a quantile margin; 0 for z. *)
}

val validate : t -> (unit, string) result
(** Total shape check: confidence in (0,1), finite ordered bounds
    containing the period, non-negative std, non-negative samples. *)

val z_of_confidence : float -> float
(** The two-sided standard-normal quantile: [z] such that a normal variable
    falls within [mean ± z·std] with probability [confidence] (Acklam's
    inverse-CDF approximation, relative error < 1.2e-9).
    @raise Invalid_argument unless [0 < confidence < 1]. *)

val quantile : float array -> q:float -> float
(** Order statistic with linear interpolation, [q] in [\[0,1\]]; the array
    need not be sorted (a sorted copy is taken).
    @raise Invalid_argument on an empty array or [q] outside [\[0,1\]]. *)

val of_bounds : confidence:float -> period:float -> lo:float -> hi:float -> t
(** The z-score margin: [mean = period], [std] implied from the bound width
    ([std = (hi - lo) / (2 z)]).  Bounds are clamped to contain the
    period.  @raise Invalid_argument on a bad confidence or [lo > hi]. *)

val of_samples : confidence:float -> period:float -> float array -> t
(** The empirical-quantile margin over Monte-Carlo period draws: bounds at
    the [(1 ± confidence) / 2] quantiles (clamped to contain the point
    estimate), [mean]/[std] the sample moments.
    @raise Invalid_argument on a bad confidence or an empty array. *)

val covers : t -> float -> bool
(** [lo <= x <= hi]. *)

val width : t -> float
(** [hi - lo]. *)

val rel_width : t -> float
(** [width / period], [0.] for a non-positive period. *)

(** Deterministic uniform stream for the Monte-Carlo margin (SplitMix64 —
    the same generator family as the tracing ids, but seeded explicitly so
    margins are reproducible). *)
module Rng : sig
  type t

  val create : int64 -> t

  val uniform : t -> float
  (** In [\[0, 1)]. *)
end
