type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

type contender = {
  c_app : string;
  c_actor : int;
  c_p : float;
  c_mu : float;
  c_tau : float;
}

type fold_step = { f_app : string; f_actor : int; f_p : float; f_w : float }
type sandwich = { s_order : int; s_lower : float; s_upper : float }

type actor = {
  a_index : int;
  a_name : string;
  a_proc : int;
  a_exec : float;
  a_p : float;
  a_mu : float;
  a_contenders : contender list;
  a_fold : fold_step list;
  a_sandwich : sandwich option;
  a_wait : float;
  a_response : float;
}

type app = {
  x_app : string;
  x_isolation : float;
  x_period : float;
  x_factor : float;
  x_throughput : float;
  x_margin : Margin.t option;
  x_actors : actor list;
}

type t = {
  estimator : string;
  engine : string;
  usecase : string list;
  apps : app list;
}

let estimator_of_name s =
  match s with
  | "worst-case" -> Ok Analysis.Worst_case
  | "second-order" -> Ok (Analysis.Order 2)
  | "fourth-order" -> Ok (Analysis.Order 4)
  | "composability" -> Ok Analysis.Composability
  | "exact" -> Ok Analysis.Exact
  | s -> (
      match String.index_opt s '-' with
      | Some i when String.sub s 0 i = "order" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some m when m >= 2 -> Ok (Analysis.Order m)
          | _ -> Error (Printf.sprintf "unknown estimator %S" s))
      | _ -> Error (Printf.sprintf "unknown estimator %S" s))

let engine_name = function
  | Analysis.Mcm -> "mcm"
  | Analysis.Statespace -> "statespace"

let engine_of_name = function
  | "mcm" -> Ok Analysis.Mcm
  | "statespace" -> Ok Analysis.Statespace
  | s -> Error (Printf.sprintf "unknown period engine %S" s)

(* ------------------------------------------------------------------ *)
(* Computation: the reference Figure-4 pass with its working kept        *)

(* The per-processor occupancy lists replicate {!Analysis.one_pass} to the
   letter: built by prepending during an ascending (app, actor) scan, so
   each list runs descending and the estimator folds the contenders in the
   same order — which is what makes every recorded float bit-identical to
   the served value (the kernel engine replays the same sequences). *)
let occupancy (apps : Analysis.app array) =
  let by_node = Hashtbl.create 16 in
  Array.iteri
    (fun ai (a : Analysis.app) ->
      Array.iteri
        (fun actor proc ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt by_node proc)
          in
          Hashtbl.replace by_node proc ((ai, actor) :: existing))
        a.mapping)
    apps;
  by_node

let fold_lineage names others =
  let _, rev =
    List.fold_left
      (fun (acc, steps) ((aj, actor_j), load) ->
        let acc = Compose.combine acc (Compose.of_load load) in
        ( acc,
          {
            f_app = names.(aj);
            f_actor = actor_j;
            f_p = acc.Compose.p;
            f_w = acc.Compose.w;
          }
          :: steps ))
      (Compose.empty, []) others
  in
  List.rev rev

(* Even truncations of Eq. 4 over-estimate, odd ones under-estimate
   (Section 4.1), so orders m and m+1 bracket the exact value. *)
let sandwich_for order loads wait =
  let other = Approx.waiting_time ~order:(order + 1) loads in
  if order mod 2 = 0 then { s_order = order; s_lower = other; s_upper = wait }
  else { s_order = order; s_lower = wait; s_upper = other }

let compute ?(engine = Analysis.Mcm) est (apps : Analysis.app list) =
  let apps = Array.of_list apps in
  let app_loads = Array.map Analysis.loads apps in
  let names =
    Array.map (fun (a : Analysis.app) -> a.graph.Sdf.Graph.name) apps
  in
  let by_node = occupancy apps in
  let explain_app ai (a : Analysis.app) =
    let n = Sdf.Graph.num_actors a.graph in
    let actors =
      List.init n (fun actor ->
          let proc = a.mapping.(actor) in
          let on_node =
            Option.value ~default:[] (Hashtbl.find_opt by_node proc)
          in
          let others =
            List.filter_map
              (fun (aj, actor_j) ->
                if aj = ai && actor_j = actor then None
                else Some ((aj, actor_j), app_loads.(aj).(actor_j)))
              on_node
          in
          let loads = List.map snd others in
          let wait = Analysis.waiting_time_for est loads in
          let own = app_loads.(ai).(actor) in
          let exec = (Sdf.Graph.actor a.graph actor).exec_time in
          {
            a_index = actor;
            a_name = (Sdf.Graph.actor a.graph actor).name;
            a_proc = proc;
            a_exec = exec;
            a_p = own.Prob.p;
            a_mu = own.Prob.mu;
            a_contenders =
              List.map
                (fun ((aj, actor_j), (l : Prob.t)) ->
                  {
                    c_app = names.(aj);
                    c_actor = actor_j;
                    c_p = l.p;
                    c_mu = l.mu;
                    c_tau = l.tau;
                  })
                others;
            a_fold =
              (match est with
              | Analysis.Composability -> fold_lineage names others
              | _ -> []);
            a_sandwich =
              (match est with
              | Analysis.Order m -> Some (sandwich_for m loads wait)
              | _ -> None);
            a_wait = wait;
            a_response = exec +. wait;
          })
    in
    let response_times =
      Array.of_list (List.map (fun x -> x.a_response) actors)
    in
    let period =
      match engine with
      | Analysis.Mcm ->
          Sdf.Hsdf.period_of_expansion (Sdf.Hsdf.expand a.graph)
            ~exec_times:response_times
      | Analysis.Statespace ->
          Sdf.Statespace.period_exn
            (Sdf.Graph.with_exec_times a.graph response_times)
    in
    {
      x_app = names.(ai);
      x_isolation = a.isolation_period;
      x_period = period;
      x_factor = period /. a.isolation_period;
      x_throughput = 1. /. period;
      x_margin = None;
      x_actors = actors;
    }
  in
  {
    estimator = Analysis.estimator_name est;
    engine = engine_name engine;
    usecase = Array.to_list names;
    apps = Array.to_list (Array.mapi explain_app apps);
  }

(* Margins are statistical, not part of the bit-identical Figure-4 working,
   so they are attached after the fact (by whoever holds the admission
   state) rather than recomputed by {!compute}. *)
let with_margins t margins =
  {
    t with
    apps =
      List.map
        (fun x ->
          match List.assoc_opt x.x_app margins with
          | None -> x
          | Some m -> { x with x_margin = Some m })
        t.apps;
  }

(* ------------------------------------------------------------------ *)
(* Verification: reproduce the estimate from the record                  *)

let same_float a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let ( let* ) = Result.bind

let verify (t : t) (apps : Analysis.app list) =
  let* est = estimator_of_name t.estimator in
  let* engine = engine_of_name t.engine in
  let* () =
    if List.length apps = List.length t.apps then Ok ()
    else
      Error
        (Printf.sprintf "record has %d applications, use-case has %d"
           (List.length t.apps) (List.length apps))
  in
  let check what ~expect ~got =
    if same_float expect got then Ok ()
    else
      Error
        (Printf.sprintf "%s: record has %.17g, reproduction gives %.17g" what
           expect got)
  in
  List.fold_left
    (fun acc ((x : app), (a : Analysis.app)) ->
      let* () = acc in
      let name = a.graph.Sdf.Graph.name in
      let* () =
        if String.equal x.x_app name then Ok ()
        else
          Error
            (Printf.sprintf "record explains %S, use-case has %S" x.x_app name)
      in
      let* () =
        check (name ^ ": isolation period") ~expect:x.x_isolation
          ~got:a.isolation_period
      in
      let n = Sdf.Graph.num_actors a.graph in
      let* () =
        if List.length x.x_actors = n then Ok ()
        else
          Error
            (Printf.sprintf "%s: record has %d actors, graph has %d" name
               (List.length x.x_actors) n)
      in
      let responses = Array.make n 0. in
      let* () =
        List.fold_left
          (fun acc (ax : actor) ->
            let* () = acc in
            let loads =
              List.map
                (fun c -> Prob.make ~p:c.c_p ~mu:c.c_mu ~tau:c.c_tau)
                ax.a_contenders
            in
            let wait = Analysis.waiting_time_for est loads in
            let where =
              Printf.sprintf "%s actor %d (%s)" name ax.a_index ax.a_name
            in
            let* () =
              check (where ^ " waiting time") ~expect:ax.a_wait ~got:wait
            in
            let response = ax.a_exec +. wait in
            let* () =
              check (where ^ " response time") ~expect:ax.a_response
                ~got:response
            in
            if ax.a_index < 0 || ax.a_index >= n then
              Error (Printf.sprintf "%s: actor index out of range" where)
            else begin
              responses.(ax.a_index) <- response;
              Ok ()
            end)
          (Ok ()) x.x_actors
      in
      let period =
        match engine with
        | Analysis.Mcm ->
            Sdf.Hsdf.period_of_expansion (Sdf.Hsdf.expand a.graph)
              ~exec_times:responses
        | Analysis.Statespace ->
            Sdf.Statespace.period_exn
              (Sdf.Graph.with_exec_times a.graph responses)
      in
      let* () = check (name ^ ": period") ~expect:x.x_period ~got:period in
      let* () =
        check (name ^ ": throughput") ~expect:x.x_throughput ~got:(1. /. period)
      in
      check
        (name ^ ": contention factor")
        ~expect:x.x_factor
        ~got:(period /. x.x_isolation))
    (Ok ())
    (List.combine t.apps apps)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                            *)

let int_j i = Num (float_of_int i)

let contender_to_json c =
  Obj
    [
      ("app", Str c.c_app);
      ("actor", int_j c.c_actor);
      ("p", Num c.c_p);
      ("mu", Num c.c_mu);
      ("tau", Num c.c_tau);
    ]

let fold_step_to_json f =
  Obj
    [
      ("app", Str f.f_app);
      ("actor", int_j f.f_actor);
      ("p", Num f.f_p);
      ("w", Num f.f_w);
    ]

let sandwich_to_json s =
  Obj
    [
      ("order", int_j s.s_order);
      ("lower", Num s.s_lower);
      ("upper", Num s.s_upper);
    ]

let actor_to_json a =
  Obj
    ([
       ("actor", int_j a.a_index);
       ("name", Str a.a_name);
       ("proc", int_j a.a_proc);
       ("exec", Num a.a_exec);
       ("p", Num a.a_p);
       ("mu", Num a.a_mu);
       ("contenders", Arr (List.map contender_to_json a.a_contenders));
     ]
    @ (match a.a_fold with
      | [] -> []
      | fold -> [ ("fold", Arr (List.map fold_step_to_json fold)) ])
    @ (match a.a_sandwich with
      | None -> []
      | Some s -> [ ("sandwich", sandwich_to_json s) ])
    @ [ ("wait", Num a.a_wait); ("response", Num a.a_response) ])

let margin_to_json (m : Margin.t) =
  Obj
    [
      ("confidence", Num m.confidence);
      ("method", Str (Margin.method_to_string m.method_));
      ("period", Num m.period);
      ("lo", Num m.lo);
      ("hi", Num m.hi);
      ("mean", Num m.mean);
      ("std", Num m.std);
      ("samples", int_j m.samples);
    ]

let app_to_json x =
  Obj
    ([
       ("app", Str x.x_app);
       ("isolation_period", Num x.x_isolation);
       ("period", Num x.x_period);
       ("contention_factor", Num x.x_factor);
       ("throughput", Num x.x_throughput);
     ]
    @ (match x.x_margin with
      | None -> []
      | Some m -> [ ("margin", margin_to_json m) ])
    @ [ ("actors", Arr (List.map actor_to_json x.x_actors)) ])

let to_json t =
  Obj
    [
      ("estimator", Str t.estimator);
      ("engine", Str t.engine);
      ("usecase", Arr (List.map (fun a -> Str a) t.usecase));
      ("apps", Arr (List.map app_to_json t.apps));
    ]

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_str = function Str s -> Some s | _ -> None
let get_num = function Num n -> Some n | _ -> None
let get_arr = function Arr xs -> Some xs | _ -> None

let field name conv json =
  match member name json with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let get_int v = Option.map int_of_float (get_num v)

let map_result f xs =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    xs (Ok [])

let contender_of_json j =
  let* c_app = field "app" get_str j in
  let* c_actor = field "actor" get_int j in
  let* c_p = field "p" get_num j in
  let* c_mu = field "mu" get_num j in
  let* c_tau = field "tau" get_num j in
  Ok { c_app; c_actor; c_p; c_mu; c_tau }

let fold_step_of_json j =
  let* f_app = field "app" get_str j in
  let* f_actor = field "actor" get_int j in
  let* f_p = field "p" get_num j in
  let* f_w = field "w" get_num j in
  Ok { f_app; f_actor; f_p; f_w }

let sandwich_of_json j =
  let* s_order = field "order" get_int j in
  let* s_lower = field "lower" get_num j in
  let* s_upper = field "upper" get_num j in
  Ok { s_order; s_lower; s_upper }

let actor_of_json j =
  let* a_index = field "actor" get_int j in
  let* a_name = field "name" get_str j in
  let* a_proc = field "proc" get_int j in
  let* a_exec = field "exec" get_num j in
  let* a_p = field "p" get_num j in
  let* a_mu = field "mu" get_num j in
  let* contenders = field "contenders" get_arr j in
  let* a_contenders = map_result contender_of_json contenders in
  let* a_fold =
    match member "fold" j with
    | None -> Ok []
    | Some v -> (
        match get_arr v with
        | None -> Error "field \"fold\" has the wrong type"
        | Some xs -> map_result fold_step_of_json xs)
  in
  let* a_sandwich =
    match member "sandwich" j with
    | None -> Ok None
    | Some v -> Result.map Option.some (sandwich_of_json v)
  in
  let* a_wait = field "wait" get_num j in
  let* a_response = field "response" get_num j in
  Ok
    {
      a_index;
      a_name;
      a_proc;
      a_exec;
      a_p;
      a_mu;
      a_contenders;
      a_fold;
      a_sandwich;
      a_wait;
      a_response;
    }

let margin_of_json j =
  let* confidence = field "confidence" get_num j in
  let* method_name = field "method" get_str j in
  let* method_ = Margin.method_of_string method_name in
  let* period = field "period" get_num j in
  let* lo = field "lo" get_num j in
  let* hi = field "hi" get_num j in
  let* mean = field "mean" get_num j in
  let* std = field "std" get_num j in
  let* samples = field "samples" get_int j in
  let m = { Margin.confidence; method_; period; lo; hi; mean; std; samples } in
  let* () = Margin.validate m in
  Ok m

let app_of_json j =
  let* x_app = field "app" get_str j in
  let* x_isolation = field "isolation_period" get_num j in
  let* x_period = field "period" get_num j in
  let* x_factor = field "contention_factor" get_num j in
  let* x_throughput = field "throughput" get_num j in
  let* x_margin =
    (* Lenient in presence (older records have no margin), strict in shape. *)
    match member "margin" j with
    | None | Some Null -> Ok None
    | Some v -> Result.map Option.some (margin_of_json v)
  in
  let* actors = field "actors" get_arr j in
  let* x_actors = map_result actor_of_json actors in
  Ok { x_app; x_isolation; x_period; x_factor; x_throughput; x_margin; x_actors }

let of_json j =
  let* estimator = field "estimator" get_str j in
  let* engine = field "engine" get_str j in
  let* usecase_json = field "usecase" get_arr j in
  let* usecase =
    map_result
      (fun v ->
        match get_str v with
        | Some s -> Ok s
        | None -> Error "field \"usecase\" has the wrong type")
      usecase_json
  in
  let* apps_json = field "apps" get_arr j in
  let* apps = map_result app_of_json apps_json in
  Ok { estimator; engine; usecase; apps }

(* ------------------------------------------------------------------ *)
(* Rendering                                                             *)

let num = Printf.sprintf "%.6g"

let contenders_cell = function
  | [] -> "-"
  | cs ->
      String.concat "+"
        (List.map (fun c -> Printf.sprintf "%s/%d" c.c_app c.c_actor) cs)

let render t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "use-case {%s}  estimator %s  engine %s\n"
    (String.concat "," t.usecase)
    t.estimator t.engine;
  List.iter
    (fun x ->
      Printf.bprintf buf
        "\napplication %s: isolation %s, period %s, contention factor %s, \
         throughput %s\n"
        x.x_app (num x.x_isolation) (num x.x_period) (num x.x_factor)
        (num x.x_throughput);
      (match x.x_margin with
      | None -> ()
      | Some m ->
          Printf.bprintf buf "  margin: [%s, %s] at %g%% confidence (%s)\n"
            (num m.Margin.lo) (num m.Margin.hi)
            (100. *. m.Margin.confidence)
            (Margin.method_to_string m.Margin.method_));
      let rows =
        List.map
          (fun a ->
            [
              Printf.sprintf "%d %s" a.a_index a.a_name;
              string_of_int a.a_proc;
              num a.a_exec;
              num a.a_p;
              num a.a_mu;
              num a.a_wait;
              num a.a_response;
              (match a.a_sandwich with
              | None -> "-"
              | Some s -> num (s.s_upper -. s.s_lower));
              contenders_cell a.a_contenders;
            ])
          x.x_actors
      in
      Buffer.add_string buf
        (Repro_stats.Table.render
           ~header:
             [
               "Actor"; "Proc"; "Exec"; "P"; "Mu"; "Wait"; "Response";
               "Err bound"; "Contenders";
             ]
           rows);
      List.iter
        (fun a ->
          match a.a_fold with
          | [] -> ()
          | fold ->
              Printf.bprintf buf "  fold %d %s:" a.a_index a.a_name;
              List.iter
                (fun f ->
                  Printf.bprintf buf " + %s/%d -> (P=%s, W=%s)" f.f_app
                    f.f_actor (num f.f_p) (num f.f_w))
                fold;
              Buffer.add_char buf '\n')
        x.x_actors)
    t.apps;
  Buffer.contents buf
