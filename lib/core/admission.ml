type requirement = { min_throughput : float }

let best_effort = { min_throughput = 0. }

type verdict =
  | Admitted
  | Rejected_candidate of { estimated : float; required : float }
  | Rejected_victim of { app : string; estimated : float; required : float }

type entry = {
  app : Analysis.app;
  req : requirement;
  mutable loads : Prob.t array;
  mutable measured : float option;
  mutable ids : int array;  (* per-actor member id in its processor group *)
}

type t = {
  nprocs : int;
  aggregates : Compose.t array;  (* one per processor, all admitted actors *)
  groups : Kernel.Group.t array;
      (* one per processor: the same population with its symmetric-polynomial
         basis maintained incrementally (⊕ on admit, ⊖ on withdraw, O(n)
         update on observe), backing the Eq. 4 estimators of
         {!estimated_period_via} without per-query rebuilds *)
  mutable next_id : int;
  mutable entries : (string * entry) list;
}

let create ~procs =
  if procs < 1 then invalid_arg "Contention.Admission.create: procs < 1";
  {
    nprocs = procs;
    aggregates = Array.make procs Compose.empty;
    groups = Array.init procs (fun _ -> Kernel.Group.create ());
    next_id = 0;
    entries = [];
  }

let procs t = t.nprocs

let admitted t = List.map (fun (name, e) -> (name, e.app, e.req)) t.entries

(* Period estimate of [entry] when the per-processor aggregates are
   [aggregates] and the admitted population is [entries]; each actor's
   waiting time is the aggregate minus its own contribution (the
   O(1)-per-actor inverse path, Eq. 8-9).  The inverse is undefined for a
   saturated actor (P = 1, noted in the paper); those fall back to folding
   the other co-mapped actors directly. *)
let period_under entries aggregates (e : entry) =
  let g = e.app.Analysis.graph in
  let fold_others proc actor =
    let contribution acc (name, other) =
      Array.fold_left
        (fun (acc, idx) load ->
          let same = name = g.Sdf.Graph.name && idx = actor in
          let acc =
            if (not same) && other.app.Analysis.mapping.(idx) = proc then
              Compose.combine acc (Compose.of_load load)
            else acc
          in
          (acc, idx + 1))
        (acc, 0) other.loads
      |> fst
    in
    List.fold_left contribution Compose.empty entries
  in
  let response =
    Array.init (Sdf.Graph.num_actors g) (fun actor ->
        let proc = e.app.Analysis.mapping.(actor) in
        let own = Compose.of_load e.loads.(actor) in
        let rest =
          if own.Compose.p < 1. then Compose.remove ~total:aggregates.(proc) own
          else fold_others proc actor
        in
        (Sdf.Graph.actor g actor).exec_time +. rest.Compose.w)
  in
  Sdf.Hsdf.period (Sdf.Graph.with_exec_times g response)

let add_loads aggregates (e : entry) =
  let updated = Array.copy aggregates in
  Array.iteri
    (fun actor load ->
      let proc = e.app.Analysis.mapping.(actor) in
      updated.(proc) <- Compose.combine updated.(proc) (Compose.of_load load))
    e.loads;
  updated

(* ⊗ is only second-order associative, so the inverse is exact only when
   undone LIFO: remove the actors in the reverse of insertion order.  For the
   most recently admitted application the round-trip is then exact; for older
   ones it is exact in p and second-order accurate in w. *)
let remove_loads aggregates (e : entry) =
  let updated = Array.copy aggregates in
  for actor = Array.length e.loads - 1 downto 0 do
    let proc = e.app.Analysis.mapping.(actor) in
    updated.(proc) <- Compose.remove ~total:updated.(proc) (Compose.of_load e.loads.(actor))
  done;
  updated

let entry_of app req =
  ( app.Analysis.graph.Sdf.Graph.name,
    { app; req; loads = Analysis.loads app; measured = None; ids = [||] } )

(* Keep the per-processor incremental groups in lockstep with [entries]. *)
let groups_admit t (e : entry) =
  e.ids <-
    Array.mapi
      (fun actor (l : Prob.t) ->
        let id = t.next_id in
        t.next_id <- t.next_id + 1;
        Kernel.Group.add t.groups.(e.app.Analysis.mapping.(actor)) ~id ~p:l.p
          ~mu:l.mu ~tau:l.tau;
        id)
      e.loads

let groups_withdraw t (e : entry) =
  Array.iteri
    (fun actor id ->
      Kernel.Group.remove t.groups.(e.app.Analysis.mapping.(actor)) ~id)
    e.ids;
  e.ids <- [||]

let groups_update t (e : entry) =
  Array.iteri
    (fun actor (l : Prob.t) ->
      Kernel.Group.update
        t.groups.(e.app.Analysis.mapping.(actor))
        ~id:e.ids.(actor) ~p:l.p ~mu:l.mu ~tau:l.tau)
    e.loads

let try_admit t app req =
  let name, candidate = entry_of app req in
  if List.mem_assoc name t.entries then
    invalid_arg (Printf.sprintf "Contention.Admission: %S already admitted" name);
  Array.iter
    (fun proc ->
      if proc < 0 || proc >= t.nprocs then
        invalid_arg
          (Printf.sprintf "Contention.Admission: %S maps to processor %d" name proc))
    app.Analysis.mapping;
  let tentative = add_loads t.aggregates candidate in
  let population = (name, candidate) :: t.entries in
  let candidate_period = period_under population tentative candidate in
  let candidate_tp = 1. /. candidate_period in
  if candidate_tp < req.min_throughput then
    Rejected_candidate { estimated = candidate_tp; required = req.min_throughput }
  else
    let victim =
      List.find_map
        (fun (vname, e) ->
          let tp = 1. /. period_under population tentative e in
          if tp < e.req.min_throughput then
            Some (Rejected_victim
                    { app = vname; estimated = tp; required = e.req.min_throughput })
          else None)
        t.entries
    in
    match victim with
    | Some verdict -> verdict
    | None ->
        Array.blit tentative 0 t.aggregates 0 t.nprocs;
        t.entries <- (name, candidate) :: t.entries;
        groups_admit t candidate;
        Admitted

let find t name =
  match List.assoc_opt name t.entries with
  | Some e -> e
  | None -> raise Not_found

let rebuild_aggregates t =
  Array.fill t.aggregates 0 t.nprocs Compose.empty;
  List.iter
    (fun (_, e) ->
      let updated = add_loads t.aggregates e in
      Array.blit updated 0 t.aggregates 0 t.nprocs)
    (List.rev t.entries)

let withdraw t name =
  let e = find t name in
  t.entries <- List.remove_assoc name t.entries;
  groups_withdraw t e;
  let invertible = Array.for_all (fun (l : Prob.t) -> l.p < 1.) e.loads in
  if invertible then begin
    let updated = remove_loads t.aggregates e in
    Array.blit updated 0 t.aggregates 0 t.nprocs
  end
  else
    (* A saturated actor has no inverse (Eq. 8 needs P <> 1); rebuild the
       aggregates from the remaining population instead. *)
    rebuild_aggregates t

let observe t name ~measured_period =
  if measured_period <= 0. then
    invalid_arg "Contention.Admission.observe: non-positive period";
  let e = find t name in
  e.measured <- Some measured_period;
  e.loads <- Analysis.loads_at_period e.app ~period:measured_period;
  (* Loads changed: the incremental inverses no longer know the old
     contributions, so rebuild the aggregates from the population.  The
     kernel groups do keep per-member state, so each actor is an O(n)
     deconvolve/refold delta instead. *)
  groups_update t e;
  rebuild_aggregates t

let observed_period t name = (find t name).measured

let estimated_period t name = period_under t.entries t.aggregates (find t name)
let estimated_throughput t name = 1. /. estimated_period t name

let estimated_period_via t est name =
  match (est : Analysis.estimator) with
  | Analysis.Composability ->
      (* The aggregate/inverse path IS the composability estimator. *)
      estimated_period t name
  | _ ->
      let e = find t name in
      let g = e.app.Analysis.graph in
      let response =
        Array.init (Sdf.Graph.num_actors g) (fun actor ->
            let group = t.groups.(e.app.Analysis.mapping.(actor)) in
            let excluding = Some e.ids.(actor) in
            let waiting =
              match est with
              | Analysis.Worst_case -> Kernel.Group.wc_waiting group ~excluding
              | Analysis.Order m -> Kernel.Group.order_waiting group ~order:m ~excluding
              | Analysis.Exact -> Kernel.Group.exact_waiting group ~excluding
              | Analysis.Composability -> assert false
            in
            (Sdf.Graph.actor g actor).exec_time +. waiting)
      in
      Sdf.Hsdf.period (Sdf.Graph.with_exec_times g response)

let estimated_throughput_via t est name = 1. /. estimated_period_via t est name
