type requirement = { min_throughput : float }

let best_effort = { min_throughput = 0. }

type margin_spec = {
  confidence : float;
  method_ : Margin.method_;
  samples : int;
  seed : int64;
}

let default_margin_spec =
  { confidence = 0.95; method_ = Margin.Z_score; samples = 200; seed = 0x6d617267696eL }

type verdict =
  | Admitted of { margin : Margin.t option }
  | Rejected_candidate of { estimated : float; required : float }
  | Rejected_victim of { app : string; estimated : float; required : float }

type counters = {
  joins : int;
  leaves : int;
  observes : int;
  incremental_ops : int;
  full_rebuilds : int;
  drift_refolds : int;
  group_rebuilds : int;
  group_drift_refolds : int;
}

type entry = {
  app : Analysis.app;
  req : requirement;
  mutable loads : Prob.t array;
  mutable measured : float option;
  mutable ids : int array;  (* per-actor member id in its processor group *)
}

type t = {
  nprocs : int;
  aggregates : Compose.t array;  (* one per processor, all admitted actors *)
  groups : Kernel.Group.t array;
      (* one per processor: the same population with its symmetric-polynomial
         basis maintained incrementally (⊕ on admit, ⊖ on withdraw, O(n)
         update on observe), backing the Eq. 4 estimators of
         {!estimated_period_via} without per-query rebuilds *)
  refold_bound : float;
  agg_drift : float array;
      (* per-processor accumulated second-order ⊖ error of the w-aggregate;
         a refold is forced when it crosses [refold_bound] *)
  mutable next_id : int;
  mutable entries : (string * entry) list;
  mutable joins : int;
  mutable leaves : int;
  mutable observes_n : int;
  mutable incremental_ops : int;
  mutable full_rebuilds : int;
  mutable drift_refolds : int;
}

let create ?(refold_bound = 0.05) ?(group_drift_bound = 1e-6) ~procs () =
  if procs < 1 then invalid_arg "Contention.Admission.create: procs < 1";
  if not (refold_bound > 0.) then
    invalid_arg "Contention.Admission.create: non-positive refold bound";
  {
    nprocs = procs;
    aggregates = Array.make procs Compose.empty;
    groups =
      Array.init procs (fun _ ->
          Kernel.Group.create ~drift_bound:group_drift_bound ());
    refold_bound;
    agg_drift = Array.make procs 0.;
    next_id = 0;
    entries = [];
    joins = 0;
    leaves = 0;
    observes_n = 0;
    incremental_ops = 0;
    full_rebuilds = 0;
    drift_refolds = 0;
  }

let procs t = t.nprocs

let admitted t = List.map (fun (name, e) -> (name, e.app, e.req)) t.entries

let counters t =
  {
    joins = t.joins;
    leaves = t.leaves;
    observes = t.observes_n;
    incremental_ops = t.incremental_ops;
    full_rebuilds = t.full_rebuilds;
    drift_refolds = t.drift_refolds;
    group_rebuilds =
      Array.fold_left (fun acc g -> acc + Kernel.Group.rebuilds g) 0 t.groups;
    group_drift_refolds =
      Array.fold_left (fun acc g -> acc + Kernel.Group.drift_refolds g) 0 t.groups;
  }

(* Per-actor response times of [e] when the per-processor aggregates are
   [aggregates] and the admitted population is [entries]; each actor's
   waiting time is the aggregate minus its own contribution (the
   O(1)-per-actor inverse path, Eq. 8-9).  The inverse is undefined for a
   saturated actor (P = 1, noted in the paper); those fall back to folding
   the other co-mapped actors directly. *)
let responses_under entries aggregates (e : entry) =
  let g = e.app.Analysis.graph in
  let fold_others proc actor =
    let contribution acc (name, other) =
      Array.fold_left
        (fun (acc, idx) load ->
          let same = name = g.Sdf.Graph.name && idx = actor in
          let acc =
            if (not same) && other.app.Analysis.mapping.(idx) = proc then
              Compose.combine acc (Compose.of_load load)
            else acc
          in
          (acc, idx + 1))
        (acc, 0) other.loads
      |> fst
    in
    List.fold_left contribution Compose.empty entries
  in
  Array.init (Sdf.Graph.num_actors g) (fun actor ->
      let proc = e.app.Analysis.mapping.(actor) in
      let own = Compose.of_load e.loads.(actor) in
      let rest =
        if own.Compose.p < 1. then Compose.remove ~total:aggregates.(proc) own
        else fold_others proc actor
      in
      (Sdf.Graph.actor g actor).exec_time +. rest.Compose.w)

let period_under entries aggregates (e : entry) =
  let g = e.app.Analysis.graph in
  Sdf.Hsdf.period
    (Sdf.Graph.with_exec_times g (responses_under entries aggregates e))

(* ------------------------------------------------------------------ *)
(* Confidence margins *)

(* The execution-time distribution behind an actor's load: the declared one
   when the application uses the Section 6 extension, else the paper's
   constant base model (whose residual life is uniform on [0, tau]). *)
let dist_of (e : entry) actor =
  match e.app.Analysis.distributions with
  | Some ds -> ds.(actor)
  | None ->
      Dist.Constant (Sdf.Graph.actor e.app.Analysis.graph actor).exec_time

(* Variance of one actor's blocking contribution B = Bernoulli(p) · R with
   R the residual life: E B² − (E B)² = p·E R² − (p·E R)². *)
let contribution_variance (e : entry) actor (l : Prob.t) =
  let r2 = Dist.residual_second_moment (dist_of e actor) in
  Float.max 0. ((l.p *. r2) -. ((l.p *. l.mu) *. (l.p *. l.mu)))

let margin_z entries aggregates ~nprocs (e : entry) ~period ~confidence =
  let g = e.app.Analysis.graph in
  let na = Sdf.Graph.num_actors g in
  let z = Margin.z_of_confidence confidence in
  (* Per-processor variance of the total inflicted wait: the contenders
     block independently, so the variances add. *)
  let var = Array.make nprocs 0. in
  List.iter
    (fun (_, o) ->
      Array.iteri
        (fun actor load ->
          let proc = o.app.Analysis.mapping.(actor) in
          var.(proc) <- var.(proc) +. contribution_variance o actor load)
        o.loads)
    entries;
  let responses = responses_under entries aggregates e in
  let resp_lo = Array.make na 0. and resp_hi = Array.make na 0. in
  for actor = 0 to na - 1 do
    let proc = e.app.Analysis.mapping.(actor) in
    let own = contribution_variance e actor e.loads.(actor) in
    let std = sqrt (Float.max 0. (var.(proc) -. own)) in
    let exec = (Sdf.Graph.actor g actor).exec_time in
    let wait = Float.max 0. (responses.(actor) -. exec) in
    resp_lo.(actor) <- exec +. Float.max 0. (wait -. (z *. std));
    resp_hi.(actor) <- exec +. wait +. (z *. std)
  done;
  let lo = Sdf.Hsdf.period (Sdf.Graph.with_exec_times g resp_lo) in
  let hi = Sdf.Hsdf.period (Sdf.Graph.with_exec_times g resp_hi) in
  Margin.of_bounds ~confidence ~period ~lo ~hi

let margin_quantile entries ~nprocs (e : entry) ~period ~confidence ~samples
    ~seed =
  if samples < 1 then
    invalid_arg "Contention.Admission: margin samples < 1";
  let g = e.app.Analysis.graph in
  let na = Sdf.Graph.num_actors g in
  (* Flatten the population once: every admitted actor is one independent
     blocking source; the candidate's own actors are remembered so each can
     subtract its own contribution from its processor total. *)
  let procs_of = ref [] and ps = ref [] and dists = ref [] in
  let npop = ref 0 in
  let own_slot = Array.make na (-1) in
  List.iter
    (fun (name, o) ->
      Array.iteri
        (fun actor (l : Prob.t) ->
          procs_of := o.app.Analysis.mapping.(actor) :: !procs_of;
          ps := l.p :: !ps;
          dists := dist_of o actor :: !dists;
          if name = g.Sdf.Graph.name then own_slot.(actor) <- !npop;
          incr npop)
        o.loads)
    entries;
  let npop = !npop in
  let proc_of = Array.of_list (List.rev !procs_of) in
  let p_of = Array.of_list (List.rev !ps) in
  let dist_of_slot = Array.of_list (List.rev !dists) in
  let rng = Margin.Rng.create seed in
  let totals = Array.make nprocs 0. in
  let contrib = Array.make (Int.max 1 npop) 0. in
  let resp = Array.make na 0. in
  let periods =
    Array.init samples (fun _ ->
        Array.fill totals 0 nprocs 0.;
        for j = 0 to npop - 1 do
          let u0 = Margin.Rng.uniform rng in
          let u1 = Margin.Rng.uniform rng in
          let u2 = Margin.Rng.uniform rng in
          let c =
            if u0 < p_of.(j) then
              Dist.residual_sample dist_of_slot.(j) ~u1 ~u2
            else 0.
          in
          contrib.(j) <- c;
          totals.(proc_of.(j)) <- totals.(proc_of.(j)) +. c
        done;
        for actor = 0 to na - 1 do
          let proc = e.app.Analysis.mapping.(actor) in
          let own = if own_slot.(actor) >= 0 then contrib.(own_slot.(actor)) else 0. in
          resp.(actor) <-
            (Sdf.Graph.actor g actor).exec_time
            +. Float.max 0. (totals.(proc) -. own)
        done;
        Sdf.Hsdf.period (Sdf.Graph.with_exec_times g resp))
  in
  Margin.of_samples ~confidence ~period periods

let compute_margin entries aggregates ~nprocs (e : entry) ~period spec =
  match spec.method_ with
  | Margin.Z_score ->
      margin_z entries aggregates ~nprocs e ~period ~confidence:spec.confidence
  | Margin.Quantile ->
      margin_quantile entries ~nprocs e ~period ~confidence:spec.confidence
        ~samples:spec.samples ~seed:spec.seed

(* ------------------------------------------------------------------ *)
(* Aggregate maintenance *)

let add_loads aggregates (e : entry) =
  let updated = Array.copy aggregates in
  Array.iteri
    (fun actor load ->
      let proc = e.app.Analysis.mapping.(actor) in
      updated.(proc) <- Compose.combine updated.(proc) (Compose.of_load load))
    e.loads;
  updated

let entry_of app req =
  ( app.Analysis.graph.Sdf.Graph.name,
    { app; req; loads = Analysis.loads app; measured = None; ids = [||] } )

(* Keep the per-processor incremental groups in lockstep with [entries]. *)
let groups_admit t (e : entry) =
  e.ids <-
    Array.mapi
      (fun actor (l : Prob.t) ->
        let id = t.next_id in
        t.next_id <- t.next_id + 1;
        Kernel.Group.add t.groups.(e.app.Analysis.mapping.(actor)) ~id ~p:l.p
          ~mu:l.mu ~tau:l.tau;
        id)
      e.loads

let groups_withdraw t (e : entry) =
  Array.iteri
    (fun actor id ->
      Kernel.Group.remove t.groups.(e.app.Analysis.mapping.(actor)) ~id)
    e.ids;
  e.ids <- [||]

let groups_update t (e : entry) =
  Array.iteri
    (fun actor (l : Prob.t) ->
      Kernel.Group.update
        t.groups.(e.app.Analysis.mapping.(actor))
        ~id:e.ids.(actor) ~p:l.p ~mu:l.mu ~tau:l.tau)
    e.loads

(* One processor's aggregate refolded from the population in insertion
   order — O(resident actors), not O(n²). *)
let fold_proc t proc =
  List.fold_left
    (fun acc (_, e) ->
      let acc = ref acc in
      Array.iteri
        (fun actor load ->
          if e.app.Analysis.mapping.(actor) = proc then
            acc := Compose.combine !acc (Compose.of_load load))
        e.loads;
      !acc)
    Compose.empty (List.rev t.entries)

let refold_proc t proc =
  t.aggregates.(proc) <- fold_proc t proc;
  t.agg_drift.(proc) <- 0.;
  t.drift_refolds <- t.drift_refolds + 1

let drift_check t =
  for proc = 0 to t.nprocs - 1 do
    if t.agg_drift.(proc) > t.refold_bound then refold_proc t proc
  done

let try_admit ?margin t app req =
  let name, candidate = entry_of app req in
  if List.mem_assoc name t.entries then
    invalid_arg (Printf.sprintf "Contention.Admission: %S already admitted" name);
  Array.iter
    (fun proc ->
      if proc < 0 || proc >= t.nprocs then
        invalid_arg
          (Printf.sprintf "Contention.Admission: %S maps to processor %d" name proc))
    app.Analysis.mapping;
  let tentative = add_loads t.aggregates candidate in
  let population = (name, candidate) :: t.entries in
  let candidate_period = period_under population tentative candidate in
  let candidate_tp = 1. /. candidate_period in
  if candidate_tp < req.min_throughput then
    Rejected_candidate { estimated = candidate_tp; required = req.min_throughput }
  else
    let victim =
      List.find_map
        (fun (vname, e) ->
          (* A best-effort application has no requirement to violate, so it
             can never be a victim — skipping it keeps the scan proportional
             to the number of guaranteed applications under heavy churn. *)
          if e.req.min_throughput <= 0. then None
          else
            let tp = 1. /. period_under population tentative e in
            if tp < e.req.min_throughput then
              Some (Rejected_victim
                      { app = vname; estimated = tp; required = e.req.min_throughput })
            else None)
        t.entries
    in
    match victim with
    | Some verdict -> verdict
    | None ->
        let margin =
          match margin with
          | None -> None
          | Some spec ->
              Some
                (compute_margin population tentative ~nprocs:t.nprocs candidate
                   ~period:candidate_period spec)
        in
        Array.blit tentative 0 t.aggregates 0 t.nprocs;
        t.entries <- (name, candidate) :: t.entries;
        groups_admit t candidate;
        t.joins <- t.joins + 1;
        t.incremental_ops <- t.incremental_ops + Array.length candidate.loads;
        Admitted { margin }

let find t name =
  match List.assoc_opt name t.entries with
  | Some e -> e
  | None -> raise Not_found

let rebuild_aggregates t =
  Array.fill t.aggregates 0 t.nprocs Compose.empty;
  List.iter
    (fun (_, e) ->
      let updated = add_loads t.aggregates e in
      Array.blit updated 0 t.aggregates 0 t.nprocs)
    (List.rev t.entries);
  Array.fill t.agg_drift 0 t.nprocs 0.

let withdraw t name =
  let e = find t name in
  (* The ⊗ fold is only second-order associative, so ⊖ is exact only when
     undone LIFO: for the most recently admitted application the round-trip
     is exact; for older ones it is exact in p and second-order accurate in
     w, and the accumulated error is traded for a refold at the bound. *)
  let lifo = match t.entries with (n, _) :: _ -> n = name | [] -> false in
  t.entries <- List.remove_assoc name t.entries;
  groups_withdraw t e;
  t.leaves <- t.leaves + 1;
  let invertible = Array.for_all (fun (l : Prob.t) -> l.p < 1.) e.loads in
  if invertible then begin
    for actor = Array.length e.loads - 1 downto 0 do
      let proc = e.app.Analysis.mapping.(actor) in
      let l = e.loads.(actor) in
      t.aggregates.(proc) <-
        Compose.remove ~total:t.aggregates.(proc) (Compose.of_load l);
      t.incremental_ops <- t.incremental_ops + 1;
      (* The ⊗ residue the non-LIFO inverse cannot see is third order: the
         removed element's cross terms with the whole remaining fold, so
         charge p·P_rest/4 relative in w (P_rest is the surviving
         aggregate's blocking probability, not just one co-element's). *)
      if not lifo then
        t.agg_drift.(proc) <-
          t.agg_drift.(proc) +. (0.25 *. l.p *. t.aggregates.(proc).Compose.p)
    done;
    drift_check t
  end
  else begin
    (* A saturated actor has no inverse (Eq. 8 needs P <> 1); rebuild the
       aggregates from the remaining population instead. *)
    rebuild_aggregates t;
    t.full_rebuilds <- t.full_rebuilds + 1
  end

let release t name =
  match List.assoc_opt name t.entries with
  | None -> Error (Printf.sprintf "application %S is not admitted" name)
  | Some _ ->
      withdraw t name;
      Ok ()

let observe t name ~measured_period =
  if measured_period <= 0. then
    invalid_arg "Contention.Admission.observe: non-positive period";
  let e = find t name in
  e.measured <- Some measured_period;
  let old_loads = e.loads in
  let new_loads = Analysis.loads_at_period e.app ~period:measured_period in
  e.loads <- new_loads;
  t.observes_n <- t.observes_n + 1;
  (* The kernel groups keep per-member state, so each actor is an O(n)
     deconvolve/refold delta. *)
  groups_update t e;
  let invertible = Array.for_all (fun (l : Prob.t) -> l.p < 1.) old_loads in
  if invertible then begin
    (* Re-base each actor incrementally: ⊖ the old contribution, ⊕ the new
       one — the aggregates never see a from-scratch refold on this path. *)
    Array.iteri
      (fun actor (l0 : Prob.t) ->
        let proc = e.app.Analysis.mapping.(actor) in
        let without =
          Compose.remove ~total:t.aggregates.(proc) (Compose.of_load l0)
        in
        t.aggregates.(proc) <-
          Compose.combine without (Compose.of_load new_loads.(actor));
        t.incremental_ops <- t.incremental_ops + 1;
        (* Same third-order residue bound as the withdraw path. *)
        t.agg_drift.(proc) <-
          t.agg_drift.(proc)
          +. (0.25 *. l0.p *. t.aggregates.(proc).Compose.p))
      old_loads;
    drift_check t
  end
  else begin
    rebuild_aggregates t;
    t.full_rebuilds <- t.full_rebuilds + 1
  end

let observed_period t name = (find t name).measured

let estimated_period t name = period_under t.entries t.aggregates (find t name)
let estimated_throughput t name = 1. /. estimated_period t name

let margin_for t spec name =
  let e = find t name in
  let period = period_under t.entries t.aggregates e in
  compute_margin t.entries t.aggregates ~nprocs:t.nprocs e ~period spec

let estimated_period_via t est name =
  match (est : Analysis.estimator) with
  | Analysis.Composability ->
      (* The aggregate/inverse path IS the composability estimator. *)
      estimated_period t name
  | _ ->
      let e = find t name in
      let g = e.app.Analysis.graph in
      let response =
        Array.init (Sdf.Graph.num_actors g) (fun actor ->
            let group = t.groups.(e.app.Analysis.mapping.(actor)) in
            let excluding = Some e.ids.(actor) in
            let waiting =
              match est with
              | Analysis.Worst_case -> Kernel.Group.wc_waiting group ~excluding
              | Analysis.Order m -> Kernel.Group.order_waiting group ~order:m ~excluding
              | Analysis.Exact -> Kernel.Group.exact_waiting group ~excluding
              | Analysis.Composability -> assert false
            in
            (Sdf.Graph.actor g actor).exec_time +. waiting)
      in
      Sdf.Hsdf.period (Sdf.Graph.with_exec_times g response)

let estimated_throughput_via t est name = 1. /. estimated_period_via t est name

(* ------------------------------------------------------------------ *)
(* Introspection for the churn oracle *)

let check_proc t proc name =
  if proc < 0 || proc >= t.nprocs then
    invalid_arg (Printf.sprintf "Contention.Admission.%s: unknown processor %d" name proc)

let aggregate t ~proc =
  check_proc t proc "aggregate";
  t.aggregates.(proc)

let refolded_aggregate t ~proc =
  check_proc t proc "refolded_aggregate";
  fold_proc t proc

let aggregate_drift t ~proc =
  check_proc t proc "aggregate_drift";
  t.agg_drift.(proc)

let group t ~proc =
  check_proc t proc "group";
  t.groups.(proc)
