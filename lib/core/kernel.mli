(** Zero-allocation estimator kernel.

    Flat-array re-implementations of the waiting-time estimators and of the
    maximum-cycle-ratio period engine, evaluating entirely over preallocated
    scratch buffers: once a {!scratch} has grown to a workload's high-water
    mark, calls perform {e no} heap allocation (minor or major).  The
    evaluators reproduce the reference implementations' floating-point
    operation sequences exactly — same fold orders, same parenthesisation,
    same guarded deconvolutions — so results are {e bit-identical} to the
    list-based {!Wcrt}/{!Approx}/{!Compose}/{!Exact} and {!Sdf.Mcm} paths.
    {!Analysis} builds the group layout and drives these evaluators; see
    DESIGN §11 for the memory layout and the boxing rules the code obeys.

    Group members are passed as parallel [(array, offset, count)] slices
    rather than records or lists, and results are written into caller arrays:
    on a non-flambda native compiler a float argument or return value is
    boxed at every call boundary, array reads and writes are not. *)

type scratch
(** Growable private buffers: symmetric-polynomial bases, compaction
    buffers, Bellman-Ford distances, shifted weights, and the float/int/bool
    registers the loops accumulate in.  Not thread-safe — use one per domain
    ({!Analysis.shared_workspace} wraps one in domain-local storage). *)

val scratch : unit -> scratch

val reserve_group : scratch -> int -> unit
(** Pre-grow the waiting-time buffers for groups of up to [n] members, so the
    first evaluation is already allocation-free. *)

(** {1 Waiting-time evaluators}

    Members of one processor group live at indices [off..off+n-1] of the
    parallel arrays [p] (blocking probability), [mu] (average blocking time),
    [tau] (execution time), in the same order as the reference path's
    per-processor contender list; the expected wait inflicted on member [t]
    by the other members is written to [out.(off+t)].  All evaluators handle
    lone members ([n = 1] → wait [0.]) and never allocate. *)

val wc_into : tau:float array -> off:int -> n:int -> out:float array -> unit
(** {!Wcrt}: sum of the others' execution times. *)

val order_into :
  scratch ->
  order:int ->
  p:float array ->
  mu:float array ->
  off:int ->
  n:int ->
  out:float array ->
  unit
(** {!Approx.waiting_time}: the order-[order] truncation of Eq. 4, including
    its guarded truncated deconvolution.  [order >= 2] is the caller's
    responsibility ({!Analysis} validates it once per pass). *)

val exact_into :
  scratch ->
  p:float array ->
  mu:float array ->
  off:int ->
  n:int ->
  out:float array ->
  unit
(** {!Exact.waiting_time}: the full Eq. 4 series with guarded removal. *)

val comp_into :
  scratch ->
  p:float array ->
  mu:float array ->
  off:int ->
  n:int ->
  out:float array ->
  unit
(** {!Compose.waiting_time}: the ⊗ fold of Eq. 9, left-folded in member
    order (⊗ is only second-order associative, so the order matters and
    matches the reference list exactly). *)

(** {1 Flat maximum cycle ratio} *)

type graph
(** An HSDF expansion flattened for the period search: edge endpoint arrays,
    the actor index weighting each edge, delays pre-converted to float, and
    the zero-delay-cycle verdict hoisted out of the per-call path (it only
    depends on topology).  Immutable and safe to share across domains. *)

val graph : nnodes:int -> name:string -> (int * int * int * int) array -> graph
(** [graph ~nnodes ~name edges] with edges [(src, dst, actor, delay)];
    [name] is the source graph's name, used in error messages.
    @raise Invalid_argument on a negative delay or an endpoint out of
    range. *)

val num_edges : graph -> int

val period_into :
  scratch ->
  graph ->
  exec:float array ->
  exec_off:int ->
  out:float array ->
  out_idx:int ->
  unit
(** Lawler's binary search for the maximum cycle ratio with per-actor
    execution times read at [exec.(exec_off + actor)], writing the period to
    [out.(out_idx)].  Bit-identical to {!Sdf.Hsdf.period_of_expansion}
    (epsilon 1e-9, relaxation tolerance 1e-12, same probe and relaxation
    sequences) without its per-probe tuple-array allocation.  A certified
    Dinkelbach (critical-cycle) estimate decides the probes that land far
    from the answer without running them — the probe {e outcomes}, hence the
    bisection trajectory and the result, are unchanged; only the handful of
    probes near the ratio run for real.
    @raise Invalid_argument exactly as the reference: negative weights, an
    empty or cycle-free graph, or a zero-delay cycle. *)

(** {1 Incremental group state}

    A mutable per-processor population of loads with its elementary
    symmetric-polynomial basis [e_0..e_n] maintained {e incrementally}: ⊕
    (member joins) is one O(n) reconvolution, ⊖ (member leaves) and a
    blocking-probability change are one guarded O(n) deconvolution
    ({!Sympoly.remove}'s guard, falling back to the O(n²) rebuild on
    cancellation) — instead of recomputing the O(n·m) basis per change.
    This backs the ⊕/⊖ admission path ({!Admission}): waiting-time queries
    evaluate Eq. 4 directly from the maintained basis. *)
module Group : sig
  type t

  val create : ?capacity:int -> ?drift_bound:float -> unit -> t
  (** [drift_bound] caps the accumulated deconvolution-error estimate before
      the basis is refolded exactly (default [1e-6]); see {!drift}.
      @raise Invalid_argument on a non-positive bound. *)

  val size : t -> int

  val es : t -> float array
  (** The maintained basis; degrees [0..size] are valid.  Exposed for tests
      and diagnostics — treat as read-only. *)

  val es_reference : t -> float array
  (** A fresh from-scratch O(n²) fold of the current member list — the
      oracle the churn suite compares the maintained basis against.  Does
      not mutate the group. *)

  val drift : t -> float
  (** Accumulated error estimate of the maintained basis: each unguarded
      state deconvolution (⊖ or update) adds [(size+1)·ulp]; exact refolds
      (guard fallback, {!recompute}, the drift-bound refold) reset it. *)

  val rebuilds : t -> int
  (** State-path guard fallbacks: removals/updates whose deconvolution
      cancelled and was replaced by an exact O(n²) refold.  The churn suite
      pins this below a storm threshold. *)

  val drift_refolds : t -> int
  (** Exact refolds forced by {!drift} crossing the create-time bound. *)

  val mem : t -> int -> bool

  val add : t -> id:int -> p:float -> mu:float -> tau:float -> unit
  (** ⊕ member [id].  @raise Invalid_argument on a duplicate id or
      [p] outside [0,1]. *)

  val remove : t -> id:int -> unit
  (** ⊖ member [id] (guarded deconvolution).  @raise Invalid_argument on an
      unknown id. *)

  val update : t -> id:int -> p:float -> mu:float -> tau:float -> unit
  (** Replace member [id]'s load: deconvolve the old probability, refold the
      new one — the O(n) delta for a re-based blocking probability (e.g.
      {!Admission.observe}'s run-time calibration).
      @raise Invalid_argument as {!add}/{!remove}. *)

  val recompute : t -> unit
  (** Rebuild the basis from the member list in O(n²) — the reference the
      incremental path is validated against. *)

  val exact_waiting : t -> excluding:int option -> float
  (** Expected wait (full Eq. 4) the group inflicts on an observer:
      [excluding:(Some id)] for an admitted member (its own load does not
      block it), [None] for an outside candidate.  O(n) per contender from
      the maintained basis.  @raise Invalid_argument on an unknown id. *)

  val order_waiting : t -> order:int -> excluding:int option -> float
  (** Order-m truncation of {!exact_waiting}.
      @raise Invalid_argument if [order < 2] or on an unknown id. *)

  val wc_waiting : t -> excluding:int option -> float
  (** Worst case: sum of the (other) members' execution times. *)
end
