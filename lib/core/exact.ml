let series_coefficient j = (if j mod 2 = 1 then 1. else -1.) /. float_of_int (j + 1)

let waiting_time loads =
  match loads with
  | [] -> 0.
  | loads ->
      let ps = Array.of_list (List.map (fun (l : Prob.t) -> l.p) loads) in
      let es = Sympoly.all ps in
      let n = Array.length ps in
      (* Guarded removal by index ({!Sympoly.remove}): the plain deconvolution
         cancels catastrophically when one load dominates a degree, and the
         by-value [Sympoly.without] could not recompute. *)
      let acc = ref 0. in
      List.iteri
        (fun i (l : Prob.t) ->
          let others = Sympoly.remove ~xs:ps ~skip:i es in
          let series = ref 1. in
          for j = 1 to n - 1 do
            series := !series +. (series_coefficient j *. others.(j))
          done;
          acc := !acc +. (Prob.waiting_product l *. !series))
        loads;
      !acc

let waiting_time_brute_force loads =
  let arr = Array.of_list loads in
  let n = Array.length arr in
  if n > 25 then invalid_arg "Contention.Exact.waiting_time_brute_force: too many actors";
  let total = ref 0. in
  for mask = 1 to (1 lsl n) - 1 do
    let prob = ref 1. and mu_sum = ref 0. and size = ref 0 in
    for i = 0 to n - 1 do
      let l = arr.(i) in
      if mask land (1 lsl i) <> 0 then begin
        prob := !prob *. l.Prob.p;
        mu_sum := !mu_sum +. l.Prob.mu;
        incr size
      end
      else prob := !prob *. (1. -. l.Prob.p)
    done;
    let s = float_of_int !size in
    total := !total +. (!prob *. (((2. *. s) -. 1.) /. s) *. !mu_sum)
  done;
  !total
