(** Leave-one-out sensitivity of the period estimates.

    The estimator is cheap, so "what if this application were not running?"
    can be answered exhaustively: for every (victim, removed) pair, compare
    the victim's estimated period with and without the removed application.
    This identifies the dominant interferers — the diagnostic a resource
    manager or a designer needs when a use-case misses its requirement. *)

type impact = {
  victim : string;  (** Application whose period is examined. *)
  removed : string;  (** Application hypothetically taken out of the mix. *)
  period_with : float;  (** Victim's estimate with everyone running. *)
  period_without : float;  (** Victim's estimate with [removed] absent. *)
  relief_pct : float;
      (** [100 * (period_with - period_without) / period_with]: how much of
          the victim's period the removed application is responsible for. *)
}

val leave_one_out :
  ?pmap:((Analysis.app -> impact list) -> Analysis.app list -> impact list list) ->
  ?estimator:Analysis.estimator ->
  Analysis.app list ->
  impact list
(** All ordered (victim, removed) pairs, [removed <> victim].  Default
    estimator [Order 2].  O(n²) estimator invocations.

    [pmap] (default [List.map]) maps the per-removed-application work over
    the application list; every per-removal task is pure, so passing a
    parallel map — e.g. [Exp.Pool.map_list ?jobs] (this library does not
    depend on [Exp], hence the hook) — changes only the wall-clock, never
    the result or its order. *)

val rank_for :
  ?pmap:((Analysis.app -> impact list) -> Analysis.app list -> impact list list) ->
  ?estimator:Analysis.estimator ->
  victim:string ->
  Analysis.app list ->
  impact list
(** The impacts on one victim, sorted by decreasing relief — its dominant
    interferer first.  @raise Not_found if no application has that name. *)

val render : impact list -> string
(** Plain-text table of the impacts. *)
