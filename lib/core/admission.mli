(** Run-time admission control (the paper's Section 6).

    Because the composability operators are associative and invertible, a
    resource manager can keep one aggregate {!Compose.t} per processor and
    add or subtract a whole application in O(actors) work — no re-analysis of
    the other applications.  An incoming application is admitted only if its
    own estimated throughput meets its requirement {e and} no already
    admitted application is pushed below its own requirement. *)

type requirement = {
  min_throughput : float;
      (** Iterations per time unit the application must sustain; [0.] means
          best-effort (always satisfiable). *)
}

val best_effort : requirement

type verdict =
  | Admitted
  | Rejected_candidate of { estimated : float; required : float }
      (** The candidate itself would miss its requirement. *)
  | Rejected_victim of { app : string; estimated : float; required : float }
      (** Admitting would push an existing application below its
          requirement. *)

type t
(** Mutable controller state: admitted applications plus one load aggregate
    per processor. *)

val create : procs:int -> t
(** @raise Invalid_argument if [procs < 1]. *)

val procs : t -> int
val admitted : t -> (string * Analysis.app * requirement) list

val try_admit : t -> Analysis.app -> requirement -> verdict
(** Evaluates the candidate against the current aggregates; commits the
    admission on success.  @raise Invalid_argument if an application with the
    same graph name is already admitted or the mapping targets an unknown
    processor. *)

val withdraw : t -> string -> unit
(** Remove an admitted application by graph name, subtracting its actors from
    the aggregates with the inverse operators (Eq. 8–9).
    @raise Not_found if no such application is admitted. *)

val observe : t -> string -> measured_period:float -> unit
(** Run-time calibration (the paper's Section 6): record the period the
    application is {e measured} to achieve.  Its blocking probabilities are
    re-derived from the measurement (longer observed periods mean the
    application blocks its nodes less often), and the per-processor
    aggregates are rebuilt, so subsequent admission decisions are scored
    against the system as it actually behaves.
    @raise Not_found if the application is not admitted.
    @raise Invalid_argument on a non-positive period. *)

val observed_period : t -> string -> float option
(** The last recorded measurement, if any.  @raise Not_found as {!observe}. *)

val estimated_period : t -> string -> float
(** Current period estimate of an admitted application under the present mix.
    @raise Not_found if not admitted. *)

val estimated_throughput : t -> string -> float

val estimated_period_via : t -> Analysis.estimator -> string -> float
(** {!estimated_period} with the estimator of your choice.  The controller
    maintains one incremental {!Kernel.Group} per processor alongside the
    composability aggregates — admissions are ⊕, withdrawals ⊖, and
    {!observe} re-bases each actor with an O(n) update — so the Eq. 4
    estimators ([Exact], [Order m], [Worst_case]) answer straight from the
    maintained symmetric-polynomial bases without re-analysing the
    population.  [Composability] is the aggregate path of
    {!estimated_period} itself.
    @raise Not_found if not admitted.
    @raise Invalid_argument if [Order m] with [m < 2]. *)

val estimated_throughput_via : t -> Analysis.estimator -> string -> float
