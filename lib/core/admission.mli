(** Run-time admission control (the paper's Section 6).

    Because the composability operators are associative and invertible, a
    resource manager can keep one aggregate {!Compose.t} per processor and
    add or subtract a whole application in O(actors) work — no re-analysis of
    the other applications.  An incoming application is admitted only if its
    own estimated throughput meets its requirement {e and} no already
    admitted application is pushed below its own requirement.

    The controller is {e fully incremental}: joins are ⊕, leaves are ⊖, and
    {!observe} re-bases each actor with an O(n) update — both on the
    composability aggregates and on the per-processor {!Kernel.Group}
    symmetric-polynomial bases behind {!estimated_period_via}.  Neither path
    performs a from-scratch refold on join/leave; the two sanctioned
    exceptions are a guarded rebuild when a deconvolution cancels and a
    {e drift-triggered} refold when the accumulated inverse error crosses a
    bound (⊗ is only second-order associative, so non-LIFO ⊖ leaves an
    O(p²/4) residue in the w-aggregate).  {!counters} exposes both so tests
    can pin them.

    On request ({!try_admit}'s [?margin], {!margin_for}), the point estimate
    is wrapped in a {!Margin.t} confidence interval — see DESIGN §15. *)

type requirement = {
  min_throughput : float;
      (** Iterations per time unit the application must sustain; [0.] means
          best-effort (always satisfiable). *)
}

val best_effort : requirement

(** How to derive a {!Margin.t} for an admitted application. *)
type margin_spec = {
  confidence : float;  (** In (0, 1). *)
  method_ : Margin.method_;
  samples : int;  (** Monte-Carlo draws for the [Quantile] method. *)
  seed : int64;  (** RNG seed for the [Quantile] method — margins are
                     deterministic in the spec and the population. *)
}

val default_margin_spec : margin_spec
(** 95% confidence, z-score, 200 draws, a fixed seed. *)

type verdict =
  | Admitted of { margin : Margin.t option }
      (** Admitted; [margin] is the confidence interval around the served
          period when one was requested. *)
  | Rejected_candidate of { estimated : float; required : float }
      (** The candidate itself would miss its requirement. *)
  | Rejected_victim of { app : string; estimated : float; required : float }
      (** Admitting would push an existing application below its
          requirement. *)

type counters = {
  joins : int;  (** Committed admissions. *)
  leaves : int;  (** Withdrawals (including {!release}). *)
  observes : int;  (** Run-time calibrations. *)
  incremental_ops : int;
      (** O(n) ⊕/⊖/update steps on the composability aggregates. *)
  full_rebuilds : int;
      (** From-scratch aggregate rebuilds forced by a saturated (P = 1)
          actor — the only non-incremental path left. *)
  drift_refolds : int;
      (** Per-processor aggregate refolds forced by the ⊖ drift bound. *)
  group_rebuilds : int;
      (** {!Kernel.Group} guard fallbacks across all processors. *)
  group_drift_refolds : int;
      (** {!Kernel.Group} drift-bound refolds across all processors. *)
}

type t
(** Mutable controller state: admitted applications plus one load aggregate
    and one incremental kernel group per processor. *)

val create :
  ?refold_bound:float -> ?group_drift_bound:float -> procs:int -> unit -> t
(** [refold_bound] caps the accumulated non-LIFO ⊖ error on a processor's
    w-aggregate before it is refolded from the population (default [0.05]);
    [group_drift_bound] is passed to {!Kernel.Group.create}.
    @raise Invalid_argument if [procs < 1] or a bound is non-positive. *)

val procs : t -> int
val admitted : t -> (string * Analysis.app * requirement) list

val counters : t -> counters
(** Monotone operation counters since {!create} — the churn suite asserts
    the incremental invariants ([full_rebuilds] stays 0, refolds stay below
    a storm threshold) against these. *)

val try_admit : ?margin:margin_spec -> t -> Analysis.app -> requirement -> verdict
(** Evaluates the candidate against the current aggregates; commits the
    admission on success.  Best-effort applications are skipped by the
    victim scan (they have no requirement to violate).  With [?margin], an
    [Admitted] verdict carries the candidate's confidence interval computed
    against the post-admission population.
    @raise Invalid_argument if an application with the same graph name is
    already admitted, the mapping targets an unknown processor, or the
    margin spec is invalid (confidence outside (0,1), [samples < 1]). *)

val withdraw : t -> string -> unit
(** Remove an admitted application by graph name, subtracting its actors from
    the aggregates with the inverse operators (Eq. 8–9).
    @raise Not_found if no such application is admitted. *)

val release : t -> string -> (unit, string) result
(** Total {!withdraw}: [Error] instead of an exception on an unknown name —
    the wire-facing entry point ({!Serve}) must never leak [Not_found]. *)

val observe : t -> string -> measured_period:float -> unit
(** Run-time calibration (the paper's Section 6): record the period the
    application is {e measured} to achieve.  Its blocking probabilities are
    re-derived from the measurement (longer observed periods mean the
    application blocks its nodes less often), and every aggregate it touches
    is re-based incrementally (⊖ old load, ⊕ new load — no rebuild), so
    subsequent admission decisions are scored against the system as it
    actually behaves.
    @raise Not_found if the application is not admitted.
    @raise Invalid_argument on a non-positive period. *)

val observed_period : t -> string -> float option
(** The last recorded measurement, if any.  @raise Not_found as {!observe}. *)

val estimated_period : t -> string -> float
(** Current period estimate of an admitted application under the present mix.
    @raise Not_found if not admitted. *)

val estimated_throughput : t -> string -> float

val margin_for : t -> margin_spec -> string -> Margin.t
(** The confidence interval around {!estimated_period} under the current
    population — what {!try_admit} computes at admission time, re-derivable
    later for auditing.  @raise Not_found if not admitted;
    @raise Invalid_argument on an invalid spec. *)

val estimated_period_via : t -> Analysis.estimator -> string -> float
(** {!estimated_period} with the estimator of your choice.  The controller
    maintains one incremental {!Kernel.Group} per processor alongside the
    composability aggregates — admissions are ⊕, withdrawals ⊖, and
    {!observe} re-bases each actor with an O(n) update — so the Eq. 4
    estimators ([Exact], [Order m], [Worst_case]) answer straight from the
    maintained symmetric-polynomial bases without re-analysing the
    population.  [Composability] is the aggregate path of
    {!estimated_period} itself.
    @raise Not_found if not admitted.
    @raise Invalid_argument if [Order m] with [m < 2]. *)

val estimated_throughput_via : t -> Analysis.estimator -> string -> float

(** {1 Introspection}

    Read-only views the churn suite's re-fold oracle compares the
    incremental state against. *)

val aggregate : t -> proc:int -> Compose.t
(** The maintained composability aggregate of one processor.
    @raise Invalid_argument on an unknown processor. *)

val refolded_aggregate : t -> proc:int -> Compose.t
(** The same aggregate refolded from the current population in insertion
    order — the oracle; does not mutate the controller. *)

val aggregate_drift : t -> proc:int -> float
(** The accumulated non-LIFO ⊖ error estimate on one processor, in
    [[0, refold_bound]]. *)

val group : t -> proc:int -> Kernel.Group.t
(** The incremental kernel group of one processor (for {!Kernel.Group.es}
    vs {!Kernel.Group.es_reference} comparisons). *)
