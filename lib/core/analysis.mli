(** Period estimation under resource contention — the paper's Figure 4
    algorithm with pluggable waiting-time estimators.

    For every application in a use-case:
    + derive each actor's blocking probability and average blocking time from
      its {e isolation} period (Definitions 4–5);
    + group actors by the processor they are mapped on — across {e all}
      applications of the use-case;
    + estimate each actor's expected waiting time from the co-mapped actors'
      loads, add it to the execution time (response time);
    + recompute the application period by throughput analysis of the graph
      with response times as execution times. *)

type estimator =
  | Worst_case  (** Baseline: sum of others' execution times ({!Wcrt}). *)
  | Order of int  (** m-th order truncation of Eq. 4 ({!Approx}). *)
  | Composability  (** ⊕/⊗ aggregation with inverses ({!Compose}). *)
  | Exact  (** Full Eq. 4 ({!Exact}). *)

val estimator_name : estimator -> string
val all_paper_estimators : estimator list
(** [[Worst_case; Order 4; Order 2; Composability]] — the four methods of the
    paper's evaluation, in its Figure 5 legend order. *)

type period_engine =
  | Mcm  (** HSDF expansion + maximum cycle ratio ({!Sdf.Hsdf}); default. *)
  | Statespace  (** Self-timed execution ({!Sdf.Statespace}). *)

type app = private {
  graph : Sdf.Graph.t;
  mapping : Mapping.t;
  repetition : int array;
  isolation_period : float;
  distributions : Dist.t array option;
      (** Per-actor execution-time distributions when the application uses
          the variable-execution-time extension; [None] for the paper's
          constant-time base model. *)
}

val app :
  ?period:float ->
  ?procs:int ->
  ?distributions:Dist.t array ->
  Sdf.Graph.t ->
  mapping:Mapping.t ->
  app
(** Wrap a graph and its mapping.  The isolation period is computed with
    {!Sdf.Statespace} unless [period] is given.  When [procs] is given the
    mapping is validated against it.

    With [distributions] (one per actor), the graph's execution times are
    replaced by the distribution means for all throughput computations and
    the loads use mean residual lives as blocking times (Section 6 of the
    paper); the per-firing durations themselves are only drawn when
    simulating ({!Desim.Engine.run}'s [firing_time] hook).
    @raise Invalid_argument on a deadlocking graph, invalid mapping, or a
    distribution array of the wrong length. *)

val loads : app -> Prob.t array
(** Per-actor load descriptors from the isolation period. *)

val loads_at_period : app -> period:float -> Prob.t array
(** Load descriptors re-based on another period — e.g. a measured one (the
    Section 6 calibration).  @raise Invalid_argument if it is not positive. *)

type estimate = {
  for_app : app;
  waiting_times : float array;  (** Estimated waiting time per actor. *)
  response_times : float array;  (** [exec_time + waiting_time] per actor. *)
  period : float;  (** Estimated application period in the use-case. *)
}

val throughput : estimate -> float
(** [1 / period]. *)

val adjusted_graph : estimate -> Sdf.Graph.t
(** The application graph with response times as execution times — the
    object the new period was computed on, also usable for latency and
    buffer analysis under contention ({!Sdf.Metrics}). *)

val contended_metrics : estimate -> Sdf.Metrics.t option
(** {!Sdf.Metrics.analyse} of {!adjusted_graph}: estimated latency, makespan
    and buffer peaks of the application {e while sharing} its processors. *)

val estimate :
  ?engine:period_engine ->
  ?iterations:int ->
  estimator ->
  app list ->
  estimate list
(** [estimate est apps] runs the Figure 4 algorithm for the use-case
    consisting of exactly [apps] (order preserved in the result).

    [iterations] (default [1], the paper's single pass) re-derives blocking
    probabilities from the estimated periods and repeats the analysis — a
    fixed-point refinement evaluated as an ablation.

    Waiting times are estimated from {e every} co-mapped actor, including
    actors of the same application sharing a node (the Figure 4 algorithm
    makes no distinction); a lone application whose actors all have dedicated
    processors therefore keeps its isolation period exactly. *)

type cache
(** Use-case-invariant per-application precomputation: the isolation-period
    load descriptors ({!loads}) and the HSDF expansion of the application
    graph (reused through {!Sdf.Hsdf.period_of_expansion} by the MCM engine).
    A cache depends only on the [app] it was prepared from, so it can be
    computed once per workload, shared read-only across domains, and reused
    by every use-case the application appears in. *)

val prepare : app -> cache

type workspace
(** Preallocated buffers for the kernel engine's Figure-4 pass ({!Kernel}):
    per-processor member layout, flat load/wait arrays, period-search
    scratch.  Buffers grow to the workload's high-water mark and are then
    reused — after warm-up a pass performs no heap allocation.  Not
    thread-safe: use one per domain. *)

val workspace : unit -> workspace

val shared_workspace : unit -> workspace
(** The calling domain's workspace (domain-local storage) — what the
    [?workspace] arguments default to.  Parallel sweeps ({!Exp.Pool}) thus
    reuse one set of buffers per domain with no sharing or locking. *)

val estimate_prepared :
  ?engine:period_engine ->
  ?workspace:workspace ->
  ?exact_check:bool ->
  estimator ->
  (app * cache) list ->
  estimate list
(** Exactly {!estimate} with [iterations = 1], but with the per-app
    isolation work supplied by the caller instead of being recomputed: the
    results are bit-identical to [estimate est apps].  This is the hot path
    of {!Exp.Sweep}, where each application's cache is hit by up to
    [2^(n-1)] use-cases.

    With the default [Mcm] engine the pass runs on the zero-allocation
    {!Kernel} evaluators over [workspace] (default: the domain's
    {!shared_workspace}); the kernel replicates the reference's
    floating-point operation sequences, so the switch is invisible in the
    results.  [exact_check] (default [false]) re-runs every use-case on
    {!estimate_prepared_reference} and fails if any waiting time, response
    time, or period differs by more than [1e-9] — the belt-and-braces mode
    for long unattended runs.
    @raise Invalid_argument when a cache was prepared from a different
    application than the one it is paired with.
    @raise Failure on an [exact_check] divergence. *)

val estimate_prepared_reference :
  ?engine:period_engine -> estimator -> (app * cache) list -> estimate list
(** The list-based reference implementation {!estimate_prepared} is checked
    against (and the pre-kernel behaviour): {!waiting_time_for} per actor,
    {!Sdf.Hsdf.period_of_expansion} per app.  Kept as the baseline for
    [exact_check], the fuzzing oracle, and the benchmark's speedup ratio. *)

(** {1 Batched evaluation}

    Sweeping the use-cases of one workload evaluates the same applications
    under up to [2^n - 1] activation masks.  [prepared] fixes the workload
    once; {!estimate_batch} and {!estimate_periods_into} then evaluate many
    masks against it, sharing one {!workspace} across calls. *)

type prepared
(** A fixed workload: applications and their caches, validated once. *)

val prepare_workload : ?caches:cache array -> app array -> prepared
(** [prepare_workload apps] runs {!prepare} on each app (or adopts [caches]
    when given, e.g. ones already hoisted by a sweep).
    @raise Invalid_argument on a cache/app mismatch or length mismatch. *)

val estimate_batch :
  ?engine:period_engine ->
  ?workspace:workspace ->
  ?exact_check:bool ->
  estimator ->
  prepared ->
  Usecase.t list ->
  estimate list list
(** One {!estimate_prepared} per use-case (apps ascending by index, as
    {!Usecase.to_list}), bit-identical to the one-at-a-time calls but with
    the workspace shared across the whole batch.  An empty use-case yields
    [[]]. *)

val estimate_periods_into :
  workspace -> estimator -> prepared -> usecase:Usecase.t -> out:float array -> int
(** The allocation-free core: evaluates one use-case and writes the period
    of the [k]-th active application (ascending by index) to [out.(k)],
    returning the number of active applications.  No estimate records, no
    spans, no lists — once the workspace is warm, a call performs {e zero}
    heap allocation (enforced by the test suite's allocation budget).
    [out] must have room for {!Usecase.cardinal}[ usecase] periods.  Only
    the [Mcm] engine's semantics; validation is done by
    {!prepare_workload}. *)

val waiting_time_for : estimator -> Prob.t list -> float
(** The raw per-actor waiting-time kernel used by {!estimate}: expected wait
    inflicted by the given co-mapped loads. *)

val estimate_with_loads :
  ?engine:period_engine ->
  estimator ->
  (app * Prob.t array) list ->
  estimate list
(** One Figure-4 pass with caller-supplied per-actor loads — the building
    block behind {!estimate_calibrated} and {!Interval.period_interval}.
    @raise Invalid_argument on a loads array of the wrong length. *)

val estimate_calibrated :
  ?engine:period_engine ->
  estimator ->
  (app * float) list ->
  estimate list
(** Run-time calibration (the paper's Section 6: "the approach can benefit
    even more by using the run-time throughput of the applications"):
    blocking probabilities are derived from each application's {e measured}
    period instead of its isolation period, and one estimation pass is run
    on top.  Since contention stretches periods, measured-period loads are
    smaller and the estimate tightens towards the observed system.
    @raise Invalid_argument on a non-positive measured period. *)
