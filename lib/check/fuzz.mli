(** The fuzz campaign driver: seed streams in, shrunk counterexamples out.

    Each seed deterministically yields a {!Case.spec} ({!Case.random}), which
    is materialized and run through the full {!Oracle.check}.  A violating
    seed is minimized with {!Shrink} against the predicate "the same property
    still fires" and reported as a {!failure}; clean seeds contribute their
    estimator errors to the aggregate accuracy table.  Seeds are independent,
    so the campaign fans out over an {!Exp.Pool} of domains, with results
    merged back in seed order — the outcome is a pure function of
    [(start_seed, seeds, config)], regardless of [jobs].

    A wall-clock budget turns the campaign into a best-effort sweep: tasks
    that start after the deadline are skipped (and counted), which keeps the
    pool drain prompt without killing domains mid-oracle. *)

type failure = {
  seed : int;  (** The seed that produced the violation. *)
  property : string;  (** First violated property of that seed. *)
  detail : string;  (** Its evidence. *)
  spec : Case.spec;  (** The original (unshrunk) spec. *)
  shrunk : Case.spec;  (** Locally minimal spec still violating [property]. *)
  shrunk_actors : int;  (** Active actors of the shrunk case. *)
}

type accuracy = {
  estimator : string;
  samples : int;  (** (use-case, application) pairs measured. *)
  mean_err : float;  (** Mean |estimate - simulated| / simulated, in %. *)
  max_err : float;
}

type result = {
  seeds : int;
  ran : int;
  skipped : int;  (** Seeds dropped by the budget. *)
  failures : failure list;  (** Ascending by seed. *)
  accuracy : accuracy list;  (** In {!Oracle.estimators} order. *)
  elapsed_s : float;
}

val passed : result -> bool
(** No failures {e and} nothing was skipped-because-crashed: skipped seeds
    are fine (budget), failures are not. *)

val still_fails : ?config:Oracle.config -> property:string -> Case.spec -> bool
(** The shrink predicate: the spec materializes and {!Oracle.check} reports
    at least one violation of [property].  Total. *)

val check_seed : ?config:Oracle.config -> int -> Oracle.outcome
(** One seed end to end, without shrinking — the unit the campaign runs in
    parallel.  A spec that fails to materialize is a ["materialize"]
    violation. *)

val run :
  ?config:Oracle.config ->
  ?jobs:int ->
  ?budget_s:float ->
  ?max_shrink_attempts:int ->
  ?start_seed:int ->
  seeds:int ->
  unit ->
  result
(** Run the campaign.  [jobs] defaults to {!Exp.Pool.default_jobs};
    [budget_s] to unlimited; [start_seed] to 0.  Emits [check_*] counters to
    {!Obs.Metric.default} and a span per seed when tracing is enabled. *)

(** {1 Churn mode}

    A different campaign shape for the {e incremental} admission layer:
    instead of independent seeds, one long-lived controller is driven
    through a seeded stream of join/leave/observe events, and every
    [check_every] events its maintained per-processor state (composability
    aggregates and {!Contention.Kernel.Group} bases) is compared against a
    from-scratch re-fold of the population — the oracle the tentpole's
    "never re-fold on the hot path" claim is tested against. *)

type churn_config = {
  procs : int;
  resident : int;  (** Target resident population the join bias steers to. *)
  events : int;
  check_every : int;  (** Re-fold oracle cadence, in events. *)
  w_tolerance : float;
      (** Allowed relative deviation of the maintained w-aggregate from the
          re-fold — the accumulated non-LIFO ⊖ residue, which the controller
          caps at [refold_bound]. *)
  refold_bound : float;  (** Passed to {!Contention.Admission.create}. *)
  group_drift_bound : float;
  period_slack : float;
      (** Activation-period inflation for resident draws: a resident feature
          idles between activations, so its per-actor utilization is
          [tau/(slack·period)].  Scale roughly with [resident]/4 so the
          per-processor utilization stays near one — without it a
          thousands-strong population would be hundreds of times over
          capacity and the multiplicative ⊗ fold would overflow. *)
}

val default_churn_config : churn_config
(** 4 processors, 48 resident, 600 events, a check every 25,
    [w_tolerance = refold_bound = 0.05], [group_drift_bound = 1e-6],
    [period_slack = 12]. *)

type churn_result = {
  churn_events : int;
  joins : int;
  leaves : int;
  observes : int;
  checks : int;  (** Re-fold comparisons performed (includes one final). *)
  max_p_err : float;
      (** Worst relative deviation of the maintained p-aggregate — ⊕/⊖ is
          exact on p, so this is rounding noise. *)
  max_w_err : float;  (** Same for w — bounded by [w_tolerance]. *)
  counters : Contention.Admission.counters;
      (** Final operation counters: the churn tier pins [full_rebuilds] to 0
          and the refold counters below a storm threshold against these. *)
  churn_violations : Metamorphic.violation list;
}

val churn_passed : churn_result -> bool

val churn : ?config:churn_config -> seed:int -> unit -> churn_result
(** Run one churn campaign.  Deterministic in [(config, seed)].
    @raise Invalid_argument on a negative event count. *)

val to_corpus : failure -> Corpus.entry
(** The corpus entry of a failure (shrunk spec + property + detail). *)

val replay : ?config:Oracle.config -> dir:string -> unit -> (string * Oracle.outcome) list * (string * string) list
(** Re-check every corpus entry: [(path, outcome)] for entries that parsed
    (a corpus case documents a {e fixed} bug, so its outcome must be clean)
    and [(path, error)] for files that did not. *)
