(** The fuzz campaign driver: seed streams in, shrunk counterexamples out.

    Each seed deterministically yields a {!Case.spec} ({!Case.random}), which
    is materialized and run through the full {!Oracle.check}.  A violating
    seed is minimized with {!Shrink} against the predicate "the same property
    still fires" and reported as a {!failure}; clean seeds contribute their
    estimator errors to the aggregate accuracy table.  Seeds are independent,
    so the campaign fans out over an {!Exp.Pool} of domains, with results
    merged back in seed order — the outcome is a pure function of
    [(start_seed, seeds, config)], regardless of [jobs].

    A wall-clock budget turns the campaign into a best-effort sweep: tasks
    that start after the deadline are skipped (and counted), which keeps the
    pool drain prompt without killing domains mid-oracle. *)

type failure = {
  seed : int;  (** The seed that produced the violation. *)
  property : string;  (** First violated property of that seed. *)
  detail : string;  (** Its evidence. *)
  spec : Case.spec;  (** The original (unshrunk) spec. *)
  shrunk : Case.spec;  (** Locally minimal spec still violating [property]. *)
  shrunk_actors : int;  (** Active actors of the shrunk case. *)
}

type accuracy = {
  estimator : string;
  samples : int;  (** (use-case, application) pairs measured. *)
  mean_err : float;  (** Mean |estimate - simulated| / simulated, in %. *)
  max_err : float;
}

type result = {
  seeds : int;
  ran : int;
  skipped : int;  (** Seeds dropped by the budget. *)
  failures : failure list;  (** Ascending by seed. *)
  accuracy : accuracy list;  (** In {!Oracle.estimators} order. *)
  elapsed_s : float;
}

val passed : result -> bool
(** No failures {e and} nothing was skipped-because-crashed: skipped seeds
    are fine (budget), failures are not. *)

val still_fails : ?config:Oracle.config -> property:string -> Case.spec -> bool
(** The shrink predicate: the spec materializes and {!Oracle.check} reports
    at least one violation of [property].  Total. *)

val check_seed : ?config:Oracle.config -> int -> Oracle.outcome
(** One seed end to end, without shrinking — the unit the campaign runs in
    parallel.  A spec that fails to materialize is a ["materialize"]
    violation. *)

val run :
  ?config:Oracle.config ->
  ?jobs:int ->
  ?budget_s:float ->
  ?max_shrink_attempts:int ->
  ?start_seed:int ->
  seeds:int ->
  unit ->
  result
(** Run the campaign.  [jobs] defaults to {!Exp.Pool.default_jobs};
    [budget_s] to unlimited; [start_seed] to 0.  Emits [check_*] counters to
    {!Obs.Metric.default} and a span per seed when tracing is enabled. *)

val to_corpus : failure -> Corpus.entry
(** The corpus entry of a failure (shrunk spec + property + detail). *)

val replay : ?config:Oracle.config -> dir:string -> unit -> (string * Oracle.outcome) list * (string * string) list
(** Re-check every corpus entry: [(path, outcome)] for entries that parsed
    (a corpus case documents a {e fixed} bug, so its outcome must be clean)
    and [(path, error)] for files that did not. *)
