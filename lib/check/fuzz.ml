type failure = {
  seed : int;
  property : string;
  detail : string;
  spec : Case.spec;
  shrunk : Case.spec;
  shrunk_actors : int;
}

type accuracy = {
  estimator : string;
  samples : int;
  mean_err : float;
  max_err : float;
}

type result = {
  seeds : int;
  ran : int;
  skipped : int;
  failures : failure list;
  accuracy : accuracy list;
  elapsed_s : float;
}

let passed r = r.failures = []

let materialize_property = "materialize"

let still_fails ?config ~property spec =
  match Case.materialize spec with
  | Error _ -> property = materialize_property
  | Ok t ->
      property <> materialize_property
      && List.exists
           (fun (v : Oracle.violation) -> v.property = property)
           (Oracle.check ?config t).violations

let check_seed ?config seed =
  let spec = Case.random seed in
  match Case.materialize spec with
  | Error msg ->
      {
        Oracle.violations =
          [ { property = materialize_property; detail = msg } ];
        errors = [];
      }
  | Ok t -> Oracle.check ?config t

type seed_outcome =
  | Skipped
  | Clean of (string * float) list
  | Failed of failure

let seeds_total = Obs.Metric.Counter.v "check_seeds_total"
let violations_total = Obs.Metric.Counter.v "check_violations_total"
let shrink_steps = Obs.Metric.Counter.v "check_shrink_attempts_total"

let run_seed ?config ~max_shrink_attempts seed =
  Obs.Span.with_ ~name:"check.seed"
    ~args:(fun () -> [ ("seed", string_of_int seed) ])
    (fun () ->
      Obs.Metric.Counter.inc seeds_total;
      let spec = Case.random seed in
      let outcome = check_seed ?config seed in
      match outcome.Oracle.violations with
      | [] -> Clean outcome.Oracle.errors
      | { property; detail } :: _ ->
          Obs.Metric.Counter.inc violations_total;
          let attempts = ref 0 in
          let shrunk =
            Shrink.minimize ~max_attempts:max_shrink_attempts
              ~still_fails:(fun s ->
                incr attempts;
                still_fails ?config ~property s)
              spec
          in
          Obs.Metric.Counter.inc ~by:(float_of_int !attempts) shrink_steps;
          let shrunk_actors =
            match Case.materialize shrunk with
            | Ok t -> Case.active_actors t
            | Error _ -> 0
          in
          Failed { seed; property; detail; spec; shrunk; shrunk_actors })

let merge_accuracy outcomes =
  let accs =
    List.map
      (fun (name, _) -> (name, Repro_stats.Stats.accumulator ()))
      Oracle.estimators
  in
  List.iter
    (function
      | Clean errors ->
          List.iter
            (fun (name, err) ->
              match List.assoc_opt name accs with
              | Some acc -> Repro_stats.Stats.add acc err
              | None -> ())
            errors
      | Skipped | Failed _ -> ())
    outcomes;
  List.map
    (fun (name, acc) ->
      let samples = Repro_stats.Stats.count acc in
      {
        estimator = name;
        samples;
        mean_err = (if samples = 0 then nan else Repro_stats.Stats.acc_mean acc);
        max_err = (if samples = 0 then nan else Repro_stats.Stats.acc_max acc);
      })
    accs

let run ?config ?jobs ?budget_s ?(max_shrink_attempts = 200) ?(start_seed = 0)
    ~seeds () =
  if seeds < 0 then invalid_arg "Check.Fuzz.run: negative seed count";
  let t0 = Unix.gettimeofday () in
  let deadline =
    match budget_s with None -> infinity | Some b -> t0 +. b
  in
  let outcomes =
    Exp.Pool.map_range ?jobs seeds (fun i ->
        if Unix.gettimeofday () > deadline then Skipped
        else run_seed ?config ~max_shrink_attempts (start_seed + i))
    |> Array.to_list
  in
  let ran =
    List.length (List.filter (function Skipped -> false | _ -> true) outcomes)
  in
  let failures =
    List.filter_map (function Failed f -> Some f | _ -> None) outcomes
  in
  {
    seeds;
    ran;
    skipped = seeds - ran;
    failures;
    accuracy = merge_accuracy outcomes;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Churn mode: random join/leave/observe sequences against one admission
   controller, cross-checked against a from-scratch re-fold.             *)

module Admission = Contention.Admission

type churn_config = {
  procs : int;
  resident : int;  (* target resident population *)
  events : int;
  check_every : int;
  w_tolerance : float;  (* re-fold oracle bound on the w-aggregate *)
  refold_bound : float;
  group_drift_bound : float;
  period_slack : float;
      (* Activation-period inflation for resident draws: a media feature
         idles between activations, so its per-actor utilization is
         tau/(slack·period), not tau/period.  Without it a population of
         thousands would be hundreds of times over capacity and the
         multiplicative ⊗ fold would overflow.  Scale roughly with
         [resident]/4 to keep per-processor utilization near one. *)
}

let default_churn_config =
  {
    procs = 4;
    resident = 48;
    events = 600;
    check_every = 25;
    (* The maintained w-aggregate may lag the re-fold by the accumulated
       non-LIFO ⊖ residue, which the controller caps at [refold_bound]. *)
    w_tolerance = 0.05;
    refold_bound = 0.05;
    group_drift_bound = 1e-6;
    period_slack = 12.;
  }

type churn_result = {
  churn_events : int;
  joins : int;
  leaves : int;
  observes : int;
  checks : int;  (* re-fold oracle comparisons performed *)
  max_p_err : float;  (* worst relative p deviation, incremental vs refold *)
  max_w_err : float;
  counters : Admission.counters;
  churn_violations : Metamorphic.violation list;
}

let churn_passed r = r.churn_violations = []

let churn_violation property fmt =
  Printf.ksprintf (fun detail -> { Metamorphic.property; detail }) fmt

(* One random resident application.  Three deliberate deviations from the
   plain generator draw:
   - the isolation period is computed on the HSDF expansion (bounded by the
     small repetition entries) instead of the default self-timed state
     space, whose size is unbounded over thousands of random graphs;
   - the activation period is the HSDF period inflated by
     [config.period_slack]: the soak models thousands of {e light}
     co-resident features, not thousands of features each saturating its
     processors (see {!churn_config});
   - applications with a {e saturated} actor (p = 1, the bottleneck IS the
     period) are redrawn: a saturated load has no ⊖ inverse, so admitting
     one would put every later withdrawal on the sanctioned rebuild path —
     the very path this mode exists to pin at zero. *)
let churn_app rng ~procs ~period_slack ~name =
  let params =
    {
      Sdfgen.Generator.default_params with
      actors_min = 2;
      actors_max = 4;
      exec_min = 2;
      exec_max = 20;
    }
  in
  let rec draw attempts =
    let g = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name in
    let app =
      Contention.Analysis.app g
        ~period:(period_slack *. Sdf.Hsdf.period g)
        ~mapping:(Contention.Mapping.modulo ~procs g)
    in
    let saturated =
      Array.exists
        (fun (l : Contention.Prob.t) -> l.p >= 1.)
        (Contention.Analysis.loads app)
    in
    if saturated && attempts < 50 then draw (attempts + 1) else app
  in
  draw 0

let rel_dev a b =
  Float.abs (a -. b) /. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* The re-fold oracle: the maintained per-processor state against a fresh
   fold of the current population.  The p-component of ⊕/⊖ is an exact
   inverse, so it must agree to rounding; the w-component may lag by the
   drift-bounded ⊖ residue; the kernel bases are guarded, so they must
   agree to their (much tighter) drift bound. *)
let refold_oracle config ctl step (max_p, max_w, acc) =
  let acc = ref acc and max_p = ref max_p and max_w = ref max_w in
  for proc = 0 to config.procs - 1 do
    let inc = Admission.aggregate ctl ~proc in
    let ref_ = Admission.refolded_aggregate ctl ~proc in
    let dp = rel_dev inc.Contention.Compose.p ref_.Contention.Compose.p in
    let dw = rel_dev inc.Contention.Compose.w ref_.Contention.Compose.w in
    max_p := Float.max !max_p dp;
    max_w := Float.max !max_w dw;
    if dp > 1e-6 then
      acc :=
        churn_violation "churn-refold-p"
          "step %d proc %d: incremental p %.17g vs refold %.17g" step proc
          inc.Contention.Compose.p ref_.Contention.Compose.p
        :: !acc;
    if dw > config.w_tolerance then
      acc :=
        churn_violation "churn-refold-w"
          "step %d proc %d: incremental w %.17g vs refold %.17g (tol %g)"
          step proc inc.Contention.Compose.w ref_.Contention.Compose.w
          config.w_tolerance
        :: !acc;
    let g = Admission.group ctl ~proc in
    let es = Contention.Kernel.Group.es g in
    let es_ref = Contention.Kernel.Group.es_reference g in
    let n = Contention.Kernel.Group.size g in
    for d = 0 to n do
      if rel_dev es.(d) es_ref.(d) > 1e-6 then
        acc :=
          churn_violation "churn-refold-es"
            "step %d proc %d degree %d: incremental %.17g vs refold %.17g"
            step proc d es.(d) es_ref.(d)
          :: !acc
    done;
    if Admission.aggregate_drift ctl ~proc > config.refold_bound then
      acc :=
        churn_violation "churn-drift-bound"
          "step %d proc %d: drift %.17g exceeds bound %g" step proc
          (Admission.aggregate_drift ctl ~proc)
          config.refold_bound
        :: !acc
  done;
  (!max_p, !max_w, !acc)

let churn ?(config = default_churn_config) ~seed () =
  if config.events < 0 then invalid_arg "Check.Fuzz.churn: negative events";
  let rng = Sdfgen.Rng.create seed in
  let ctl =
    Admission.create ~refold_bound:config.refold_bound
      ~group_drift_bound:config.group_drift_bound ~procs:config.procs ()
  in
  let resident = ref [] in
  let next_id = ref 0 in
  let state = ref (0., 0., []) in
  let add_violation v =
    let a, b, acc = !state in
    state := (a, b, v :: acc)
  in
  let checks = ref 0 in
  for step = 1 to config.events do
    let population = List.length !resident in
    let die = Sdfgen.Rng.int rng (2 * config.resident) in
    if population = 0 || die >= population then begin
      (* Join: bias keeps the population oscillating around the target. *)
      incr next_id;
      let name = Printf.sprintf "J%d" !next_id in
      let app =
        churn_app rng ~procs:config.procs ~period_slack:config.period_slack
          ~name
      in
      (match Admission.try_admit ctl app Admission.best_effort with
      | Admission.Admitted _ -> resident := name :: !resident
      | Admission.Rejected_candidate _ | Admission.Rejected_victim _ ->
          add_violation
            (churn_violation "churn-join" "step %d: best-effort %s rejected"
               step name)
      | exception Invalid_argument msg ->
          add_violation
            (churn_violation "churn-join" "step %d: admit %s raised: %s" step
               name msg))
    end
    else if Sdfgen.Rng.int rng 5 = 0 then begin
      (* Observe: re-base a resident on a longer measured period (shorter
         ones could saturate a probability, which is the rebuild path this
         mode exists to avoid). *)
      let name =
        List.nth !resident (Sdfgen.Rng.int rng (List.length !resident))
      in
      let factor = 1.0 +. Sdfgen.Rng.float rng 1.0 in
      Admission.observe ctl name
        ~measured_period:(factor *. Admission.estimated_period ctl name)
    end
    else begin
      (* Leave: uniform choice, so mostly non-LIFO ⊖. *)
      let name =
        List.nth !resident (Sdfgen.Rng.int rng (List.length !resident))
      in
      Admission.withdraw ctl name;
      resident := List.filter (fun n -> n <> name) !resident
    end;
    if step mod config.check_every = 0 then begin
      incr checks;
      state := refold_oracle config ctl step !state
    end
  done;
  incr checks;
  state := refold_oracle config ctl config.events !state;
  let max_p, max_w, violations = !state in
  let counters = Admission.counters ctl in
  {
    churn_events = config.events;
    joins = counters.Admission.joins;
    leaves = counters.Admission.leaves;
    observes = counters.Admission.observes;
    checks = !checks;
    max_p_err = max_p;
    max_w_err = max_w;
    counters;
    churn_violations = List.rev violations;
  }

let to_corpus f =
  { Corpus.property = f.property; detail = f.detail; spec = f.shrunk }

let replay ?config ~dir () =
  let entries, errors = Corpus.load_dir dir in
  ( List.map
      (fun (path, (e : Corpus.entry)) ->
        let outcome =
          match Case.materialize e.spec with
          | Error msg ->
              {
                Oracle.violations =
                  [ { property = materialize_property; detail = msg } ];
                errors = [];
              }
          | Ok t -> Oracle.check ?config t
        in
        (path, outcome))
      entries,
    errors )
