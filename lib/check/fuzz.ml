type failure = {
  seed : int;
  property : string;
  detail : string;
  spec : Case.spec;
  shrunk : Case.spec;
  shrunk_actors : int;
}

type accuracy = {
  estimator : string;
  samples : int;
  mean_err : float;
  max_err : float;
}

type result = {
  seeds : int;
  ran : int;
  skipped : int;
  failures : failure list;
  accuracy : accuracy list;
  elapsed_s : float;
}

let passed r = r.failures = []

let materialize_property = "materialize"

let still_fails ?config ~property spec =
  match Case.materialize spec with
  | Error _ -> property = materialize_property
  | Ok t ->
      property <> materialize_property
      && List.exists
           (fun (v : Oracle.violation) -> v.property = property)
           (Oracle.check ?config t).violations

let check_seed ?config seed =
  let spec = Case.random seed in
  match Case.materialize spec with
  | Error msg ->
      {
        Oracle.violations =
          [ { property = materialize_property; detail = msg } ];
        errors = [];
      }
  | Ok t -> Oracle.check ?config t

type seed_outcome =
  | Skipped
  | Clean of (string * float) list
  | Failed of failure

let seeds_total = Obs.Metric.Counter.v "check_seeds_total"
let violations_total = Obs.Metric.Counter.v "check_violations_total"
let shrink_steps = Obs.Metric.Counter.v "check_shrink_attempts_total"

let run_seed ?config ~max_shrink_attempts seed =
  Obs.Span.with_ ~name:"check.seed"
    ~args:(fun () -> [ ("seed", string_of_int seed) ])
    (fun () ->
      Obs.Metric.Counter.inc seeds_total;
      let spec = Case.random seed in
      let outcome = check_seed ?config seed in
      match outcome.Oracle.violations with
      | [] -> Clean outcome.Oracle.errors
      | { property; detail } :: _ ->
          Obs.Metric.Counter.inc violations_total;
          let attempts = ref 0 in
          let shrunk =
            Shrink.minimize ~max_attempts:max_shrink_attempts
              ~still_fails:(fun s ->
                incr attempts;
                still_fails ?config ~property s)
              spec
          in
          Obs.Metric.Counter.inc ~by:(float_of_int !attempts) shrink_steps;
          let shrunk_actors =
            match Case.materialize shrunk with
            | Ok t -> Case.active_actors t
            | Error _ -> 0
          in
          Failed { seed; property; detail; spec; shrunk; shrunk_actors })

let merge_accuracy outcomes =
  let accs =
    List.map
      (fun (name, _) -> (name, Repro_stats.Stats.accumulator ()))
      Oracle.estimators
  in
  List.iter
    (function
      | Clean errors ->
          List.iter
            (fun (name, err) ->
              match List.assoc_opt name accs with
              | Some acc -> Repro_stats.Stats.add acc err
              | None -> ())
            errors
      | Skipped | Failed _ -> ())
    outcomes;
  List.map
    (fun (name, acc) ->
      let samples = Repro_stats.Stats.count acc in
      {
        estimator = name;
        samples;
        mean_err = (if samples = 0 then nan else Repro_stats.Stats.acc_mean acc);
        max_err = (if samples = 0 then nan else Repro_stats.Stats.acc_max acc);
      })
    accs

let run ?config ?jobs ?budget_s ?(max_shrink_attempts = 200) ?(start_seed = 0)
    ~seeds () =
  if seeds < 0 then invalid_arg "Check.Fuzz.run: negative seed count";
  let t0 = Unix.gettimeofday () in
  let deadline =
    match budget_s with None -> infinity | Some b -> t0 +. b
  in
  let outcomes =
    Exp.Pool.map_range ?jobs seeds (fun i ->
        if Unix.gettimeofday () > deadline then Skipped
        else run_seed ?config ~max_shrink_attempts (start_seed + i))
    |> Array.to_list
  in
  let ran =
    List.length (List.filter (function Skipped -> false | _ -> true) outcomes)
  in
  let failures =
    List.filter_map (function Failed f -> Some f | _ -> None) outcomes
  in
  {
    seeds;
    ran;
    skipped = seeds - ran;
    failures;
    accuracy = merge_accuracy outcomes;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let to_corpus f =
  { Corpus.property = f.property; detail = f.detail; spec = f.shrunk }

let replay ?config ~dir () =
  let entries, errors = Corpus.load_dir dir in
  ( List.map
      (fun (path, (e : Corpus.entry)) ->
        let outcome =
          match Case.materialize e.spec with
          | Error msg ->
              {
                Oracle.violations =
                  [ { property = materialize_property; detail = msg } ];
                errors = [];
              }
          | Ok t -> Oracle.check ?config t
        in
        (path, outcome))
      entries,
    errors )
