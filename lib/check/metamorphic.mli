(** Metamorphic relations on the waiting-time kernels.

    Where the differential oracle ({!Oracle}) compares estimators against a
    reference value, the checks here compare each kernel {e against itself}
    under input transformations whose effect on the output is known exactly
    from the paper's formulae:

    - {e permutation}: Eq. 4, its truncations, the worst case and the ⊕/⊗
      fold describe sets of co-mapped actors, so the inflicted waiting time
      must not depend on the order loads are listed in;
    - {e time scaling}: multiplying every [mu] and [tau] by [c] (keeping the
      dimensionless probabilities fixed) multiplies every waiting time by [c]
      — Eq. 4 is linear in the blocking times;
    - {e monotonicity}: adding one more contender can only increase the
      expected wait (for the kernels where this holds exactly: worst case,
      exact, order 2, composability);
    - {e ⊕/⊖ round-trip}: removing a load from an aggregate with the Eq. 8–9
      inverses recovers the aggregate of the remaining loads.

    Each check returns the list of violated properties (empty = pass) and
    never raises; the RNG drives the transformation parameters and is the
    only source of variation between calls on the same loads. *)

type violation = {
  property : string;  (** Stable machine-readable name, e.g. ["meta-scaling"]. *)
  detail : string;  (** Human-readable evidence: values, operands, deltas. *)
}

val permutation_invariance :
  Sdfgen.Rng.t -> Contention.Prob.t list -> violation list

val time_scaling : Sdfgen.Rng.t -> Contention.Prob.t list -> violation list

val monotonicity : Sdfgen.Rng.t -> Contention.Prob.t list -> violation list

val compose_roundtrip : Contention.Prob.t list -> violation list

val all : Sdfgen.Rng.t -> Contention.Prob.t list -> violation list
(** Every relation above, concatenated. *)

(** {1 Admission-level relations}

    The same idea one layer up: transformations of a controller's join/leave
    history with a known effect on the served estimates.  Used by the churn
    fuzz mode ({!Fuzz.churn}) and the churn test tier. *)

val join_leave_roundtrip :
  procs:int ->
  Contention.Analysis.app list ->
  Contention.Analysis.app ->
  violation list
(** Admitting [extra] on top of [residents] and immediately withdrawing it
    must leave every resident's estimate bit-for-bit (within rounding):
    the withdrawal is LIFO, so ⊖ is the exact inverse of the ⊕ that
    preceded it. *)

val churn_order_independence :
  ?tol:float ->
  Sdfgen.Rng.t ->
  procs:int ->
  Contention.Analysis.app list ->
  violation list
(** Admit all, withdraw a random non-empty proper subset (non-LIFO), and
    compare every survivor's estimate against a fresh controller admitted
    with the survivors only.  [tol] (default [0.05], the default refold
    bound) absorbs the bounded O(p²/4) ⊖ residue. *)

val margin_monotonicity :
  procs:int -> Contention.Analysis.app list -> violation list
(** For both margin methods, the interval width is non-decreasing in the
    requested confidence, and every interval contains its own period. *)
