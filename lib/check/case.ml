type app_spec = { actors : int; exec_scale : float }

type spec = {
  seed : int;
  procs : int;
  usecase : Contention.Usecase.t;
  apps : app_spec array;
}

type t = { spec : spec; apps : Contention.Analysis.app array }

let app_name i = String.make 1 (Char.chr (Char.code 'A' + (i mod 26)))

let random ?(max_apps = 3) ?(max_actors = 5) ?(max_procs = 3) seed =
  let rng = Sdfgen.Rng.create seed in
  let napps = Sdfgen.Rng.int_in rng 1 max_apps in
  let procs = Sdfgen.Rng.int_in rng 1 max_procs in
  let apps =
    Array.init napps (fun _ ->
        { actors = Sdfgen.Rng.int_in rng 2 max_actors; exec_scale = 1.0 })
  in
  (* A random non-empty subset of the applications; the full use-case is the
     most common draw because it exercises the most contention. *)
  let usecase =
    if napps = 1 || Sdfgen.Rng.bool rng then Contention.Usecase.full ~napps
    else
      let m = Sdfgen.Rng.int_in rng 1 ((1 lsl napps) - 1) in
      m
  in
  { seed; procs; usecase; apps }

let validate (spec : spec) =
  let napps = Array.length spec.apps in
  if napps = 0 then Error "spec has no applications"
  else if napps > 26 then Error "spec has more than 26 applications"
  else if spec.procs < 1 then Error "spec needs at least one processor"
  else if spec.usecase <= 0 || spec.usecase >= 1 lsl napps then
    Error
      (Printf.sprintf "use-case %d out of range for %d applications"
         spec.usecase napps)
  else
    let bad = ref None in
    Array.iteri
      (fun i a ->
        if !bad = None && a.actors < 2 then
          bad := Some (Printf.sprintf "app %d: fewer than 2 actors" i)
        else if
          !bad = None
          && not (a.exec_scale > 0. && Float.is_finite a.exec_scale)
        then bad := Some (Printf.sprintf "app %d: invalid exec_scale" i))
      spec.apps;
    match !bad with Some msg -> Error msg | None -> Ok ()

(* Independent per-application RNG, so dropping or editing one app of a spec
   leaves the other apps' materialization untouched — the property shrinking
   relies on to make progress. *)
let app_rng (spec : spec) i = Sdfgen.Rng.create ((spec.seed * 1_000_003) + i)

let materialize_app (spec : spec) i =
  let a = spec.apps.(i) in
  let rng = app_rng spec i in
  let params =
    Sdfgen.Generator.fuzz_params ~actors_min:a.actors ~actors_max:a.actors rng
  in
  let g = Sdfgen.Generator.generate ~params rng ~name:(app_name i) in
  let g =
    if a.exec_scale = 1.0 then g
    else
      Sdf.Graph.with_exec_times g
        (Array.map
           (fun t -> Float.max 1.0 (Float.round (t *. a.exec_scale)))
           (Sdf.Graph.exec_times g))
  in
  Contention.Analysis.app ~procs:spec.procs g
    ~mapping:(Contention.Mapping.modulo ~procs:spec.procs g)

let materialize spec =
  match validate spec with
  | Error _ as e -> e
  | Ok () -> (
      match
        { spec; apps = Array.init (Array.length spec.apps) (materialize_app spec) }
      with
      | t -> Ok t
      | exception Invalid_argument msg -> Error ("materialize: " ^ msg))

let selected t =
  List.map
    (fun i -> t.apps.(i))
    (Contention.Usecase.to_list t.spec.usecase)

let sim_apps t =
  Array.of_list
    (List.map
       (fun (a : Contention.Analysis.app) ->
         { Desim.Engine.graph = a.graph; mapping = a.mapping })
       (selected t))

let active_actors t =
  List.fold_left
    (fun n (a : Contention.Analysis.app) -> n + Sdf.Graph.num_actors a.graph)
    0 (selected t)

let scale_exec t c =
  match
    Array.map
      (fun (a : Contention.Analysis.app) ->
        let g =
          Sdf.Graph.with_exec_times a.graph
            (Array.map (fun x -> x *. c) (Sdf.Graph.exec_times a.graph))
        in
        Contention.Analysis.app ~procs:t.spec.procs g ~mapping:a.mapping)
      t.apps
  with
  | apps -> Ok { t with apps }
  | exception Invalid_argument msg -> Error ("scale_exec: " ^ msg)

let spec_to_line (spec : spec) =
  Printf.sprintf "spec seed=%d procs=%d usecase=%d apps=%s" spec.seed
    spec.procs spec.usecase
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun a -> Printf.sprintf "%d:%g" a.actors a.exec_scale)
             spec.apps)))

let spec_of_line line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ' ' (String.trim line) with
  | [ "spec"; seed; procs; usecase; apps ] -> (
      let field name s =
        let prefix = name ^ "=" in
        let n = String.length prefix in
        if String.length s > n && String.sub s 0 n = prefix then
          Ok (String.sub s n (String.length s - n))
        else Error (Printf.sprintf "expected %s=..., got %S" name s)
      in
      let ( let* ) = Result.bind in
      let int_field name s =
        let* v = field name s in
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> fail "%s is not an integer: %S" name v
      in
      let* seed = int_field "seed" seed in
      let* procs = int_field "procs" procs in
      let* usecase = int_field "usecase" usecase in
      let* apps = field "apps" apps in
      let* apps =
        List.fold_left
          (fun acc part ->
            let* acc = acc in
            match String.split_on_char ':' part with
            | [ actors; scale ] -> (
                match
                  (int_of_string_opt actors, float_of_string_opt scale)
                with
                | Some actors, Some exec_scale ->
                    Ok ({ actors; exec_scale } :: acc)
                | _ -> fail "bad app entry %S" part)
            | _ -> fail "bad app entry %S" part)
          (Ok [])
          (String.split_on_char ',' apps)
      in
      let spec =
        { seed; procs; usecase; apps = Array.of_list (List.rev apps) }
      in
      let* () = validate spec in
      Ok spec)
  | _ -> fail "not a spec line: %S" line

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b (spec_to_line t.spec);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Sdf.Text.to_string_many
       (List.map (fun (a : Contention.Analysis.app) -> a.graph) (selected t)));
  Buffer.contents b
