(* Clear bit [k] and shift the higher bits down — the use-case mask after
   deleting application [k]. *)
let drop_bit mask k =
  let low = mask land ((1 lsl k) - 1) in
  let high = (mask lsr (k + 1)) lsl k in
  low lor high

let drop_app (spec : Case.spec) k =
  let napps = Array.length spec.apps in
  if napps <= 1 then None
  else
    let usecase = drop_bit spec.usecase k in
    if usecase = 0 then None
    else
      let apps =
        Array.init (napps - 1) (fun i ->
            spec.apps.(if i < k then i else i + 1))
      in
      Some { spec with usecase; apps }

let with_app (spec : Case.spec) k app =
  let apps = Array.copy spec.apps in
  apps.(k) <- app;
  { spec with apps }

(* Candidates in decreasing payoff order; lazy so adopting an early one
   skips generating (and evaluating) the rest of the pass. *)
let candidates (spec : Case.spec) =
  let napps = Array.length spec.apps in
  let drops = List.init napps (fun k -> lazy (drop_app spec k)) in
  let actor_cuts =
    List.concat
      (List.init napps (fun k ->
           let a = spec.apps.(k) in
           if a.actors <= 2 then []
           else
             let floor_ =
               lazy (Some (with_app spec k { a with actors = 2 }))
             in
             let step =
               lazy (Some (with_app spec k { a with actors = a.actors - 1 }))
             in
             if a.actors = 3 then [ step ] else [ floor_; step ]))
  in
  let halvings =
    List.concat
      (List.init napps (fun k ->
           let a = spec.apps.(k) in
           if a.exec_scale <= 1. /. 64. then []
           else
             [
               lazy
                 (Some
                    (with_app spec k
                       { a with exec_scale = a.exec_scale /. 2. }));
             ]))
  in
  drops @ actor_cuts @ halvings

let minimize ?(max_attempts = 200) ~still_fails spec =
  let attempts = ref 0 in
  let rec pass spec =
    let rec try_candidates = function
      | [] -> spec
      | c :: rest -> (
          match Lazy.force c with
          | None -> try_candidates rest
          | Some candidate ->
              if !attempts >= max_attempts then spec
              else begin
                incr attempts;
                if still_fails candidate then pass candidate
                else try_candidates rest
              end)
    in
    try_candidates (candidates spec)
  in
  pass spec
