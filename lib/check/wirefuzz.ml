module Rng = Sdfgen.Rng

type result = {
  requests : int;
  violations : Metamorphic.violation list;
}

let passed r = r.violations = []

let violation property fmt =
  Printf.ksprintf
    (fun detail -> { Metamorphic.property; detail })
    fmt

let printable = "abcdefghijklmnopqrstuvwxyz0123456789{}[]\",:.+-eE\\/ "

let random_bytes rng len =
  (* '\n' excluded: over a socket it would merely split the frame, and
     handle_line is specified per line. *)
  String.init len (fun _ ->
      let c = Char.chr (Rng.int rng 256) in
      if c = '\n' then 'x' else c)

let random_printable rng len =
  String.init len (fun _ -> printable.[Rng.int rng (String.length printable)])

let deep_array depth =
  String.concat "" (List.init depth (fun _ -> "["))
  ^ "1"
  ^ String.concat "" (List.init depth (fun _ -> "]"))

let deep_object depth =
  String.concat "" (List.init depth (fun _ -> {|{"a":|}))
  ^ "1"
  ^ String.concat "" (List.init depth (fun _ -> "}"))

(* A recognisable trace id planted in fuzzed trace envelopes.  Replies must
   never contain it: the trace context is observability metadata, and a
   server that echoes a caller-supplied id back over the wire is leaking
   one tenant's correlation ids to whoever shares the reply path. *)
let foreign_trace_id = "feedfacefeedface"

let scalars =
  [|
    "1e999"; "-1e999"; "-0.0"; "99999999999999999999999999";
    "0.00000000000000000001"; "null"; "true"; "false"; "[]"; "{}"; "42";
    {|"cmd"|}; {|{"cmd": 42}|}; {|{"cmd": null}|}; {|{"cmd": ""}|};
    {|{"cmd": "estimate"}|}; {|{"cmd": "upload"}|};
    {|{"cmd": "admit", "session": 3}|};
    {|{"cmd": "estimate", "digest": "nope", "estimator": "bogus"}|};
    {|{"cmd": "release", "app": []}|}; {|[{"cmd": "ping"}]|};
    (* Malformed admit margin fields: out-of-range, non-numeric and
       non-finite confidence, unknown/ill-typed margin method — each must be
       an error reply, never a crash or a margin-less silent admit. *)
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "confidence": 1.5}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "confidence": 0}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "confidence": -0.95}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "confidence": "high"}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "confidence": 1e999}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "confidence": 0.95, "margin_method": "bogus"}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": 0.1, "margin_method": 42}|};
    {|{"cmd": "admit", "workload": "0123456789abcdef", "app": "A", "min_throughput": "fast", "confidence": 0.95}|};
    (* Stale/duplicate session ids: releases of never-admitted apps and
       empty or repeated identifiers. *)
    {|{"cmd": "release", "session": "never-created", "app": "ghost"}|};
    {|{"cmd": "release", "session": "", "app": ""}|};
    {|{"cmd": "release", "session": "s", "app": "A", "app": "B"}|};
    {|{"cmd": "cache-put"}|};
    {|{"cmd": "cache-put", "workload": "0123456789abcdef", "mask": "x"}|};
    {|{"cmd": "cache-put", "workload": "0123456789abcdef", "mask": -3, "estimator": "o2", "results": []}|};
    {|{"cmd": "cache-put", "workload": "0123456789abcdef", "mask": 3, "estimator": "bogus", "results": [{"app": "A"}]}|};
    {|{"shed": {"queue_depth": 1}}|}; {|{"shed": {}}|};
    {|{"cmd": "ping", "extra": {"deep": [1, [2, [3]]]}}|};
    (* Trace envelopes: a valid one, one with unknown fields (forward
       compatibility with newer clients), and malformed shapes that the
       lenient parser must swallow without rejecting the request. *)
    {|{"cmd": "ping", "trace": {"id": "feedfacefeedface", "parent": "0000000000000001", "sampled": true}}|};
    {|{"cmd": "ping", "trace": {"id": "feedfacefeedface", "sampled": false, "baggage": {"tenant": "x"}, "flags": 7}}|};
    {|{"cmd": "estimate", "digest": "0123456789abcdef", "trace": {"id": 42}}|};
    {|{"cmd": "ping", "trace": {"id": "feedfacefeedface", "parent": "zzzz"}}|};
    {|{"cmd": "ping", "trace": {"id": "not-hex-at-all"}}|};
    {|{"cmd": "ping", "trace": {"id": "feedfacefeedface", "sampled": "yes"}}|};
    {|{"cmd": "ping", "trace": "feedfacefeedface"}|};
    {|{"cmd": "ping", "trace": null}|}; {|{"cmd": "ping", "trace": []}|};
    {|{"cmd": "ping", "trace": {}}|};
    {|{"cmd": "ping", "trace": {"id": "0000000000000000"}}|};
    "\xff\xfe\x00garbage"; "{"; "}"; {|{"cmd": "ping"|}; {|"unterminated|};
  |]

(* Valid requests to mutate or truncate.  Shutdown is deliberately absent:
   a fuzz line must never be able to request an orderly shutdown, or the
   liveness probe would report a false crash. *)
let template rng =
  let open Serve.Protocol in
  let reqs =
    [|
      Ping;
      Stats;
      Metrics;
      Upload { payload = "graph \"A\"\nactor a0 10\nactor a1 5\n" };
      Estimate
        {
          digest = "0123456789abcdef";
          usecase = (if Rng.bool rng then None else Some [ "A"; "B" ]);
          estimator = Contention.Analysis.Exact;
        };
      Admit
        {
          session = "s";
          digest = "0123456789abcdef";
          app = "A";
          min_throughput = 0.25;
          confidence = (if Rng.bool rng then None else Some 0.95);
          margin_method =
            (match Rng.int rng 3 with
            | 0 -> None
            | 1 -> Some Contention.Margin.Z_score
            | _ -> Some Contention.Margin.Quantile);
        };
      Release { session = "s"; app = "A" };
      Cache_put
        {
          digest = "0123456789abcdef";
          mask = 3;
          estimator = "second-order";
          rows =
            [
              {
                app = "A";
                period = 12.;
                isolation_period = 10.;
                throughput = 0.1;
              };
            ];
        };
    |]
  in
  let trace =
    (* Half the templates carry a trace envelope with the foreign id, so
       byte-flipping and truncation also hammer the trace parser. *)
    if Rng.bool rng then None
    else
      Some
        {
          Obs.Span.trace_id = 0xfeedfacefeedfaceL;
          parent_span = Int64.of_int (Rng.int rng 1000);
          sampled = Rng.bool rng;
        }
  in
  Serve.Json.to_string
    (request_to_json ?trace reqs.(Rng.int rng (Array.length reqs)))

let mutate rng s =
  let b = Bytes.of_string s in
  let flips = 1 + Rng.int rng 4 in
  for _ = 1 to flips do
    let i = Rng.int rng (Bytes.length b) in
    let c = Char.chr (Rng.int rng 256) in
    Bytes.set b i (if c = '\n' then 'x' else c)
  done;
  Bytes.to_string b

let fuzz_line rng =
  match Rng.int rng 9 with
  | 0 -> random_bytes rng (Rng.int rng 300)
  | 1 -> random_printable rng (Rng.int rng 200)
  | 2 -> deep_array (8 + Rng.int rng 1992)
  | 3 -> deep_object (8 + Rng.int rng 1992)
  | 4 -> Rng.pick rng scalars
  | 5 -> mutate rng (template rng)
  | 6 ->
      let s = template rng in
      String.sub s 0 (Rng.int rng (String.length s))
  | 7 -> {|{"cmd": "upload", "payload": "|} ^ random_printable rng 50 ^ {|"}|}
  | _ -> "\"" ^ String.make (Rng.int rng 5000) 'a' ^ "\\u0000\""

let ping_line = {|{"cmd": "ping"}|}

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let check_reply acc ~input reply =
  let acc =
    if contains_substring ~needle:foreign_trace_id reply then
      violation "wire-trace-echo" "input %S reply %S echoes the caller trace id"
        input reply
      :: acc
    else acc
  in
  match Serve.Json.of_string reply with
  | Error msg ->
      violation "wire-unparseable-reply" "input %S got non-JSON reply %S: %s"
        input reply msg
      :: acc
  | Ok json -> (
      match Serve.Protocol.classify_reply json with
      | Serve.Protocol.Reply_ok _ | Serve.Protocol.Reply_error _ -> acc
      | Serve.Protocol.Reply_shed _ ->
          (* Shedding happens at accept time, before a worker ever parses a
             line; a shed verdict out of handle_line means the backpressure
             path leaked into request handling. *)
          violation "wire-shed-inline" "input %S got an inline shed verdict"
            input
          :: acc)

let fuzz_lines ?(seeds = 200) server =
  let rng = Rng.create 0x3117 in
  let acc = ref [] in
  let requests = ref 0 in
  for i = 0 to seeds - 1 do
    let line = fuzz_line rng in
    incr requests;
    (match Serve.Server.handle_line server line with
    | reply -> acc := check_reply !acc ~input:line reply
    | exception e ->
        acc :=
          violation "wire-crash" "handle_line raised %s on input %S (step %d)"
            (Printexc.to_string e) line i
          :: !acc);
    (* The next well-formed request must be unaffected by whatever the
       garbage did. *)
    if i mod 25 = 24 then begin
      incr requests;
      match Serve.Server.handle_line server ping_line with
      | reply -> (
          match Serve.Json.of_string reply with
          | Ok json when Serve.Protocol.unwrap_reply json |> Result.is_ok ->
              ()
          | _ ->
              acc :=
                violation "wire-state-poisoned"
                  "ping after fuzz step %d got %S" i reply
                :: !acc)
      | exception e ->
          acc :=
            violation "wire-crash" "ping after fuzz step %d raised %s" i
              (Printexc.to_string e)
            :: !acc
    end
  done;
  { requests = !requests; violations = List.rev !acc }

(* Live-state id fuzzing: duplicate admits and stale releases against a
   real session.  Unlike the stateless lines above, these frames are valid
   JSON aimed at admission-state edges — the same app admitted twice, a
   release replayed after it succeeded, an unknown session — and each step
   pins the expected envelope (ok vs error) as well as liveness. *)
let fuzz_session_ids server =
  let acc = ref [] in
  let requests = ref 0 in
  let step ~what ~expect_ok line =
    incr requests;
    match Serve.Server.handle_line server line with
    | exception e ->
        acc :=
          violation "wire-crash" "%s raised %s on %S" what
            (Printexc.to_string e) line
          :: !acc;
        None
    | reply -> (
        match Serve.Json.of_string reply with
        | Error msg ->
            acc :=
              violation "wire-unparseable-reply" "%s: non-JSON reply %S: %s"
                what reply msg
              :: !acc;
            None
        | Ok json ->
            let payload = Serve.Protocol.unwrap_reply json in
            if Result.is_ok payload <> expect_ok then
              acc :=
                violation "wire-session-ids" "%s: expected %s reply, got %S"
                  what
                  (if expect_ok then "an ok" else "an error")
                  reply
                :: !acc;
            Result.to_option payload)
  in
  let upload_line =
    Serve.Json.to_string
      (Serve.Protocol.request_to_json
         (Serve.Protocol.Upload
            {
              payload =
                Exp.Workload.to_string
                  (Exp.Workload.make ~seed:7 ~num_apps:1 ~procs:2 ());
            }))
  in
  let target =
    match step ~what:"upload" ~expect_ok:true upload_line with
    | Some payload -> (
        match
          ( Option.bind (Serve.Json.member "digest" payload) Serve.Json.get_str,
            Serve.Json.member "apps" payload )
        with
        | Some digest, Some (Serve.Json.Arr (Serve.Json.Str app :: _)) ->
            Some (digest, app)
        | _ -> None)
    | None -> None
  in
  (match target with
  | None ->
      acc :=
        violation "wire-session-ids" "upload reply carried no digest/apps"
        :: !acc
  | Some (digest, app) ->
      let admit extra =
        Printf.sprintf
          {|{"cmd": "admit", "session": "ids", "workload": "%s", "app": "%s", "min_throughput": 1e-9%s}|}
          digest app extra
      in
      let release session app =
        Printf.sprintf {|{"cmd": "release", "session": %S, "app": %S}|} session
          app
      in
      ignore (step ~what:"first admit" ~expect_ok:true (admit ""));
      ignore (step ~what:"duplicate admit" ~expect_ok:false (admit ""));
      ignore
        (step ~what:"release of unknown app" ~expect_ok:false
           (release "ids" "ghost"));
      ignore
        (step ~what:"release in unknown session" ~expect_ok:false
           (release "nowhere" "A"));
      ignore (step ~what:"release" ~expect_ok:true (release "ids" "A"));
      ignore (step ~what:"stale release" ~expect_ok:false (release "ids" "A"));
      (* The duplicate and stale frames must not have wedged the session:
         a margin-carrying re-admit still works. *)
      (match
         step ~what:"re-admit with margin" ~expect_ok:true
           (admit {|, "confidence": 0.9, "margin_method": "quantile"|})
       with
      | Some payload
        when Serve.Json.member "margin" payload = None ->
          acc :=
            violation "wire-session-ids"
              "re-admit with confidence 0.9 served no margin"
            :: !acc
      | _ -> ());
      ignore
        (step ~what:"cleanup release" ~expect_ok:true (release "ids" "A")));
  { requests = !requests; violations = List.rev !acc }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          (* The server closed first (e.g. over-length frame): that is an
             acceptable reaction to garbage, not a violation. *)
          ()
  in
  go 0

let fuzz_sockets ?(seeds = 32) ~host ~port () =
  let rng = Rng.create 0x50c7 in
  let acc = ref [] in
  let requests = ref 0 in
  for i = 0 to seeds - 1 do
    incr requests;
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
          match i mod 4 with
          | 0 ->
              (* Junk lines, properly framed. *)
              write_all fd (fuzz_line rng ^ "\n" ^ fuzz_line rng ^ "\n")
          | 1 ->
              (* Truncated frame: bytes but no newline, then hard close. *)
              write_all fd (random_bytes rng (1 + Rng.int rng 100))
          | 2 ->
              (* Over-length line: exceeds the server's frame limit. *)
              write_all fd (String.make 100_000 'a' ^ "\n")
          | _ ->
              (* Immediate disconnect. *)
              ())
    with
    | () -> ()
    | exception e ->
        acc :=
          violation "wire-socket" "connection %d: %s" i (Printexc.to_string e)
          :: !acc
  done;
  (* Liveness: a clean client session must still work. *)
  incr requests;
  (match Serve.Client.connect ~host ~port () with
  | Error msg ->
      acc := violation "wire-dead" "connect after fuzzing: %s" msg :: !acc
  | Ok client ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          match Serve.Client.ping client with
          | Ok () -> ()
          | Error msg ->
              acc :=
                violation "wire-dead" "ping after fuzzing: %s" msg :: !acc));
  { requests = !requests; violations = List.rev !acc }

let run ?(seeds = 200) () =
  let config =
    {
      Serve.Server.default_config with
      port = Some 0;
      jobs = Some 2;
      cache_capacity = 8;
      max_line = 4096;
    }
  in
  match Serve.Server.start ~config () with
  | exception e ->
      {
        requests = 0;
        violations =
          [ violation "wire-crash" "server start: %s" (Printexc.to_string e) ];
      }
  | server ->
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop server)
        (fun () ->
          let in_process = fuzz_lines ~seeds server in
          let sessions = fuzz_session_ids server in
          let socket =
            match Serve.Server.tcp_port server with
            | None ->
                {
                  requests = 0;
                  violations =
                    [ violation "wire-socket" "server has no TCP port" ];
                }
            | Some port ->
                fuzz_sockets ~seeds:(max 8 (seeds / 8)) ~host:"127.0.0.1"
                  ~port ()
          in
          {
            requests = in_process.requests + sessions.requests + socket.requests;
            violations =
              in_process.violations @ sessions.violations @ socket.violations;
          })
