type entry = { property : string; detail : string; spec : Case.spec }

(* Comment out every line of a multi-line string (details may embed
   backtraces; graphs are multi-line by nature). *)
let commented prefix s =
  String.split_on_char '\n' s
  |> List.map (fun l -> if l = "" then "#" else "# " ^ l)
  |> String.concat "\n" |> fun body -> prefix ^ body

let to_string e =
  let b = Buffer.create 512 in
  Buffer.add_string b "# contention-check case v1\n";
  Buffer.add_string b (Printf.sprintf "# property: %s\n" e.property);
  Buffer.add_string b (commented "# detail:\n" e.detail);
  Buffer.add_char b '\n';
  Buffer.add_string b (Case.spec_to_line e.spec);
  Buffer.add_char b '\n';
  (match Case.materialize e.spec with
  | Ok t ->
      Buffer.add_string b (commented "# materialized:\n" (Case.describe t));
      Buffer.add_char b '\n'
  | Error _ -> ());
  Buffer.contents b

let of_string s =
  let property = ref "unknown" and detail = ref [] and spec = ref None in
  let err = ref None in
  let in_detail = ref false in
  List.iter
    (fun line ->
      let line = String.trim line in
      if !err <> None then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        let body = String.trim (String.sub line 1 (String.length line - 1)) in
        if String.length body >= 9 && String.sub body 0 9 = "property:" then begin
          property := String.trim (String.sub body 9 (String.length body - 9));
          in_detail := false
        end
        else if body = "detail:" then in_detail := true
        else if String.length body >= 12 && String.sub body 0 12 = "materialized"
        then in_detail := false
        else if !in_detail then detail := body :: !detail
      end
      else if line <> "" then
        match Case.spec_of_line line with
        | Ok sp -> spec := Some sp
        | Error msg -> err := Some msg)
    (String.split_on_char '\n' s);
  match (!err, !spec) with
  | Some msg, _ -> Error msg
  | None, None -> Error "no spec line in case file"
  | None, Some spec ->
      Ok
        {
          property = !property;
          detail = String.concat "\n" (List.rev !detail);
          spec;
        }

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    s

let filename e =
  (* A small FNV-1a over the spec line keeps names stable across runs
     without pulling in a hash dependency. *)
  let h = ref 0x2ce484222325 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x100000001b3)
    (Case.spec_to_line e.spec);
  Printf.sprintf "%s-%012x.case" (sanitize e.property)
    (!h land 0xffffffffffff)

let save ~dir e =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string e));
  path

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path =
  match read_all path with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let load_dir dir =
  if not (Sys.file_exists dir) then ([], [])
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".case")
      |> List.sort compare
      |> List.map (Filename.concat dir)
    in
    List.fold_left
      (fun (ok, bad) path ->
        match load_file path with
        | Ok e -> ((path, e) :: ok, bad)
        | Error msg -> (ok, (path, msg) :: bad))
      ([], []) files
    |> fun (ok, bad) -> (List.rev ok, List.rev bad)
