(** Plain-text rendering of a fuzz campaign's outcome. *)

val render : Fuzz.result -> string
(** Campaign summary: totals, the per-estimator accuracy table (mean and
    worst percentage error against the simulated period — same shape as the
    paper's Table 1, measured over random workloads instead of the case
    study), and one block per failure with the shrunk reproducing spec. *)

val render_replay :
  (string * Oracle.outcome) list -> (string * string) list -> string
(** Summary of a corpus replay: per file, pass / the violated properties /
    the parse error. *)
