(** On-disk corpus of shrunk counterexamples.

    Every failure the fuzzer finds is minimized and saved as a [.case] file
    under a corpus directory ([test/corpus/] in this repository).  The files
    are self-contained and human-readable — a comment header with the
    violated property and evidence, the one-line {!Case.spec}, and the
    materialized graphs for the reader — and the test suite replays every
    file on each [dune runtest], so a once-found bug permanently guards the
    code that used to have it. *)

type entry = {
  property : string;  (** The violated property (first violation). *)
  detail : string;  (** Its evidence line. *)
  spec : Case.spec;  (** The shrunk reproducing spec. *)
}

val to_string : entry -> string
(** The [.case] file format:
    {v
    # contention-check case v1
    # property: order-sandwich
    # detail: ...
    spec seed=7 procs=2 usecase=1 apps=2:1
    # graph "A"
    # ...
    v}
    Everything but the [spec] line is a comment; the materialized graphs are
    included (commented) when the spec still materializes. *)

val of_string : string -> (entry, string) result
(** Parse {!to_string} output; unknown comment lines are ignored, so the
    format can grow fields without invalidating old corpora. *)

val filename : entry -> string
(** Deterministic name, [<property>-<spec hash>.case], safe for any
    filesystem. *)

val save : dir:string -> entry -> string
(** Write the entry under its {!filename} into [dir] (created if missing);
    returns the full path.  Idempotent: the same entry overwrites itself. *)

val load_file : string -> (entry, string) result

val load_dir : string -> (string * entry) list * (string * string) list
(** All [.case] files of a directory (sorted by name): parsed entries and
    [(path, error)] for files that failed to parse.  A missing directory is
    an empty corpus. *)
