let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i ^ " ..."

let render (r : Fuzz.result) =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "contention check: %d seed%s (%d ran, %d skipped by budget) in %.1f s\n"
    r.seeds
    (if r.seeds = 1 then "" else "s")
    r.ran r.skipped r.elapsed_s;
  let measured =
    List.filter (fun (a : Fuzz.accuracy) -> a.samples > 0) r.accuracy
  in
  if measured <> [] then begin
    Buffer.add_string b
      "\naccuracy vs simulation (abs % error of the estimated period)\n";
    Buffer.add_string b
      (Repro_stats.Table.render
         ~header:[ "estimator"; "samples"; "mean"; "max" ]
         (List.map
            (fun (a : Fuzz.accuracy) ->
              [
                a.estimator;
                string_of_int a.samples;
                Repro_stats.Table.float_cell ~decimals:2 a.mean_err;
                Repro_stats.Table.float_cell ~decimals:2 a.max_err;
              ])
            measured))
  end;
  (match r.failures with
  | [] -> Buffer.add_string b "\nviolations: none\n"
  | failures ->
      Printf.bprintf b "\nviolations: %d\n" (List.length failures);
      List.iter
        (fun (f : Fuzz.failure) ->
          Printf.bprintf b "\n  seed %d: %s\n    %s\n" f.seed f.property
            (first_line f.detail);
          Printf.bprintf b "    original: %s\n"
            (Case.spec_to_line f.spec);
          Printf.bprintf b "    shrunk:   %s  (%d active actors)\n"
            (Case.spec_to_line f.shrunk)
            f.shrunk_actors)
        failures);
  Buffer.contents b

let render_replay outcomes errors =
  let b = Buffer.create 256 in
  let failed = ref 0 in
  List.iter
    (fun (path, (o : Oracle.outcome)) ->
      match o.violations with
      | [] -> Printf.bprintf b "  pass  %s\n" (Filename.basename path)
      | vs ->
          incr failed;
          Printf.bprintf b "  FAIL  %s: %s\n" (Filename.basename path)
            (String.concat ", "
               (List.map (fun (v : Oracle.violation) -> v.property) vs)))
    outcomes;
  List.iter
    (fun (path, msg) ->
      incr failed;
      Printf.bprintf b "  UNREADABLE  %s: %s\n" (Filename.basename path) msg)
    errors;
  Printf.bprintf b "corpus replay: %d case%s, %d failing\n"
    (List.length outcomes + List.length errors)
    (if List.length outcomes + List.length errors = 1 then "" else "s")
    !failed;
  Buffer.contents b
