(** The differential oracle: every property a materialized case must satisfy.

    For one {!Case.t} the oracle cross-checks the estimator stack at three
    levels, using mathematically provable relations rather than golden
    values, so any reported violation is a real bug (or a tolerance to
    justify), not drift:

    {e Isolation periods} — the three independent throughput engines
    (self-timed state space, HSDF + maximum cycle ratio, max-plus
    eigenvalue) must agree on every application graph.

    {e Waiting-time kernels} — per actor, against the co-mapped loads:
    - Eq. 4 equals the exponential brute-force enumeration (≤ 6 contenders);
    - the truncation sandwich: order 2 ≥ order 4 ≥ exact ≥ order 5 ≥ order 3
      (even truncations over-estimate, odd under-estimate — Section 4.1);
    - a truncation of order ≥ n is the exact value (the symmetric
      polynomials of higher degree vanish);
    - the worst case dominates the exact expectation
      ([E(wait|S) = (2|S|-1)/|S| · Σ μ ≤ 2 Σ μ] for every subset);
    - composability stays within a configurable envelope of exact;
    - the {!Metamorphic} relations.

    {e Engine equivalence} — per use-case, the zero-allocation kernel
    engine against the list-based reference path for every estimator
    ({!kernel_agreement}).

    {e Periods under contention} — per use-case:
    - every estimate is finite, positive, and at least the isolation period;
    - the kernel ordering transfers to periods (cycle ratios are monotone in
      execution times): wc ≥ order 2 ≥ order 4 ≥ exact;
    - the simulated average period lies between isolation and the worst-case
      bound (within [sim_tolerance], covering finite-window wobble);
    - doubling every execution time doubles isolation and estimated periods;
    - the simulator produced enough iterations to measure at all (a [nan]
      average period is itself a violation).

    As a by-product the oracle reports each estimator's percentage error
    against the simulated period — the fuzz campaign aggregates these into
    the accuracy table that mirrors the paper's Table 1. *)

type violation = Metamorphic.violation = {
  property : string;
  detail : string;
}

type config = {
  sim_tolerance : float;
      (** Relative slack on simulator-vs-bound comparisons (finite horizon,
          warm-up placement).  Default 0.02. *)
  comp_envelope : float;
      (** Maximum relative deviation of the composability kernel from the
          exact series.  ⊗ matches Eq. 4 to second order only and
          over-estimates increasingly under saturation (up to ~1.3× exact
          observed on generated workloads), so this is an empirical
          regression envelope, not a theorem; default 2.  Tight {e provable}
          bounds on the fold — between the plain waiting-product sum and
          that sum times 1.5^(n-1) — are always checked separately. *)
  horizon_iterations : float;
      (** Simulation horizon as a multiple of the largest worst-case period,
          so even the slowest application completes well over the 20 warm-up
          iterations.  Default 50. *)
  scaling_factor : float;
      (** Execution-time multiplier of the case-level scaling check.
          Default 2 (keeps integer times integral). *)
}

val default_config : config

type outcome = {
  violations : violation list;
  errors : (string * float) list;
      (** One [(estimator name, |estimate - simulated| / simulated * 100)]
          entry per estimator and active application; empty when the
          simulation itself was flagged. *)
}

val passed : outcome -> bool

val estimators : (string * Contention.Analysis.estimator) list
(** The checked estimators with their report names, most conservative
    first: wc, order-2, order-4, comp, exact. *)

val check_kernel :
  ?config:config ->
  ?exact:(Contention.Prob.t list -> float) ->
  Sdfgen.Rng.t ->
  Contention.Prob.t list ->
  violation list
(** The per-actor kernel checks against one list of co-mapped loads.
    [exact] substitutes the reference implementation of Eq. 4 — the hook the
    tests use to prove the oracle catches an injected estimator bug (e.g. a
    dropped [(-1)^(j+1)] sign) without patching the library. *)

val kernel_agreement :
  Contention.Analysis.app list ->
  violation list ->
  violation list
(** Differential check of the zero-allocation kernel engine
    ({!Contention.Analysis.estimate_prepared}) against the list-based
    reference ({!Contention.Analysis.estimate_prepared_reference}) on one
    use-case, for every estimator: waits, response times, and periods must
    agree to 1e-9, and the batched entry point
    ({!Contention.Analysis.estimate_batch}) must reproduce the
    one-at-a-time results bit for bit.  Part of {!check}. *)

val check : ?config:config -> Case.t -> outcome
(** Run every level on a case.  Deterministic: the metamorphic RNG is seeded
    from the case spec.  Never raises — an escaped exception (the crash
    detector for NaN/∞ guards, Invalid_argument, stack overflow) is reported
    as a ["crash"] violation with its backtrace. *)

(** {1 Margin coverage}

    The statistical oracle behind the admission margins: a served
    {!Contention.Margin.t} claims the contended period lands inside
    [[lo, hi]] with the stated probability, and the only ground truth for
    that claim is replaying the population through the simulator with fresh
    execution-time draws and counting. *)

type coverage = {
  replays : int;
  covered : int;  (** Replays whose observed period fell inside the margin. *)
  observed_coverage : float;  (** [covered / replays]. *)
  served : Contention.Margin.t;  (** The margin the replays were judged by. *)
}

val margin_coverage :
  ?replays:int ->
  ?slack:float ->
  ?horizon:float ->
  ?seed:int ->
  procs:int ->
  spec:Contention.Admission.margin_spec ->
  app:string ->
  Contention.Analysis.app list ->
  coverage * violation list
(** Admit [apps] best-effort, serve a margin for [app] under [spec], then
    replay the whole population [replays] times (default 200) with
    execution times drawn from each application's declared distributions
    (constant-time apps replay deterministically).  A ["margin-coverage"]
    violation is reported when the observed coverage falls more than
    [slack] (default 0.02 — two percentage points) below the stated
    confidence; starved replays are ["margin-starved"] violations and do
    not count as covered.
    @raise Invalid_argument if [replays < 1], [app] is not in the
    population, duplicate names keep it from being admitted, or the spec is
    invalid. *)
