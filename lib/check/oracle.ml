module Analysis = Contention.Analysis
module Prob = Contention.Prob

type violation = Metamorphic.violation = { property : string; detail : string }

type config = {
  sim_tolerance : float;
  comp_envelope : float;
  horizon_iterations : float;
  scaling_factor : float;
}

let default_config =
  {
    sim_tolerance = 0.02;
    comp_envelope = 2.0;
    horizon_iterations = 50.;
    scaling_factor = 2.;
  }

type outcome = { violations : violation list; errors : (string * float) list }

let passed o = o.violations = []

let estimators =
  [
    ("wc", Analysis.Worst_case);
    ("order-2", Analysis.Order 2);
    ("order-4", Analysis.Order 4);
    ("comp", Analysis.Composability);
    ("exact", Analysis.Exact);
  ]

let violation property fmt =
  Printf.ksprintf (fun detail -> { property; detail }) fmt

let rel_close ?(tol = 1e-9) a b =
  Float.abs (a -. b)
  <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* [ge a b] — "a >= b up to rounding", scaled like {!rel_close}. *)
let ge ?(tol = 1e-9) a b =
  a >= b -. (tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))

let finite_positive name v acc =
  if Float.is_finite v && v >= 0. then acc
  else violation "non-finite" "%s produced %h" name v :: acc

(* ------------------------------------------------------------------ *)
(* Kernel level                                                        *)

let check_kernel ?(config = default_config) ?exact rng others =
  if others = [] then []
  else
    let exact_fn =
      match exact with Some f -> f | None -> Contention.Exact.waiting_time
    in
    let n = List.length others in
    let wc = Contention.Wcrt.waiting_time others in
    let o2 = Contention.Approx.second_order others in
    let o3 = Contention.Approx.waiting_time ~order:3 others in
    let o4 = Contention.Approx.fourth_order others in
    let o5 = Contention.Approx.waiting_time ~order:5 others in
    let ex = exact_fn others in
    let comp = Contention.Compose.waiting_time others in
    let acc = [] in
    let acc =
      List.fold_left
        (fun acc (name, v) -> finite_positive ("kernel " ^ name) v acc)
        acc
        [
          ("wc", wc); ("order-2", o2); ("order-3", o3); ("order-4", o4);
          ("order-5", o5); ("exact", ex); ("comp", comp);
        ]
    in
    let acc =
      if n > 6 then acc
      else
        let bf = Contention.Exact.waiting_time_brute_force others in
        if rel_close ~tol:1e-6 ex bf then acc
        else
          violation "exact-vs-brute-force"
            "Eq. 4 gives %.17g, subset enumeration gives %.17g (%d loads)" ex
            bf n
          :: acc
    in
    let acc =
      (* Even truncations over-estimate, odd under-estimate (Section 4.1):
         o2 >= o4 >= exact >= o5 >= o3. *)
      List.fold_left
        (fun acc (na, a, nb, b) ->
          if ge a b then acc
          else
            violation "order-sandwich" "%s (%.17g) < %s (%.17g)" na a nb b
            :: acc)
        acc
        [
          ("order-2", o2, "order-4", o4);
          ("order-4", o4, "exact", ex);
          ("exact", ex, "order-5", o5);
          ("order-5", o5, "order-3", o3);
        ]
    in
    let acc =
      (* All symmetric polynomials of degree >= n vanish, so truncating at
         order n already keeps every term of Eq. 4. *)
      let full = Contention.Approx.waiting_time ~order:(max 2 n) others in
      if rel_close full ex then acc
      else
        violation "order-n-exact"
          "order-%d truncation %.17g differs from exact %.17g" (max 2 n) full
          ex
        :: acc
    in
    let acc =
      if ge wc ex then acc
      else
        violation "wc-dominates"
          "worst case %.17g below exact expectation %.17g" wc ex
        :: acc
    in
    let acc =
      (* Provable sandwich for the ⊗ fold: every combine step satisfies
         w_a + w_b <= w_ab <= 1.5 (w_a + w_b), so the aggregate lies
         between the plain sum of waiting products and that sum times
         1.5^(n-1). *)
      let base = List.fold_left (fun s l -> s +. Prob.waiting_product l) 0. others in
      let upper = base *. Float.pow 1.5 (float_of_int (n - 1)) in
      let acc =
        if ge comp base then acc
        else
          violation "comp-bounds"
            "composability %.17g below the waiting-product sum %.17g" comp
            base
          :: acc
      in
      if ge upper comp then acc
      else
        violation "comp-bounds"
          "composability %.17g above the fold bound %.17g" comp upper
        :: acc
    in
    let acc =
      if
        Float.abs (comp -. ex)
        <= config.comp_envelope *. Float.max ex 1e-6
      then acc
      else
        violation "comp-envelope"
          "composability %.17g vs exact %.17g exceeds envelope %g" comp ex
          config.comp_envelope
        :: acc
    in
    List.rev_append acc (Metamorphic.all rng others)

(* ------------------------------------------------------------------ *)
(* Case level                                                          *)

let engine_agreement (a : Analysis.app) acc =
  let ss = a.isolation_period in
  let mcm = Sdf.Hsdf.period a.graph in
  let mp = Maxplus.period a.graph in
  let pair acc na va nb vb =
    if rel_close ~tol:1e-6 va vb then acc
    else
      violation "engine-disagreement" "graph %S: %s period %.17g, %s %.17g"
        a.graph.Sdf.Graph.name na va nb vb
      :: acc
  in
  let acc = pair acc "state-space" ss "mcm" mcm in
  pair acc "state-space" ss "max-plus" mp

(* The zero-allocation kernel engine against the list-based reference: both
   evaluate the same Figure-4 pass, and the kernel replicates the reference's
   floating-point operation sequences, so waits, response times, and periods
   must agree to 1e-9 for every estimator — and the batched entry point must
   reproduce the one-at-a-time results bit for bit. *)
let kernel_agreement apps acc =
  match apps with
  | [] -> acc
  | apps ->
      let arr = Array.of_list apps in
      let caches = Array.map Analysis.prepare arr in
      let prepared = Analysis.prepare_workload ~caches arr in
      let pairs = List.map2 (fun a c -> (a, c)) apps (Array.to_list caches) in
      let napps = Array.length arr in
      List.fold_left
        (fun acc (name, est) ->
          let kernel = Analysis.estimate_prepared est pairs in
          let reference = Analysis.estimate_prepared_reference est pairs in
          let acc =
            List.fold_left2
              (fun acc (k : Analysis.estimate) (r : Analysis.estimate) ->
                let acc =
                  if rel_close k.period r.period then acc
                  else
                    violation "kernel-engine"
                      "%s period of %S: kernel %.17g, reference %.17g" name
                      k.for_app.graph.Sdf.Graph.name k.period r.period
                    :: acc
                in
                let fold_arr what ka ra acc =
                  snd
                    (Array.fold_left
                       (fun (i, acc) kv ->
                         ( i + 1,
                           if rel_close kv ra.(i) then acc
                           else
                             violation "kernel-engine"
                               "%s %s.(%d) of %S: kernel %.17g, reference %.17g"
                               name what i k.for_app.graph.Sdf.Graph.name kv
                               ra.(i)
                             :: acc ))
                       (0, acc) ka)
                in
                acc
                |> fold_arr "waiting_times" k.waiting_times r.waiting_times
                |> fold_arr "response_times" k.response_times r.response_times)
              acc kernel reference
          in
          if napps >= 30 then acc
          else
            let batch =
              List.concat
                (Analysis.estimate_batch est prepared
                   [ Contention.Usecase.full ~napps ])
            in
            List.fold_left2
              (fun acc (k : Analysis.estimate) (b : Analysis.estimate) ->
                if
                  Float.equal k.period b.period
                  && Array.for_all2 Float.equal k.waiting_times b.waiting_times
                  && Array.for_all2 Float.equal k.response_times
                       b.response_times
                then acc
                else
                  violation "kernel-batch"
                    "%s estimate of %S: batch differs from one-at-a-time \
                     (period %.17g vs %.17g)"
                    name k.for_app.graph.Sdf.Graph.name b.period k.period
                  :: acc)
              acc kernel batch)
        acc estimators

(* Per-processor load groups across the active applications; each entry is
   an actor's own load paired with the loads it competes with. *)
let contender_lists procs apps =
  let by_proc = Array.make procs [] in
  List.iter
    (fun (a : Analysis.app) ->
      let loads = Analysis.loads a in
      Array.iteri
        (fun actor load ->
          let proc = a.mapping.(actor) in
          by_proc.(proc) <- (load : Prob.t) :: by_proc.(proc))
        loads)
    apps;
  let entries = ref [] in
  Array.iter
    (fun loads ->
      let loads = List.rev loads in
      List.iteri
        (fun i _ ->
          let others = List.filteri (fun j _ -> j <> i) loads in
          if others <> [] then entries := others :: !entries)
        loads)
    by_proc;
  List.rev !entries

let check_estimates apps acc =
  let estimates =
    List.map (fun (name, est) -> (name, Analysis.estimate est apps)) estimators
  in
  let acc =
    List.fold_left
      (fun acc (name, ests) ->
        List.fold_left
          (fun acc (e : Analysis.estimate) ->
            let app_name = e.for_app.graph.Sdf.Graph.name in
            let acc =
              if Float.is_finite e.period && e.period > 0. then acc
              else
                violation "non-finite" "%s period of %S is %h" name app_name
                  e.period
                :: acc
            in
            if ge e.period e.for_app.isolation_period then acc
            else
              violation "below-isolation"
                "%s period of %S (%.17g) below isolation (%.17g)" name
                app_name e.period e.for_app.isolation_period
              :: acc)
          acc ests)
      acc estimates
  in
  (* Kernel ordering transfers to periods (cycle ratios are monotone in the
     execution times): wc >= o2 >= o4 >= exact. *)
  let by_name n = List.assoc n estimates in
  let ordered na nb acc =
    List.fold_left2
      (fun acc (ea : Analysis.estimate) (eb : Analysis.estimate) ->
        if ge ea.period eb.period then acc
        else
          violation "period-ordering" "%s period of %S (%.17g) < %s (%.17g)"
            na ea.for_app.graph.Sdf.Graph.name ea.period nb eb.period
          :: acc)
      acc (by_name na) (by_name nb)
  in
  (* "wc >= order-2" would NOT be sound: with four or more highly loaded
     contenders the order-2 bracket (1 + P/2 each) exceeds the worst case's
     factor 2, so only wc >= exact and the truncation chain are asserted. *)
  let acc = acc |> ordered "wc" "exact" |> ordered "order-2" "order-4" in
  let acc = ordered "order-4" "exact" acc in
  (estimates, acc)

let simulate config (t : Case.t) wc_estimates acc =
  let apps = Case.sim_apps t in
  let max_wc =
    List.fold_left
      (fun m (e : Analysis.estimate) -> Float.max m e.period)
      0. wc_estimates
  in
  let horizon = config.horizon_iterations *. max_wc in
  let results, _stats =
    Desim.Engine.run ~horizon ~procs:t.spec.procs apps
  in
  let selected = Array.of_list (Case.selected t) in
  let acc = ref acc in
  Array.iteri
    (fun i (r : Desim.Engine.result) ->
      let a = selected.(i) in
      let wc = (List.nth wc_estimates i : Analysis.estimate).period in
      if not (Float.is_finite r.avg_period) then
        acc :=
          violation "sim-starved"
            "app %S: %d iterations in horizon %g — no measurable period"
            r.app_name r.iterations horizon
          :: !acc
      else begin
        if not (ge ~tol:config.sim_tolerance r.avg_period a.isolation_period)
        then
          acc :=
            violation "sim-below-isolation"
              "app %S: simulated period %.17g below isolation %.17g"
              r.app_name r.avg_period a.isolation_period
            :: !acc;
        if not (ge ~tol:config.sim_tolerance wc r.avg_period) then
          acc :=
            violation "sim-above-wc"
              "app %S: simulated period %.17g above worst-case bound %.17g"
              r.app_name r.avg_period wc
            :: !acc
      end)
    results;
  (results, !acc)

let scaling_check config (t : Case.t) acc =
  let c = config.scaling_factor in
  match Case.scale_exec t c with
  | Error msg -> violation "crash" "scale_exec failed: %s" msg :: acc
  | Ok scaled ->
      let orig = Array.of_list (Case.selected t) in
      let doubled = Array.of_list (Case.selected scaled) in
      let acc = ref acc in
      Array.iteri
        (fun i (a : Analysis.app) ->
          let b = doubled.(i) in
          if not (rel_close (a.isolation_period *. c) b.isolation_period)
          then
            acc :=
              violation "scaling-isolation"
                "app %S: isolation %.17g scaled by %g gave %.17g"
                a.graph.Sdf.Graph.name a.isolation_period c
                b.isolation_period
              :: !acc)
        orig;
      let before = Analysis.estimate Analysis.Exact (Array.to_list orig) in
      let after = Analysis.estimate Analysis.Exact (Array.to_list doubled) in
      List.iter2
        (fun (e : Analysis.estimate) (e' : Analysis.estimate) ->
          if not (rel_close (e.period *. c) e'.period) then
            acc :=
              violation "scaling-estimate"
                "app %S: exact period %.17g scaled by %g gave %.17g"
                e.for_app.graph.Sdf.Graph.name e.period c e'.period
              :: !acc)
        before after;
      !acc

let check ?(config = default_config) (t : Case.t) =
  match
    let rng = Sdfgen.Rng.create (t.spec.seed lxor 0x5eed) in
    let apps = Case.selected t in
    let acc = List.fold_left (fun acc a -> engine_agreement a acc) [] apps in
    let acc =
      List.fold_left
        (fun acc others ->
          List.rev_append (check_kernel ~config rng others) acc)
        acc
        (contender_lists t.spec.procs apps)
    in
    let acc = kernel_agreement apps acc in
    let estimates, acc = check_estimates apps acc in
    let results, acc = simulate config t (List.assoc "wc" estimates) acc in
    let acc = scaling_check config t acc in
    let errors =
      if List.exists (fun (r : Desim.Engine.result) ->
             not (Float.is_finite r.avg_period))
           (Array.to_list results)
      then []
      else
        List.concat_map
          (fun (name, ests) ->
            List.mapi
              (fun i (e : Analysis.estimate) ->
                let sim = results.(i).avg_period in
                (name, Float.abs (e.period -. sim) /. sim *. 100.))
              ests)
          estimates
    in
    { violations = List.rev acc; errors }
  with
  | outcome -> outcome
  | exception e ->
      let bt = Printexc.get_backtrace () in
      {
        violations =
          [
            violation "crash" "%s%s" (Printexc.to_string e)
              (if bt = "" then "" else "\n" ^ bt);
          ];
        errors = [];
      }

(* ------------------------------------------------------------------ *)
(* Margin coverage                                                     *)

type coverage = {
  replays : int;
  covered : int;
  observed_coverage : float;
  served : Contention.Margin.t;
}

let margin_coverage ?(replays = 200) ?(slack = 0.02) ?(horizon = 50_000.)
    ?(seed = 0) ~procs ~spec ~app apps =
  if replays < 1 then invalid_arg "Check.Oracle.margin_coverage: replays < 1";
  let ctl = Contention.Admission.create ~procs () in
  List.iter
    (fun a ->
      ignore (Contention.Admission.try_admit ctl a Contention.Admission.best_effort))
    apps;
  let served = Contention.Admission.margin_for ctl spec app in
  let sim_apps =
    Array.of_list
      (List.map
         (fun (a : Analysis.app) ->
           { Desim.Engine.graph = a.graph; mapping = a.mapping })
         apps)
  in
  let dists =
    Array.of_list (List.map (fun (a : Analysis.app) -> a.distributions) apps)
  in
  let app_pos =
    let rec find i = function
      | [] ->
          invalid_arg
            (Printf.sprintf
               "Check.Oracle.margin_coverage: %S not in the population" app)
      | (a : Analysis.app) :: rest ->
          if String.equal a.graph.Sdf.Graph.name app then i
          else find (i + 1) rest
    in
    find 0 apps
  in
  let covered = ref 0 in
  let acc = ref [] in
  for rep = 1 to replays do
    (* One replay = one draw of every variable execution time = one
       Bernoulli trial of the coverage claim.  Constant-time apps replay
       identically, which degenerates to a single pass/fail — still a valid
       (if blunt) instance of the claim. *)
    let rng = Sdfgen.Rng.create ((seed * 1_000_003) + rep) in
    let firing_time ~app:ai ~actor =
      match dists.(ai) with
      | None -> (Sdf.Graph.actor sim_apps.(ai).Desim.Engine.graph actor).exec_time
      | Some ds ->
          Contention.Dist.sample ds.(actor) ~u:(Sdfgen.Rng.float rng 1.)
    in
    let results, _ = Desim.Engine.run ~horizon ~firing_time ~procs sim_apps in
    let r = results.(app_pos) in
    if not (Float.is_finite r.Desim.Engine.avg_period) then
      acc :=
        violation "margin-starved"
          "replay %d: no measurable period for %S within horizon %g" rep app
          horizon
        :: !acc
    else if Contention.Margin.covers served r.Desim.Engine.avg_period then
      incr covered
  done;
  let observed = float_of_int !covered /. float_of_int replays in
  let acc =
    if observed +. slack >= served.Contention.Margin.confidence then !acc
    else
      violation "margin-coverage"
        "%S: observed coverage %.4f over %d replays below stated confidence \
         %.4f (slack %g) for [%g, %g]"
        app observed replays served.Contention.Margin.confidence slack
        served.Contention.Margin.lo served.Contention.Margin.hi
      :: !acc
  in
  ( { replays; covered = !covered; observed_coverage = observed; served },
    List.rev acc )
