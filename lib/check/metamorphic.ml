module Prob = Contention.Prob

type violation = { property : string; detail : string }

let violation property fmt = Printf.ksprintf (fun detail -> { property; detail }) fmt

(* Relative closeness with an absolute floor: kernel outputs are sums of
   [mu * p] products, so values far below any load's mu are pure rounding. *)
let close ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let kernels =
  [
    ("wc", Contention.Wcrt.waiting_time);
    ("order-2", Contention.Approx.second_order);
    ("order-4", Contention.Approx.fourth_order);
    ("exact", Contention.Exact.waiting_time);
  ]

let permutation_invariance rng loads =
  let arr = Array.of_list loads in
  Sdfgen.Rng.shuffle rng arr;
  let shuffled = Array.to_list arr in
  let sym =
    List.filter_map
      (fun (name, kernel) ->
        let w = kernel loads and w' = kernel shuffled in
        if close w w' then None
        else
          Some
            (violation "meta-permutation" "%s: %.17g reordered to %.17g" name
               w w'))
      kernels
  in
  (* The ⊗ fold is associative only to second order, so the composability
     waiting product is genuinely order-dependent — only the ⊕ probability
     component is exactly symmetric (Eq. 6). *)
  let module C = Contention.Compose in
  let agg l = C.combine_all (List.map C.of_load l) in
  let p = (agg loads).C.p and p' = (agg shuffled).C.p in
  if close p p' then sym
  else
    violation "meta-permutation" "comp ⊕: %.17g reordered to %.17g" p p'
    :: sym

let scale_load c (l : Prob.t) =
  Prob.make ~p:l.p ~mu:(l.mu *. c) ~tau:(l.tau *. c)

let time_scaling rng loads =
  let c = 0.5 +. Sdfgen.Rng.float rng 7.5 in
  let scaled = List.map (scale_load c) loads in
  List.filter_map
    (fun (name, kernel) ->
      let w = kernel loads and w' = kernel scaled in
      if close (w *. c) w' then None
      else
        Some
          (violation "meta-scaling"
             "%s: scaling blocking times by %g took W from %.17g to %.17g, \
              expected %.17g"
             name c w w' (w *. c)))
    (kernels @ [ ("comp", Contention.Compose.waiting_time) ])

let monotone_kernels =
  (* Order 4 truncates after a negative term and is not monotone in added
     contenders in general, so it is excluded here (its bounds are checked
     against the exact series in the oracle instead). *)
  [
    ("wc", Contention.Wcrt.waiting_time);
    ("order-2", Contention.Approx.second_order);
    ("exact", Contention.Exact.waiting_time);
    ("comp", Contention.Compose.waiting_time);
  ]

let monotonicity rng loads =
  let tau = 1. +. Sdfgen.Rng.float rng 99. in
  let extra =
    Prob.make ~p:(0.05 +. Sdfgen.Rng.float rng 0.9) ~mu:(tau /. 2.) ~tau
  in
  List.filter_map
    (fun (name, kernel) ->
      let w = kernel loads and w' = kernel (loads @ [ extra ]) in
      if w' >= w -. 1e-12 then None
      else
        Some
          (violation "meta-monotonicity"
             "%s: adding a contender (p=%g tau=%g) decreased W from %.17g to \
              %.17g"
             name extra.p extra.tau w w'))
    monotone_kernels

let compose_roundtrip loads =
  let module C = Contention.Compose in
  (* ⊗ is not associative beyond second order, so ⊖ only inverts the LAST
     ⊕/⊗ application (the compose.mli contract): build the aggregate with
     the probed load combined last, then remove it. *)
  List.concat
    (List.mapi
       (fun i (l : Prob.t) ->
         if l.p > 0.999 then
           (* Near-saturated load: the ⊖ inverse divides by (1 - p) and
              loses all precision; the paper notes the inverse does not
              exist at p = 1, so skip rather than report numerics as
              violations. *)
           []
         else
           let others =
             List.filteri (fun j _ -> j <> i) loads
             |> List.map C.of_load |> C.combine_all
           in
           let total = C.combine others (C.of_load l) in
           let recovered = C.remove ~total (C.of_load l) in
           if
             close ~tol:1e-6 recovered.C.p others.C.p
             && close ~tol:1e-6 recovered.C.w others.C.w
           then []
           else
             [
               violation "meta-compose-roundtrip"
                 "removing load %d (p=%g): recovered (p=%.17g w=%.17g), \
                  direct (p=%.17g w=%.17g)"
                 i l.p recovered.C.p recovered.C.w others.C.p others.C.w;
             ])
       loads)

let all rng loads =
  permutation_invariance rng loads
  @ time_scaling rng loads
  @ monotonicity rng loads
  @ compose_roundtrip loads

(* ------------------------------------------------------------------ *)
(* Admission-level relations (the churn tier)                          *)

module Admission = Contention.Admission

let estimates ctl =
  List.map
    (fun (name, _, _) -> (name, Admission.estimated_period ctl name))
    (Admission.admitted ctl)

let compare_estimates ~property ~tol a b =
  List.concat_map
    (fun (name, pa) ->
      match List.assoc_opt name b with
      | None ->
          [ violation property "%S present in one population only" name ]
      | Some pb ->
          if close ~tol pa pb then []
          else
            [
              violation property "%s: period %.17g vs %.17g (tol %g)" name pa
                pb tol;
            ])
    a

(* Admitting then withdrawing the same application is the identity on every
   resident's estimate: the withdrawal is the most recent admission, so ⊖
   takes the exact LIFO inverse path. *)
let join_leave_roundtrip ~procs residents extra =
  let ctl = Admission.create ~procs () in
  List.iter
    (fun app -> ignore (Admission.try_admit ctl app Admission.best_effort))
    residents;
  let before = estimates ctl in
  match Admission.try_admit ctl extra Admission.best_effort with
  | Admission.Rejected_candidate _ | Admission.Rejected_victim _ ->
      [ violation "meta-join-leave" "best-effort candidate rejected" ]
  | Admission.Admitted _ ->
      let name = (extra : Contention.Analysis.app).graph.Sdf.Graph.name in
      Admission.withdraw ctl name;
      compare_estimates ~property:"meta-join-leave" ~tol:1e-9 before
        (estimates ctl)
  | exception Invalid_argument msg ->
      [ violation "meta-join-leave" "admit raised: %s" msg ]

(* Reaching the same population through different join/leave histories must
   agree with a fresh controller holding only the survivors.  Non-LIFO ⊖
   leaves an O(p²/4) residue per removal, capped by the drift-triggered
   refold, so the comparison is against [tol] (default: the default refold
   bound) rather than exact. *)
let churn_order_independence ?(tol = 0.05) rng ~procs apps =
  match apps with
  | [] -> []
  | _ ->
      let n = List.length apps in
      let doomed =
        (* At least one app leaves (else the relation is trivial), never
           all of them (an empty survivor set compares nothing). *)
        let k = 1 + Sdfgen.Rng.int rng (max 1 (n - 1)) in
        let arr = Array.init n (fun i -> i) in
        Sdfgen.Rng.shuffle rng arr;
        Array.to_list (Array.sub arr 0 k)
      in
      let churned = Admission.create ~procs () in
      List.iter
        (fun app ->
          ignore (Admission.try_admit churned app Admission.best_effort))
        apps;
      List.iter
        (fun i ->
          let app = List.nth apps i in
          Admission.withdraw churned app.Contention.Analysis.graph.Sdf.Graph.name)
        doomed;
      let fresh = Admission.create ~procs () in
      List.iteri
        (fun i app ->
          if not (List.mem i doomed) then
            ignore (Admission.try_admit fresh app Admission.best_effort))
        apps;
      compare_estimates ~property:"meta-churn-order" ~tol
        (estimates churned) (estimates fresh)

(* A higher confidence can only widen the interval: z is monotone in c, and
   with a fixed seed the quantile variant reads wider order statistics off
   the same sample set. *)
let margin_monotonicity ~procs apps =
  let ctl = Admission.create ~procs () in
  List.iter
    (fun app -> ignore (Admission.try_admit ctl app Admission.best_effort))
    apps;
  match Admission.admitted ctl with
  | [] -> []
  | (name, _, _) :: _ ->
      let confidences = [ 0.5; 0.8; 0.9; 0.95; 0.99 ] in
      List.concat_map
        (fun method_ ->
          let widths =
            List.map
              (fun confidence ->
                let m =
                  Admission.margin_for ctl
                    { Admission.default_margin_spec with confidence; method_ }
                    name
                in
                let acc =
                  if Contention.Margin.covers m m.Contention.Margin.period
                  then []
                  else
                    [
                      violation "meta-margin-monotone"
                        "%s at %g: interval [%g, %g] misses its own period %g"
                        (Contention.Margin.method_to_string method_)
                        confidence m.Contention.Margin.lo
                        m.Contention.Margin.hi m.Contention.Margin.period;
                    ]
                in
                (confidence, Contention.Margin.width m, acc))
              confidences
          in
          let pairs = List.combine (List.tl widths) (List.rev (List.tl (List.rev widths))) in
          List.concat_map (fun (_, _, acc) -> acc) widths
          @ List.concat_map
              (fun ((c2, w2, _), (c1, w1, _)) ->
                if w2 +. 1e-12 >= w1 then []
                else
                  [
                    violation "meta-margin-monotone"
                      "%s: width %.17g at confidence %g below width %.17g at \
                       %g"
                      (Contention.Margin.method_to_string method_)
                      w2 c2 w1 c1;
                  ])
              pairs)
        [ Contention.Margin.Z_score; Contention.Margin.Quantile ]
