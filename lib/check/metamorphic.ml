module Prob = Contention.Prob

type violation = { property : string; detail : string }

let violation property fmt = Printf.ksprintf (fun detail -> { property; detail }) fmt

(* Relative closeness with an absolute floor: kernel outputs are sums of
   [mu * p] products, so values far below any load's mu are pure rounding. *)
let close ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let kernels =
  [
    ("wc", Contention.Wcrt.waiting_time);
    ("order-2", Contention.Approx.second_order);
    ("order-4", Contention.Approx.fourth_order);
    ("exact", Contention.Exact.waiting_time);
  ]

let permutation_invariance rng loads =
  let arr = Array.of_list loads in
  Sdfgen.Rng.shuffle rng arr;
  let shuffled = Array.to_list arr in
  let sym =
    List.filter_map
      (fun (name, kernel) ->
        let w = kernel loads and w' = kernel shuffled in
        if close w w' then None
        else
          Some
            (violation "meta-permutation" "%s: %.17g reordered to %.17g" name
               w w'))
      kernels
  in
  (* The ⊗ fold is associative only to second order, so the composability
     waiting product is genuinely order-dependent — only the ⊕ probability
     component is exactly symmetric (Eq. 6). *)
  let module C = Contention.Compose in
  let agg l = C.combine_all (List.map C.of_load l) in
  let p = (agg loads).C.p and p' = (agg shuffled).C.p in
  if close p p' then sym
  else
    violation "meta-permutation" "comp ⊕: %.17g reordered to %.17g" p p'
    :: sym

let scale_load c (l : Prob.t) =
  Prob.make ~p:l.p ~mu:(l.mu *. c) ~tau:(l.tau *. c)

let time_scaling rng loads =
  let c = 0.5 +. Sdfgen.Rng.float rng 7.5 in
  let scaled = List.map (scale_load c) loads in
  List.filter_map
    (fun (name, kernel) ->
      let w = kernel loads and w' = kernel scaled in
      if close (w *. c) w' then None
      else
        Some
          (violation "meta-scaling"
             "%s: scaling blocking times by %g took W from %.17g to %.17g, \
              expected %.17g"
             name c w w' (w *. c)))
    (kernels @ [ ("comp", Contention.Compose.waiting_time) ])

let monotone_kernels =
  (* Order 4 truncates after a negative term and is not monotone in added
     contenders in general, so it is excluded here (its bounds are checked
     against the exact series in the oracle instead). *)
  [
    ("wc", Contention.Wcrt.waiting_time);
    ("order-2", Contention.Approx.second_order);
    ("exact", Contention.Exact.waiting_time);
    ("comp", Contention.Compose.waiting_time);
  ]

let monotonicity rng loads =
  let tau = 1. +. Sdfgen.Rng.float rng 99. in
  let extra =
    Prob.make ~p:(0.05 +. Sdfgen.Rng.float rng 0.9) ~mu:(tau /. 2.) ~tau
  in
  List.filter_map
    (fun (name, kernel) ->
      let w = kernel loads and w' = kernel (loads @ [ extra ]) in
      if w' >= w -. 1e-12 then None
      else
        Some
          (violation "meta-monotonicity"
             "%s: adding a contender (p=%g tau=%g) decreased W from %.17g to \
              %.17g"
             name extra.p extra.tau w w'))
    monotone_kernels

let compose_roundtrip loads =
  let module C = Contention.Compose in
  (* ⊗ is not associative beyond second order, so ⊖ only inverts the LAST
     ⊕/⊗ application (the compose.mli contract): build the aggregate with
     the probed load combined last, then remove it. *)
  List.concat
    (List.mapi
       (fun i (l : Prob.t) ->
         if l.p > 0.999 then
           (* Near-saturated load: the ⊖ inverse divides by (1 - p) and
              loses all precision; the paper notes the inverse does not
              exist at p = 1, so skip rather than report numerics as
              violations. *)
           []
         else
           let others =
             List.filteri (fun j _ -> j <> i) loads
             |> List.map C.of_load |> C.combine_all
           in
           let total = C.combine others (C.of_load l) in
           let recovered = C.remove ~total (C.of_load l) in
           if
             close ~tol:1e-6 recovered.C.p others.C.p
             && close ~tol:1e-6 recovered.C.w others.C.w
           then []
           else
             [
               violation "meta-compose-roundtrip"
                 "removing load %d (p=%g): recovered (p=%.17g w=%.17g), \
                  direct (p=%.17g w=%.17g)"
                 i l.p recovered.C.p recovered.C.w others.C.p others.C.w;
             ])
       loads)

let all rng loads =
  permutation_invariance rng loads
  @ time_scaling rng loads
  @ monotonicity rng loads
  @ compose_roundtrip loads
