(** Greedy minimization of failing specs.

    Shrinking happens in genotype space ({!Case.spec}), so every candidate
    re-materializes through the generator and is a well-formed workload by
    construction.  Candidates are tried in decreasing order of payoff:

    + drop a whole application (compacting the use-case mask);
    + reduce an application's actor count — first straight to the floor of
      2, then one by one;
    + halve an application's execution-time scale (down to 1/64).

    Whenever a candidate still fails it is adopted and the pass restarts;
    the result is a local minimum: no single step above keeps it failing.
    Each candidate costs one [still_fails] evaluation (typically a full
    {!Oracle.check}), so the total work is capped by [max_attempts]. *)

val minimize :
  ?max_attempts:int ->
  still_fails:(Case.spec -> bool) ->
  Case.spec ->
  Case.spec
(** [minimize ~still_fails spec] assumes [still_fails spec = true] (it is
    not re-checked) and returns a spec on which [still_fails] returned
    [true], every single shrink step of which passed — or the input itself
    if nothing shrank.  [max_attempts] (default 200) bounds the number of
    [still_fails] calls.  [still_fails] must be total: candidates that fail
    to materialize should return [false] (see {!Fuzz} for the standard
    predicate). *)
