(** Fuzz cases for the differential harness.

    A case is described by a small {e genotype} ({!spec}): a master seed, a
    processor count, one {!app_spec} per application and the use-case mask
    under test.  Everything else — graph topology, rates, execution times —
    is derived deterministically from the seed through {!Sdfgen}, so a spec
    is a complete, replayable description of a counterexample.  Shrinking
    ({!Shrink}) operates on specs, not on graphs: dropping an application,
    lowering an actor count or halving execution times all stay inside the
    generator's guarantees (strongly connected, consistent, live), so every
    shrink candidate is a valid workload by construction. *)

type app_spec = {
  actors : int;  (** Actor count of this application; >= 2. *)
  exec_scale : float;
      (** Multiplier on the generated execution times (result rounded,
          floored at 1.0); halved by the shrinker.  > 0. *)
}

type spec = {
  seed : int;  (** Drives every random draw of the materialization. *)
  procs : int;  (** Processors; actors map [id mod procs]. *)
  usecase : Contention.Usecase.t;  (** Non-empty mask over [apps]. *)
  apps : app_spec array;
}

type t = {
  spec : spec;
  apps : Contention.Analysis.app array;  (** One per [spec.apps] entry. *)
}

val random : ?max_apps:int -> ?max_actors:int -> ?max_procs:int -> int -> spec
(** The fuzz genotype of a seed: 1–[max_apps] (default 3) applications of
    2–[max_actors] (default 5) actors on 1–[max_procs] (default 3)
    processors, a random non-empty use-case, unit execution scale.  Small on
    purpose — oracle runs must be cheap and counterexamples readable. *)

val materialize : spec -> (t, string) result
(** Build the applications: per app, generation parameters are drawn with
    {!Sdfgen.Generator.fuzz_params} and the graph with
    {!Sdfgen.Generator.generate}, both from an RNG derived from
    [(seed, app index)]; execution times are then scaled by [exec_scale].
    Pure function of the spec.  [Error] on an invalid spec (bad counts,
    empty or out-of-range use-case), never an exception. *)

val selected : t -> Contention.Analysis.app list
(** The applications active in [spec.usecase], ascending by index. *)

val sim_apps : t -> Desim.Engine.app array
(** The same subset as simulator inputs. *)

val active_actors : t -> int
(** Total actor count over the active applications — the size measure of the
    shrink goal ("a <= 3-actor reproducing workload"). *)

val scale_exec : t -> float -> (t, string) result
(** The same case with every active execution time multiplied by the given
    factor (exactly — no rounding), for the time-scaling metamorphic check.
    [Error] if a scaled time would be invalid. *)

val spec_to_line : spec -> string
(** One-line serialization, e.g.
    [spec seed=42 procs=2 usecase=3 apps=3:1,2:0.5]. *)

val spec_of_line : string -> (spec, string) result
(** Parse {!spec_to_line} output.  Total. *)

val describe : t -> string
(** Human-readable dump: the spec line plus every active graph in the
    {!Sdf.Text} format — what goes into corpus files as a comment. *)
