(** Protocol fuzzing of the serve daemon.

    The contract under test is the one {!Serve.Protocol} states: malformed
    input of any kind — random bytes, truncated frames, pathologically deep
    JSON, near-valid requests with flipped bytes, valid and malformed
    [trace] envelopes — must come back as an [{"error": ...}] reply (or,
    over a socket, at worst close that one connection), never crash the
    server, never produce an unparseable reply, and never affect the next
    request.  Trace envelopes additionally must never be echoed: a planted
    foreign trace id appearing anywhere in a reply is a violation
    ([wire-trace-echo]), since correlation ids are metadata for the
    caller's own telemetry, not reply material.

    Two layers are fuzzed:
    - {!fuzz_lines} drives {!Serve.Server.handle_line} in process: every
      generated line must yield one syntactically valid JSON reply envelope,
      and a well-formed [ping] afterwards must still succeed;
    - {!fuzz_sockets} opens real connections and writes junk, truncated
      frames (no trailing newline, then hard close) and over-length lines,
      then proves liveness with a {!Serve.Client} ping.

    Generation is deterministic per seed, so a failing seed replays. *)

type result = {
  requests : int;  (** Fuzz inputs delivered. *)
  violations : Metamorphic.violation list;
}

val passed : result -> bool

val fuzz_line : Sdfgen.Rng.t -> string
(** One adversarial input line (exposed for the unit tests). *)

val fuzz_lines : ?seeds:int -> Serve.Server.t -> result
(** In-process campaign against a running server's {!Serve.Server.handle_line}. *)

val fuzz_sockets : ?seeds:int -> host:string -> port:int -> unit -> result
(** Socket-level campaign; [seeds] counts connections (default 32). *)

val run : ?seeds:int -> unit -> result
(** Start a private ephemeral server (2 workers, small frame limit so the
    over-length path is reachable), run both campaigns plus the final
    liveness probe, and stop it — the self-contained entry the CLI and the
    nightly job use. *)
