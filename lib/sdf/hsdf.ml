type node = { actor : int; firing : int; exec_time : float }
type edge = { from_node : int; to_node : int; delay : int }
type t = { nodes : node array; edges : edge array; source : Graph.t }

let num_nodes t = Array.length t.nodes

(* Firing k of [src] (0-based) produces tokens numbered
   d + k*p + 1 .. d + (k+1)*p on the channel (counting initial tokens first);
   token number m is consumed by global firing ceil(m/c) of [dst], i.e.
   firing ((ceil(m/c) - 1) mod q_dst) of iteration (ceil(m/c) - 1) / q_dst. *)
let expand (g : Graph.t) =
  let q = Repetition.compute_exn g in
  let base = Array.make (Graph.num_actors g) 0 in
  let total = ref 0 in
  Array.iteri
    (fun id _ ->
      base.(id) <- !total;
      total := !total + q.(id))
    g.actors;
  let nodes = Array.make !total { actor = 0; firing = 0; exec_time = 1. } in
  Array.iteri
    (fun id (a : Graph.actor) ->
      for k = 0 to q.(id) - 1 do
        nodes.(base.(id) + k) <- { actor = id; firing = k; exec_time = a.exec_time }
      done)
    g.actors;
  let edges = ref [] in
  let add from_node to_node delay = edges := { from_node; to_node; delay } :: !edges in
  (* Channel dependencies. *)
  Array.iter
    (fun (c : Graph.channel) ->
      let p = c.produce and co = c.consume and d = c.tokens in
      for k = 0 to q.(c.src) - 1 do
        (* Dependencies induced by each token produced by firing k. Distinct
           tokens of one firing may feed distinct consumer firings. *)
        for j = 1 to p do
          let m = d + (k * p) + j in
          let consumer = (m + co - 1) / co in
          (* 1-based global firing *)
          let firing = (consumer - 1) mod q.(c.dst)
          and iteration = (consumer - 1) / q.(c.dst) in
          add (base.(c.src) + k) (base.(c.dst) + firing) iteration
        done
      done)
    g.channels;
  (* Initially available tokens also satisfy early consumer firings with no
     producer dependency; those firings simply lack an incoming edge for them,
     which is already the correct semantics. Forbid auto-concurrency by
     chaining the copies of each actor. *)
  Array.iteri
    (fun id _ ->
      if q.(id) = 1 then add base.(id) base.(id) 1
      else
        for k = 0 to q.(id) - 1 do
          let next = (k + 1) mod q.(id) in
          add (base.(id) + k) (base.(id) + next) (if next = 0 then 1 else 0)
        done)
    g.actors;
  (* Deduplicate: keep the minimum delay for each (from, to) pair — larger
     delays are dominated for cycle-ratio purposes. *)
  let best = Hashtbl.create 256 in
  List.iter
    (fun e ->
      let key = (e.from_node, e.to_node) in
      match Hashtbl.find_opt best key with
      | Some d when d <= e.delay -> ()
      | _ -> Hashtbl.replace best key e.delay)
    !edges;
  let edges =
    Hashtbl.fold
      (fun (from_node, to_node) delay acc -> { from_node; to_node; delay } :: acc)
      best []
  in
  { nodes; edges = Array.of_list edges; source = g }

let period_of_expansion h ~exec_times =
  if Array.length exec_times <> Graph.num_actors h.source then
    invalid_arg "Sdf.Hsdf.period_of_expansion: one execution time per actor";
  let edges =
    Array.map
      (fun e ->
        (e.from_node, e.to_node, exec_times.(h.nodes.(e.from_node).actor), e.delay))
      h.edges
  in
  match Mcm.max_cycle_ratio ~nodes:(num_nodes h) edges with
  | Some ratio -> ratio
  | None ->
      invalid_arg
        (Printf.sprintf "Sdf.Hsdf.period: graph %S has no cycle (unbounded rate)"
           h.source.name)

let period g =
  let h = expand g in
  period_of_expansion h
    ~exec_times:(Array.map (fun (a : Graph.actor) -> a.exec_time) g.actors)

let period_rational g =
  let h = expand g in
  let int_time (n : node) =
    let t = n.exec_time in
    if Float.is_integer t && t >= 1. && t < 1e15 then int_of_float t
    else
      invalid_arg
        (Printf.sprintf "Sdf.Hsdf.period_rational: non-integer execution time %g" t)
  in
  let edges =
    Array.map
      (fun e -> (e.from_node, e.to_node, int_time h.nodes.(e.from_node), e.delay))
      h.edges
  in
  match Mcm.max_cycle_ratio_rational ~nodes:(num_nodes h) edges with
  | Some ratio -> ratio
  | None ->
      invalid_arg
        (Printf.sprintf "Sdf.Hsdf.period_rational: graph %S has no cycle" h.source.name)
