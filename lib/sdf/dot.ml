(* Backslashes and double quotes would otherwise terminate the DOT string
   early; graphviz understands the usual backslash escapes. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      (match c with '"' | '\\' -> Buffer.add_char buf '\\' | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot (g : Graph.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" g.name);
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  Array.iter
    (fun (a : Graph.actor) ->
      Buffer.add_string buf
        (Printf.sprintf "  a%d [label=\"%s\\n(%g)\"];\n" a.id (escape a.name)
           a.exec_time))
    g.actors;
  Array.iter
    (fun (c : Graph.channel) ->
      let tokens = if c.tokens > 0 then Printf.sprintf " [%d]" c.tokens else "" in
      Buffer.add_string buf
        (Printf.sprintf "  a%d -> a%d [label=\"%d/%d%s\"];\n" c.src c.dst c.produce
           c.consume tokens))
    g.channels;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot g))
