let relax_tolerance = 1e-12

(* Bellman-Ford style longest-path relaxation started from every node at
   distance 0; a relaxation still succeeding after [nodes] rounds witnesses a
   positive cycle. *)
let has_positive_cycle ~nodes edges =
  if nodes = 0 then false
  else begin
    let dist = Array.make nodes 0. in
    let changed = ref true in
    let round = ref 0 in
    while !changed && !round <= nodes do
      changed := false;
      incr round;
      Array.iter
        (fun (u, v, w) ->
          let candidate = dist.(u) +. w in
          if candidate > dist.(v) +. relax_tolerance then begin
            dist.(v) <- candidate;
            changed := true
          end)
        edges
    done;
    !changed
  end

(* A cycle using only zero-delay edges has unbounded ratio (weights are
   positive in our use); detect it with an iterative DFS. *)
let zero_delay_cycle ~nodes edges =
  let adj = Array.make nodes [] in
  Array.iter (fun (u, v, _, d) -> if d = 0 then adj.(u) <- v :: adj.(u)) edges;
  let color = Array.make nodes 0 in
  (* 0 = white, 1 = on stack, 2 = done *)
  let found = ref false in
  let rec visit u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if not !found then
          if color.(v) = 1 then found := true
          else if color.(v) = 0 then visit v)
      adj.(u);
    color.(u) <- 2
  in
  for u = 0 to nodes - 1 do
    if color.(u) = 0 && not !found then visit u
  done;
  !found

let max_cycle_ratio ?(epsilon = 1e-9) ~nodes edges =
  Array.iter
    (fun (_, _, w, d) ->
      if w < 0. || d < 0 then invalid_arg "Sdf.Mcm: negative weight or delay";
      (* A non-finite weight would pin the bisection bounds at infinity and
         the search below would never converge. *)
      if not (Float.is_finite w) then
        invalid_arg (Printf.sprintf "Sdf.Mcm: non-finite edge weight %g" w))
    edges;
  if Array.length edges = 0 then None
  else if zero_delay_cycle ~nodes edges then
    invalid_arg "Sdf.Mcm.max_cycle_ratio: zero-delay cycle (deadlock)"
  else
    let exists_cycle_above lambda =
      let shifted =
        Array.map (fun (u, v, w, d) -> (u, v, w -. (lambda *. float_of_int d))) edges
      in
      has_positive_cycle ~nodes shifted
    in
    (* Any cycle gives ratio > 0 because all weights are >= 0 and some must be
       > 0 on a live graph; lambda = 0 test also tells us whether a cycle
       exists at all when all weights are positive. *)
    let total_weight = Array.fold_left (fun acc (_, _, w, _) -> acc +. w) 0. edges in
    if not (exists_cycle_above (-1.)) then None
    else begin
      let lo = ref 0. and hi = ref (total_weight +. 1.) in
      (* When the bracket is large, [mid] can round back onto a bound before
         the absolute tolerance is met; stop once bisection hits float
         resolution or the loop would never terminate. *)
      let progress = ref true in
      while !progress && !hi -. !lo > epsilon do
        let mid = 0.5 *. (!lo +. !hi) in
        if mid <= !lo || mid >= !hi then progress := false
        else if exists_cycle_above mid then lo := mid
        else hi := mid
      done;
      Some (0.5 *. (!lo +. !hi))
    end

let has_positive_cycle_int ~nodes edges =
  if nodes = 0 then false
  else begin
    let dist = Array.make nodes 0 in
    let changed = ref true in
    let round = ref 0 in
    while !changed && !round <= nodes do
      changed := false;
      incr round;
      Array.iter
        (fun (u, v, w) ->
          let candidate = dist.(u) + w in
          if candidate > dist.(v) then begin
            dist.(v) <- candidate;
            changed := true
          end)
        edges
    done;
    !changed
  end

(* Best rational approximation to [x] with denominator <= max_den, by the
   continued-fraction algorithm with the final-term (semiconvergent)
   adjustment: among all fractions with denominator <= max_den none is
   closer to [x]. *)
let closest_fraction x ~max_den =
  if x < 0. then invalid_arg "Sdf.Mcm: negative ratio";
  let rec convergents x (p0, q0) (p1, q1) =
    let a = int_of_float (Float.floor x) in
    let p2 = (a * p1) + p0 and q2 = (a * q1) + q0 in
    if q2 > max_den then begin
      (* Largest admissible final term: the best semiconvergent. *)
      let a' = (max_den - q0) / Int.max 1 q1 in
      let p' = (a' * p1) + p0 and q' = (a' * q1) + q0 in
      if q' = 0 then (p1, Int.max 1 q1) else (p', q')
    end
    else begin
      let frac = x -. Float.floor x in
      if frac < 1e-12 then (p2, q2) else convergents (1. /. frac) (p1, q1) (p2, q2)
    end
  in
  let cand1 = convergents x (0, 1) (1, 0) in
  (* The last convergent computed before overflow is also a candidate; redo
     the walk tracking it. *)
  let rec last_convergent x (p0, q0) (p1, q1) =
    let a = int_of_float (Float.floor x) in
    let p2 = (a * p1) + p0 and q2 = (a * q1) + q0 in
    if q2 > max_den then (p1, q1)
    else begin
      let frac = x -. Float.floor x in
      if frac < 1e-12 then (p2, q2) else last_convergent (1. /. frac) (p1, q1) (p2, q2)
    end
  in
  let cand2 = last_convergent x (0, 1) (1, 0) in
  let dist (p, q) = if q = 0 then infinity else Float.abs (x -. (float_of_int p /. float_of_int q)) in
  if dist cand1 <= dist cand2 then cand1 else cand2

let max_cycle_ratio_rational ~nodes edges =
  Array.iter
    (fun (_, _, w, d) ->
      if w < 0 || d < 0 then invalid_arg "Sdf.Mcm: negative weight or delay")
    edges;
  if Array.length edges = 0 then None
  else begin
    let float_edges = Array.map (fun (u, v, w, d) -> (u, v, float_of_int w, d)) edges in
    if zero_delay_cycle ~nodes float_edges then
      invalid_arg "Sdf.Mcm.max_cycle_ratio_rational: zero-delay cycle (deadlock)";
    let total_delay = Array.fold_left (fun acc (_, _, _, d) -> acc + d) 0 edges in
    let total_weight = Array.fold_left (fun acc (_, _, w, _) -> acc + w) 0 edges in
    let max_den = Int.max 1 total_delay in
    (* Overflow guard for w*q - p*d terms accumulated over <= nodes steps. *)
    if total_weight > 0 && max_den > max_int / ((total_weight + 1) * Int.max 1 nodes * 4)
    then invalid_arg "Sdf.Mcm.max_cycle_ratio_rational: weights too large";
    let exists_above (p, q) =
      (* exists cycle with sum(w*q - p*d) > 0 *)
      let shifted = Array.map (fun (u, v, w, d) -> (u, v, (w * q) - (p * d))) edges in
      has_positive_cycle_int ~nodes shifted
    in
    if not (exists_above (-1, 1)) then None
    else begin
      (* Distinct fractions with denominator <= max_den are >= 1/max_den^2
         apart; a float bracket narrower than that isolates the optimum. *)
      let epsilon = 1. /. (4. *. float_of_int max_den *. float_of_int max_den) in
      match max_cycle_ratio ~epsilon ~nodes float_edges with
      | None -> None
      | Some lambda ->
          let p, q = closest_fraction lambda ~max_den in
          if exists_above (p, q) then
            invalid_arg "Sdf.Mcm.max_cycle_ratio_rational: verification failed (above)"
          else if not (exists_above ((p * max_den * 2) - 1, q * max_den * 2)) then
            invalid_arg "Sdf.Mcm.max_cycle_ratio_rational: verification failed (below)"
          else Some (Rational.make p q)
    end
  end
