(** Expansion of an SDFG into a Homogeneous SDFG (HSDFG).

    Every actor [a] becomes [q.(a)] copies (one per firing in an iteration);
    every channel becomes dependency edges between the producing and the
    consuming firing, annotated with the number of iterations the dependency
    crosses ({e delay}).  An extra chain over the copies of each actor (with a
    wrap-around delay of one) forbids auto-concurrency, matching the
    self-timed semantics of {!Statespace}.

    The period of the original graph is the maximum cycle ratio
    [sum of execution times / sum of delays] over the cycles of the
    expansion — see {!Mcm}. *)

type node = {
  actor : int;  (** Actor id in the original graph. *)
  firing : int;  (** Firing index within an iteration, [0 .. q.(actor)-1]. *)
  exec_time : float;
}

type edge = {
  from_node : int;  (** Index into {!nodes}. *)
  to_node : int;
  delay : int;  (** Iteration distance of the dependency; ≥ 0. *)
}

type t = { nodes : node array; edges : edge array; source : Graph.t }

val expand : Graph.t -> t
(** @raise Invalid_argument if the graph is inconsistent or disconnected. *)

val num_nodes : t -> int

val period_of_expansion : t -> exec_times:float array -> float
(** Maximum cycle ratio of an existing expansion, with the node weights
    overridden by [exec_times.(actor)].  The expansion's topology (repetition
    vector, dependency edges) only depends on the graph's rates and initial
    tokens, never on execution times — so one expansion can be reused to
    recompute the period under many response-time assignments, which is the
    hot path of the contention analysis when sweeping use-cases.
    Equivalent (bit for bit) to expanding [Graph.with_exec_times] and calling
    {!period} on it.
    @raise Invalid_argument unless [exec_times] has exactly one entry per
    source-graph actor, or as {!period}. *)

val period : Graph.t -> float
(** Maximum cycle ratio of the expansion: the exact iteration period of the
    graph under self-timed execution.  Cross-validates {!Statespace.period}.
    @raise Invalid_argument on inconsistent graphs or graphs with a zero-delay
    cycle (deadlock). *)

val period_rational : Graph.t -> Rational.t
(** Exact rational period for graphs whose execution times are integers —
    free of the bisection tolerance of {!period}.
    @raise Invalid_argument if some execution time is not an integer, or as
    {!period}. *)
