(** The paper's evaluation workload: ten random strongly-connected SDFGs of
    8–10 actors (Section 5), actor [j] of every application mapped on
    processor [j mod procs]. *)

type t = private {
  seed : int;
  procs : int;
  apps : Contention.Analysis.app array;
}

val make :
  ?seed:int ->
  ?num_apps:int ->
  ?procs:int ->
  ?params:Sdfgen.Generator.params ->
  ?spread:float ->
  unit ->
  t
(** Defaults: [seed = 2007] (the paper's year — any seed reproduces a valid
    instance of the experiment), [num_apps = 10], [procs = 10],
    [params = Sdfgen.Generator.default_params].

    [spread] (default [0.], must be in [[0, 1)]) switches the workload to the
    paper's Section 6 variable-execution-time extension: every actor's firing
    time becomes [Uniform [tau*(1-spread), tau*(1+spread)]].  The mean (and
    hence the isolation period) is unchanged; simulations sample per firing
    through {!sim_firing_time}.  {!save} persists only the mean times. *)

val num_apps : t -> int
val names : t -> string array
val isolation_periods : t -> float array

val analysis_apps : t -> Contention.Usecase.t -> Contention.Analysis.app list
(** The applications active in the use-case, ascending by index. *)

val sim_apps : t -> Contention.Usecase.t -> Desim.Engine.app array
(** Same subset as simulator inputs. *)

val sim_firing_time :
  t -> Contention.Usecase.t -> (app:int -> actor:int -> float) option
(** The [firing_time] hook for {!Desim.Engine.run} over {!sim_apps}: [None]
    when no selected application carries execution-time distributions (the
    engine's constant-time default applies), otherwise a sampler drawing from
    each actor's distribution.  The sampler's RNG is seeded from
    [(seed, usecase)], so the stream is a pure function of the use-case —
    independent of the order use-cases are simulated in, and of which domain
    runs them. *)

val app_index : t -> string -> int
(** @raise Not_found for an unknown application name. *)

val to_string : t -> string
(** The workload (graphs plus a [# contention-workload] header carrying seed
    and processor count) in the {!Sdf.Text} format — the canonical
    serialization: also the upload payload and content-digest input of the
    {!Serve} daemon. *)

val of_string : string -> (t, string) result
(** Parse a {!to_string} payload; mappings are reconstructed with the modulo
    policy and isolation periods recomputed.  Total: truncated or otherwise
    malformed payloads yield [Error], never an exception. *)

val save : t -> string -> unit
(** Write {!to_string} to a file. *)

val load : string -> (t, string) result
(** Reload a file written by {!save} via {!of_string}. *)
