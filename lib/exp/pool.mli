(** A fixed pool of OCaml 5 domains evaluating a function over an index
    range — the executor behind the parallel use-case sweep ({!Sweep}).

    Design constraints, in order:
    - {e determinism}: results are collected in index order, so a pool of any
      size returns exactly what the sequential loop would;
    - {e work stealing by atomic counter}: domains pull the next free index
      from a shared [Atomic.t], so uneven task costs (small vs large
      use-cases) balance automatically;
    - {e exception propagation}: a task that raises stops the pool from
      claiming further work, and the exception is re-raised (with its
      backtrace) on the calling domain after all workers have joined.  When
      several tasks raise, the one with the {e lowest task index} wins — the
      exception the sequential loop would have raised first among the tasks
      that ran — so failure reports do not depend on domain scheduling.

    Tasks must be thread-safe with respect to each other: they run
    concurrently on separate domains and must not share mutable state
    (read-only sharing is fine). *)

val default_jobs : unit -> int
(** The [CONTENTION_JOBS] environment variable if set, otherwise
    [Domain.recommended_domain_count () - 1] (one slot is left for the
    calling domain), never less than [1].
    @raise Invalid_argument if [CONTENTION_JOBS] is set but is not a positive
    integer. *)

val map_range : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_range n f] is [[| f 0; f 1; ...; f (n-1) |]], the calls distributed
    over [min jobs n] domains.  [jobs] defaults to {!default_jobs}; with
    [jobs = 1] (or [n <= 1]) everything runs sequentially on the calling
    domain, spawning nothing.  [n = 0] returns [[||]] without spawning.
    @raise Invalid_argument if [n] is negative or [jobs < 1];
    re-raises the lowest-index worker exception with its original
    backtrace. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_range} over the elements of a list, preserving order. *)
