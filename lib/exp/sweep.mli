(** The use-case sweep behind Table 1 and Figure 6: every (non-empty)
    use-case is simulated and analysed with every estimator, and per-app
    periods are compared. *)

type observation = {
  usecase : Contention.Usecase.t;
  app_index : int;
  simulated_period : float;  (** Steady-state mean from {!Desim.Engine}. *)
  simulated_worst : float;  (** Worst inter-iteration gap observed. *)
  estimated_periods : (Contention.Analysis.estimator * float) list;
}

type timing = {
  simulation_s : float;  (** Wall-clock spent simulating the whole sweep. *)
  analysis_s : (Contention.Analysis.estimator * float) list;
      (** Wall-clock per estimator for the whole sweep. *)
}

type t = {
  workload : Workload.t;
  estimators : Contention.Analysis.estimator list;
  observations : observation list;
  timing : timing;
}

val run :
  ?horizon:float ->
  ?estimators:Contention.Analysis.estimator list ->
  ?usecases:Contention.Usecase.t list ->
  ?progress:(int -> int -> unit) ->
  ?jobs:int ->
  ?exact_check:bool ->
  Workload.t ->
  t
(** [run w] sweeps all [2^n - 1] use-cases (or the given subset) with the
    paper's four estimators by default.  [horizon] defaults to the paper's
    [500_000.] cycles.

    [jobs] is the number of domains use-cases are distributed over
    ({!Pool.map_range}; default {!Pool.default_jobs}, i.e. the machine's
    recommended domain count minus one, overridable with the
    [CONTENTION_JOBS] environment variable).  The sweep is deterministic in
    [jobs]: every use-case is simulated and analysed from state that is a
    pure function of [(w, usecase)] — stochastic firing times draw from an
    RNG seeded per use-case ({!Workload.sim_firing_time}) — and observations
    are collected in use-case order, so [run ~jobs:k w] returns results
    bit-identical to [run ~jobs:1 w] for every [k].

    Analysis runs on the zero-allocation kernel engine
    ({!Contention.Analysis.estimate_prepared}) over one
    {!Contention.Analysis.workspace} per domain, so a [jobs]-way sweep
    allocates estimator scratch [jobs] times in total, not per use-case.
    [exact_check] (default [false]) re-runs every estimate on the list-based
    reference and fails on any divergence beyond [1e-9] — a self-validating
    (slower) mode for unattended runs, exposed as [--exact-check] on the CLI.

    [progress done total] is called after each use-case, serialised under a
    mutex with strictly increasing [done] counts; the callback must therefore
    be fast and must not itself call back into the sweep.  {!timing} fields
    are per-task CPU-second sums merged after the pool joins, so they remain
    comparable across [jobs] values (they exceed wall-clock time when
    [jobs > 1]). *)

val inaccuracy_period : t -> Contention.Analysis.estimator -> float
(** Mean absolute percent difference between estimated and simulated period,
    over all observations — Table 1's "Period" column. *)

val inaccuracy_throughput : t -> Contention.Analysis.estimator -> float
(** Same on [1/period] — Table 1's "Throughput" column. *)

val inaccuracy_by_size : t -> Contention.Analysis.estimator -> (int * float) array
(** Figure 6: [(k, mean inaccuracy over use-cases with k active apps)] for
    each occurring [k], ascending. *)
