type t = {
  usecase : Contention.Usecase.t;
  estimated : (string * float) list;
  simulated : (string * float) list;
  predicted_utilisation : float array;
  observed_utilisation : float array;
}

let build ?(horizon = 200_000.) ?jobs (w : Workload.t) usecase =
  let apps = Workload.analysis_apps w usecase in
  (* Estimation and simulation are independent, so with two or more domains
     they run concurrently (the simulation dominates the wall-clock); both
     tasks are pure, hence the result is identical for every [jobs]. *)
  let estimates, (results, stats) =
    match
      Pool.map_range ?jobs 2 (fun i ->
          if i = 0 then
            `Estimates
              (Contention.Analysis.estimate (Contention.Analysis.Order 2) apps)
          else
            `Simulation
              (Desim.Engine.run ~horizon ~procs:w.procs
                 (Workload.sim_apps w usecase)))
    with
    | [| `Estimates e; `Simulation s |] -> (e, s)
    | _ -> assert false
  in
  let name_of (a : Contention.Analysis.app) = a.graph.Sdf.Graph.name in
  let estimated =
    List.map (fun (r : Contention.Analysis.estimate) -> (name_of r.for_app, r.period)) estimates
  in
  let simulated =
    Array.to_list
      (Array.map (fun (r : Desim.Engine.result) -> (r.app_name, r.avg_period)) results)
  in
  (* Predicted busy fraction per node: each actor occupies its processor for
     [tau * q] out of every (contended) period, so the prediction uses the
     estimated periods — Definition 4 applied to the use-case, not to
     isolation. *)
  let predicted = Array.make w.procs 0. in
  List.iter
    (fun (r : Contention.Analysis.estimate) ->
      let a = r.for_app in
      Array.iteri
        (fun actor proc ->
          let tau = (Sdf.Graph.actor a.graph actor).exec_time in
          predicted.(proc) <-
            predicted.(proc) +. (tau *. float_of_int a.repetition.(actor) /. r.period))
        a.mapping)
    estimates;
  let predicted = Array.map (Float.min 1.) predicted in
  {
    usecase;
    estimated;
    simulated;
    predicted_utilisation = predicted;
    observed_utilisation = Desim.Engine.utilisation stats;
  }

let render ~napps t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Format.asprintf "Use-case %a\n\n" (Contention.Usecase.pp ~napps) t.usecase);
  let rows =
    List.map2
      (fun (name, est) (name', sim) ->
        assert (name = name');
        [
          name;
          Repro_stats.Table.float_cell est;
          Repro_stats.Table.float_cell sim;
          (if Float.is_nan sim then "-"
           else Repro_stats.Table.float_cell (Repro_stats.Stats.abs_pct_error ~reference:sim est));
        ])
      t.estimated t.simulated
  in
  Buffer.add_string buf
    (Repro_stats.Table.render ~header:[ "App"; "Estimated"; "Simulated"; "Err %" ] rows);
  Buffer.add_string buf "\nProcessor utilisation (predicted = sum of blocking probabilities):\n";
  let rows =
    List.init (Array.length t.predicted_utilisation) (fun p ->
        [
          Printf.sprintf "proc %d" p;
          Repro_stats.Table.float_cell ~decimals:3 t.predicted_utilisation.(p);
          Repro_stats.Table.float_cell ~decimals:3 t.observed_utilisation.(p);
        ])
  in
  Buffer.add_string buf
    (Repro_stats.Table.render ~header:[ "Processor"; "Predicted"; "Observed" ] rows);
  Buffer.contents buf
