let default_jobs () =
  match Sys.getenv_opt "CONTENTION_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "CONTENTION_JOBS must be a positive integer, got %S" v))
  | None -> Int.max 1 (Domain.recommended_domain_count () - 1)

let map_range ?jobs n f =
  if n < 0 then invalid_arg "Exp.Pool.map_range: negative range";
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Exp.Pool.map_range: jobs < 1"
    | Some j -> j
    | None -> default_jobs ()
  in
  let jobs = Int.min jobs n in
  let task i =
    Obs.Span.with_ ~name:"pool.task"
      ~args:(fun () -> [ ("index", string_of_int i) ])
      (fun () -> f i)
  in
  if n = 0 then [||]
  else if jobs <= 1 then Array.init n task
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* Keep the failure of the lowest task index.  A bare "first CAS wins"
       races between domains, so which exception the caller sees would depend
       on scheduling; ordering by index makes the propagated exception a
       deterministic function of the tasks themselves (the one the sequential
       loop would have raised first among those that ran). *)
    let record_failure i e bt =
      let rec go () =
        match Atomic.get failure with
        | Some (j, _, _) when j <= i -> ()
        | cur ->
            if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then
              go ()
      in
      go ()
    in
    let worker () =
      (* One span per worker lifetime: task spans fill the busy stretches
         of the domain's track, the gaps between them are idle time. *)
      Obs.Span.with_ ~name:"pool.worker"
        ~args:(fun () -> [ ("jobs", string_of_int jobs) ])
        (fun () ->
          let continue = ref true in
          while !continue do
            (* Check the flag before claiming, never after: a claimed index
               always runs.  Index 0 is claimed before any failure can have
               been recorded, so when every task raises, the caller
               deterministically sees task 0's exception. *)
            if Atomic.get failure <> None then continue := false
            else
              let i = Atomic.fetch_and_add next 1 in
              if i >= n then continue := false
              else
                match task i with
                | v -> results.(i) <- Some v
                | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    record_failure i e bt
          done)
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* every index claimed *))
          results
  end

let map_list ?jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (map_range ?jobs (Array.length arr) (fun i -> f arr.(i)))
