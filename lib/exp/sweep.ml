type observation = {
  usecase : Contention.Usecase.t;
  app_index : int;
  simulated_period : float;
  simulated_worst : float;
  estimated_periods : (Contention.Analysis.estimator * float) list;
}

type timing = {
  simulation_s : float;
  analysis_s : (Contention.Analysis.estimator * float) list;
}

type t = {
  workload : Workload.t;
  estimators : Contention.Analysis.estimator list;
  observations : observation list;
  timing : timing;
}

(* Per-use-case outcome: the observations plus this task's own wall-clock
   shares.  Timings are accumulated per task and merged after the pool joins,
   so the sums stay meaningful (total CPU seconds across domains) without any
   shared mutable accumulator. *)
type task_result = {
  task_observations : observation list;
  task_sim_s : float;
  task_analysis_s : float array;  (** Aligned with the estimator list. *)
}

let run ?(horizon = 500_000.) ?estimators ?usecases ?progress ?jobs
    ?(exact_check = false) (w : Workload.t) =
  let estimators =
    Option.value ~default:Contention.Analysis.all_paper_estimators estimators
  in
  let estimators_arr = Array.of_list estimators in
  let usecases =
    Option.value ~default:(Contention.Usecase.all ~napps:(Workload.num_apps w)) usecases
  in
  let ucs = Array.of_list usecases in
  let total = Array.length ucs in
  (* Use-case-invariant per-application work (load descriptors, HSDF
     expansion), hoisted out of the sweep: computed once per workload and
     shared read-only by every task. *)
  let caches = Array.map Contention.Analysis.prepare w.apps in
  let progress_mutex = Mutex.create () in
  let completed = ref 0 in
  let tick () =
    match progress with
    | None -> ()
    | Some f ->
        (* The counter and the callback share one mutex, so [f] observes
           strictly increasing counts even when tasks finish concurrently. *)
        Mutex.lock progress_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock progress_mutex)
          (fun () ->
            incr completed;
            f !completed total)
  in
  let napps = Workload.num_apps w in
  let jobs_label =
    match jobs with Some j -> string_of_int j | None -> "default"
  in
  let observe_usecase idx usecase indices =
    let t0 = Obs.Clock.now_ns () in
    let sim_results, _ =
      Obs.Span.with_ ~name:"sweep.simulate"
        ~args:(fun () -> [ ("task", string_of_int idx) ])
        (fun () ->
          Desim.Engine.run ~horizon
            ?firing_time:(Workload.sim_firing_time w usecase)
            ~procs:w.procs (Workload.sim_apps w usecase))
    in
    let task_sim_s = Obs.Clock.elapsed_s ~since:t0 in
    let pairs = List.map (fun i -> (w.apps.(i), caches.(i))) indices in
    let task_analysis_s = Array.make (Array.length estimators_arr) 0. in
    let per_estimator =
      Array.to_list
        (Array.mapi
           (fun k est ->
             let t0 = Obs.Clock.now_ns () in
             let results =
               Obs.Span.with_ ~name:"sweep.estimate"
                 ~args:(fun () ->
                   [ ("estimator", Contention.Analysis.estimator_name est) ])
                 (fun () ->
                   (* The kernel engine over this domain's workspace: every
                      use-case this task analyses reuses the same buffers. *)
                   Contention.Analysis.estimate_prepared
                     ~workspace:(Contention.Analysis.shared_workspace ())
                     ~exact_check est pairs)
             in
             task_analysis_s.(k) <- Obs.Clock.elapsed_s ~since:t0;
             ( est,
               List.map (fun (r : Contention.Analysis.estimate) -> r.period) results ))
           estimators_arr)
    in
    let task_observations =
      List.mapi
        (fun pos app_index ->
          {
            usecase;
            app_index;
            simulated_period = sim_results.(pos).Desim.Engine.avg_period;
            simulated_worst = sim_results.(pos).Desim.Engine.max_period;
            estimated_periods =
              List.map
                (fun (est, periods) -> (est, List.nth periods pos))
                per_estimator;
          })
        indices
    in
    tick ();
    { task_observations; task_sim_s; task_analysis_s }
  in
  let observe idx =
    let usecase = ucs.(idx) in
    let indices = Contention.Usecase.to_list usecase in
    Obs.Span.with_ ~name:"sweep.usecase"
      ~args:(fun () ->
        [
          ("task", string_of_int idx);
          ("usecase", Format.asprintf "%a" (Contention.Usecase.pp ~napps) usecase);
          ("apps", string_of_int (Contention.Usecase.cardinal usecase));
          ("jobs", jobs_label);
        ])
      (fun () -> observe_usecase idx usecase indices)
  in
  let tasks = Pool.map_range ?jobs total observe in
  let observations =
    List.concat_map (fun t -> t.task_observations) (Array.to_list tasks)
  in
  {
    workload = w;
    estimators;
    observations;
    timing =
      {
        simulation_s = Array.fold_left (fun acc t -> acc +. t.task_sim_s) 0. tasks;
        analysis_s =
          List.mapi
            (fun k est ->
              (est, Array.fold_left (fun acc t -> acc +. t.task_analysis_s.(k)) 0. tasks))
            estimators;
      };
  }

let valid_observations t =
  List.filter (fun o -> not (Float.is_nan o.simulated_period)) t.observations

let estimate_of o est =
  match List.assoc_opt est o.estimated_periods with
  | Some p -> p
  | None -> invalid_arg "Exp.Sweep: estimator was not part of the sweep"

let inaccuracy_over obs est ~on =
  match obs with
  | [] -> nan
  | obs ->
      Repro_stats.Stats.mean
        (List.map
           (fun o ->
             Repro_stats.Stats.abs_pct_error
               ~reference:(on o.simulated_period)
               (on (estimate_of o est)))
           obs)

let inaccuracy_period t est = inaccuracy_over (valid_observations t) est ~on:Fun.id

let inaccuracy_throughput t est =
  inaccuracy_over (valid_observations t) est ~on:(fun p -> 1. /. p)

let inaccuracy_by_size t est =
  let by_size = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let k = Contention.Usecase.cardinal o.usecase in
      Hashtbl.replace by_size k (o :: Option.value ~default:[] (Hashtbl.find_opt by_size k)))
    (valid_observations t);
  let sizes = List.sort_uniq Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_size []) in
  Array.of_list
    (List.map
       (fun k -> (k, inaccuracy_over (Hashtbl.find by_size k) est ~on:Fun.id))
       sizes)
