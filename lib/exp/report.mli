(** Per-use-case validation report: estimated vs simulated periods and
    predicted vs observed processor utilisation, rendered as text.

    The utilisation comparison directly validates the paper's Definition 4:
    the blocking probability [P(a) = tau q / Per] {e is} the fraction of time
    actor [a] occupies its node, so its per-processor sum — evaluated at the
    {e estimated} contended periods and capped at 1 — should match the
    simulator's measured busy fraction. *)

type t = {
  usecase : Contention.Usecase.t;
  estimated : (string * float) list;  (** App name, estimated period (Order 2). *)
  simulated : (string * float) list;
  predicted_utilisation : float array;  (** Per processor, capped at 1. *)
  observed_utilisation : float array;
}

val build :
  ?horizon:float -> ?jobs:int -> Workload.t -> Contention.Usecase.t -> t
(** [jobs] (default {!Pool.default_jobs}, capped at the two independent
    tasks) runs the estimation and the simulation on separate domains; the
    report is identical for every value. *)

val render : napps:int -> t -> string
