type t = { seed : int; procs : int; apps : Contention.Analysis.app array }

let make ?(seed = 2007) ?(num_apps = 10) ?(procs = 10) ?params ?(spread = 0.) () =
  if num_apps < 1 then invalid_arg "Exp.Workload.make: num_apps < 1";
  if num_apps > 26 then invalid_arg "Exp.Workload.make: more than 26 applications";
  if spread < 0. || spread >= 1. then
    invalid_arg "Exp.Workload.make: spread must be in [0, 1)";
  let graphs = Sdfgen.Generator.generate_many ?params ~seed num_apps in
  let apps =
    Array.map
      (fun (g : Sdf.Graph.t) ->
        let distributions =
          if spread = 0. then None
          else
            Some
              (Array.map
                 (fun (a : Sdf.Graph.actor) ->
                   Contention.Dist.Uniform
                     {
                       lo = a.exec_time *. (1. -. spread);
                       hi = a.exec_time *. (1. +. spread);
                     })
                 g.actors)
        in
        Contention.Analysis.app ~procs ?distributions g
          ~mapping:(Contention.Mapping.modulo ~procs g))
      graphs
  in
  { seed; procs; apps }

let num_apps t = Array.length t.apps

let names t = Array.map (fun (a : Contention.Analysis.app) -> a.graph.Sdf.Graph.name) t.apps

let isolation_periods t =
  Array.map (fun (a : Contention.Analysis.app) -> a.isolation_period) t.apps

let analysis_apps t usecase =
  List.map (fun i -> t.apps.(i)) (Contention.Usecase.to_list usecase)

let sim_apps t usecase =
  Array.of_list
    (List.map
       (fun i ->
         let a = t.apps.(i) in
         { Desim.Engine.graph = a.Contention.Analysis.graph;
           mapping = a.Contention.Analysis.mapping })
       (Contention.Usecase.to_list usecase))

let sim_firing_time t usecase =
  let indices = Contention.Usecase.to_list usecase in
  let selected = Array.of_list (List.map (fun i -> t.apps.(i)) indices) in
  if
    Array.for_all
      (fun (a : Contention.Analysis.app) -> Option.is_none a.distributions)
      selected
  then None
  else
    (* One RNG per use-case, seeded from (workload seed, use-case id): every
       use-case draws an identical firing-time stream no matter which domain
       simulates it or in which order, so parallel sweeps stay bit-identical
       to sequential ones. *)
    let rng = Sdfgen.Rng.create ((t.seed * 1_000_003) + usecase) in
    Some
      (fun ~app ~actor ->
        let a = selected.(app) in
        match a.Contention.Analysis.distributions with
        | Some dists ->
            Contention.Dist.sample dists.(actor) ~u:(Sdfgen.Rng.float rng 1.)
        | None -> (Sdf.Graph.actor a.Contention.Analysis.graph actor).exec_time)

let app_index t name =
  let found = ref None in
  Array.iteri
    (fun i (a : Contention.Analysis.app) ->
      if a.graph.Sdf.Graph.name = name then found := Some i)
    t.apps;
  match !found with Some i -> i | None -> raise Not_found

let header_prefix = "# contention-workload"

let to_string t =
  let header = Printf.sprintf "%s procs=%d seed=%d\n" header_prefix t.procs t.seed in
  let graphs =
    List.map (fun (a : Contention.Analysis.app) -> a.graph) (Array.to_list t.apps)
  in
  header ^ Sdf.Text.to_string_many graphs

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let parse_header line =
  let fields = String.split_on_char ' ' line in
  let value key =
    List.find_map
      (fun field ->
        match String.split_on_char '=' field with
        | [ k; v ] when k = key -> int_of_string_opt v
        | _ -> None)
      fields
  in
  match (value "procs", value "seed") with
  | Some procs, Some seed when procs > 0 -> Some (procs, seed)
  | _ -> None

let of_string contents =
  let first_line =
    match String.index_opt contents '\n' with
    | Some i -> String.sub contents 0 i
    | None -> contents
  in
  if not (String.length first_line >= String.length header_prefix
          && String.sub first_line 0 (String.length header_prefix) = header_prefix)
  then Error "not a contention workload file (missing header)"
  else (
    match parse_header first_line with
    | None -> Error "malformed workload header"
    | Some (procs, seed) -> (
        match Sdf.Text.of_string_many contents with
        | Error _ as e -> e
        | Ok [] -> Error "workload carries no graphs"
        | Ok graphs ->
            (match
               List.map
                 (fun g ->
                   Contention.Analysis.app ~procs g
                     ~mapping:(Contention.Mapping.modulo ~procs g))
                 graphs
             with
            | apps -> Ok { seed; procs; apps = Array.of_list apps }
            | exception Invalid_argument msg -> Error msg)))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string contents
