(* `contention` — command-line front end to the library.

   Subcommands:
     generate    random SDFG workloads (SDF3 substitute); DOT export, --save
     analyze     estimate use-case periods with a chosen estimator
     simulate    discrete-event simulation of a use-case
     experiment  reproduce the paper's Figure 5, Table 1, Figure 6 and timing
     sweep       use-case sweep with accuracy table; --trace for Perfetto
     export      the same evaluation data as CSV files
     inspect     periods, latency, buffer bounds and text export of one graph
     report      estimated vs simulated periods + processor utilisation
     sensitivity leave-one-out interference ranking
     check       differential fuzzing: estimators vs simulator vs invariants
     serve       online resource-manager daemon (TCP / Unix socket)
     query       one-shot client for a running daemon
     stats       daemon statistics; --prometheus for a scrape-ready text *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let seed_arg =
  let doc = "Random seed for the workload generator." in
  Arg.(value & opt int 2007 & info [ "seed" ] ~docv:"SEED" ~doc)

let num_apps_arg =
  let doc = "Number of applications to generate." in
  Arg.(value & opt int 10 & info [ "apps" ] ~docv:"N" ~doc)

let procs_arg =
  let doc = "Number of processors." in
  Arg.(value & opt int 10 & info [ "procs" ] ~docv:"P" ~doc)

let horizon_arg =
  let doc = "Simulation horizon in time units (the paper used 500000)." in
  Arg.(value & opt float 500_000. & info [ "horizon" ] ~docv:"T" ~doc)

let usecase_arg =
  let doc =
    "Use-case: comma-separated application letters (e.g. A,C,D). Defaults to \
     all applications."
  in
  Arg.(value & opt (some string) None & info [ "usecase" ] ~docv:"APPS" ~doc)

let estimator_conv =
  (* One estimator grammar for the CLI and the wire protocol. *)
  let parse s =
    Result.map_error (fun msg -> `Msg msg) (Serve.Protocol.estimator_of_string s)
  in
  let print ppf e = Format.pp_print_string ppf (Contention.Analysis.estimator_name e) in
  Arg.conv (parse, print)

let estimator_arg =
  let doc =
    "Estimator: worst-case (wc), second-order (o2), fourth-order (o4), \
     composability (comp), exact, or a numeric order m >= 2."
  in
  Arg.(
    value
    & opt estimator_conv (Contention.Analysis.Order 2)
    & info [ "method" ] ~docv:"METHOD" ~doc)

let jobs_arg =
  let doc =
    "Domains to run the use-case sweep on (default: the machine's recommended \
     domain count minus one; also settable via $(b,CONTENTION_JOBS)). The \
     results are identical for every value — 1 disables parallelism."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let load_arg =
  let doc = "Load the workload from a file written by $(b,generate --save)." in
  Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record spans while the command runs and write a Chrome/Perfetto trace \
     (load it at $(b,https://ui.perfetto.dev)) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Tracing wraps the whole command so a run that dies halfway still dumps
   the spans it recorded — that partial trace is exactly what one wants
   when hunting the failure.  [process_name] labels the file's process
   metadata so $(b,trace-merge) can tell a shard's file from the client's. *)
let with_trace ?process_name trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Obs.Span.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Span.set_enabled false;
          Obs.Trace.write_file ?process_name ~path (Obs.Span.drain ());
          Printf.eprintf "wrote trace to %s\n%!" path)
        f

let workload ?load seed num_apps procs =
  match load with
  | Some (Some path) -> (
      match Exp.Workload.load path with
      | Ok w -> w
      | Error msg ->
          Printf.eprintf "cannot load %s: %s\n" path msg;
          exit 2)
  | Some None | None -> Exp.Workload.make ~seed ~num_apps ~procs ()

let parse_usecase w = function
  | None -> Ok (Contention.Usecase.full ~napps:(Exp.Workload.num_apps w))
  | Some spec ->
      let parts = String.split_on_char ',' (String.trim spec) in
      let lookup acc part =
        match acc with
        | Error _ as e -> e
        | Ok mask -> (
            match Exp.Workload.app_index w (String.trim part) with
            | i -> Ok (Contention.Usecase.add i mask)
            | exception Not_found ->
                Error (Printf.sprintf "unknown application %S" part))
      in
      List.fold_left lookup (Ok 0) parts

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_cmd =
  let dot_dir =
    let doc = "Write each graph as DOT into $(docv)." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DIR" ~doc)
  in
  let save_file =
    let doc = "Save the workload (reloadable with --load) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let run seed num_apps procs dot_dir save_file =
    let w = workload seed num_apps procs in
    (match save_file with
    | None -> ()
    | Some path ->
        Exp.Workload.save w path;
        Printf.printf "saved workload to %s\n" path);
    let names = Exp.Workload.names w in
    let periods = Exp.Workload.isolation_periods w in
    Array.iteri
      (fun i (a : Contention.Analysis.app) ->
        let q = a.repetition in
        Printf.printf "%s: %d actors, %d channels, q = [%s], Per = %.1f\n" names.(i)
          (Sdf.Graph.num_actors a.graph)
          (Sdf.Graph.num_channels a.graph)
          (String.concat ";" (Array.to_list (Array.map string_of_int q)))
          periods.(i);
        match dot_dir with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let path = Filename.concat dir (names.(i) ^ ".dot") in
            Sdf.Dot.write_file path a.graph;
            Printf.printf "  wrote %s\n" path)
      w.apps
  in
  let term =
    Term.(const run $ seed_arg $ num_apps_arg $ procs_arg $ dot_dir $ save_file)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a random SDFG workload") term

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let iterations =
    let doc = "Fixed-point refinement passes (1 = the paper's single pass)." in
    Arg.(value & opt int 1 & info [ "iterations" ] ~docv:"K" ~doc)
  in
  let run seed num_apps procs usecase estimator iterations =
    let w = workload seed num_apps procs in
    match parse_usecase w usecase with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok uc ->
        let apps = Exp.Workload.analysis_apps w uc in
        let results = Contention.Analysis.estimate ~iterations estimator apps in
        Printf.printf "Use-case %s, estimator %s:\n"
          (Format.asprintf "%a" (Contention.Usecase.pp ~napps:(Exp.Workload.num_apps w)) uc)
          (Contention.Analysis.estimator_name estimator);
        List.iter
          (fun (r : Contention.Analysis.estimate) ->
            Printf.printf
              "  %s: period %.1f (isolation %.1f, +%.1f%%), throughput %.6f\n"
              r.for_app.graph.Sdf.Graph.name r.period r.for_app.isolation_period
              (100. *. (r.period /. r.for_app.isolation_period -. 1.))
              (Contention.Analysis.throughput r))
          results
  in
  let term =
    Term.(
      const run $ seed_arg $ num_apps_arg $ procs_arg $ usecase_arg $ estimator_arg
      $ iterations)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Probabilistic period estimation for a use-case") term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let run seed num_apps procs usecase horizon =
    let w = workload seed num_apps procs in
    match parse_usecase w usecase with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok uc ->
        let results, stats =
          Desim.Engine.run ~horizon ~procs (Exp.Workload.sim_apps w uc)
        in
        Printf.printf "Simulated use-case %s for %.0f time units:\n"
          (Format.asprintf "%a" (Contention.Usecase.pp ~napps:(Exp.Workload.num_apps w)) uc)
          horizon;
        Array.iter
          (fun (r : Desim.Engine.result) ->
            Printf.printf "  %s: avg period %.1f, worst %.1f, %d iterations\n"
              r.app_name r.avg_period r.max_period r.iterations)
          results;
        let util = Desim.Engine.utilisation stats in
        Printf.printf "  processor utilisation: %s\n"
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "%.2f") util)))
  in
  let term =
    Term.(const run $ seed_arg $ num_apps_arg $ procs_arg $ usecase_arg $ horizon_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Discrete-event simulation of a use-case") term

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let sections =
    let doc =
      "Sections to run: fig5, table1, fig6, timing, or all (default)."
    in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"SECTION" ~doc)
  in
  let run seed num_apps procs horizon jobs trace sections =
    with_trace trace (fun () ->
        let wants s = List.mem "all" sections || List.mem s sections in
        let w = workload seed num_apps procs in
        if wants "fig5" then
          print_string (Exp.Figures.render_fig5 (Exp.Figures.fig5 ~horizon w));
        if wants "table1" || wants "fig6" || wants "timing" then begin
          let last = ref 0 in
          let progress done_ total =
            let pct = 100 * done_ / total in
            if pct >= !last + 10 then begin
              last := pct;
              Printf.eprintf "  sweep: %d%% (%d/%d use-cases)\n%!" pct done_ total
            end
          in
          let sweep = Exp.Sweep.run ~horizon ~progress ?jobs w in
          if wants "table1" then
            print_string (Exp.Figures.render_table1 (Exp.Figures.table1 sweep));
          if wants "fig6" then
            print_string (Exp.Figures.render_fig6 (Exp.Figures.fig6 sweep));
          if wants "timing" then print_string (Exp.Figures.render_timing sweep)
        end)
  in
  let term =
    Term.(
      const run $ seed_arg $ num_apps_arg $ procs_arg $ horizon_arg $ jobs_arg
      $ trace_arg $ sections)
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Reproduce the paper's evaluation (Figure 5, Table 1, Figure 6, timing)")
    term

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let exact_check_arg =
  let doc =
    "Re-run every estimate on the list-based reference implementation and \
     fail on any divergence from the zero-allocation kernel beyond 1e-9 \
     (slower; a self-validating mode for unattended runs)."
  in
  Arg.(value & flag & info [ "exact-check" ] ~doc)

let sweep_cmd =
  let run seed num_apps procs horizon jobs load trace exact_check =
    with_trace trace (fun () ->
        let w = workload ~load seed num_apps procs in
        let last = ref 0 in
        let progress done_ total =
          let pct = 100 * done_ / total in
          if pct >= !last + 10 then begin
            last := pct;
            Printf.eprintf "  sweep: %d%% (%d/%d use-cases)\n%!" pct done_ total
          end
        in
        let sweep = Exp.Sweep.run ~horizon ~progress ?jobs ~exact_check w in
        print_string (Exp.Figures.render_table1 (Exp.Figures.table1 sweep));
        print_string (Exp.Figures.render_timing sweep))
  in
  let term =
    Term.(
      const run $ seed_arg $ num_apps_arg $ procs_arg $ horizon_arg $ jobs_arg
      $ load_arg $ trace_arg $ exact_check_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep every use-case (simulation + all estimators) and print the \
          accuracy table and timing; $(b,--trace) records where the time \
          goes; $(b,--exact-check) cross-validates the kernel against the \
          reference path")
    term

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report_cmd =
  let run seed num_apps procs usecase horizon jobs load trace =
    let w = workload ~load seed num_apps procs in
    match parse_usecase w usecase with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok uc ->
        with_trace trace (fun () ->
            let report = Exp.Report.build ~horizon ?jobs w uc in
            print_string
              (Exp.Report.render ~napps:(Exp.Workload.num_apps w) report))
  in
  let term =
    Term.(
      const run $ seed_arg $ num_apps_arg $ procs_arg $ usecase_arg $ horizon_arg
      $ jobs_arg $ load_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Estimated vs simulated periods and processor utilisation for a use-case")
    term

(* ------------------------------------------------------------------ *)
(* sensitivity                                                         *)

let sensitivity_cmd =
  let victim =
    let doc = "Rank interferers of this application only." in
    Arg.(value & opt (some string) None & info [ "victim" ] ~docv:"APP" ~doc)
  in
  let run seed num_apps procs usecase estimator victim jobs load =
    let w = workload ~load seed num_apps procs in
    match parse_usecase w usecase with
    | Error msg ->
        prerr_endline msg;
        exit 2
    | Ok uc -> (
        let apps = Exp.Workload.analysis_apps w uc in
        (* Each leave-one-out column is a pure task: fan them out. *)
        let pmap f xs = Exp.Pool.map_list ?jobs f xs in
        match victim with
        | None ->
            print_string
              (Contention.Sensitivity.render
                 (Contention.Sensitivity.leave_one_out ~pmap ~estimator apps))
        | Some name -> (
            match
              Contention.Sensitivity.rank_for ~pmap ~estimator ~victim:name apps
            with
            | ranked -> print_string (Contention.Sensitivity.render ranked)
            | exception Not_found ->
                Printf.eprintf "application %S is not in the use-case\n" name;
                exit 2))
  in
  let term =
    Term.(
      const run $ seed_arg $ num_apps_arg $ procs_arg $ usecase_arg $ estimator_arg
      $ victim $ jobs_arg $ load_arg)
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Leave-one-out impact of each application on the others' periods")
    term

(* ------------------------------------------------------------------ *)
(* inspect                                                             *)

let inspect_cmd =
  let app_name =
    let doc = "Application to inspect (a letter, e.g. C)." in
    Arg.(value & opt string "A" & info [ "app" ] ~docv:"APP" ~doc)
  in
  let save =
    let doc = "Also save the graph in the text format to $(docv)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let run seed num_apps procs app_name save =
    let w = workload seed num_apps procs in
    match Exp.Workload.app_index w app_name with
    | exception Not_found ->
        Printf.eprintf "unknown application %S\n" app_name;
        exit 2
    | i ->
        let a = w.apps.(i) in
        let g = a.Contention.Analysis.graph in
        Format.printf "%a@." Sdf.Graph.pp g;
        Printf.printf "repetition vector: [%s]\n"
          (String.concat "; " (Array.to_list (Array.map string_of_int a.repetition)));
        Printf.printf "period: %.2f (statespace) / %.2f (HSDF+MCM)\n"
          (Sdf.Statespace.period_exn g) (Sdf.Hsdf.period g);
        (match Sdf.Metrics.analyse g with
        | None -> print_endline "metrics: graph deadlocks"
        | Some m ->
            Printf.printf "latency: %.2f, makespan (3 iterations): %.2f\n" m.latency
              m.makespan;
            Printf.printf "buffer peaks: [%s] (total %d)\n"
              (String.concat "; "
                 (Array.to_list (Array.map string_of_int m.buffer_peaks)))
              (Sdf.Metrics.buffer_bound_total m));
        let caps = Sdf.Capacity.sufficient_capacities g in
        Printf.printf "schedule-preserving capacities: [%s]\n"
          (String.concat "; " (Array.to_list (Array.map string_of_int caps)));
        (match save with
        | None -> ()
        | Some path ->
            Sdf.Text.write_file path g;
            Printf.printf "saved to %s\n" path)
  in
  let term = Term.(const run $ seed_arg $ num_apps_arg $ procs_arg $ app_name $ save) in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Periods, latency, buffer bounds and export of one graph")
    term

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let export_cmd =
  let out_dir =
    let doc = "Directory for the CSV files (created if missing)." in
    Arg.(value & opt string "results" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let run seed num_apps procs horizon jobs trace out_dir =
    with_trace trace (fun () ->
        let w = workload seed num_apps procs in
        if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
        let save name contents =
          let path = Filename.concat out_dir name in
          Exp.Export.write ~path contents;
          Printf.printf "wrote %s\n%!" path
        in
        save "fig5.csv" (Exp.Export.fig5_csv (Exp.Figures.fig5 ~horizon w));
        Printf.printf "sweeping all use-cases...\n%!";
        let sweep = Exp.Sweep.run ~horizon ?jobs w in
        save "table1.csv" (Exp.Export.table1_csv (Exp.Figures.table1 sweep));
        save "fig6.csv" (Exp.Export.fig6_csv (Exp.Figures.fig6 sweep));
        save "observations.csv" (Exp.Export.observations_csv sweep))
  in
  let term =
    Term.(
      const run $ seed_arg $ num_apps_arg $ procs_arg $ horizon_arg $ jobs_arg
      $ trace_arg $ out_dir)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the evaluation data (Fig. 5/6, Table 1, raw sweep) as CSV")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let host_arg =
  let doc = "Address the daemon binds / the client connects to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let port_arg =
  let doc = "TCP port (0 picks an ephemeral port; the daemon prints it)." in
  Arg.(value & opt int 4557 & info [ "port" ] ~docv:"PORT" ~doc)

let unix_arg =
  let doc = "Also (serve) or instead (query) use a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)

(* Peer lists are shared between serve (forwarding) and loadgen (routing):
   --peers takes the endpoints inline, --peers-file reads one per line. *)
let peers_arg =
  let doc =
    "Comma-separated shard endpoints (host:port or unix:PATH) forming the \
     cluster, in the same order on every node and client."
  in
  Arg.(value & opt (some string) None & info [ "peers" ] ~docv:"LIST" ~doc)

let peers_file_arg =
  let doc = "File with one shard endpoint per line ($(i,#) comments allowed)." in
  Arg.(value & opt (some string) None & info [ "peers-file" ] ~docv:"FILE" ~doc)

let resolve_peers peers peers_file =
  match (peers, peers_file) with
  | Some _, Some _ -> Error "--peers and --peers-file are mutually exclusive"
  | Some list, None -> Result.map Option.some (Cluster.Endpoint.parse_list list)
  | None, Some file -> Result.map Option.some (Cluster.Endpoint.load_file file)
  | None, None -> Ok None

let serve_cmd =
  let cache_arg =
    let doc = "Estimate-cache capacity in entries." in
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Accept-queue bound: connections beyond this many waiting for a worker \
       receive a shed verdict instead of queueing (0 = unbounded)."
    in
    Arg.(value & opt int 1024 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let hot_threshold_arg =
    let doc =
      "Estimate requests per cache entry before it counts as hot and is \
       replicated to the digest's failover peer (needs $(b,--peers); 0 = off)."
    in
    Arg.(value & opt int 3 & info [ "hot-threshold" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc =
      "Append sampled per-request records (trace id, command, shard, queue \
       depth, outcome, latency) as JSONL to $(docv), size-rotated to \
       $(docv).1."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let journal_sample_arg =
    let doc =
      "Journal 1 in $(docv) context-free requests (requests carrying a trace \
       context follow the context's sampled bit instead)."
    in
    Arg.(value & opt int 16 & info [ "journal-sample" ] ~docv:"N" ~doc)
  in
  let journal_max_bytes_arg =
    let doc = "Rotate the journal after it exceeds $(docv) bytes (0 = never)." in
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "journal-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let slo_latency_arg =
    let doc =
      "Latency objective in milliseconds: slower requests (and sheds) burn \
       the SLO error budget reported by $(b,stats) and the metrics page."
    in
    Arg.(value & opt float 50. & info [ "slo-latency-ms" ] ~docv:"MS" ~doc)
  in
  let slo_target_arg =
    let doc = "SLO availability target, e.g. 0.999." in
    Arg.(value & opt float 0.999 & info [ "slo-target" ] ~docv:"FRACTION" ~doc)
  in
  let audit_sample_arg =
    let doc =
      "Shadow-audit 1 in $(docv) served estimates: replay them through the \
       simulator on a background domain and track the per-estimator error \
       distribution and drift (0 = off)."
    in
    Arg.(value & opt int 0 & info [ "audit-sample" ] ~docv:"N" ~doc)
  in
  let audit_horizon_arg =
    let doc = "Simulation horizon of audit replays, in time units." in
    Arg.(
      value
      & opt float Serve.Audit.default_config.Serve.Audit.horizon
      & info [ "audit-horizon" ] ~docv:"T" ~doc)
  in
  let audit_drift_delta_arg =
    let doc =
      "Page-Hinkley slack: per-sample mean shifts below $(docv) never \
       accumulate toward a drift alarm."
    in
    Arg.(
      value
      & opt float Serve.Audit.default_config.Serve.Audit.drift_delta
      & info [ "audit-drift-delta" ] ~docv:"D" ~doc)
  in
  let audit_drift_lambda_arg =
    let doc =
      "Page-Hinkley threshold: alarm when the cumulative error deviation \
       exceeds $(docv).  Scale it to the error spread of the workloads \
       actually served — the default suits a stream of near-identical \
       errors; a varied working set needs a larger value."
    in
    Arg.(
      value
      & opt float Serve.Audit.default_config.Serve.Audit.drift_lambda
      & info [ "audit-drift-lambda" ] ~docv:"L" ~doc)
  in
  let run host port unix_path jobs cache max_queue hot_threshold peers
      peers_file journal journal_sample journal_max_bytes slo_latency_ms
      slo_target audit_sample audit_horizon audit_drift_delta
      audit_drift_lambda trace =
    if cache < 1 then begin
      prerr_endline "cache capacity must be at least 1";
      exit 2
    end;
    let peers =
      match resolve_peers peers peers_file with
      | Ok v -> v
      | Error msg ->
          Printf.eprintf "contention serve: %s\n" msg;
          exit 2
    in
    (* This node's own entry in the peer list, so hot entries are forwarded
       to the digest's failover peer rather than back to ourselves.  The
       same identity labels the journal's shard field and the trace file's
       process name. *)
    let self_of endpoints =
      List.find_opt
        (function
          | Cluster.Endpoint.Unix_sock p -> Some p = unix_path
          | Cluster.Endpoint.Tcp t -> t.host = host && t.port = port)
        endpoints
    in
    let self = Option.bind peers self_of in
    let self_name =
      match self with
      | Some e -> Cluster.Endpoint.to_string e
      | None -> (
          match unix_path with
          | Some p when port = 0 -> "unix:" ^ p
          | _ -> Printf.sprintf "%s:%d" host port)
    in
    let config =
      {
        Serve.Server.default_config with
        host;
        port = Some port;
        unix_path;
        jobs;
        cache_capacity = cache;
        max_queue;
        hot_threshold = (if peers = None then 0 else hot_threshold);
        journal_path = journal;
        journal_sample;
        journal_max_bytes;
        slo_objective_ms = slo_latency_ms;
        slo_target;
        shard = Some self_name;
        audit_sample;
        audit_horizon;
        audit_drift_delta;
        audit_drift_lambda;
      }
    in
    let router =
      Option.map
        (fun endpoints ->
          Cluster.Router.create ~pool_size:2 ~timeout:5. endpoints)
        peers
    in
    let on_hot =
      Option.map
        (fun r entry -> Cluster.Router.forward_hot r ~self entry)
        router
    in
    with_trace ~process_name:self_name trace (fun () ->
        let server =
          try Serve.Server.start ?on_hot ~config ()
          with Unix.Unix_error (err, _, _) ->
            Printf.eprintf "cannot start server: %s\n" (Unix.error_message err);
            exit 1
        in
        (match Serve.Server.tcp_port server with
        | Some p ->
            Printf.printf "contention serve: listening on %s:%d\n%!" host p
        | None -> ());
        Option.iter
          (fun path -> Printf.printf "contention serve: listening on %s\n%!" path)
          unix_path;
        let interrupted = Atomic.make false in
        let on_signal _ = Atomic.set interrupted true in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
         with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
         with Invalid_argument _ -> ());
        Serve.Server.run_until_stopped
          ~should_stop:(fun () -> Atomic.get interrupted)
          server;
        Option.iter Cluster.Router.close router;
        Printf.printf
          "contention serve: drained in-flight requests, stopped\n%!")
  in
  let term =
    Term.(
      const run $ host_arg $ port_arg $ unix_arg $ jobs_arg $ cache_arg
      $ max_queue_arg $ hot_threshold_arg $ peers_arg $ peers_file_arg
      $ journal_arg $ journal_sample_arg $ journal_max_bytes_arg
      $ slo_latency_arg $ slo_target_arg $ audit_sample_arg
      $ audit_horizon_arg $ audit_drift_delta_arg $ audit_drift_lambda_arg
      $ trace_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online resource-manager daemon (upload / estimate / admit / \
          release / stats over newline-delimited JSON)")
    term

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_cmd =
  let seeds_arg =
    let doc = "Fuzz seeds to run (each is one generated workload)." in
    Arg.(value & opt int 500 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Wall-clock budget in seconds; seeds not started before it expires are \
       skipped (and reported as such)."
    in
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECS" ~doc)
  in
  let corpus_arg =
    let doc =
      "Corpus directory: existing $(i,.case) files are replayed first (they \
       pin previously fixed bugs and must pass), and any new shrunk \
       counterexample is saved there."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let wire_arg =
    let doc = "Skip the wire-protocol fuzz of the serve daemon." in
    Arg.(value & flag & info [ "no-wire" ] ~doc)
  in
  let churn_arg =
    let doc =
      "Also run the churn soak: ramp an admission controller to this many \
       resident applications, then drive seeded join/leave/observe churn \
       with the from-scratch re-fold oracle.  Fails on any oracle violation \
       or if a join/leave ever re-folds from scratch."
    in
    Arg.(value & opt (some int) None & info [ "churn" ] ~docv:"APPS" ~doc)
  in
  let churn_json_arg =
    let doc =
      "Write the churn campaign's rebuild/drift counters to this JSON file \
       (CI uploads it as an artifact)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "churn-json" ] ~docv:"FILE" ~doc)
  in
  let run seeds jobs budget corpus no_wire churn churn_json trace =
    with_trace trace (fun () ->
        let failed = ref false in
        (match corpus with
        | None -> ()
        | Some dir ->
            let outcomes, errors = Check.Fuzz.replay ~dir () in
            if outcomes <> [] || errors <> [] then begin
              print_string (Check.Report.render_replay outcomes errors);
              if
                errors <> []
                || List.exists
                     (fun (_, (o : Check.Oracle.outcome)) ->
                       o.violations <> [])
                     outcomes
              then failed := true
            end);
        let r = Check.Fuzz.run ?jobs ?budget_s:budget ~seeds () in
        print_string (Check.Report.render r);
        if not (Check.Fuzz.passed r) then failed := true;
        (match corpus with
        | None -> ()
        | Some dir ->
            List.iter
              (fun f ->
                let path = Check.Corpus.save ~dir (Check.Fuzz.to_corpus f) in
                Printf.printf "saved counterexample to %s\n" path)
              r.failures);
        if not no_wire then begin
          let w = Check.Wirefuzz.run ~seeds:(min seeds 200) () in
          Printf.printf "\nwire fuzz: %d requests, %d violations\n" w.requests
            (List.length w.violations);
          List.iter
            (fun (v : Check.Oracle.violation) ->
              Printf.printf "  %s: %s\n" v.property v.detail)
            w.violations;
          if not (Check.Wirefuzz.passed w) then failed := true
        end;
        (match churn with
        | None -> ()
        | Some resident ->
            let config =
              {
                Check.Fuzz.default_churn_config with
                Check.Fuzz.resident;
                events = (2 * resident) + 1500;
                check_every = resident;
                period_slack = Float.max 12. (0.25 *. float_of_int resident);
              }
            in
            let r = Check.Fuzz.churn ~config ~seed:1 () in
            let c = r.Check.Fuzz.counters in
            Printf.printf
              "\n\
               churn soak: %d residents, %d events (%d joins, %d leaves, %d \
               observes), %d oracle checks\n\
              \  max p deviation %.3g, max w deviation %.3g\n\
              \  full rebuilds %d, drift refolds %d, group rebuilds %d, \
               group drift refolds %d, %d violations\n"
              resident r.Check.Fuzz.churn_events r.Check.Fuzz.joins
              r.Check.Fuzz.leaves r.Check.Fuzz.observes r.Check.Fuzz.checks
              r.Check.Fuzz.max_p_err r.Check.Fuzz.max_w_err
              c.Contention.Admission.full_rebuilds
              c.Contention.Admission.drift_refolds
              c.Contention.Admission.group_rebuilds
              c.Contention.Admission.group_drift_refolds
              (List.length r.Check.Fuzz.churn_violations);
            List.iter
              (fun (v : Check.Metamorphic.violation) ->
                Printf.printf "  %s: %s\n" v.property v.detail)
              r.Check.Fuzz.churn_violations;
            (match churn_json with
            | None -> ()
            | Some file ->
                let doc =
                  Serve.Json.Obj
                    [
                      ("schema", Serve.Json.Str "contention-churn/1");
                      ("resident", Serve.Json.Num (float_of_int resident));
                      ( "events",
                        Serve.Json.Num
                          (float_of_int r.Check.Fuzz.churn_events) );
                      ("joins", Serve.Json.Num (float_of_int r.Check.Fuzz.joins));
                      ( "leaves",
                        Serve.Json.Num (float_of_int r.Check.Fuzz.leaves) );
                      ( "observes",
                        Serve.Json.Num (float_of_int r.Check.Fuzz.observes) );
                      ( "checks",
                        Serve.Json.Num (float_of_int r.Check.Fuzz.checks) );
                      ("max_p_err", Serve.Json.Num r.Check.Fuzz.max_p_err);
                      ("max_w_err", Serve.Json.Num r.Check.Fuzz.max_w_err);
                      ( "incremental_ops",
                        Serve.Json.Num
                          (float_of_int c.Contention.Admission.incremental_ops)
                      );
                      ( "full_rebuilds",
                        Serve.Json.Num
                          (float_of_int c.Contention.Admission.full_rebuilds) );
                      ( "drift_refolds",
                        Serve.Json.Num
                          (float_of_int c.Contention.Admission.drift_refolds) );
                      ( "group_rebuilds",
                        Serve.Json.Num
                          (float_of_int c.Contention.Admission.group_rebuilds)
                      );
                      ( "group_drift_refolds",
                        Serve.Json.Num
                          (float_of_int
                             c.Contention.Admission.group_drift_refolds) );
                      ( "violations",
                        Serve.Json.Num
                          (float_of_int
                             (List.length r.Check.Fuzz.churn_violations)) );
                    ]
                in
                let oc = open_out file in
                output_string oc (Serve.Json.to_string doc);
                output_char oc '\n';
                close_out oc;
                Printf.printf "wrote churn counters to %s\n" file);
            if
              (not (Check.Fuzz.churn_passed r))
              || c.Contention.Admission.full_rebuilds <> 0
            then failed := true);
        if !failed then exit 1)
  in
  let term =
    Term.(
      const run $ seeds_arg $ jobs_arg $ budget_arg $ corpus_arg $ wire_arg
      $ churn_arg $ churn_json_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential validation: fuzz random workloads through every \
          estimator, the simulator and the wire protocol, checking provable \
          invariants; violations are shrunk to minimal reproducing specs and \
          the accuracy of each estimator against simulation is reported")
    term

(* ------------------------------------------------------------------ *)
(* query / stats                                                       *)

let print_stats (s : Serve.Protocol.stats_reply) =
  Printf.printf "uptime %.1fs, %d connections, %d requests\n" s.uptime_s
    s.connections s.requests_total;
  List.iter (fun (cmd, n) -> Printf.printf "  %-10s %d\n" cmd n) s.requests;
  Printf.printf "workloads %d, sessions %d\n" s.workloads s.sessions;
  Printf.printf "cache: %d/%d entries, %d hits, %d misses (hit rate %.1f%%)\n"
    s.cache_entries s.cache_capacity s.cache_hits s.cache_misses
    (100. *. Serve.Protocol.cache_hit_rate s);
  Printf.printf "pool: %d of %d workers busy (occupancy %.0f%%)\n"
    s.active_connections s.workers
    (100. *. Serve.Protocol.pool_occupancy s);
  Printf.printf "backpressure: queue bound %s, %d connections shed\n"
    (if s.queue_capacity = 0 then "off" else string_of_int s.queue_capacity)
    s.shed;
  Printf.printf "admission: %d admitted, %d rejected (candidate), %d rejected \
                 (victim), %d released\n"
    s.admitted s.rejected_candidate s.rejected_victim s.released;
  Printf.printf
    "latency: mean %.0fus, p50 %.0fus, p90 %.0fus, p99 %.0fus, max %.0fus \
     over %d requests\n"
    s.latency_mean_us s.latency_p50_us s.latency_p90_us s.latency_p99_us
    s.latency_max_us s.latency_samples;
  if s.slo_objective_ms > 0. then
    Printf.printf
      "slo: %.1fms at %.4g%%, burn rate %.2fx (1m) / %.2fx (1h)\n"
      s.slo_objective_ms (100. *. s.slo_target) s.slo_burn_1m s.slo_burn_1h;
  if s.audit.audit_sample > 0 then begin
    Printf.printf
      "audit: 1-in-%d sampling, %d submitted, %d replayed, %d dropped, %d \
       failed\n"
      s.audit.audit_sample s.audit.audit_submitted s.audit.audit_completed
      s.audit.audit_dropped s.audit.audit_failed;
    Printf.printf "audit: mean err %+.4f, max |err| %.4f, %d drift alarms%s\n"
      s.audit.audit_mean_err s.audit.audit_max_abs_err s.audit.audit_alarms
      (match s.audit.audit_drifting with
      | [] -> ""
      | drifting -> " (drifting: " ^ String.concat "," drifting ^ ")")
  end

let with_client ~host ~port ~unix_path f =
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt in
  let client =
    match
      match unix_path with
      | Some path -> Serve.Client.connect_unix path
      | None -> Serve.Client.connect ~host ~port ()
    with
    | Ok c -> c
    | Error msg -> fail "cannot connect: %s" msg
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client)

let query_cmd =
  let session_arg =
    let doc = "Admission session the admit/release applies to." in
    Arg.(
      value
      & opt string Serve.Protocol.default_session
      & info [ "session" ] ~docv:"NAME" ~doc)
  in
  let min_tp_arg =
    let doc = "Throughput requirement for admit (0 = best effort)." in
    Arg.(value & opt float 0. & info [ "min-throughput" ] ~docv:"TP" ~doc)
  in
  let confidence_arg =
    let doc =
      "Ask admit for a confidence interval around the served period, e.g. \
       0.95.  Must be strictly between 0 and 1; omitting the flag keeps the \
       plain point estimate."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "confidence" ] ~docv:"LEVEL" ~doc)
  in
  let margin_method_arg =
    let doc =
      "Margin variant for --confidence: $(b,z-score) (analytic, default) or \
       $(b,quantile) (empirical Monte-Carlo quantiles)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "margin-method" ] ~docv:"METHOD" ~doc)
  in
  let words_arg =
    let doc =
      "Command: ping | upload FILE | estimate DIGEST | admit DIGEST APP | \
       release APP | stats | metrics | shutdown."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"COMMAND" ~doc)
  in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt in
  let print_estimate (r : Serve.Protocol.estimate_reply) =
    Printf.printf "estimator %s%s:\n" r.estimator
      (if r.cached then " (cached)" else "");
    List.iter
      (fun (row : Serve.Protocol.estimate_row) ->
        Printf.printf
          "  %s: period %.1f (isolation %.1f, +%.1f%%), throughput %.6f\n"
          row.app row.period row.isolation_period
          (100. *. ((row.period /. row.isolation_period) -. 1.))
          row.throughput)
      r.rows
  in
  let run host port unix_path usecase estimator session min_tp confidence
      margin_method words =
    let margin_method =
      Option.map
        (fun s ->
          match Contention.Margin.method_of_string s with
          | Ok m -> m
          | Error msg -> fail "%s" msg)
        margin_method
    in
    with_client ~host ~port ~unix_path
      (fun client ->
        let check = function Ok v -> v | Error msg -> fail "%s" msg in
        match words with
        | [ "ping" ] ->
            check (Serve.Client.ping client);
            print_endline "pong"
        | [ "upload"; file ] ->
            let payload =
              match open_in file with
              | exception Sys_error msg -> fail "cannot read %s: %s" file msg
              | ic ->
                  Fun.protect
                    ~finally:(fun () -> close_in ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
            in
            let r = check (Serve.Client.upload client ~payload) in
            Printf.printf "digest %s (%d apps on %d processors: %s)\n" r.digest
              (List.length r.apps) r.procs
              (String.concat "," r.apps)
        | [ "estimate"; digest ] ->
            let usecase =
              Option.map
                (fun spec ->
                  List.map String.trim (String.split_on_char ',' spec))
                usecase
            in
            print_estimate
              (check
                 (Serve.Client.estimate client ~digest ?usecase ~estimator ()))
        | [ "admit"; digest; app ] -> (
            match
              check
                (Serve.Client.admit client ~session ?confidence ?margin_method
                   ~digest ~app ~min_throughput:min_tp ())
            with
            | Serve.Protocol.Admitted { throughput; margin } -> (
                Printf.printf "admitted %s (estimated throughput %.6f)\n" app
                  throughput;
                match margin with
                | None -> ()
                | Some m ->
                    Printf.printf
                      "  period %.1f in [%.1f, %.1f] at %g%% confidence (%s)\n"
                      m.Contention.Margin.period m.Contention.Margin.lo
                      m.Contention.Margin.hi
                      (100. *. m.Contention.Margin.confidence)
                      (Contention.Margin.method_to_string
                         m.Contention.Margin.method_))
            | Serve.Protocol.Rejected_candidate { estimated; required } ->
                Printf.printf
                  "rejected: %s itself would achieve %.6f < required %.6f\n" app
                  estimated required
            | Serve.Protocol.Rejected_victim { victim; estimated; required } ->
                Printf.printf
                  "rejected: admitting %s would push %s to %.6f < required %.6f\n"
                  app victim estimated required)
        | [ "release"; app ] ->
            check (Serve.Client.release client ~session ~app ());
            Printf.printf "released %s\n" app
        | [ "stats" ] -> print_stats (check (Serve.Client.stats client))
        | [ "metrics" ] ->
            let r = check (Serve.Client.metrics client) in
            print_string r.Serve.Protocol.prometheus
        | [ "shutdown" ] ->
            check (Serve.Client.shutdown client);
            print_endline "server stopping"
        | words -> fail "unknown query %S" (String.concat " " words))
  in
  let term =
    Term.(
      const run $ host_arg $ port_arg $ unix_arg $ usecase_arg $ estimator_arg
      $ session_arg $ min_tp_arg $ confidence_arg $ margin_method_arg
      $ words_arg)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Query a running $(b,contention serve) daemon (one command per call)")
    term

let stats_cmd =
  let prometheus_arg =
    let doc =
      "Render the daemon's metric registry in the Prometheus text format \
       (per-command request counters, latency histograms, cache and pool \
       series) instead of the human-readable summary."
    in
    Arg.(value & flag & info [ "prometheus" ] ~doc)
  in
  let cluster_arg =
    let doc =
      "Fan out to every shard in $(b,--peers)/$(b,--peers-file) and merge: \
       per-shard summaries plus cluster totals, or (with $(b,--prometheus)) \
       one exposition with every series labelled by shard."
    in
    Arg.(value & flag & info [ "cluster" ] ~doc)
  in
  (* Cluster totals that are meaningful to add up; latency percentiles are
     per shard only (percentiles do not sum). *)
  let print_cluster_summary replies =
    let sum f = List.fold_left (fun acc (_, s) -> acc + f s) 0 replies in
    let maxf f = List.fold_left (fun acc (_, s) -> Float.max acc (f s)) 0. replies in
    Printf.printf "cluster: %d shards, %d requests, %d shed, %d admitted, %d \
                   rejected\n"
      (List.length replies)
      (sum (fun (s : Serve.Protocol.stats_reply) -> s.requests_total))
      (sum (fun s -> s.shed))
      (sum (fun s -> s.admitted))
      (sum (fun s -> s.rejected_candidate + s.rejected_victim));
    Printf.printf "cluster: worst burn rate %.2fx (1m) / %.2fx (1h)\n"
      (maxf (fun s -> s.slo_burn_1m))
      (maxf (fun s -> s.slo_burn_1h));
    let audited = sum (fun s -> s.audit.Serve.Protocol.audit_completed) in
    if audited > 0 then begin
      let drifting =
        List.sort_uniq String.compare
          (List.concat_map
             (fun (_, s) ->
               s.Serve.Protocol.audit.Serve.Protocol.audit_drifting)
             replies)
      in
      Printf.printf
        "cluster: accuracy — %d estimates audited, %d dropped, worst |err| \
         %.4f, %d drift alarms%s\n"
        audited
        (sum (fun s -> s.audit.Serve.Protocol.audit_dropped))
        (maxf (fun s -> s.audit.Serve.Protocol.audit_max_abs_err))
        (sum (fun s -> s.audit.Serve.Protocol.audit_alarms))
        (match drifting with
        | [] -> ""
        | d -> " (drifting: " ^ String.concat "," d ^ ")")
    end
  in
  let run_cluster endpoints prometheus =
    let router = Cluster.Router.create ~pool_size:1 ~timeout:10. endpoints in
    Fun.protect
      ~finally:(fun () -> Cluster.Router.close router)
      (fun () ->
        let failed = ref false in
        if prometheus then begin
          let expositions =
            List.filter_map
              (fun (e, r) ->
                match r with
                | Ok (m : Serve.Protocol.metrics_reply) ->
                    Some (Cluster.Endpoint.to_string e, m.prometheus)
                | Error msg ->
                    Printf.eprintf "shard %s: %s\n"
                      (Cluster.Endpoint.to_string e) msg;
                    failed := true;
                    None)
              (Cluster.Router.metrics_all router)
          in
          print_string (Cluster.Promerge.merge expositions)
        end
        else begin
          let replies =
            List.filter_map
              (fun (e, r) ->
                let name = Cluster.Endpoint.to_string e in
                match r with
                | Ok s -> Some (name, s)
                | Error msg ->
                    Printf.eprintf "shard %s: %s\n" name msg;
                    failed := true;
                    None)
              (Cluster.Router.stats_all router)
          in
          List.iter
            (fun (name, s) ->
              Printf.printf "--- shard %s ---\n" name;
              print_stats s)
            replies;
          if replies <> [] then print_cluster_summary replies
        end;
        if !failed then exit 1)
  in
  let run host port unix_path prometheus cluster peers peers_file =
    if cluster then
      match resolve_peers peers peers_file with
      | Ok (Some endpoints) -> run_cluster endpoints prometheus
      | Ok None ->
          prerr_endline "stats --cluster needs --peers or --peers-file";
          exit 2
      | Error msg -> prerr_endline msg; exit 2
    else
      with_client ~host ~port ~unix_path (fun client ->
          if prometheus then
            match Serve.Client.metrics client with
            | Ok r -> print_string r.Serve.Protocol.prometheus
            | Error msg -> prerr_endline msg; exit 1
          else
            match Serve.Client.stats client with
            | Ok s -> print_stats s
            | Error msg -> prerr_endline msg; exit 1)
  in
  let term =
    Term.(
      const run $ host_arg $ port_arg $ unix_arg $ prometheus_arg $ cluster_arg
      $ peers_arg $ peers_file_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Operational statistics of a running daemon; $(b,--prometheus) \
          prints a scrape-ready exposition, $(b,--cluster) fans out to every \
          shard and merges")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let digest_arg =
    let doc =
      "Ask a running daemon (see $(b,--port)/$(b,--unix)) for the provenance \
       of the estimate it serves for the stored workload $(docv), instead of \
       computing locally from $(b,--load)/$(b,--seed)."
    in
    Arg.(value & opt (some string) None & info [ "digest" ] ~docv:"DIGEST" ~doc)
  in
  let json_arg =
    let doc = "Print the provenance record as JSON instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Re-derive the estimate from the provenance record and check it matches \
       bit for bit: against the workload's graphs locally, and additionally \
       against the daemon's served rows when $(b,--digest) is given."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt in
  let same_float a b =
    Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  in
  let output json e =
    if json then
      print_endline
        (Serve.Json.to_string (Serve.Protocol.explain_reply_to_json e))
    else print_string (Contention.Explain.render e)
  in
  let run host port unix_path digest load seed num_apps procs usecase estimator
      json verify =
    match digest with
    | Some digest ->
        with_client ~host ~port ~unix_path (fun client ->
            let usecase =
              Option.map
                (fun spec ->
                  List.map String.trim (String.split_on_char ',' spec))
                usecase
            in
            let e =
              match
                Serve.Client.explain client ~digest ?usecase ~estimator ()
              with
              | Ok e -> e
              | Error msg -> fail "%s" msg
            in
            output json e;
            if verify then begin
              (* The served estimate, answered by the kernel engine (and
                 possibly from cache) — the provenance record must carry the
                 exact same numbers. *)
              let r =
                match
                  Serve.Client.estimate client ~digest ?usecase ~estimator ()
                with
                | Ok r -> r
                | Error msg -> fail "%s" msg
              in
              let apps = e.Contention.Explain.apps in
              if List.length r.rows <> List.length apps then
                fail "verify: %d served rows vs %d explained applications"
                  (List.length r.rows) (List.length apps);
              List.iter2
                (fun (row : Serve.Protocol.estimate_row)
                     (x : Contention.Explain.app) ->
                  if not (String.equal row.app x.Contention.Explain.x_app) then
                    fail "verify: served row %S vs explained application %S"
                      row.app x.Contention.Explain.x_app;
                  if
                    not
                      (same_float row.period x.Contention.Explain.x_period
                      && same_float row.isolation_period
                           x.Contention.Explain.x_isolation
                      && same_float row.throughput
                           x.Contention.Explain.x_throughput)
                  then
                    fail
                      "verify: served %s period %.17g differs from provenance \
                       %.17g"
                      row.app row.period x.Contention.Explain.x_period)
                r.rows apps;
              print_endline
                "verify: provenance matches the served estimate bit-for-bit"
            end)
    | None ->
        let w = workload ~load seed num_apps procs in
        let mask =
          match parse_usecase w usecase with
          | Ok m -> m
          | Error msg -> fail "%s" msg
        in
        let apps =
          List.map (fun i -> w.apps.(i)) (Contention.Usecase.to_list mask)
        in
        let e = Contention.Explain.compute estimator apps in
        output json e;
        if verify then begin
          match Contention.Explain.verify e apps with
          | Ok () ->
              print_endline
                "verify: provenance reproduces the estimate bit-for-bit"
          | Error msg -> fail "verify: %s" msg
        end
  in
  let term =
    Term.(
      const run $ host_arg $ port_arg $ unix_arg $ digest_arg $ load_arg
      $ seed_arg $ num_apps_arg $ procs_arg $ usecase_arg $ estimator_arg
      $ json_arg $ verify_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Structured provenance of a contention estimate: per-actor blocking \
          probabilities, contender folds, truncation error bounds and period \
          derivation — locally, or served by a running daemon with \
          $(b,--digest)")
    term

(* ------------------------------------------------------------------ *)
(* loadgen                                                             *)

let loadgen_cmd =
  let rate_arg =
    let doc = "Target aggregate request rate in req/s (open loop)." in
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"RPS" ~doc)
  in
  let duration_arg =
    let doc = "Run length in seconds." in
    Arg.(value & opt float 5. & info [ "duration" ] ~docv:"SECS" ~doc)
  in
  let threads_arg =
    let doc = "Worker threads issuing requests." in
    Arg.(value & opt int 16 & info [ "threads" ] ~docv:"N" ~doc)
  in
  let arrival_arg =
    let doc = "Arrival process: $(b,poisson) or $(b,uniform)." in
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("poisson", Cluster.Loadgen.Poisson);
               ("uniform", Cluster.Loadgen.Uniform);
             ])
          Cluster.Loadgen.Poisson
      & info [ "arrival" ] ~docv:"KIND" ~doc)
  in
  let working_set_arg =
    let doc = "Distinct workloads in the working set." in
    Arg.(value & opt int 8 & info [ "working-set" ] ~docv:"N" ~doc)
  in
  let skew_arg =
    let doc = "Zipf exponent over the working set (0 = uniform popularity)." in
    Arg.(value & opt float 1.0 & info [ "skew" ] ~docv:"S" ~doc)
  in
  let apps_arg =
    let doc = "Apps per generated workload." in
    Arg.(value & opt int 4 & info [ "apps" ] ~docv:"N" ~doc)
  in
  let procs_arg =
    let doc = "Processors per generated workload." in
    Arg.(value & opt int 2 & info [ "procs" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Write the contention-bench/1 report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc = "Per-connection connect/read/write timeout in seconds." in
    Arg.(value & opt float 10. & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let pool_arg =
    let doc = "Connections per shard (bounds in-flight requests per shard)." in
    Arg.(value & opt int 8 & info [ "pool" ] ~docv:"N" ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Set the head-based journal-sampling bit on 1 in $(docv) requests' \
       trace contexts (0 = issue context-free requests)."
    in
    Arg.(value & opt int 16 & info [ "trace-sample" ] ~docv:"N" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the once-per-second progress line on stderr." in
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc)
  in
  let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt in
  let run peers peers_file rate duration threads arrival working_set skew apps
      procs seed estimator json timeout pool trace trace_sample quiet =
    let endpoints =
      match resolve_peers peers peers_file with
      | Ok (Some endpoints) -> endpoints
      | Ok None -> fail "loadgen needs --peers or --peers-file"
      | Error msg -> fail "%s" msg
    in
    if working_set < 1 then fail "working set must be at least 1";
    let router =
      Cluster.Router.create ~pool_size:pool ~timeout endpoints
    in
    Fun.protect
      ~finally:(fun () -> Cluster.Router.close router)
      (fun () ->
        with_trace ~process_name:"loadgen" trace (fun () ->
            (* Fixed working set, uploaded (broadcast) before the clock
               starts. *)
            let digests =
              Array.init working_set (fun i ->
                  let w =
                    Exp.Workload.make ~seed:(seed + i) ~num_apps:apps ~procs ()
                  in
                  match
                    Cluster.Router.upload router
                      ~payload:(Exp.Workload.to_string w)
                  with
                  | Ok r -> r.Serve.Protocol.digest
                  | Error msg -> fail "%s" msg)
            in
            let config =
              {
                Cluster.Loadgen.rate;
                duration_s = duration;
                concurrency = threads;
                arrival;
                skew;
                seed;
                estimator;
                trace_sample;
              }
            in
            let on_progress =
              if quiet then None
              else
                Some
                  (fun p ->
                    Printf.eprintf "%s\n%!" (Cluster.Loadgen.progress_line p))
            in
            let report = Cluster.Loadgen.run ?on_progress config ~router ~digests in
            print_string (Cluster.Loadgen.render report);
            if List.length report.Cluster.Loadgen.per_shard > 1 then
              print_string (Cluster.Loadgen.render_per_shard report);
            Option.iter
              (fun path ->
                Out_channel.with_open_text path (fun oc ->
                    output_string oc
                      (Serve.Json.to_string
                         (Cluster.Loadgen.report_to_json report));
                    output_char oc '\n');
                Printf.printf "wrote %s\n" path)
              json;
            (* Sheds are the cluster behaving correctly under overload;
               errors are not — make them a failing exit so CI can assert on
               it. *)
            if report.Cluster.Loadgen.errors > 0 then exit 1))
  in
  let term =
    Term.(
      const run $ peers_arg $ peers_file_arg $ rate_arg $ duration_arg
      $ threads_arg $ arrival_arg $ working_set_arg $ skew_arg $ apps_arg
      $ procs_arg $ seed_arg $ estimator_arg $ json_arg $ timeout_arg
      $ pool_arg $ trace_arg $ trace_sample_arg $ quiet_arg)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Open-loop load harness for a serve cluster: fixed-rate Poisson or \
          uniform arrivals over a Zipf-skewed working set, with \
          consistent-hash routing and a latency/shed report")
    term

(* ------------------------------------------------------------------ *)
(* trace-merge                                                         *)

let trace_merge_cmd =
  let out_arg =
    let doc = "Write the merged Chrome/Perfetto trace to $(docv)." in
    Arg.(
      value & opt string "merged-trace.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let inputs_arg =
    let doc =
      "Per-process trace files written with $(b,--trace) (shards, loadgen, \
       any client)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"TRACE" ~doc)
  in
  let run out inputs =
    let processes =
      List.map
        (fun path ->
          match Cluster.Trace.load path with
          | Ok p -> p
          | Error msg ->
              Printf.eprintf "cannot load %s: %s\n" path msg;
              exit 1)
        inputs
    in
    Out_channel.with_open_text out (fun oc ->
        output_string oc (Obs.Trace.merged_chrome_json processes));
    let spans =
      List.fold_left (fun n p -> n + List.length p.Obs.Trace.p_spans) 0 processes
    in
    Printf.printf "merged %d spans from %d processes into %s\n"
      spans (List.length processes) out
  in
  let term = Term.(const run $ out_arg $ inputs_arg) in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Fuse per-process trace files (shards + client) into one \
          Perfetto-loadable timeline: clocks are aligned via each file's \
          clock_sync anchor and cross-process parent/child span links \
          become flow arrows")
    term

let () =
  (* Fail malformed CONTENTION_JOBS here, once, with a clean message — not
     as an uncaught Invalid_argument from deep inside a sweep. *)
  (match Sys.getenv_opt "CONTENTION_JOBS" with
  | None -> ()
  | Some _ -> (
      match Exp.Pool.default_jobs () with
      | _ -> ()
      | exception Invalid_argument msg ->
          Printf.eprintf "contention: %s\n" msg;
          exit 2));
  let doc = "Probabilistic resource-contention performance estimation (DAC 2007)" in
  let info = Cmd.info "contention" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; analyze_cmd; simulate_cmd; experiment_cmd; sweep_cmd;
            export_cmd; inspect_cmd; report_cmd; sensitivity_cmd; check_cmd;
            serve_cmd; query_cmd; stats_cmd; explain_cmd; loadgen_cmd;
            trace_merge_cmd ]))
