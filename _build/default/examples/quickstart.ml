(* Quickstart: the paper's Section 3 worked example, end to end.

   Two SDF applications A and B share three processors (actor i of each on
   Proc_i). We compute isolation periods, blocking probabilities, estimated
   waiting times and the contended period with every estimator, then compare
   against discrete-event simulation.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Graph A of the paper's Figure 2: three actors in a ring. *)
  let graph_a =
    Sdf.Graph.create ~name:"A"
      ~actors:[| ("a0", 100.); ("a1", 50.); ("a2", 100.) |]
      ~channels:[| (0, 1, 2, 1, 0); (1, 2, 1, 2, 0); (2, 0, 1, 1, 1) |]
  in
  let graph_b =
    Sdf.Graph.create ~name:"B"
      ~actors:[| ("b0", 50.); ("b1", 100.); ("b2", 100.) |]
      ~channels:[| (0, 1, 1, 2, 0); (1, 2, 2, 2, 0); (2, 0, 2, 1, 2) |]
  in
  (* Step 1: isolation throughput (SDF analysis, no contention). *)
  Printf.printf "Isolation periods: Per(A) = %g, Per(B) = %g\n"
    (Sdf.Statespace.period_exn graph_a)
    (Sdf.Statespace.period_exn graph_b);

  (* Step 2: wrap each graph with its mapping; actor i -> processor i. *)
  let a = Contention.Analysis.app graph_a ~mapping:[| 0; 1; 2 |] in
  let b = Contention.Analysis.app graph_b ~mapping:[| 0; 1; 2 |] in

  (* Step 3: the actor loads the analysis derives (Definitions 4 and 5). *)
  print_endline "\nActor loads (blocking probability, average blocking time):";
  List.iter
    (fun (app : Contention.Analysis.app) ->
      Array.iteri
        (fun i (l : Contention.Prob.t) ->
          Printf.printf "  %s: P = %.3f, mu = %.1f\n"
            (Sdf.Graph.actor app.graph i).name l.p l.mu)
        (Contention.Analysis.loads app))
    [ a; b ];

  (* Step 4: estimate contended periods with each method. *)
  print_endline "\nEstimated period under contention:";
  List.iter
    (fun est ->
      let results = Contention.Analysis.estimate est [ a; b ] in
      let periods =
        List.map
          (fun (r : Contention.Analysis.estimate) ->
            Printf.sprintf "%s = %.1f" r.for_app.graph.Sdf.Graph.name r.period)
          results
      in
      Printf.printf "  %-13s %s\n" (Contention.Analysis.estimator_name est)
        (String.concat ", " periods))
    (Contention.Analysis.all_paper_estimators @ [ Contention.Analysis.Exact ]);

  (* Step 5: compare with simulation (the paper's reference). *)
  let results, _ =
    Desim.Engine.run ~procs:3
      [|
        { Desim.Engine.graph = graph_a; mapping = [| 0; 1; 2 |] };
        { Desim.Engine.graph = graph_b; mapping = [| 0; 1; 2 |] };
      |]
  in
  print_endline "\nSimulated (500k cycles):";
  Array.iter
    (fun (r : Desim.Engine.result) ->
      Printf.printf "  %s: avg period = %.1f (worst observed %.1f over %d iterations)\n"
        r.app_name r.avg_period r.max_period r.iterations)
    results;
  print_endline
    "\nNote: the probabilistic estimate (358.3; the paper rounds to 359) is\n\
     conservative here — the simulated period stays at 300 because the two\n\
     graphs interleave perfectly, exactly as discussed in Section 3.1."
