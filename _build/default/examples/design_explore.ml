(* Design-space exploration with the probabilistic estimator in the loop.

   Because one analysis costs milliseconds, a mapping optimiser can afford
   thousands of candidate evaluations — the design-time workflow the paper's
   introduction motivates. This example maps four random applications onto
   four processors, first naively (modulo), then with steepest-descent
   single-actor moves scored by the second-order estimator, and verifies the
   improvement by simulation.

   Run with: dune exec examples/design_explore.exe *)

let procs = 4

let () =
  let params =
    {
      Sdfgen.Generator.default_params with
      actors_min = 4;
      actors_max = 6;
      exec_min = 5;
      exec_max = 50;
    }
  in
  let graphs = Array.to_list (Sdfgen.Generator.generate_many ~params ~seed:11 4) in
  (* A naive first-draft mapping: every application squeezed onto the first
     two processors, as a porting engineer might start. *)
  let start =
    List.map
      (fun g ->
        (g, Array.init (Sdf.Graph.num_actors g) (fun j -> j mod 2)))
      graphs
  in
  let outcome = Contention.Explore.improve ~max_moves:24 ~procs start in
  Printf.printf
    "Steepest descent over single-actor moves (score = mean period inflation):\n";
  Printf.printf "  initial score: %.3f (everything on two processors)\n"
    outcome.initial_score;
  Printf.printf "  final score:   %.3f after %d moves, %d estimator calls\n\n"
    outcome.final_score outcome.moves outcome.evaluations;

  let simulate assignment label =
    let apps =
      Array.of_list
        (List.map (fun (g, m) -> { Desim.Engine.graph = g; mapping = m }) assignment)
    in
    let results, _ = Desim.Engine.run ~horizon:300_000. ~procs apps in
    Printf.printf "  %s:\n" label;
    Array.iter
      (fun (r : Desim.Engine.result) ->
        let iso = Sdf.Statespace.period_exn
            (List.assoc r.app_name
               (List.map (fun (g, _) -> (g.Sdf.Graph.name, g)) assignment))
        in
        Printf.printf "    %s: simulated period %.1f (%.2fx isolation)\n" r.app_name
          r.avg_period (r.avg_period /. iso))
      results;
    Repro_stats.Stats.mean_arr
      (Array.map (fun (r : Desim.Engine.result) -> r.avg_period) results)
  in
  print_endline "Verification by simulation:";
  let before = simulate start "two-processor packing" in
  let after = simulate outcome.assignment "optimised mapping" in
  Printf.printf
    "\nMean simulated period: %.1f -> %.1f (%.1f%% better), found without\n\
     running a single simulation during the search.\n"
    before after
    (100. *. (before -. after) /. before)
