(* Buffer sizing under a throughput constraint.

   Channels in silicon are finite FIFOs; a full buffer back-pressures its
   producer. The classic design question (the paper's references [16]/[20])
   is the smallest total buffering that still meets a throughput target.
   This example sizes a four-stage video pipeline:

   - sweeps a uniform capacity to show the throughput/buffer trade-off,
   - asks for the minimal per-channel capacities at several targets,
   - cross-checks the bounded graphs by simulation.

   Run with: dune exec examples/buffer_sizing.exe *)

let pipeline =
  Sdf.Graph.create ~name:"video-pipe"
    ~actors:[| ("capture", 20.); ("denoise", 35.); ("encode", 25.); ("emit", 30.) |]
    ~channels:
      [| (0, 1, 1, 1, 0); (1, 2, 1, 1, 0); (2, 3, 1, 1, 0); (3, 0, 1, 1, 4) |]

let () =
  let unbounded = Sdf.Statespace.period_exn pipeline in
  Printf.printf "Unbounded pipeline period: %.1f (bottleneck 'denoise' at 35)\n\n" unbounded;

  print_endline "Throughput / buffer trade-off (uniform capacity on every FIFO):";
  List.iter
    (fun (k, period) ->
      Printf.printf "  capacity %d: %s\n" k
        (match period with
        | None -> "deadlock"
        | Some p -> Printf.sprintf "period %.1f" p))
    (Sdf.Capacity.sweep_uniform pipeline ~max_capacity:5);

  print_endline "\nMinimal per-channel capacities for decreasing period targets:";
  List.iter
    (fun target ->
      match Sdf.Capacity.minimise pipeline ~max_period:target with
      | None -> Printf.printf "  period <= %.0f: unreachable\n" target
      | Some caps ->
          Printf.printf "  period <= %.0f: capacities [%s], total %d tokens\n" target
            (String.concat "; " (Array.to_list (Array.map string_of_int caps)))
            (Array.fold_left ( + ) 0 caps))
    [ 60.; 40.; 35. ];

  (* Verify the tightest sizing by simulating the bounded graph. *)
  match Sdf.Capacity.minimise pipeline ~max_period:35. with
  | None -> print_endline "\n35 is unreachable (unexpected)"
  | Some caps ->
      let bounded = Sdf.Capacity.bounded pipeline ~capacities:caps in
      let results, _ =
        Desim.Engine.run ~horizon:50_000. ~procs:4
          [| { Desim.Engine.graph = bounded; mapping = Contention.Mapping.modulo ~procs:4 bounded } |]
      in
      Printf.printf
        "\nSimulation of the minimal 35-period sizing: measured period %.1f\n"
        results.(0).Desim.Engine.avg_period;
      print_endline
        "The minimal sizing keeps the pipeline at full (bottleneck-limited)\n\
         throughput with the smallest FIFOs that still allow the overlap."
