(* A multi-featured media device: the scenario motivating the paper.

   Three hand-modelled applications run on a 4-processor SoC:
   - an H.263-style video decoder (VLD -> IQ -> IDCT -> MC pipeline with a
     frame-rate feedback loop),
   - an MP3-style audio decoder (Huffman -> dequant -> IMDCT -> synthesis),
   - a JPEG-style still-image decoder used by the photo viewer.

   The device must sustain video and audio together (a video call), and the
   user may open the photo viewer at any moment.  We estimate what happens to
   each application's throughput for every use-case and verify against
   simulation.

   Execution times are in microseconds and loosely follow the relative costs
   of the kernels; the shapes (pipelines with feedback, multirate audio
   blocks) are what exercises the analysis.

   Run with: dune exec examples/media_device.exe *)

let video =
  (* One iteration decodes one macroblock row; the feedback token models the
     single reconstruction buffer. *)
  Sdf.Graph.create ~name:"Video"
    ~actors:[| ("vld", 120.); ("iq", 40.); ("idct", 90.); ("mc", 110.) |]
    ~channels:
      [|
        (0, 1, 1, 1, 0); (1, 2, 1, 1, 0); (2, 3, 1, 1, 0); (3, 0, 1, 1, 2);
      |]

let audio =
  (* Two granules per frame: huffman fires twice per iteration. *)
  Sdf.Graph.create ~name:"Audio"
    ~actors:[| ("huff", 35.); ("deq", 25.); ("imdct", 80.); ("synth", 60.) |]
    ~channels:
      [|
        (0, 1, 1, 1, 0); (1, 2, 2, 1, 0); (2, 3, 1, 1, 0); (3, 0, 1, 2, 4);
      |]

let photo =
  (* Still-image pipeline; bursty but structurally similar. *)
  Sdf.Graph.create ~name:"Photo"
    ~actors:[| ("jhuff", 150.); ("jidct", 140.); ("color", 70.) |]
    ~channels:[| (0, 1, 1, 1, 0); (1, 2, 1, 1, 0); (2, 0, 1, 1, 2) |]

let procs = 4

(* Mapping mirrors a heterogeneous SoC: entropy decoding shares the
   bitstream engine (proc 0), transforms share the DSP (proc 1), pixel and
   sample reconstruction share the vector unit (proc 2), audio synthesis owns
   the DAC coprocessor (proc 3). *)
let mapping_video = [| 0; 1; 1; 2 |]
let mapping_audio = [| 0; 1; 1; 3 |]
let mapping_photo = [| 0; 1; 2 |]

let () =
  let apps =
    [|
      (Contention.Analysis.app ~procs video ~mapping:mapping_video, mapping_video);
      (Contention.Analysis.app ~procs audio ~mapping:mapping_audio, mapping_audio);
      (Contention.Analysis.app ~procs photo ~mapping:mapping_photo, mapping_photo);
    |]
  in
  let names = Array.map (fun (a, _) -> a.Contention.Analysis.graph.Sdf.Graph.name) apps in
  Printf.printf "Applications (periods in isolation):\n";
  Array.iter
    (fun ((a : Contention.Analysis.app), _) ->
      Printf.printf "  %-6s Per = %6.1f us  (throughput %.1f iterations/ms)\n"
        a.graph.Sdf.Graph.name a.isolation_period (1000. /. a.isolation_period))
    apps;

  (* Sweep every use-case of the three features. *)
  let header =
    [ "Use-case"; "App"; "Isolation"; "Second order"; "Exact"; "Simulated"; "Err %" ]
  in
  let rows = ref [] in
  List.iter
    (fun usecase ->
      let indices = Contention.Usecase.to_list usecase in
      let selected = List.map (fun i -> fst apps.(i)) indices in
      let estimates_o2 = Contention.Analysis.estimate (Contention.Analysis.Order 2) selected in
      let estimates_ex = Contention.Analysis.estimate Contention.Analysis.Exact selected in
      let sim_apps =
        Array.of_list
          (List.map
             (fun i ->
               let a, m = apps.(i) in
               { Desim.Engine.graph = a.Contention.Analysis.graph; mapping = m })
             indices)
      in
      let sim, _ = Desim.Engine.run ~horizon:200_000. ~procs sim_apps in
      List.iteri
        (fun pos i ->
          let o2 = (List.nth estimates_o2 pos).Contention.Analysis.period in
          let ex = (List.nth estimates_ex pos).Contention.Analysis.period in
          let simulated = sim.(pos).Desim.Engine.avg_period in
          let err =
            if Float.is_nan simulated then Float.nan
            else Repro_stats.Stats.abs_pct_error ~reference:simulated ex
          in
          rows :=
            [
              Format.asprintf "%a" (Contention.Usecase.pp ~napps:3) usecase;
              names.(i);
              Repro_stats.Table.float_cell (fst apps.(i)).Contention.Analysis.isolation_period;
              Repro_stats.Table.float_cell o2;
              Repro_stats.Table.float_cell ex;
              Repro_stats.Table.float_cell simulated;
              Repro_stats.Table.float_cell err;
            ]
            :: !rows)
        indices)
    (Contention.Usecase.all ~napps:3);
  print_newline ();
  print_string (Repro_stats.Table.render ~header (List.rev !rows));

  (* The launch decision the intro motivates: can the photo viewer open
     during a video call without dropping audio below 5 iterations/ms? *)
  let all = List.map (fun (a, _) -> a) (Array.to_list apps) in
  let estimates = Contention.Analysis.estimate Contention.Analysis.Exact all in
  let audio_tp = 1000. /. (List.nth estimates 1).Contention.Analysis.period in
  Printf.printf
    "\nVideo call + photo viewer: audio sustains %.2f iterations/ms (%s)\n" audio_tp
    (if audio_tp >= 5. then "requirement of 5.00 met" else "below the 5.00 requirement")
