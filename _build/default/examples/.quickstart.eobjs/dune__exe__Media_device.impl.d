examples/media_device.ml: Array Contention Desim Float Format List Printf Repro_stats Sdf
