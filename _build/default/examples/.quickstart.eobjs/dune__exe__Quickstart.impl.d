examples/quickstart.ml: Array Contention Desim List Printf Sdf String
