examples/scaling.ml: Array Contention Desim Float List Printf Repro_stats Sdfgen
