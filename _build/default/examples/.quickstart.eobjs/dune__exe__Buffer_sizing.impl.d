examples/buffer_sizing.ml: Array Contention Desim List Printf Sdf String
