examples/design_explore.mli:
