examples/media_device.mli:
