examples/design_explore.ml: Array Contention Desim List Printf Repro_stats Sdf Sdfgen
