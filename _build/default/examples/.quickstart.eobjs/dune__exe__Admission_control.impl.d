examples/admission_control.ml: Array Contention List Printf Sdf String
