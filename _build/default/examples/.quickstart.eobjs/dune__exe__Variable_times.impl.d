examples/variable_times.ml: Array Contention Desim List Printf Repro_stats Sdf Sdfgen
