examples/variable_times.mli:
