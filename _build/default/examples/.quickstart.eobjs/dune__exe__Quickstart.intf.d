examples/quickstart.mli:
