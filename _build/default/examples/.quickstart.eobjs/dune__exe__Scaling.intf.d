examples/scaling.mli:
