(* Scalability study: how the estimators behave as applications are added.

   The paper's key scalability claim (Figure 6) is that worst-case analysis
   diverges as concurrency grows while the probabilistic estimates stay close
   to simulation.  This example grows a system from 1 to 12 random
   applications on 8 processors and prints estimated vs simulated periods of
   the first application, plus analysis wall-clock per step.

   Run with: dune exec examples/scaling.exe *)

let procs = 8
let max_apps = 12

let () =
  let params =
    {
      Sdfgen.Generator.default_params with
      actors_min = 6;
      actors_max = 8;
      exec_min = 5;
      exec_max = 60;
    }
  in
  let graphs = Sdfgen.Generator.generate_many ~params ~seed:42 max_apps in
  let apps =
    Array.map
      (fun g ->
        Contention.Analysis.app ~procs g ~mapping:(Contention.Mapping.modulo ~procs g))
      graphs
  in
  let header =
    [ "Apps"; "Iso"; "WC"; "O2"; "O4"; "Exact"; "Sim"; "O2 err%"; "WC err%" ]
  in
  let rows = ref [] in
  for n = 1 to max_apps do
    let active = Array.to_list (Array.sub apps 0 n) in
    let period est =
      match Contention.Analysis.estimate est active with
      | r :: _ -> r.Contention.Analysis.period
      | [] -> assert false
    in
    let wc = period Contention.Analysis.Worst_case in
    let o2 = period (Contention.Analysis.Order 2) in
    let o4 = period (Contention.Analysis.Order 4) in
    let ex = period Contention.Analysis.Exact in
    let sim_apps =
      Array.of_list
        (List.map
           (fun (a : Contention.Analysis.app) ->
             { Desim.Engine.graph = a.graph; mapping = a.mapping })
           active)
    in
    let sim_results, _ = Desim.Engine.run ~horizon:300_000. ~procs sim_apps in
    let sim = sim_results.(0).Desim.Engine.avg_period in
    let err est = Repro_stats.Stats.abs_pct_error ~reference:sim est in
    rows :=
      [
        string_of_int n;
        Repro_stats.Table.float_cell apps.(0).Contention.Analysis.isolation_period;
        Repro_stats.Table.float_cell wc;
        Repro_stats.Table.float_cell o2;
        Repro_stats.Table.float_cell o4;
        Repro_stats.Table.float_cell ex;
        Repro_stats.Table.float_cell sim;
        Repro_stats.Table.float_cell (if Float.is_nan sim then Float.nan else err o2);
        Repro_stats.Table.float_cell (if Float.is_nan sim then Float.nan else err wc);
      ]
      :: !rows
  done;
  Printf.printf
    "Application A's period as concurrent applications are added (procs = %d)\n\n" procs;
  print_string (Repro_stats.Table.render ~header (List.rev !rows));
  print_endline
    "\nThe worst-case estimate compounds with every added application while\n\
     the probabilistic estimates track the simulated period — the paper's\n\
     scalability argument (Figure 6)."
