(* Variable execution times — the paper's Section 6 extension.

   Data-dependent decoding makes firing durations random. The analysis only
   needs two moments: the mean (for blocking probability) and the mean
   residual life E[X^2] / 2E[X] (replacing tau/2 as the average blocking
   time). We sweep the spread of the execution times at a fixed mean and
   compare the estimate against stochastic simulation.

   Run with: dune exec examples/variable_times.exe *)

let procs = 3

let ring name taus =
  let actors = Array.mapi (fun i tau -> (Printf.sprintf "%s%d" name i, tau)) taus in
  let n = Array.length taus in
  let channels = Array.init n (fun i -> (i, (i + 1) mod n, 1, 1, if i = n - 1 then 1 else 0)) in
  Sdf.Graph.create ~name ~actors ~channels

let () =
  let g1 = ring "u" [| 40.; 30.; 20. |] in
  let g2 = ring "v" [| 25.; 35.; 30. |] in
  Printf.printf "Isolation periods: %g and %g\n\n"
    (Sdf.Statespace.period_exn g1) (Sdf.Statespace.period_exn g2);
  let header = [ "Spread"; "mu(u0)"; "Estimated"; "Simulated"; "Err %" ] in
  let rows = ref [] in
  List.iter
    (fun spread ->
      let dists_of g =
        Array.map
          (fun (a : Sdf.Graph.actor) ->
            if spread = 0. then Contention.Dist.Constant a.exec_time
            else
              Contention.Dist.Uniform
                {
                  lo = a.exec_time *. (1. -. spread);
                  hi = a.exec_time *. (1. +. spread);
                })
          g.Sdf.Graph.actors
      in
      let d1 = dists_of g1 and d2 = dists_of g2 in
      let a1 = Contention.Analysis.app ~procs g1 ~mapping:[| 0; 1; 2 |] ~distributions:d1 in
      let a2 = Contention.Analysis.app ~procs g2 ~mapping:[| 0; 1; 2 |] ~distributions:d2 in
      let estimated =
        match Contention.Analysis.estimate Contention.Analysis.Exact [ a1; a2 ] with
        | r :: _ -> r.Contention.Analysis.period
        | [] -> assert false
      in
      let mu0 = (Contention.Analysis.loads a1).(0).Contention.Prob.mu in
      (* Stochastic simulation with the same distributions. *)
      let rng = Sdfgen.Rng.create 2024 in
      let dists = [| d1; d2 |] in
      let hook ~app ~actor =
        Contention.Dist.sample dists.(app).(actor) ~u:(Sdfgen.Rng.float rng 1.)
      in
      let results, _ =
        Desim.Engine.run ~horizon:400_000. ~firing_time:hook ~procs
          [|
            { Desim.Engine.graph = g1; mapping = [| 0; 1; 2 |] };
            { Desim.Engine.graph = g2; mapping = [| 0; 1; 2 |] };
          |]
      in
      let simulated = results.(0).Desim.Engine.avg_period in
      rows :=
        [
          Printf.sprintf "+/-%.0f%%" (100. *. spread);
          Repro_stats.Table.float_cell ~decimals:2 mu0;
          Repro_stats.Table.float_cell ~decimals:2 estimated;
          Repro_stats.Table.float_cell ~decimals:2 simulated;
          Repro_stats.Table.float_cell ~decimals:1
            (Repro_stats.Stats.abs_pct_error ~reference:simulated estimated);
        ]
        :: !rows)
    [ 0.; 0.25; 0.5; 0.75; 0.95 ];
  Printf.printf
    "Application u sharing all three processors with application v,\n\
     uniform execution times with increasing spread at a fixed mean:\n\n";
  print_string (Repro_stats.Table.render ~header (List.rev !rows));
  print_endline
    "\nThe residual mu grows with the variance (inspection paradox), so the\n\
     estimate correctly tracks the simulated degradation as spread rises,\n\
     while a constant-time model would be oblivious to it."
