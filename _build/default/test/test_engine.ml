open Desim

let dedicated graph =
  { Engine.graph; mapping = Contention.Mapping.dedicated graph }

let test_isolated_matches_statespace () =
  let g = Fixtures.graph_a () in
  let results, _ = Engine.run ~procs:3 [| dedicated g |] in
  Fixtures.check_float ~eps:1e-6 "avg period" 300. results.(0).Engine.avg_period;
  Fixtures.check_float ~eps:1e-6 "max period" 300. results.(0).Engine.max_period;
  Fixtures.check_float ~eps:1e-6 "min period" 300. results.(0).Engine.min_period

let test_paper_shared_period () =
  (* Section 3: A and B share Proc_i for actor i; in practice the period
     stays 300 (the probabilistic estimate of 359 is conservative). *)
  let apps =
    [|
      { Engine.graph = Fixtures.graph_a (); mapping = [| 0; 1; 2 |] };
      { Engine.graph = Fixtures.graph_b (); mapping = [| 0; 1; 2 |] };
    |]
  in
  let results, _ = Engine.run ~procs:3 apps in
  Fixtures.check_float ~eps:1e-6 "Per(A) shared" 300. results.(0).Engine.avg_period;
  Fixtures.check_float ~eps:1e-6 "Per(B) shared" 300. results.(1).Engine.avg_period

let test_full_contention_on_one_proc () =
  (* Two independent single-actor apps on one processor: each actor wants to
     run 7 of every 7 time units; sharing doubles both periods. *)
  let app name =
    { Engine.graph =
        Sdf.Graph.create ~name ~actors:[| (name, 7.) |] ~channels:[| (0, 0, 1, 1, 1) |];
      mapping = [| 0 |] }
  in
  let results, stats = Engine.run ~horizon:70_000. ~procs:1 [| app "x"; app "y" |] in
  Fixtures.check_float ~eps:1e-3 "x period doubles" 14. results.(0).Engine.avg_period;
  Fixtures.check_float ~eps:1e-3 "y period doubles" 14. results.(1).Engine.avg_period;
  (* The processor is saturated. *)
  let util = Engine.utilisation stats in
  Alcotest.(check bool) "utilisation ~1" true (util.(0) > 0.99 && util.(0) <= 1.0001)

let test_horizon_and_stats () =
  let g = Fixtures.graph_a () in
  let results, stats = Engine.run ~horizon:3000. ~warmup_iterations:0 ~procs:3 [| dedicated g |] in
  Alcotest.(check int) "iterations by horizon" 10 results.(0).Engine.iterations;
  Alcotest.(check bool) "final time within horizon" true (stats.Engine.final_time <= 3000.);
  (* One iteration = 4 firings (q = [1;2;1]). *)
  Alcotest.(check bool) "firings consistent" true (stats.Engine.total_firings >= 40)

let test_busy_time_accounting () =
  let g = Fixtures.graph_a () in
  let results, stats = Engine.run ~horizon:30_000. ~procs:3 [| dedicated g |] in
  (* Busy time per proc equals firings x tau; proc 1 runs a1 twice per
     iteration at tau 50, procs 0 and 2 run 100 per iteration. *)
  let busy = results.(0).Engine.busy_time in
  Alcotest.(check int) "busy array length" 3 (Array.length busy);
  Array.iteri
    (fun p b -> Fixtures.check_float ~eps:1e-9 "app busy = proc busy" stats.Engine.proc_busy.(p) b)
    busy;
  (* Every iteration contributes 100 to proc 0 and 2x50 to proc 1. *)
  Alcotest.(check bool) "proc0 ~ proc1 busy" true
    (Fixtures.float_eq ~eps:0.05 busy.(0) busy.(1))

let test_warmup_excluded () =
  let g = Fixtures.graph_a () in
  let results, _ = Engine.run ~horizon:10_000. ~warmup_iterations:5 ~procs:3 [| dedicated g |] in
  (* 33 iterations fit in 10000; 5 are warm-up, stats cover the rest. *)
  Alcotest.(check bool) "iterations counted" true (results.(0).Engine.iterations >= 30);
  Fixtures.check_float ~eps:1e-6 "avg stable" 300. results.(0).Engine.avg_period

let test_too_short_horizon_gives_nan () =
  let g = Fixtures.graph_a () in
  let results, _ = Engine.run ~horizon:100. ~procs:3 [| dedicated g |] in
  Alcotest.(check bool) "nan avg" true (Float.is_nan results.(0).Engine.avg_period)

let test_validation () =
  let g = Fixtures.graph_a () in
  (match Engine.run ~procs:3 [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty app set accepted");
  (match Engine.run ~procs:2 [| dedicated g |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mapping outside procs accepted");
  match Engine.run ~procs:3 [| { Engine.graph = g; mapping = [| 0 |] } |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short mapping accepted"

let test_events_emitted () =
  let g = Fixtures.pipeline () in
  let starts = ref 0 and finishes = ref 0 in
  let on_event = function
    | Engine.Start _ -> incr starts
    | Engine.Finish _ -> incr finishes
  in
  let _ = Engine.run ~horizon:80. ~on_event ~procs:2 [| dedicated g |] in
  Alcotest.(check bool) "starts happened" true (!starts > 0);
  (* All but possibly the in-flight firing finish. *)
  Alcotest.(check bool) "finishes close to starts" true (!starts - !finishes <= 2)

(* Contention can only hurt: the simulated shared period of an app is at
   least (up to measurement noise) its isolation period. *)
let prop_contention_monotone =
  Fixtures.qcheck_case ~count:40 "shared period >= isolation"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let iso = Sdf.Statespace.period_exn g1 in
      let procs = 2 in
      let apps =
        [|
          { Engine.graph = g1; mapping = Contention.Mapping.modulo ~procs g1 };
          { Engine.graph = Sdf.Graph.create ~name:"H"
              ~actors:(Array.map (fun (a : Sdf.Graph.actor) -> (a.name ^ "h", a.exec_time)) g2.actors)
              ~channels:(Array.map (fun (c : Sdf.Graph.channel) ->
                (c.src, c.dst, c.produce, c.consume, c.tokens)) g2.channels);
            mapping = Contention.Mapping.modulo ~procs g2 };
        |]
      in
      let results, _ = Engine.run ~horizon:100_000. ~procs apps in
      let shared = results.(0).Engine.avg_period in
      Float.is_nan shared || shared +. 1e-6 >= iso -. 1e-6)

let suite =
  [
    Alcotest.test_case "isolated matches statespace" `Quick test_isolated_matches_statespace;
    Alcotest.test_case "paper shared period" `Quick test_paper_shared_period;
    Alcotest.test_case "saturated processor" `Quick test_full_contention_on_one_proc;
    Alcotest.test_case "horizon and stats" `Quick test_horizon_and_stats;
    Alcotest.test_case "busy time accounting" `Quick test_busy_time_accounting;
    Alcotest.test_case "warmup excluded" `Quick test_warmup_excluded;
    Alcotest.test_case "short horizon -> nan" `Quick test_too_short_horizon_gives_nan;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "events emitted" `Quick test_events_emitted;
    prop_contention_monotone;
  ]
