open Sdf

let test_paper_periods () =
  Fixtures.check_float "Per(A)" 300. (Statespace.period_exn (Fixtures.graph_a ()));
  Fixtures.check_float "Per(B)" 300. (Statespace.period_exn (Fixtures.graph_b ()))

let test_response_time_period () =
  (* Figure 3: response times [116.67; 66.67; 108.33] give Per = 1075/3. *)
  let adjusted =
    Graph.with_exec_times (Fixtures.graph_a ())
      [| 100. +. (25. /. 3.); 50. +. (50. /. 3.); 100. +. (50. /. 3.) |]
  in
  Fixtures.check_float ~eps:1e-4 "Per(A')" (1075. /. 3.) (Statespace.period_exn adjusted)

let test_simple_shapes () =
  Fixtures.check_float "pipeline" 8. (Statespace.period_exn (Fixtures.pipeline ()));
  Fixtures.check_float "single" 7. (Statespace.period_exn (Fixtures.single ()));
  (* Two tokens on the feedback edge let the pipeline overlap: the period
     halves to the bottleneck actor. *)
  let overlapped =
    Graph.create ~name:"pipe2"
      ~actors:[| ("p0", 3.); ("p1", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 2) |]
  in
  Fixtures.check_float "overlapped pipeline" 5. (Statespace.period_exn overlapped)

let test_deadlock () =
  Alcotest.(check bool) "deadlock detected" true
    (Statespace.period (Fixtures.deadlocked ()) = None);
  Alcotest.(check bool) "is_live false" false (Statespace.is_live (Fixtures.deadlocked ()));
  Alcotest.(check bool) "is_live true" true (Statespace.is_live (Fixtures.graph_a ()));
  match Statespace.period_exn (Fixtures.deadlocked ()) with
  | exception Invalid_argument _ -> ()
  | p -> Alcotest.failf "deadlocked graph returned period %g" p

let test_multirate () =
  (* q = [2; 1]; actor x fires twice per iteration serially: Per = max cycle.
     Cycle x->y->x: 2*tau_x + tau_y with both firings of x in sequence. *)
  let g =
    Graph.create ~name:"mr"
      ~actors:[| ("x", 4.); ("y", 6.) |]
      ~channels:[| (0, 1, 1, 2, 0); (1, 0, 2, 1, 2) |]
  in
  Fixtures.check_float "multirate period" 14. (Statespace.period_exn g)

let test_fractional_times () =
  let g =
    Graph.create ~name:"frac"
      ~actors:[| ("x", 2.5); ("y", 3.25) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  Fixtures.check_float "fractional period" 5.75 (Statespace.period_exn g)

let test_invalid_inputs () =
  (match Statespace.run (Fixtures.inconsistent ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inconsistent graph accepted");
  (* A tiny max_steps triggers the safety bound. *)
  match Statespace.run ~max_steps:1 (Fixtures.graph_a ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_steps not enforced"

(* Self-timed execution is rate-monotone: scaling every execution time by k
   scales the period by k. *)
let prop_time_scaling =
  Fixtures.qcheck_case ~count:60 "time scaling" Fixtures.graph_gen (fun g ->
      let p = Statespace.period_exn g in
      let doubled =
        Graph.with_exec_times g (Array.map (fun t -> 2. *. t) (Graph.exec_times g))
      in
      Fixtures.float_eq ~eps:1e-6 (2. *. p) (Statespace.period_exn doubled))

(* The period is bounded below by every actor's serialised work per
   iteration: Per >= q(a) * tau(a). *)
let prop_actor_bound =
  Fixtures.qcheck_case ~count:60 "actor work bound" Fixtures.graph_gen (fun g ->
      let p = Statespace.period_exn g in
      let q = Repetition.compute_exn g in
      Array.for_all
        (fun (a : Graph.actor) ->
          p +. 1e-6 >= float_of_int q.(a.id) *. a.exec_time)
        g.actors)

let suite =
  [
    Alcotest.test_case "paper periods" `Quick test_paper_periods;
    Alcotest.test_case "figure 3 period" `Quick test_response_time_period;
    Alcotest.test_case "simple shapes" `Quick test_simple_shapes;
    Alcotest.test_case "deadlock" `Quick test_deadlock;
    Alcotest.test_case "multirate" `Quick test_multirate;
    Alcotest.test_case "fractional times" `Quick test_fractional_times;
    Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
    prop_time_scaling;
    prop_actor_bound;
  ]

(* The integer scaling parameter does not change the computed period beyond
   its quantisation, and undersized max_steps fails loudly rather than
   returning a wrong period. *)
let test_scale_parameter () =
  let g = Fixtures.graph_a () in
  Fixtures.check_float "scale 1" 300. (Statespace.period_exn ~scale:1. g);
  Fixtures.check_float "scale 1e3" 300. (Statespace.period_exn ~scale:1e3 g);
  (* A fractional time rounds at coarse scale: 2.5 at scale 1 rounds to 3
     (guard band: rounded result differs, never silently wrong shape). *)
  let frac =
    Graph.create ~name:"f" ~actors:[| ("x", 2.5) |] ~channels:[| (0, 0, 1, 1, 1) |]
  in
  Fixtures.check_float "coarse rounding" 3. (Statespace.period_exn ~scale:1. frac);
  Fixtures.check_float "fine scale" 2.5 (Statespace.period_exn ~scale:10. frac)

let suite = suite @ [ Alcotest.test_case "scale parameter" `Quick test_scale_parameter ]
