open Contention

let test_known_values () =
  let es = Sympoly.all [| 1.; 2.; 3. |] in
  Alcotest.(check (array (float 1e-9))) "e of {1,2,3}" [| 1.; 6.; 11.; 6. |] es

let test_empty () =
  Alcotest.(check (array (float 1e-9))) "empty" [| 1. |] (Sympoly.all [||]);
  Alcotest.(check (array (float 1e-9))) "up_to empty" [| 1. |] (Sympoly.up_to 3 [||])

let test_up_to_truncation () =
  let xs = [| 0.1; 0.2; 0.3; 0.4 |] in
  let full = Sympoly.all xs in
  let trunc = Sympoly.up_to 2 xs in
  Alcotest.(check int) "length" 3 (Array.length trunc);
  for j = 0 to 2 do
    Fixtures.check_float "prefix agrees" full.(j) trunc.(j)
  done;
  (* up_to beyond n clamps. *)
  Alcotest.(check int) "clamped" 5 (Array.length (Sympoly.up_to 99 xs))

let test_without () =
  let xs = [| 0.3; 0.5; 0.7 |] in
  let es = Sympoly.all xs in
  let no_mid = Sympoly.without es 0.5 in
  let expected = Sympoly.all [| 0.3; 0.7 |] in
  Alcotest.(check int) "length" (Array.length expected) (Array.length no_mid);
  Array.iteri (fun j e -> Fixtures.check_float "deconvolution" e no_mid.(j)) expected

let test_brute_force_small () =
  Fixtures.check_float "e_2 {1,2,3}" 11. (Sympoly.brute_force 2 [| 1.; 2.; 3. |]);
  Fixtures.check_float "e_0" 1. (Sympoly.brute_force 0 [| 1.; 2. |]);
  Fixtures.check_float "degree beyond n" 0. (Sympoly.brute_force 3 [| 1.; 2. |]);
  match Sympoly.brute_force (-1) [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative degree accepted"

let probs_gen =
  QCheck2.Gen.(list_size (int_range 0 8) (float_bound_inclusive 1.))

let prop_matches_brute_force =
  Fixtures.qcheck_case "all = brute force" probs_gen (fun xs ->
      let arr = Array.of_list xs in
      let es = Sympoly.all arr in
      Array.for_all Fun.id
        (Array.mapi (fun j e -> Fixtures.float_eq ~eps:1e-9 (Sympoly.brute_force j arr) e) es))

let prop_without_roundtrip =
  Fixtures.qcheck_case "without inverts extension"
    QCheck2.Gen.(pair probs_gen (float_bound_inclusive 1.))
    (fun (xs, x) ->
      let arr = Array.of_list xs in
      let extended = Array.append arr [| x |] in
      let removed = Sympoly.without (Sympoly.all extended) x in
      let direct = Sympoly.all arr in
      Array.length removed = Array.length direct
      && Array.for_all Fun.id
           (Array.mapi (fun j e -> Fixtures.float_eq ~eps:1e-7 direct.(j) e) removed))

let prop_sum_bound =
  (* For probabilities, e_1 = sum and all e_j are non-negative. *)
  Fixtures.qcheck_case "non-negative on probabilities" probs_gen (fun xs ->
      let es = Sympoly.all (Array.of_list xs) in
      Array.for_all (fun e -> e >= -1e-12) es)

let suite =
  [
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "up_to truncation" `Quick test_up_to_truncation;
    Alcotest.test_case "without" `Quick test_without;
    Alcotest.test_case "brute force" `Quick test_brute_force_small;
    prop_matches_brute_force;
    prop_without_roundtrip;
    prop_sum_bound;
  ]
