open Contention

let load p mu = Prob.make ~p ~mu ~tau:(2. *. mu)

let test_of_load_margins () =
  let b = Interval.of_load ~p_margin:0.2 ~mu_margin:0.1 (load 0.5 10.) in
  Fixtures.check_float "p lower" 0.4 b.Interval.lower.Prob.p;
  Fixtures.check_float "p upper" 0.6 b.Interval.upper.Prob.p;
  Fixtures.check_float "mu lower" 9. b.Interval.lower.Prob.mu;
  Fixtures.check_float "mu upper" 11. b.Interval.upper.Prob.mu;
  (* Clamping keeps probabilities legal. *)
  let clamped = Interval.of_load ~p_margin:0.5 (load 0.9 10.) in
  Alcotest.(check bool) "p clamped at 1" true (clamped.Interval.upper.Prob.p <= 1.);
  match Interval.of_load ~p_margin:(-0.1) (load 0.5 10.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative margin accepted"

let test_waiting_interval_brackets_point () =
  let loads = [ load 0.3 20.; load 0.5 10.; load 0.2 35. ] in
  let bounds = List.map (Interval.of_load ~p_margin:0.15 ~mu_margin:0.15) loads in
  List.iter
    (fun est ->
      let lo, hi = Interval.waiting_interval est bounds in
      let point = Analysis.waiting_time_for est loads in
      Alcotest.(check bool)
        (Analysis.estimator_name est ^ " brackets point")
        true
        (lo <= point +. 1e-9 && point <= hi +. 1e-9 && lo <= hi +. 1e-9))
    [ Analysis.Worst_case; Analysis.Order 2; Analysis.Order 4; Analysis.Composability;
      Analysis.Exact ]

let test_zero_margin_degenerate () =
  let loads = [ load 0.4 15.; load 0.3 25. ] in
  let bounds = List.map (Interval.of_load ~p_margin:0. ~mu_margin:0.) loads in
  let lo, hi = Interval.waiting_interval Analysis.Exact bounds in
  Fixtures.check_float "degenerate interval" lo hi;
  Fixtures.check_float "equals point" (Exact.waiting_time loads) lo

let test_period_interval () =
  let a = Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] in
  let b = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |] in
  let with_margin m (app : Analysis.app) =
    Array.map (Interval.of_load ~p_margin:m ~mu_margin:m) (Analysis.loads app)
  in
  let result =
    Interval.period_interval Analysis.Exact
      [ (a, with_margin 0.1 a); (b, with_margin 0.1 b) ]
  in
  let point =
    List.map (fun (r : Analysis.estimate) -> r.period) (Analysis.estimate Analysis.Exact [ a; b ])
  in
  List.iteri
    (fun i (_, (lo, hi)) ->
      let p = List.nth point i in
      Alcotest.(check bool) "point within" true (lo <= p +. 1e-9 && p <= hi +. 1e-9);
      (* The contention surcharge is bounded, not the whole period: the lower
         bound still exceeds the isolation period. *)
      Alcotest.(check bool) "above isolation" true (lo +. 1e-9 >= 300.))
    result;
  match
    Interval.period_interval Analysis.Exact [ (a, [| Interval.of_load (load 0.1 1.) |]) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short bounds accepted"

(* Wider margins produce nested (weaker) intervals. *)
let prop_monotone_in_margin =
  Fixtures.qcheck_case ~count:100 "intervals nest with margin" (Fixtures.load_gen ())
    (fun loads ->
      match loads with
      | [] -> true
      | loads ->
          let interval m =
            Interval.waiting_interval Analysis.Exact
              (List.map (Interval.of_load ~p_margin:m ~mu_margin:m) loads)
          in
          let lo1, hi1 = interval 0.05 and lo2, hi2 = interval 0.2 in
          lo2 <= lo1 +. 1e-9 && hi1 <= hi2 +. 1e-9)

let suite =
  [
    Alcotest.test_case "of_load margins" `Quick test_of_load_margins;
    Alcotest.test_case "waiting interval brackets" `Quick test_waiting_interval_brackets_point;
    Alcotest.test_case "zero margin" `Quick test_zero_margin_degenerate;
    Alcotest.test_case "period interval" `Quick test_period_interval;
    prop_monotone_in_margin;
  ]
