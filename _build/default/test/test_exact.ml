open Contention

let test_empty_and_single () =
  Fixtures.check_float "no contenders" 0. (Exact.waiting_time []);
  (* One contender: W = mu * P (the Section 3 two-actor case). *)
  let l = Prob.make ~p:(1. /. 3.) ~mu:50. ~tau:100. in
  Fixtures.check_float "single" (50. /. 3.) (Exact.waiting_time [ l ])

let test_paper_two_actor_formula () =
  (* Section 3.2: W = mu_a P_a (1 + P_b/2) + mu_b P_b (1 + P_a/2). *)
  let a = Prob.make ~p:0.4 ~mu:10. ~tau:20. in
  let b = Prob.make ~p:0.6 ~mu:25. ~tau:50. in
  let expected = (10. *. 0.4 *. (1. +. 0.3)) +. (25. *. 0.6 *. (1. +. 0.2)) in
  Fixtures.check_float "two actors" expected (Exact.waiting_time [ a; b ])

let test_paper_three_actor_formula () =
  (* Equation 3 written out. *)
  let mk p mu = Prob.make ~p ~mu ~tau:(2. *. mu) in
  let a = mk 0.2 5. and b = mk 0.3 10. and c = mk 0.4 15. in
  let term mu p p1 p2 = mu *. p *. (1. +. (0.5 *. (p1 +. p2)) -. (p1 *. p2 /. 3.)) in
  let expected = term 5. 0.2 0.3 0.4 +. term 10. 0.3 0.2 0.4 +. term 15. 0.4 0.2 0.3 in
  Fixtures.check_float "three actors" expected (Exact.waiting_time [ a; b; c ])

let test_series_coefficient () =
  Fixtures.check_float "j=1" 0.5 (Exact.series_coefficient 1);
  Fixtures.check_float "j=2" (-1. /. 3.) (Exact.series_coefficient 2);
  Fixtures.check_float "j=3" 0.25 (Exact.series_coefficient 3)

let test_brute_force_agreement_fixed () =
  let loads =
    [
      Prob.make ~p:0.3 ~mu:20. ~tau:40.;
      Prob.make ~p:0.5 ~mu:10. ~tau:20.;
      Prob.make ~p:0.2 ~mu:35. ~tau:70.;
      Prob.make ~p:0.7 ~mu:5. ~tau:10.;
      Prob.make ~p:0.9 ~mu:50. ~tau:100.;
    ]
  in
  Fixtures.check_float ~eps:1e-9 "Eq.4 = enumeration"
    (Exact.waiting_time_brute_force loads)
    (Exact.waiting_time loads)

(* The central correctness property (substitute for the proofs in the
   paper's technical report [8]): Equation 4 equals the direct queue-state
   enumeration for any set of loads. *)
let prop_matches_enumeration =
  Fixtures.qcheck_case ~count:500 "Eq.4 = queue enumeration" (Fixtures.load_gen ())
    (fun loads ->
      Fixtures.float_eq ~eps:1e-9
        (Exact.waiting_time_brute_force loads)
        (Exact.waiting_time loads))

let prop_non_negative =
  Fixtures.qcheck_case "non-negative" (Fixtures.load_gen ()) (fun loads ->
      Exact.waiting_time loads >= 0.)

(* Adding a contender never reduces the expected wait. *)
let prop_monotone_in_contenders =
  Fixtures.qcheck_case "monotone in contenders"
    QCheck2.Gen.(pair (Fixtures.load_gen ()) (Fixtures.load_gen ~max_actors:1 ()))
    (fun (loads, extra) ->
      Exact.waiting_time (loads @ extra) +. 1e-9 >= Exact.waiting_time loads)

(* Waiting time is bounded by the worst case (everyone queued in full). *)
let prop_bounded_by_worst_case =
  Fixtures.qcheck_case "bounded by worst case" (Fixtures.load_gen ()) (fun loads ->
      Exact.waiting_time loads <= Wcrt.waiting_time loads +. 1e-9)

let suite =
  [
    Alcotest.test_case "empty and single" `Quick test_empty_and_single;
    Alcotest.test_case "paper two-actor formula" `Quick test_paper_two_actor_formula;
    Alcotest.test_case "paper Equation 3" `Quick test_paper_three_actor_formula;
    Alcotest.test_case "series coefficients" `Quick test_series_coefficient;
    Alcotest.test_case "brute force agreement" `Quick test_brute_force_agreement_fixed;
    prop_matches_enumeration;
    prop_non_negative;
    prop_monotone_in_contenders;
    prop_bounded_by_worst_case;
  ]
