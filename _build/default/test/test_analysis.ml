open Contention

let paper_apps () =
  let a = Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] in
  let b = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |] in
  (a, b)

let test_isolation_periods () =
  let a, b = paper_apps () in
  Fixtures.check_float "Per(A)" 300. a.isolation_period;
  Fixtures.check_float "Per(B)" 300. b.isolation_period

let test_loads_match_paper () =
  let a, b = paper_apps () in
  let la = Analysis.loads a and lb = Analysis.loads b in
  (* All blocking probabilities are 1/3 (Section 3.1). *)
  Array.iter (fun (l : Prob.t) -> Fixtures.check_float "P(ai)" (1. /. 3.) l.p) la;
  Array.iter (fun (l : Prob.t) -> Fixtures.check_float "P(bi)" (1. /. 3.) l.p) lb;
  (* mu vectors: [50 25 50] and [25 50 50]. *)
  Alcotest.(check (array (float 1e-9))) "mu(a)" [| 50.; 25.; 50. |]
    (Array.map (fun (l : Prob.t) -> l.mu) la);
  Alcotest.(check (array (float 1e-9))) "mu(b)" [| 25.; 50.; 50. |]
    (Array.map (fun (l : Prob.t) -> l.mu) lb)

let check_paper_waits estimator =
  let a, b = paper_apps () in
  match Analysis.estimate estimator [ a; b ] with
  | [ ra; rb ] ->
      (* Section 3.1: twait[a] = [25/3; 50/3; 50/3], twait[b] = [50/3; 25/3; 50/3]. *)
      Alcotest.(check (array (float 1e-6))) "twait(a)"
        [| 25. /. 3.; 50. /. 3.; 50. /. 3. |] ra.Analysis.waiting_times;
      Alcotest.(check (array (float 1e-6))) "twait(b)"
        [| 50. /. 3.; 25. /. 3.; 50. /. 3. |] rb.Analysis.waiting_times;
      (* New periods: 1075/3 = 358.33 (the paper rounds to 359). *)
      Fixtures.check_float ~eps:1e-6 "Per'(A)" (1075. /. 3.) ra.Analysis.period;
      Fixtures.check_float ~eps:1e-6 "Per'(B)" (1075. /. 3.) rb.Analysis.period
  | _ -> Alcotest.fail "wrong result arity"

let test_paper_example_all_probabilistic () =
  (* With one contender per node every probabilistic method coincides. *)
  List.iter check_paper_waits [ Analysis.Order 2; Analysis.Order 4; Analysis.Composability; Analysis.Exact ]

let test_paper_example_worst_case () =
  let a, b = paper_apps () in
  match Analysis.estimate Analysis.Worst_case [ a; b ] with
  | [ ra; rb ] ->
      (* Worst case waits are the partner's full execution time. *)
      Alcotest.(check (array (float 1e-9))) "twait(a)" [| 50.; 100.; 100. |]
        ra.Analysis.waiting_times;
      Alcotest.(check (array (float 1e-9))) "twait(b)" [| 100.; 50.; 100. |]
        rb.Analysis.waiting_times;
      Alcotest.(check bool) "periods grow" true
        (ra.Analysis.period > 600. && rb.Analysis.period > 600.)
  | _ -> Alcotest.fail "wrong result arity"

let test_single_app_untouched () =
  let a, _ = paper_apps () in
  match Analysis.estimate (Analysis.Order 2) [ a ] with
  | [ r ] ->
      Fixtures.check_float "period = isolation" 300. r.Analysis.period;
      Alcotest.(check (array (float 1e-9))) "no waiting" [| 0.; 0.; 0. |]
        r.Analysis.waiting_times;
      Fixtures.check_float "throughput" (1. /. 300.) (Analysis.throughput r)
  | _ -> Alcotest.fail "wrong arity"

let test_empty_usecase () =
  Alcotest.(check int) "no apps" 0 (List.length (Analysis.estimate Analysis.Exact []))

let test_engines_agree () =
  let a, b = paper_apps () in
  let with_engine engine =
    List.map
      (fun (r : Analysis.estimate) -> r.period)
      (Analysis.estimate ~engine (Analysis.Order 2) [ a; b ])
  in
  let mcm = with_engine Analysis.Mcm and ss = with_engine Analysis.Statespace in
  List.iter2 (fun x y -> Fixtures.check_float ~eps:1e-5 "engine parity" x y) mcm ss

let test_iterated_refinement () =
  let a, b = paper_apps () in
  let pass1 = Analysis.estimate ~iterations:1 (Analysis.Order 2) [ a; b ] in
  let pass3 = Analysis.estimate ~iterations:3 (Analysis.Order 2) [ a; b ] in
  (* Iteration lowers blocking probabilities (periods grew), so the
     fixed-point estimate is at most the single-pass one and still above the
     isolation period. *)
  List.iter2
    (fun (r1 : Analysis.estimate) (r3 : Analysis.estimate) ->
      Alcotest.(check bool) "refined <= single pass" true (r3.period <= r1.period +. 1e-9);
      Alcotest.(check bool) "refined >= isolation" true
        (r3.period +. 1e-9 >= r3.for_app.isolation_period))
    pass1 pass3;
  match Analysis.estimate ~iterations:0 (Analysis.Order 2) [ a; b ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "iterations 0 accepted"

let test_app_validation () =
  (match Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short mapping accepted");
  (match Analysis.app ~procs:2 (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "proc range ignored");
  (match Analysis.app (Fixtures.deadlocked ()) ~mapping:[| 0; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deadlocked graph accepted");
  (* Explicit period skips the statespace computation. *)
  let a = Analysis.app ~period:123. (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] in
  Fixtures.check_float "explicit period" 123. a.isolation_period

let test_estimator_names () =
  Alcotest.(check string) "wc" "worst-case" (Analysis.estimator_name Analysis.Worst_case);
  Alcotest.(check string) "o2" "second-order" (Analysis.estimator_name (Analysis.Order 2));
  Alcotest.(check string) "o4" "fourth-order" (Analysis.estimator_name (Analysis.Order 4));
  Alcotest.(check string) "o6" "order-6" (Analysis.estimator_name (Analysis.Order 6));
  Alcotest.(check string) "comp" "composability"
    (Analysis.estimator_name Analysis.Composability);
  Alcotest.(check string) "exact" "exact" (Analysis.estimator_name Analysis.Exact);
  Alcotest.(check int) "paper estimators" 4 (List.length Analysis.all_paper_estimators)

(* Conservativeness ordering holds end-to-end on periods, not just on
   waiting times: worst-case >= second >= fourth >= exact >= isolation. *)
let prop_period_ordering =
  Fixtures.qcheck_case ~count:25 "period ordering"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let procs = 3 in
      let mk g = Analysis.app g ~mapping:(Mapping.modulo ~procs g) in
      let apps = [ mk g1; mk g2 ] in
      let period est =
        match Analysis.estimate est apps with
        | r :: _ -> r.Analysis.period
        | [] -> assert false
      in
      let wc = period Analysis.Worst_case
      and o2 = period (Analysis.Order 2)
      and o4 = period (Analysis.Order 4)
      and ex = period Analysis.Exact in
      let iso = (List.hd apps).Analysis.isolation_period in
      (* wc >= exact is a law; wc >= o2 is not (the second-order
         over-estimate can cross the worst case at extreme loads). *)
      wc +. 1e-6 >= ex && o2 +. 1e-6 >= o4 && o4 +. 1e-6 >= ex && ex +. 1e-6 >= iso)

(* Estimated waiting never exceeds the worst case on any actor. *)
let prop_waits_below_worst_case =
  Fixtures.qcheck_case ~count:25 "waits below worst case"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let procs = 2 in
      let mk g = Analysis.app g ~mapping:(Mapping.modulo ~procs g) in
      let apps = [ mk g1; mk g2 ] in
      let waits est =
        List.concat_map
          (fun (r : Analysis.estimate) -> Array.to_list r.waiting_times)
          (Analysis.estimate est apps)
      in
      List.for_all2
        (fun w wc -> w <= wc +. 1e-9)
        (waits Analysis.Exact) (waits Analysis.Worst_case))

let suite =
  [
    Alcotest.test_case "isolation periods" `Quick test_isolation_periods;
    Alcotest.test_case "paper loads" `Quick test_loads_match_paper;
    Alcotest.test_case "paper example (probabilistic)" `Quick
      test_paper_example_all_probabilistic;
    Alcotest.test_case "paper example (worst case)" `Quick test_paper_example_worst_case;
    Alcotest.test_case "single app untouched" `Quick test_single_app_untouched;
    Alcotest.test_case "empty use-case" `Quick test_empty_usecase;
    Alcotest.test_case "period engines agree" `Quick test_engines_agree;
    Alcotest.test_case "iterated refinement" `Quick test_iterated_refinement;
    Alcotest.test_case "app validation" `Quick test_app_validation;
    Alcotest.test_case "estimator names" `Quick test_estimator_names;
    prop_period_ordering;
    prop_waits_below_worst_case;
  ]

(* Adding an application never improves anyone's estimated period — the
   end-to-end counterpart of the kernels' monotonicity in contenders. *)
let prop_adding_app_monotone =
  Fixtures.qcheck_case ~count:15 "adding an app is monotone"
    QCheck2.Gen.(triple Fixtures.graph_gen Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2, g3) ->
      let procs = 3 in
      let mk g = Analysis.app g ~mapping:(Mapping.modulo ~procs g) in
      let a = mk g1 and b = mk g2 and c = mk g3 in
      let periods apps =
        List.map (fun (r : Analysis.estimate) -> r.period)
          (Analysis.estimate (Analysis.Order 2) apps)
      in
      match (periods [ a; b ], periods [ a; b; c ]) with
      | [ pa2; pb2 ], [ pa3; pb3; _ ] -> pa3 +. 1e-9 >= pa2 && pb3 +. 1e-9 >= pb2
      | _ -> false)

(* The estimate is invariant under the order applications are listed in. *)
let prop_order_invariant =
  Fixtures.qcheck_case ~count:15 "input order invariant"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let procs = 2 in
      let mk g = Analysis.app g ~mapping:(Mapping.modulo ~procs g) in
      let a = mk g1 and b = mk g2 in
      match (Analysis.estimate Analysis.Exact [ a; b ],
             Analysis.estimate Analysis.Exact [ b; a ]) with
      | [ ra; rb ], [ rb'; ra' ] ->
          Fixtures.float_eq ~eps:1e-9 ra.Analysis.period ra'.Analysis.period
          && Fixtures.float_eq ~eps:1e-9 rb.Analysis.period rb'.Analysis.period
      | _ -> false)

let suite = suite @ [ prop_adding_app_monotone; prop_order_invariant ]
