open Contention

let test_modulo () =
  let g = Sdfgen.Generator.generate (Sdfgen.Rng.create 5) ~name:"M" in
  let m = Mapping.modulo ~procs:3 g in
  Array.iteri (fun j p -> Alcotest.(check int) "j mod 3" (j mod 3) p) m;
  Mapping.validate ~procs:3 g m

let test_dedicated () =
  let g = Fixtures.graph_a () in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |] (Mapping.dedicated g)

let test_balanced_spreads_load () =
  let g = Fixtures.graph_a () in
  (* Work: a0 = 100, a1 = 100 (2 x 50), a2 = 100; three procs get one each. *)
  let m = Mapping.balanced ~procs:3 g in
  let sorted = Array.copy m in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "perfect spread" [| 0; 1; 2 |] sorted

let test_balanced_two_procs () =
  let g =
    Sdf.Graph.create ~name:"w"
      ~actors:[| ("x", 10.); ("y", 6.); ("z", 4.) |]
      ~channels:[| (0, 1, 1, 1, 1); (1, 2, 1, 1, 1); (2, 0, 1, 1, 1) |]
  in
  let m = Mapping.balanced ~procs:2 g in
  (* x (10) alone, y+z (10) together: loads balance exactly. *)
  Alcotest.(check bool) "y,z same proc" true (m.(1) = m.(2));
  Alcotest.(check bool) "x separate" true (m.(0) <> m.(1))

let test_validate () =
  let g = Fixtures.graph_a () in
  (match Mapping.validate ~procs:2 g [| 0; 1; 2 |] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range processor accepted");
  (match Mapping.validate ~procs:3 g [| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "short mapping accepted");
  match Mapping.modulo ~procs:0 g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 procs accepted"

let prop_modulo_valid =
  Fixtures.qcheck_case ~count:50 "modulo always validates" Fixtures.graph_gen (fun g ->
      let m = Mapping.modulo ~procs:4 g in
      Mapping.validate ~procs:4 g m;
      true)

let prop_balanced_valid =
  Fixtures.qcheck_case ~count:50 "balanced always validates" Fixtures.graph_gen (fun g ->
      let m = Mapping.balanced ~procs:3 g in
      Mapping.validate ~procs:3 g m;
      true)

let suite =
  [
    Alcotest.test_case "modulo" `Quick test_modulo;
    Alcotest.test_case "dedicated" `Quick test_dedicated;
    Alcotest.test_case "balanced spreads" `Quick test_balanced_spreads_load;
    Alcotest.test_case "balanced two procs" `Quick test_balanced_two_procs;
    Alcotest.test_case "validate" `Quick test_validate;
    prop_modulo_valid;
    prop_balanced_valid;
  ]
