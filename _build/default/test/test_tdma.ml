open Contention

let test_response_time_formula () =
  (* exec 30, slice 25, wheel 100: two slices needed, each wait 75. *)
  Fixtures.check_float "two slices" (30. +. (2. *. 75.))
    (Tdma.response_time ~exec:30. ~slice:25. ~wheel:100.);
  (* Fits in one slice. *)
  Fixtures.check_float "one slice" (10. +. 75.)
    (Tdma.response_time ~exec:10. ~slice:25. ~wheel:100.);
  (* Whole wheel owned: no waiting. *)
  Fixtures.check_float "full wheel" 10.
    (Tdma.response_time ~exec:10. ~slice:100. ~wheel:100.)

let test_response_time_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid input accepted"
  in
  invalid (fun () -> Tdma.response_time ~exec:0. ~slice:10. ~wheel:100.);
  invalid (fun () -> Tdma.response_time ~exec:10. ~slice:0. ~wheel:100.);
  invalid (fun () -> Tdma.response_time ~exec:10. ~slice:200. ~wheel:100.)

let test_single_app_keeps_isolation () =
  let a = Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] in
  match Tdma.estimate [ a ] with
  | [ r ] ->
      Fixtures.check_float "no sharers, no slicing" 300. r.Analysis.period;
      Alcotest.(check (array (float 1e-9))) "no waits" [| 0.; 0.; 0. |]
        r.Analysis.waiting_times
  | _ -> Alcotest.fail "arity"

let test_two_apps_more_pessimistic_than_probabilistic () =
  let a = Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |] in
  let b = Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |] in
  match (Tdma.estimate ~wheel:100. [ a; b ], Analysis.estimate Analysis.Exact [ a; b ]) with
  | [ t; _ ], [ p; _ ] ->
      (* Half the wheel each: exec 100 needs 2 slices -> R = 100 + 100 = 200;
         TDMA blows past both the probabilistic estimate and the simulated
         300. *)
      Fixtures.check_float "a0 response" 200. t.Analysis.response_times.(0);
      Alcotest.(check bool) "TDMA > probabilistic" true
        (t.Analysis.period > p.Analysis.period)
  | _ -> Alcotest.fail "arity"

let test_empty () = Alcotest.(check int) "no apps" 0 (List.length (Tdma.estimate []))

let test_wheel_validation () =
  match Tdma.estimate ~wheel:0. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wheel 0 accepted"

(* TDMA scales worse than the probabilistic estimate: its period grows at
   least linearly with the number of sharing applications. *)
let test_scaling_pessimism () =
  let mk name =
    Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 10.); (name ^ "p", 10.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  let period_with k =
    let apps =
      List.init k (fun i ->
          Analysis.app (mk (Printf.sprintf "T%d" i)) ~mapping:[| 0; 1 + i |])
    in
    match Tdma.estimate ~wheel:40. apps with
    | r :: _ -> r.Analysis.period
    | [] -> assert false
  in
  let p1 = period_with 1 and p2 = period_with 2 and p4 = period_with 4 in
  Alcotest.(check bool) "grows" true (p1 < p2 && p2 < p4);
  (* With 4 sharers, slice 10 fits exec 10 in one slice: R = 10 + 30 = 40;
     period = 40 + 10 = 50 vs isolation 20. *)
  Fixtures.check_float "4-sharer period" 50. p4

let suite =
  [
    Alcotest.test_case "response time formula" `Quick test_response_time_formula;
    Alcotest.test_case "response time validation" `Quick test_response_time_validation;
    Alcotest.test_case "single app" `Quick test_single_app_keeps_isolation;
    Alcotest.test_case "vs probabilistic" `Quick test_two_apps_more_pessimistic_than_probabilistic;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "wheel validation" `Quick test_wheel_validation;
    Alcotest.test_case "scaling pessimism" `Quick test_scaling_pessimism;
  ]
