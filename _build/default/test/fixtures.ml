(* Shared test fixtures: the paper's Figure 2 graphs and common generators. *)

(* Graph A of Figure 2: a0 (tau 100, q 1), a1 (tau 50, q 2), a2 (tau 100, q 1),
   strongly connected ring with one initial token closing the cycle.
   Per(A) = 300. *)
let graph_a () =
  Sdf.Graph.create ~name:"A"
    ~actors:[| ("a0", 100.); ("a1", 50.); ("a2", 100.) |]
    ~channels:[| (0, 1, 2, 1, 0); (1, 2, 1, 2, 0); (2, 0, 1, 1, 1) |]

(* Graph B of Figure 2: b0 (tau 50, q 2), b1 (tau 100, q 1), b2 (tau 100, q 1).
   Per(B) = 300. *)
let graph_b () =
  Sdf.Graph.create ~name:"B"
    ~actors:[| ("b0", 50.); ("b1", 100.); ("b2", 100.) |]
    ~channels:[| (0, 1, 1, 2, 0); (1, 2, 2, 2, 0); (2, 0, 2, 1, 2) |]

(* A minimal two-actor pipeline with feedback; Per = tau0 + tau1. *)
let pipeline ?(tau0 = 3.) ?(tau1 = 5.) () =
  Sdf.Graph.create ~name:"pipe"
    ~actors:[| ("p0", tau0); ("p1", tau1) |]
    ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]

(* Self-loop only: a single actor ticking with its own period. *)
let single ?(tau = 7.) () =
  Sdf.Graph.create ~name:"single"
    ~actors:[| ("s0", tau) |]
    ~channels:[| (0, 0, 1, 1, 1) |]

(* A graph that deadlocks: a two-cycle with no initial tokens. *)
let deadlocked () =
  Sdf.Graph.create ~name:"dead"
    ~actors:[| ("d0", 1.); ("d1", 1.) |]
    ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 0) |]

(* An inconsistent graph: rates that admit no repetition vector. *)
let inconsistent () =
  Sdf.Graph.create ~name:"incons"
    ~actors:[| ("i0", 1.); ("i1", 1.) |]
    ~channels:[| (0, 1, 2, 1, 0); (1, 0, 1, 1, 4) |]

let float_eq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps *. Float.max 1. (Float.abs a)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let check_float ?(eps = 1e-6) msg expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* QCheck generator for a list of plausible actor loads. *)
let load_gen ?(max_actors = 6) () =
  let open QCheck2.Gen in
  let load =
    let* p = float_bound_inclusive 0.95 in
    let* tau = float_range 1. 100. in
    return (Contention.Prob.make ~p ~mu:(tau /. 2.) ~tau)
  in
  let* n = int_range 0 max_actors in
  list_size (return n) load

(* QCheck generator for random live SDF graphs via the project generator. *)
let graph_gen =
  let open QCheck2.Gen in
  let* seed = int_range 0 1_000_000 in
  let params =
    {
      Sdfgen.Generator.default_params with
      actors_min = 2;
      actors_max = 6;
      exec_min = 1;
      exec_max = 20;
      extra_channels = 2;
    }
  in
  return (Sdfgen.Generator.generate ~params (Sdfgen.Rng.create seed) ~name:"G")

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
