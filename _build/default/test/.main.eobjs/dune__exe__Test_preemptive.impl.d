test/test_preemptive.ml: Alcotest Array Contention Desim Engine Fixtures Float Fun List Preemptive QCheck2 Sdf
