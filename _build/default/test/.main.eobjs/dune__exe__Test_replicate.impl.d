test/test_replicate.ml: Alcotest Array Contention Desim Exp Fixtures
