test/test_persistence.ml: Alcotest Array Contention Exp Filename Fixtures Float Int List Option Sdf Sdfgen String Sys
