test/test_repetition.ml: Alcotest Array Fixtures Format Graph Rational Repetition Sdf
