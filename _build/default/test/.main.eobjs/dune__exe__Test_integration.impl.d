test/test_integration.ml: Admission Alcotest Analysis Array Contention Desim Filename Fixtures Float List Mapping Sdf Sdfgen Sys
