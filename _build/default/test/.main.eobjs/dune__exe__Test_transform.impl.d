test/test_transform.ml: Alcotest Array Fixtures Graph Repetition Sdf Statespace Transform
