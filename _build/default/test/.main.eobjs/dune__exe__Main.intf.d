test/main.mli:
