test/test_statespace.ml: Alcotest Array Fixtures Graph Repetition Sdf Statespace
