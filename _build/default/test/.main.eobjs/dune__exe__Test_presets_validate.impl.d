test/test_presets_validate.ml: Alcotest Array Fixtures Format List Sdf Sdfgen
