test/test_rational.ml: Alcotest Fixtures QCheck2 Rational Sdf
