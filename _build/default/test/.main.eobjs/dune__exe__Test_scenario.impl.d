test/test_scenario.ml: Alcotest Array Contention Exp Fixtures Float Lazy List Option Sdfgen
