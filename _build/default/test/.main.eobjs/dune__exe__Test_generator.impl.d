test/test_generator.ml: Alcotest Array Fixtures Fun Sdf Sdfgen
