test/test_exp.ml: Alcotest Array Contention Exp Fixtures Float List Sdf Sdfgen String
