test/test_capacity.ml: Alcotest Array Capacity Fixtures Graph Int List Sdf Statespace
