test/test_arbitration.ml: Alcotest Array Desim Engine Fixtures Float Sdf
