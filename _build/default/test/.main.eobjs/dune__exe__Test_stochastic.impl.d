test/test_stochastic.ml: Alcotest Analysis Array Contention Desim Dist Fixtures Mapping Prob Sdf Sdfgen
