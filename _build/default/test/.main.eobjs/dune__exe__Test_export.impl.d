test/test_export.ml: Alcotest Exp Filename Fixtures List Sdfgen String Sys
