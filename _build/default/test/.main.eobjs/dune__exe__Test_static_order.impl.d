test/test_static_order.ml: Alcotest Array Desim Engine Fixtures Sdf Trace
