test/test_sympoly.ml: Alcotest Array Contention Fixtures Fun QCheck2 Sympoly
