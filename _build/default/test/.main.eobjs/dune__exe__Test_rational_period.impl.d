test/test_rational_period.ml: Alcotest Array Fixtures Graph Hsdf Mcm Rational Sdf Statespace
