test/test_usecase.ml: Alcotest Contention Fixtures Format Int List QCheck2 Usecase
