test/test_rng.ml: Alcotest Array Fun Int Sdfgen
