test/test_wcrt.ml: Alcotest Contention Exact Fixtures Prob QCheck2 Wcrt
