test/test_tdma.ml: Alcotest Analysis Array Contention Fixtures List Printf Sdf Tdma
