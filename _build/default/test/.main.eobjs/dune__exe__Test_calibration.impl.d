test/test_calibration.ml: Alcotest Analysis Array Contention Desim Fixtures Float List Mapping Prob Sdf Sdfgen
