test/test_exact.ml: Alcotest Contention Exact Fixtures Prob QCheck2 Wcrt
