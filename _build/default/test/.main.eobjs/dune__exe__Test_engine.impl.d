test/test_engine.ml: Alcotest Array Contention Desim Engine Fixtures Float QCheck2 Sdf
