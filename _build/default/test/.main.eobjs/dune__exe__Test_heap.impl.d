test/test_heap.ml: Alcotest Desim Fixtures Float List QCheck2
