test/test_admission.ml: Admission Alcotest Analysis Array Contention Fixtures List Mapping Printf QCheck2 Sdf Sdfgen
