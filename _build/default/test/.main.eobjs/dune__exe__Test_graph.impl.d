test/test_graph.ml: Alcotest Fixtures Format Graph List Sdf
