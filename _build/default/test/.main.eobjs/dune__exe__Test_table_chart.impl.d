test/test_table_chart.ml: Alcotest Chart Fixtures Float Int List Repro_stats String Table
