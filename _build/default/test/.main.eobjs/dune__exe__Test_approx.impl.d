test/test_approx.ml: Alcotest Approx Contention Exact Fixtures Int List Prob
