test/test_dist.ml: Alcotest Contention Dist Fixtures Float List Prob QCheck2 Sdfgen
