test/test_sensitivity.ml: Alcotest Analysis Contention Fixtures List Sdf Sensitivity
