test/test_maxplus.ml: Alcotest Array Fixtures Maxplus Sdf
