test/test_compose.ml: Alcotest Compose Contention Exact Fixtures Float List Prob QCheck2
