test/test_trace.ml: Alcotest Desim Engine Fixtures List Sdf String Trace
