test/test_stats.ml: Alcotest Fixtures List QCheck2 Repro_stats Stats
