test/test_interval.ml: Alcotest Analysis Array Contention Exact Fixtures Interval List Prob
