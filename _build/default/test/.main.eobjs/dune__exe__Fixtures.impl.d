test/fixtures.ml: Alcotest Contention Float QCheck2 QCheck_alcotest Sdf Sdfgen String
