test/test_mapping.ml: Alcotest Array Contention Fixtures Int Mapping Sdf Sdfgen
