test/test_analysis.ml: Alcotest Analysis Array Contention Fixtures List Mapping Prob QCheck2
