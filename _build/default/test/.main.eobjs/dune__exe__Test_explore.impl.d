test/test_explore.ml: Alcotest Array Contention Explore Fixtures List QCheck2 Sdf
