test/test_metrics.ml: Alcotest Array Fixtures Graph Metrics Sdf Statespace
