test/test_hsdf_mcm.ml: Alcotest Array Fixtures Graph Hsdf Mcm Sdf Statespace
