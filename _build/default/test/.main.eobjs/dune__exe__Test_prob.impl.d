test/test_prob.ml: Alcotest Contention Fixtures Format Prob QCheck2
