test/test_vcd.ml: Alcotest Array Desim Filename Fixtures List Printf Sdf String Sys
