test/test_text.ml: Alcotest Filename Fixtures Graph Sdf Statespace Sys Text
