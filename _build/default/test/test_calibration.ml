open Contention

let paper_apps () =
  ( Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |],
    Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |] )

let test_calibrated_with_isolation_equals_plain () =
  let a, b = paper_apps () in
  let plain = Analysis.estimate (Analysis.Order 2) [ a; b ] in
  let calibrated =
    Analysis.estimate_calibrated (Analysis.Order 2) [ (a, 300.); (b, 300.) ]
  in
  List.iter2
    (fun (p : Analysis.estimate) (c : Analysis.estimate) ->
      Fixtures.check_float "same period" p.period c.period)
    plain calibrated

let test_calibration_tightens_towards_measurement () =
  (* Feed the measured (simulated) period 300: blocking probabilities stay
     1/3 here (periods unchanged), but feeding a larger measured period
     shrinks P and the estimate drops towards the measurement. *)
  let a, b = paper_apps () in
  let at measured =
    match Analysis.estimate_calibrated Analysis.Exact [ (a, measured); (b, measured) ] with
    | r :: _ -> r.Analysis.period
    | [] -> assert false
  in
  let e300 = at 300. and e450 = at 450. and e600 = at 600. in
  Alcotest.(check bool) "monotone in measured period" true (e300 > e450 && e450 > e600);
  (* As the system reports longer periods, the re-estimated contention
     surcharge shrinks (P ~ 1/period). *)
  Alcotest.(check bool) "surcharge shrinks" true (e600 -. 600. < e300 -. 300. +. 1e-9)

let test_calibrated_validation () =
  let a, _ = paper_apps () in
  (match Analysis.estimate_calibrated Analysis.Exact [ (a, 0.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero measured period accepted");
  Alcotest.(check int) "empty" 0
    (List.length (Analysis.estimate_calibrated Analysis.Exact []))

let test_estimate_with_loads_validation () =
  let a, _ = paper_apps () in
  match
    Analysis.estimate_with_loads Analysis.Exact
      [ (a, [| Prob.make ~p:0.1 ~mu:1. ~tau:2. |]) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short loads accepted"

(* With measured periods at least the isolation period (always true in a
   real system), the calibrated estimate is sandwiched between the isolation
   period and the plain estimate: larger measured periods mean smaller
   blocking probabilities, hence smaller waiting surcharges.  (Whether that
   tightening improves accuracy depends on whether the plain estimate was
   over- or under-shooting, which the paper leaves open — Section 6 proposes
   calibration, it does not claim a bound.) *)
let test_calibration_sandwich_on_random_workloads () =
  let rng = Sdfgen.Rng.create 77 in
  let params =
    { Sdfgen.Generator.default_params with actors_min = 4; actors_max = 6;
      exec_min = 2; exec_max = 30 }
  in
  let procs = 3 in
  for _ = 1 to 12 do
    let g1 = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name:"U" in
    let g2 = Sdfgen.Generator.generate ~params (Sdfgen.Rng.split rng) ~name:"V" in
    let a1 = Analysis.app g1 ~mapping:(Mapping.modulo ~procs g1) in
    let a2 = Analysis.app g2 ~mapping:(Mapping.modulo ~procs g2) in
    let sim, _ =
      Desim.Engine.run ~horizon:60_000. ~procs
        [| { Desim.Engine.graph = g1; mapping = a1.Analysis.mapping };
           { Desim.Engine.graph = g2; mapping = a2.Analysis.mapping } |]
    in
    let s1 = sim.(0).Desim.Engine.avg_period and s2 = sim.(1).Desim.Engine.avg_period in
    if not (Float.is_nan s1 || Float.is_nan s2) then begin
      let plain = Analysis.estimate (Analysis.Order 2) [ a1; a2 ] in
      let measured1 = Float.max s1 a1.Analysis.isolation_period in
      let measured2 = Float.max s2 a2.Analysis.isolation_period in
      let calibrated =
        Analysis.estimate_calibrated (Analysis.Order 2)
          [ (a1, measured1); (a2, measured2) ]
      in
      List.iter2
        (fun (p : Analysis.estimate) (c : Analysis.estimate) ->
          Alcotest.(check bool) "calibrated <= plain" true (c.period <= p.period +. 1e-6);
          Alcotest.(check bool) "calibrated >= isolation" true
            (c.period +. 1e-6 >= c.for_app.Analysis.isolation_period))
        plain calibrated
    end
  done

let test_contended_metrics () =
  let a, b = paper_apps () in
  match Analysis.estimate Analysis.Exact [ a; b ] with
  | [ ra; _ ] -> (
      let adjusted = Analysis.adjusted_graph ra in
      Alcotest.(check (array (float 1e-6))) "adjusted times" ra.response_times
        (Sdf.Graph.exec_times adjusted);
      match Analysis.contended_metrics ra with
      | None -> Alcotest.fail "adjusted graph deadlocked"
      | Some m ->
          (* One iteration of the adjusted graph takes the estimated
             period: latency = 1075/3. *)
          Fixtures.check_float ~eps:1e-6 "contended latency" (1075. /. 3.) m.latency)
  | _ -> Alcotest.fail "arity"

let suite =
  [
    Alcotest.test_case "isolation calibration = plain" `Quick
      test_calibrated_with_isolation_equals_plain;
    Alcotest.test_case "monotone in measurement" `Quick
      test_calibration_tightens_towards_measurement;
    Alcotest.test_case "validation" `Quick test_calibrated_validation;
    Alcotest.test_case "with_loads validation" `Quick test_estimate_with_loads_validation;
    Alcotest.test_case "sandwich on random workloads" `Slow
      test_calibration_sandwich_on_random_workloads;
    Alcotest.test_case "contended metrics" `Quick test_contended_metrics;
  ]
