(* Variable execution times: the Section 6 extension end to end — the
   firing_time hook in the simulator and distribution-based loads in the
   analysis. *)

open Contention

let test_constant_hook_is_identity () =
  let g = Fixtures.graph_a () in
  let app = { Desim.Engine.graph = g; mapping = Mapping.dedicated g } in
  let static, _ = Desim.Engine.run ~horizon:50_000. ~procs:3 [| app |] in
  let hooked, _ =
    Desim.Engine.run ~horizon:50_000.
      ~firing_time:(fun ~app:_ ~actor -> (Sdf.Graph.actor g actor).exec_time)
      ~procs:3 [| app |]
  in
  Fixtures.check_float "identical period" static.(0).Desim.Engine.avg_period
    hooked.(0).Desim.Engine.avg_period

let test_scaled_hook_scales_period () =
  let g = Fixtures.graph_a () in
  let app = { Desim.Engine.graph = g; mapping = Mapping.dedicated g } in
  let results, _ =
    Desim.Engine.run ~horizon:100_000.
      ~firing_time:(fun ~app:_ ~actor -> 2. *. (Sdf.Graph.actor g actor).exec_time)
      ~procs:3 [| app |]
  in
  Fixtures.check_float ~eps:1e-6 "doubled period" 600. results.(0).Desim.Engine.avg_period

let test_invalid_firing_time () =
  let g = Fixtures.graph_a () in
  let app = { Desim.Engine.graph = g; mapping = Mapping.dedicated g } in
  match
    Desim.Engine.run ~firing_time:(fun ~app:_ ~actor:_ -> 0.) ~procs:3 [| app |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero firing time accepted"

let stochastic_hook rng dists =
  fun ~app:_ ~actor -> Dist.sample dists.(actor) ~u:(Sdfgen.Rng.float rng 1.)

let test_stochastic_period_near_mean_model () =
  (* Uniform +-50% around the constant times: the simulated mean period of a
     single pipeline stays close to the deterministic mean-time period
     (it is lower-bounded by it for a single cycle by Jensen). *)
  let g = Fixtures.pipeline ~tau0:10. ~tau1:14. () in
  let dists =
    [| Dist.Uniform { lo = 5.; hi = 15. }; Dist.Uniform { lo = 7.; hi = 21. } |]
  in
  let rng = Sdfgen.Rng.create 99 in
  let app = { Desim.Engine.graph = g; mapping = Mapping.dedicated g } in
  let results, _ =
    Desim.Engine.run ~horizon:200_000. ~firing_time:(stochastic_hook rng dists)
      ~procs:2 [| app |]
  in
  let simulated = results.(0).Desim.Engine.avg_period in
  (* Deterministic mean-time period is 24; the stochastic mean period equals
     E[max of the two stage sums] >= 24 but well under 24 + both spreads. *)
  Alcotest.(check bool) "above mean-model" true (simulated >= 24. -. 0.5);
  Alcotest.(check bool) "below worst case" true (simulated <= 36.)

let test_analysis_app_with_distributions () =
  let g = Fixtures.graph_a () in
  let dists =
    [|
      Dist.Uniform { lo = 50.; hi = 150. };
      Dist.Constant 50.;
      Dist.Exponential { mean = 100. };
    |]
  in
  let a = Analysis.app g ~mapping:[| 0; 1; 2 |] ~distributions:dists in
  (* Means equal the base times, so the isolation period is unchanged. *)
  Fixtures.check_float "isolation period" 300. a.isolation_period;
  let loads = Analysis.loads a in
  Fixtures.check_float "P unchanged" (1. /. 3.) loads.(0).Prob.p;
  (* mu comes from the residual: uniform > constant's 50, exp = mean. *)
  Alcotest.(check bool) "uniform residual > tau/2" true (loads.(0).Prob.mu > 50.);
  Fixtures.check_float "constant residual" 25. loads.(1).Prob.mu;
  Fixtures.check_float "exponential residual" 100. loads.(2).Prob.mu

let test_distributions_length_mismatch () =
  match
    Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |]
      ~distributions:[| Contention.Dist.Constant 1. |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong distributions length accepted"

let test_variance_raises_estimate () =
  (* Same means, increasing variance => larger estimated waiting, larger
     estimated period (the inspection paradox made quantitative). *)
  let g1 = Fixtures.graph_a () and g2 = Fixtures.graph_b () in
  let period_with spread =
    let mk_dists g =
      Array.map
        (fun (a : Sdf.Graph.actor) ->
          if spread = 0. then Dist.Constant a.exec_time
          else
            Dist.Uniform
              { lo = a.exec_time *. (1. -. spread); hi = a.exec_time *. (1. +. spread) })
        g.Sdf.Graph.actors
    in
    let a = Analysis.app g1 ~mapping:[| 0; 1; 2 |] ~distributions:(mk_dists g1) in
    let b = Analysis.app g2 ~mapping:[| 0; 1; 2 |] ~distributions:(mk_dists g2) in
    match Analysis.estimate Analysis.Exact [ a; b ] with
    | r :: _ -> r.Analysis.period
    | [] -> assert false
  in
  let p0 = period_with 0. and p05 = period_with 0.5 and p09 = period_with 0.9 in
  Fixtures.check_float ~eps:1e-6 "zero spread = base model" (1075. /. 3.) p0;
  Alcotest.(check bool) "variance increases estimate" true (p05 > p0 && p09 > p05)

let test_stochastic_vs_estimate_integration () =
  (* Two shared tickers with uniform times: estimated period must stay within
     the isolation..worst-case bracket of the simulated one. *)
  let mk name =
    Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 5.); (name ^ "p", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  let dists = [| Dist.Uniform { lo = 2.; hi = 8. }; Dist.Constant 5. |] in
  let gx = mk "X" and gy = mk "Y" in
  let ax = Analysis.app gx ~mapping:[| 0; 1 |] ~distributions:dists in
  let ay = Analysis.app gy ~mapping:[| 0; 2 |] ~distributions:dists in
  let estimated =
    match Analysis.estimate Analysis.Exact [ ax; ay ] with
    | r :: _ -> r.Analysis.period
    | [] -> assert false
  in
  let rng = Sdfgen.Rng.create 5 in
  let hook ~app:_ ~actor = Dist.sample dists.(actor) ~u:(Sdfgen.Rng.float rng 1.) in
  let results, _ =
    Desim.Engine.run ~horizon:100_000. ~firing_time:hook ~procs:3
      [|
        { Desim.Engine.graph = gx; mapping = [| 0; 1 |] };
        { Desim.Engine.graph = gy; mapping = [| 0; 2 |] };
      |]
  in
  let simulated = results.(0).Desim.Engine.avg_period in
  Alcotest.(check bool) "estimate above isolation" true (estimated > 10.);
  Alcotest.(check bool) "simulated within 2x of estimate" true
    (simulated < 2. *. estimated && estimated < 2. *. simulated)

let suite =
  [
    Alcotest.test_case "constant hook identity" `Quick test_constant_hook_is_identity;
    Alcotest.test_case "scaled hook" `Quick test_scaled_hook_scales_period;
    Alcotest.test_case "invalid firing time" `Quick test_invalid_firing_time;
    Alcotest.test_case "stochastic pipeline period" `Quick
      test_stochastic_period_near_mean_model;
    Alcotest.test_case "analysis with distributions" `Quick
      test_analysis_app_with_distributions;
    Alcotest.test_case "distributions length" `Quick test_distributions_length_mismatch;
    Alcotest.test_case "variance raises estimate" `Quick test_variance_raises_estimate;
    Alcotest.test_case "stochastic integration" `Quick test_stochastic_vs_estimate_integration;
  ]
