open Sdf

let test_single_rate_structure () =
  let g = Fixtures.graph_a () in
  let sr = Transform.single_rate g in
  (* q = [1;2;1] -> 4 actors, all rates 1. *)
  Alcotest.(check int) "actors" 4 (Graph.num_actors sr);
  Array.iter
    (fun (c : Graph.channel) ->
      Alcotest.(check int) "produce 1" 1 c.produce;
      Alcotest.(check int) "consume 1" 1 c.consume)
    sr.Graph.channels;
  Alcotest.(check (array int)) "homogeneous q" [| 1; 1; 1; 1 |]
    (Repetition.compute_exn sr);
  (* Copies carry the original names. *)
  Alcotest.(check bool) "named copies" true
    (Array.exists (fun (a : Graph.actor) -> a.name = "a1#1") sr.Graph.actors)

let test_single_rate_period_preserved () =
  let g = Fixtures.graph_a () in
  Fixtures.check_float "same period" (Statespace.period_exn g)
    (Statespace.period_exn (Transform.single_rate g))

let test_scale_times () =
  let g = Fixtures.pipeline () in
  let doubled = Transform.scale_times 2. g in
  Fixtures.check_float "scaled period" 16. (Statespace.period_exn doubled);
  match Transform.scale_times 0. g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero factor accepted"

let test_reverse_structure () =
  let g = Fixtures.graph_a () in
  let r = Transform.reverse g in
  Alcotest.(check int) "channels preserved" (Graph.num_channels g) (Graph.num_channels r);
  let c = r.Graph.channels.(0) and orig = g.Graph.channels.(0) in
  Alcotest.(check int) "flipped src" orig.dst c.src;
  Alcotest.(check int) "flipped dst" orig.src c.dst;
  Alcotest.(check int) "swapped produce" orig.consume c.produce;
  Alcotest.(check int) "tokens kept" orig.tokens c.tokens

let test_rename () =
  let g = Transform.rename ~prefix:"x_" (Fixtures.graph_a ()) in
  Alcotest.(check string) "graph name" "x_A" g.Graph.name;
  Alcotest.(check string) "actor name" "x_a0" (Graph.actor g 0).name;
  Fixtures.check_float "period untouched" 300. (Statespace.period_exn g)

let prop_single_rate_period =
  Fixtures.qcheck_case ~count:50 "single-rate preserves period" Fixtures.graph_gen
    (fun g ->
      Fixtures.float_eq ~eps:1e-6 (Statespace.period_exn g)
        (Statespace.period_exn (Transform.single_rate g)))

let prop_reverse_preserves_period =
  Fixtures.qcheck_case ~count:50 "reversal preserves period" Fixtures.graph_gen (fun g ->
      let r = Transform.reverse g in
      Repetition.compute_exn g = Repetition.compute_exn r
      &&
      match Statespace.period r with
      | Some p -> Fixtures.float_eq ~eps:1e-6 (Statespace.period_exn g) p
      | None -> false)

let suite =
  [
    Alcotest.test_case "single-rate structure" `Quick test_single_rate_structure;
    Alcotest.test_case "single-rate period" `Quick test_single_rate_period_preserved;
    Alcotest.test_case "scale times" `Quick test_scale_times;
    Alcotest.test_case "reverse structure" `Quick test_reverse_structure;
    Alcotest.test_case "rename" `Quick test_rename;
    prop_single_rate_period;
    prop_reverse_preserves_period;
  ]
