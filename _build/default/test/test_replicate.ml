let pipeline_app () =
  let g = Fixtures.pipeline ~tau0:10. ~tau1:14. () in
  { Desim.Engine.graph = g; mapping = [| 0; 1 |] }

let test_constant_distributions_zero_variance () =
  let app = pipeline_app () in
  let dists = [| [| Contention.Dist.Constant 10.; Contention.Dist.Constant 14. |] |] in
  let summaries =
    Exp.Replicate.run ~replications:5 ~horizon:20_000. ~procs:2 ~distributions:dists
      [| app |]
  in
  Alcotest.(check int) "one summary" 1 (Array.length summaries);
  let s = summaries.(0) in
  Alcotest.(check int) "all replications measured" 5 s.Exp.Replicate.samples;
  Fixtures.check_float "deterministic mean" 24. s.Exp.Replicate.mean;
  Fixtures.check_float "zero spread" 0. s.Exp.Replicate.stddev;
  Fixtures.check_float "zero ci" 0. s.Exp.Replicate.ci95

let test_stochastic_ci_brackets_mean_model () =
  let app = pipeline_app () in
  let dists =
    [| [| Contention.Dist.Uniform { lo = 5.; hi = 15. };
          Contention.Dist.Uniform { lo = 7.; hi = 21. } |] |]
  in
  let summaries =
    Exp.Replicate.run ~replications:15 ~horizon:50_000. ~procs:2 ~distributions:dists
      [| app |]
  in
  let s = summaries.(0) in
  Alcotest.(check int) "all measured" 15 s.Exp.Replicate.samples;
  Alcotest.(check bool) "positive spread" true (s.Exp.Replicate.stddev > 0.);
  (* The stochastic mean period exceeds the deterministic mean-time period
     (Jensen) but stays well below the sum of worst cases. *)
  Alcotest.(check bool) "above mean model" true (s.Exp.Replicate.mean >= 24.);
  Alcotest.(check bool) "below worst case" true (s.Exp.Replicate.mean <= 36.);
  Alcotest.(check bool) "ci sane" true
    (s.Exp.Replicate.ci95 > 0. && s.Exp.Replicate.ci95 < 5.)

let test_determinism_in_seed () =
  let app = pipeline_app () in
  let dists = [| [| Contention.Dist.Uniform { lo = 5.; hi = 15. };
                    Contention.Dist.Constant 14. |] |] in
  let go () =
    (Exp.Replicate.run ~replications:3 ~horizon:10_000. ~seed:7 ~procs:2
       ~distributions:dists [| app |]).(0)
  in
  let a = go () and b = go () in
  Fixtures.check_float "same mean" a.Exp.Replicate.mean b.Exp.Replicate.mean;
  Fixtures.check_float "same stddev" a.Exp.Replicate.stddev b.Exp.Replicate.stddev

let test_validation () =
  let app = pipeline_app () in
  (match
     Exp.Replicate.run ~replications:0 ~procs:2
       ~distributions:[| [| Contention.Dist.Constant 1.; Contention.Dist.Constant 1. |] |]
       [| app |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 replications accepted");
  (match Exp.Replicate.run ~procs:2 ~distributions:[||] [| app |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing distributions accepted");
  match
    Exp.Replicate.run ~procs:2
      ~distributions:[| [| Contention.Dist.Constant 1. |] |]
      [| app |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape mismatch accepted"

let suite =
  [
    Alcotest.test_case "constant = deterministic" `Quick test_constant_distributions_zero_variance;
    Alcotest.test_case "stochastic ci" `Quick test_stochastic_ci_brackets_mean_model;
    Alcotest.test_case "seed determinism" `Quick test_determinism_in_seed;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
