open Desim

let traced_run ?firing_time apps ~procs ~horizon =
  let trace = Trace.create () in
  let results, stats =
    Engine.run ~horizon ~on_event:(Trace.on_event trace) ?firing_time ~procs apps
  in
  (trace, results, stats)

let test_records_pair_up () =
  let g = Fixtures.pipeline () in
  let trace, _, stats =
    traced_run [| { Engine.graph = g; mapping = [| 0; 1 |] } |] ~procs:2 ~horizon:80.
  in
  (* Every completed firing is recorded with start < finish. *)
  Alcotest.(check int) "one record per firing" stats.Engine.total_firings
    (Trace.num_records trace);
  List.iter
    (fun (r : Trace.record) ->
      Alcotest.(check bool) "positive duration" true (r.finish_time > r.start_time))
    (Trace.records trace)

let test_service_durations_match_exec_times () =
  let g = Fixtures.graph_a () in
  let trace, _, _ =
    traced_run [| { Engine.graph = g; mapping = [| 0; 1; 2 |] } |] ~procs:3 ~horizon:3000.
  in
  List.iter
    (fun (r : Trace.record) ->
      Fixtures.check_float "duration = tau"
        (Sdf.Graph.actor g r.actor).exec_time
        (r.finish_time -. r.start_time))
    (Trace.records trace)

let test_actor_stats () =
  let g = Fixtures.graph_a () in
  let trace, _, _ =
    traced_run [| { Engine.graph = g; mapping = [| 0; 1; 2 |] } |] ~procs:3 ~horizon:3000.
  in
  let s = Trace.actor_stats trace ~app:0 ~actor:0 in
  (* 10 iterations fit in 3000; q(a0) = 1, tau = 100. *)
  Alcotest.(check bool) "about 10 firings" true (s.firings >= 9 && s.firings <= 11);
  Fixtures.check_float "mean service" 100. s.mean_service;
  (* a0 fires once per 300: gap = 200. *)
  Fixtures.check_float "mean gap" 200. s.mean_gap;
  Fixtures.check_float "busy" (100. *. float_of_int s.firings) s.total_busy;
  match Trace.actor_stats trace ~app:3 ~actor:0 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "stats for unknown app"

let test_proc_timeline_no_overlap () =
  (* Two apps contending on shared processors: services on one processor
     never overlap (non-preemptive correctness, observed from the trace). *)
  let a = Fixtures.graph_a () and b = Fixtures.graph_b () in
  let trace, _, _ =
    traced_run
      [|
        { Engine.graph = a; mapping = [| 0; 1; 2 |] };
        { Engine.graph = b; mapping = [| 0; 1; 2 |] };
      |]
      ~procs:3 ~horizon:20_000.
  in
  for proc = 0 to 2 do
    let timeline = Trace.proc_timeline trace ~proc in
    Alcotest.(check bool) "some work" true (List.length timeline > 0);
    let rec check = function
      | (r1 : Trace.record) :: (r2 :: _ as rest) ->
          Alcotest.(check bool) "no overlap" true (r2.start_time >= r1.finish_time -. 1e-9);
          check rest
      | [ _ ] | [] -> ()
    in
    check timeline
  done

let test_waiting_observed_under_contention () =
  (* The trace lets us measure actual waiting: on the two-ticker node, the
     second arrival's gap exceeds its isolation gap. *)
  let mk name =
    Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 5.); (name ^ "p", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  let trace, _, _ =
    traced_run
      [|
        { Engine.graph = mk "X"; mapping = [| 0; 1 |] };
        { Engine.graph = mk "Y"; mapping = [| 0; 2 |] };
        { Engine.graph = mk "Z"; mapping = [| 0; 3 |] };
      |]
      ~procs:4 ~horizon:30_000.
  in
  (* Each worker is served once per 15 time units (saturated node), so the
     gap between its services is 15 - 5 = 10, not the isolation 5. *)
  let s = Trace.actor_stats trace ~app:0 ~actor:0 in
  Fixtures.check_float ~eps:0.02 "contended gap" 10. s.mean_gap

let test_csv () =
  let g = Fixtures.pipeline () in
  let trace, _, _ =
    traced_run [| { Engine.graph = g; mapping = [| 0; 1 |] } |] ~procs:2 ~horizon:40.
  in
  let csv = Trace.to_csv trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + records" (Trace.num_records trace + 1) (List.length lines);
  match lines with
  | header :: _ -> Alcotest.(check string) "header" "app,actor,proc,start,finish" header
  | [] -> Alcotest.fail "empty csv"

let suite =
  [
    Alcotest.test_case "records pair up" `Quick test_records_pair_up;
    Alcotest.test_case "durations = exec times" `Quick test_service_durations_match_exec_times;
    Alcotest.test_case "actor stats" `Quick test_actor_stats;
    Alcotest.test_case "proc timeline no overlap" `Quick test_proc_timeline_no_overlap;
    Alcotest.test_case "observed waiting" `Quick test_waiting_observed_under_contention;
    Alcotest.test_case "csv" `Quick test_csv;
  ]
