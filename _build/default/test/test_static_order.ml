open Desim

let ticker name ~pacer_proc =
  ( Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 5.); (name ^ "p", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |],
    [| 0; pacer_proc |] )

let test_alternation_matches_fcfs () =
  (* Two matched-rate tickers: the alternating static order X,Y reproduces
     FCFS behaviour exactly. *)
  let gx, mx = ticker "X" ~pacer_proc:1 and gy, my = ticker "Y" ~pacer_proc:2 in
  let apps =
    [| { Engine.graph = gx; mapping = mx }; { Engine.graph = gy; mapping = my } |]
  in
  let orders = [| [| (0, 0); (1, 0) |]; [| (0, 1) |]; [| (1, 1) |] |] in
  let so, _ =
    Engine.run ~arbitration:(Engine.Static_order orders) ~horizon:30_000. ~procs:3 apps
  in
  let fcfs, _ = Engine.run ~horizon:30_000. ~procs:3 apps in
  Array.iteri
    (fun i (r : Engine.result) ->
      Fixtures.check_float "same period" fcfs.(i).Engine.avg_period r.avg_period)
    so

let test_mismatched_rates_stall () =
  (* X wants a firing every 10 units, Slow every 40; forcing strict
     alternation drags X down to Slow's rate — the coupling the paper's
     Section 2 criticises in static-order approaches. *)
  let gx, mx = ticker "X" ~pacer_proc:1 in
  let slow =
    Sdf.Graph.create ~name:"S"
      ~actors:[| ("sw", 5.); ("sp", 35.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  let apps =
    [| { Engine.graph = gx; mapping = mx }; { Engine.graph = slow; mapping = [| 0; 2 |] } |]
  in
  let orders = [| [| (0, 0); (1, 0) |]; [| (0, 1) |]; [| (1, 1) |] |] in
  let so, _ =
    Engine.run ~arbitration:(Engine.Static_order orders) ~horizon:60_000. ~procs:3 apps
  in
  let fcfs, _ = Engine.run ~horizon:60_000. ~procs:3 apps in
  (* Under FCFS, X keeps (nearly) its own rate because the node is lightly
     loaded; under static order it inherits the slow app's period. *)
  Alcotest.(check bool) "fcfs X fast" true (fcfs.(0).Engine.avg_period < 15.);
  Fixtures.check_float ~eps:1e-3 "static X stalls to 40" 40. so.(0).Engine.avg_period

let test_empty_order_idles () =
  let gx, mx = ticker "X" ~pacer_proc:1 in
  let apps = [| { Engine.graph = gx; mapping = mx } |] in
  let orders = [| [||]; [| (0, 1) |] |] in
  let results, _ =
    Engine.run ~arbitration:(Engine.Static_order orders) ~horizon:10_000. ~procs:2 apps
  in
  (* Processor 0 never serves the worker: the app makes no progress. *)
  Alcotest.(check int) "no iterations" 0 results.(0).Engine.iterations

let test_validation () =
  let gx, mx = ticker "X" ~pacer_proc:1 in
  let apps = [| { Engine.graph = gx; mapping = mx } |] in
  let run orders =
    Engine.run ~arbitration:(Engine.Static_order orders) ~horizon:100. ~procs:2 apps
  in
  (match run [| [| (0, 0) |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong order arity accepted");
  (match run [| [| (5, 0) |]; [||] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown app accepted");
  (match run [| [| (0, 7) |]; [||] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown actor accepted");
  match run [| [| (0, 1) |]; [||] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong processor accepted"

let test_derived_order_reproduces_fcfs () =
  (* Derive the order from an FCFS trace window of the matched-rate pair and
     re-run under it: periods are preserved. *)
  let gx, mx = ticker "X" ~pacer_proc:1 and gy, my = ticker "Y" ~pacer_proc:2 in
  let apps =
    [| { Engine.graph = gx; mapping = mx }; { Engine.graph = gy; mapping = my } |]
  in
  let trace = Trace.create () in
  let fcfs, _ =
    Engine.run ~on_event:(Trace.on_event trace) ~horizon:1_000. ~procs:3 apps
  in
  (* One steady 20-unit window contains each worker exactly twice... the
     hyperperiod here is 10, use [100, 120). *)
  let orders = Trace.static_order trace ~procs:3 ~window:(100., 120.) in
  Alcotest.(check bool) "window non-empty" true (Array.length orders.(0) > 0);
  let so, _ =
    Engine.run ~arbitration:(Engine.Static_order orders) ~horizon:30_000. ~procs:3 apps
  in
  Array.iteri
    (fun i (r : Engine.result) ->
      Fixtures.check_float ~eps:1e-6 "derived order keeps period"
        fcfs.(i).Engine.avg_period r.avg_period)
    so;
  match Trace.static_order trace ~procs:3 ~window:(10., 10.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty window accepted"

let suite =
  [
    Alcotest.test_case "alternation matches fcfs" `Quick test_alternation_matches_fcfs;
    Alcotest.test_case "mismatched rates stall" `Quick test_mismatched_rates_stall;
    Alcotest.test_case "empty order idles" `Quick test_empty_order_idles;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "derived order reproduces fcfs" `Quick
      test_derived_order_reproduces_fcfs;
  ]
