let drain heap =
  let rec go acc =
    match Desim.Heap.pop heap with
    | None -> List.rev acc
    | Some (t, v) -> go ((t, v) :: acc)
  in
  go []

let test_empty () =
  let h : int Desim.Heap.t = Desim.Heap.create () in
  Alcotest.(check bool) "is_empty" true (Desim.Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Desim.Heap.size h);
  Alcotest.(check bool) "pop empty" true (Desim.Heap.pop h = None);
  Alcotest.(check bool) "peek empty" true (Desim.Heap.peek_time h = None)

let test_ordering () =
  let h = Desim.Heap.create () in
  List.iter (fun t -> Desim.Heap.push h ~time:t (int_of_float t)) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "size" 5 (Desim.Heap.size h);
  Alcotest.(check bool) "peek" true (Desim.Heap.peek_time h = Some 1.);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.map snd (drain h))

let test_fifo_ties () =
  let h = Desim.Heap.create () in
  List.iter (fun v -> Desim.Heap.push h ~time:1. v) [ 10; 20; 30 ];
  Desim.Heap.push h ~time:0.5 99;
  Alcotest.(check (list int)) "ties FIFO" [ 99; 10; 20; 30 ] (List.map snd (drain h))

let test_clear () =
  let h = Desim.Heap.create () in
  Desim.Heap.push h ~time:1. 1;
  Desim.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Desim.Heap.is_empty h)

let test_interleaved () =
  let h = Desim.Heap.create () in
  Desim.Heap.push h ~time:3. 3;
  Desim.Heap.push h ~time:1. 1;
  Alcotest.(check bool) "pop 1" true (Desim.Heap.pop h = Some (1., 1));
  Desim.Heap.push h ~time:2. 2;
  Alcotest.(check bool) "pop 2" true (Desim.Heap.pop h = Some (2., 2));
  Alcotest.(check bool) "pop 3" true (Desim.Heap.pop h = Some (3., 3))

let prop_heap_sort =
  Fixtures.qcheck_case ~count:300 "heap sorts like List.sort"
    QCheck2.Gen.(list (float_bound_inclusive 1000.))
    (fun times ->
      let h = Desim.Heap.create () in
      List.iteri (fun i t -> Desim.Heap.push h ~time:t i) times;
      let popped = List.map fst (drain h) in
      popped = List.sort Float.compare times)

let prop_stable_ties =
  (* Among equal keys, payloads come out in insertion order. *)
  Fixtures.qcheck_case ~count:200 "stability on ties"
    QCheck2.Gen.(list (int_range 0 3))
    (fun keys ->
      let h = Desim.Heap.create () in
      List.iteri (fun i k -> Desim.Heap.push h ~time:(float_of_int k) i) keys;
      let popped = drain h in
      let rec check_adjacent = function
        | (t1, v1) :: ((t2, v2) :: _ as rest) ->
            (if t1 = t2 then v1 < v2 else true) && check_adjacent rest
        | _ -> true
      in
      check_adjacent popped)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    prop_heap_sort;
    prop_stable_ties;
  ]
