open Contention

let apps () =
  [
    Analysis.app (Fixtures.graph_a ()) ~mapping:[| 0; 1; 2 |];
    Analysis.app (Fixtures.graph_b ()) ~mapping:[| 0; 1; 2 |];
  ]

let test_two_apps_full_relief () =
  (* With only two applications, removing the other returns the victim to
     isolation: relief = (358.33 - 300) / 358.33. *)
  let impacts = Sensitivity.leave_one_out (apps ()) in
  Alcotest.(check int) "two ordered pairs" 2 (List.length impacts);
  List.iter
    (fun (i : Sensitivity.impact) ->
      Fixtures.check_float ~eps:1e-6 "with" (1075. /. 3.) i.period_with;
      Fixtures.check_float ~eps:1e-6 "without" 300. i.period_without;
      Fixtures.check_float ~eps:1e-4 "relief"
        (100. *. ((1075. /. 3.) -. 300.) /. (1075. /. 3.))
        i.relief_pct)
    impacts

let test_rank_orders_by_relief () =
  (* Three tickers sharing a node: the heavier interferer relieves more. *)
  let ticker name tau ~pacer_proc =
    Analysis.app
      (Sdf.Graph.create ~name
         ~actors:[| (name ^ "w", tau); (name ^ "p", 3. *. tau) |]
         ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |])
      ~mapping:[| 0; pacer_proc |]
  in
  let apps = [ ticker "V" 5. ~pacer_proc:1; ticker "Big" 9. ~pacer_proc:2;
               ticker "Small" 2. ~pacer_proc:3 ] in
  let ranked = Sensitivity.rank_for ~victim:"V" apps in
  Alcotest.(check int) "two interferers" 2 (List.length ranked);
  (match ranked with
  | first :: second :: _ ->
      Alcotest.(check string) "heavy first" "Big" first.Sensitivity.removed;
      Alcotest.(check string) "light second" "Small" second.Sensitivity.removed;
      Alcotest.(check bool) "ordered" true
        (first.Sensitivity.relief_pct >= second.Sensitivity.relief_pct)
  | _ -> Alcotest.fail "arity");
  match Sensitivity.rank_for ~victim:"Nope" apps with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown victim accepted"

let test_relief_non_negative () =
  let impacts = Sensitivity.leave_one_out (apps ()) in
  List.iter
    (fun (i : Sensitivity.impact) ->
      Alcotest.(check bool) "non-negative relief" true (i.relief_pct >= -1e-9))
    impacts

let test_render () =
  let out = Sensitivity.render (Sensitivity.leave_one_out (apps ())) in
  Alcotest.(check bool) "header" true (Fixtures.contains ~affix:"Victim" out);
  Alcotest.(check bool) "apps named" true
    (Fixtures.contains ~affix:"A" out && Fixtures.contains ~affix:"B" out)

let test_single_app_no_impacts () =
  Alcotest.(check int) "no pairs" 0
    (List.length (Sensitivity.leave_one_out [ List.hd (apps ()) ]))

let suite =
  [
    Alcotest.test_case "two apps full relief" `Quick test_two_apps_full_relief;
    Alcotest.test_case "rank by relief" `Quick test_rank_orders_by_relief;
    Alcotest.test_case "relief non-negative" `Quick test_relief_non_negative;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "single app" `Quick test_single_app_no_impacts;
  ]
