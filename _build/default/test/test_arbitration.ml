open Desim

(* Three identical tickers saturating one processor (worker tau 5 every
   isolation period 10, so demand 1.5x capacity). Under FCFS all three share
   fairly; under fixed priority the highest-priority app keeps its isolation
   period while the lowest starves. *)
let ticker name ~pacer_proc =
  ( Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 5.); (name ^ "p", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |],
    [| 0; pacer_proc |] )

let saturated_apps () =
  let gx, mx = ticker "X" ~pacer_proc:1
  and gy, my = ticker "Y" ~pacer_proc:2
  and gz, mz = ticker "Z" ~pacer_proc:3 in
  [|
    { Engine.graph = gx; mapping = mx };
    { Engine.graph = gy; mapping = my };
    { Engine.graph = gz; mapping = mz };
  |]

let test_fcfs_fair () =
  let results, _ = Engine.run ~horizon:60_000. ~procs:4 (saturated_apps ()) in
  Array.iter
    (fun (r : Engine.result) -> Fixtures.check_float ~eps:1e-2 "fair share" 15. r.avg_period)
    results

let test_priority_favours_first () =
  let results, _ =
    Engine.run ~arbitration:Engine.Fixed_priority ~horizon:60_000. ~procs:4
      (saturated_apps ())
  in
  (* App X (priority 0) runs as if alone. *)
  Fixtures.check_float ~eps:1e-2 "X keeps isolation" 10. results.(0).Engine.avg_period;
  (* X and Y saturate the node between them (2 x 5 per 10 time units), so
     the lowest-priority Z starves outright: far fewer iterations than its
     fair share, and no steady period. *)
  Alcotest.(check bool) "Z starves" true
    (Float.is_nan results.(2).Engine.avg_period || results.(2).Engine.avg_period > 15.);
  Alcotest.(check bool) "Z iterations collapse" true
    (results.(2).Engine.iterations * 3 < results.(0).Engine.iterations);
  Fixtures.check_float ~eps:1e-2 "Y also unharmed" 10. results.(1).Engine.avg_period

let test_policies_agree_without_contention () =
  (* One app per processor: arbitration is irrelevant. *)
  let g = Fixtures.graph_a () in
  let app = [| { Engine.graph = g; mapping = [| 0; 1; 2 |] } |] in
  let fcfs, _ = Engine.run ~horizon:30_000. ~procs:3 app in
  let prio, _ =
    Engine.run ~arbitration:Engine.Fixed_priority ~horizon:30_000. ~procs:3 app
  in
  Fixtures.check_float "identical period" fcfs.(0).Engine.avg_period
    prio.(0).Engine.avg_period

let test_priority_preserves_total_work () =
  (* Arbitration redistributes waiting, not work: total firings match. *)
  let _, stats_fcfs = Engine.run ~horizon:30_000. ~procs:4 (saturated_apps ()) in
  let _, stats_prio =
    Engine.run ~arbitration:Engine.Fixed_priority ~horizon:30_000. ~procs:4
      (saturated_apps ())
  in
  let diff = abs (stats_fcfs.Engine.total_firings - stats_prio.Engine.total_firings) in
  (* The shared processor is saturated either way; only boundary effects
     differ. *)
  Alcotest.(check bool) "similar total work" true
    (diff * 100 < stats_fcfs.Engine.total_firings * 5)

let suite =
  [
    Alcotest.test_case "fcfs fair" `Quick test_fcfs_fair;
    Alcotest.test_case "priority favours first" `Quick test_priority_favours_first;
    Alcotest.test_case "agree without contention" `Quick test_policies_agree_without_contention;
    Alcotest.test_case "work conserved" `Quick test_priority_preserves_total_work;
  ]
