open Repro_stats

let test_mean_stddev () =
  Fixtures.check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Fixtures.check_float "mean_arr" 2.5 (Stats.mean_arr [| 1.; 2.; 3.; 4. |]);
  Fixtures.check_float "stddev" (sqrt 1.25) (Stats.stddev [ 1.; 2.; 3.; 4. ]);
  Fixtures.check_float "stddev const" 0. (Stats.stddev [ 5.; 5.; 5. ])

let test_median_percentile () =
  Fixtures.check_float "median odd" 3. (Stats.median [ 5.; 1.; 3. ]);
  Fixtures.check_float "median even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  Fixtures.check_float "p0" 1. (Stats.percentile 0. [ 1.; 2.; 3. ]);
  Fixtures.check_float "p100" 3. (Stats.percentile 100. [ 1.; 2.; 3. ]);
  Fixtures.check_float "p50" 2. (Stats.percentile 50. [ 1.; 2.; 3. ]);
  Fixtures.check_float "p25 interpolated" 1.5 (Stats.percentile 25. [ 1.; 2.; 3. ]);
  Fixtures.check_float "single" 7. (Stats.percentile 30. [ 7. ])

let test_min_max () =
  Fixtures.check_float "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Fixtures.check_float "max" 3. (Stats.maximum [ 3.; 1.; 2. ])

let test_empty_raises () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "empty accepted"
  in
  raises (fun () -> Stats.mean []);
  raises (fun () -> Stats.median []);
  raises (fun () -> Stats.stddev []);
  raises (fun () -> Stats.percentile 50. []);
  raises (fun () -> Stats.mean_arr [||]);
  raises (fun () -> Stats.percentile 101. [ 1. ])

let test_abs_pct_error () =
  Fixtures.check_float "10% high" 10. (Stats.abs_pct_error ~reference:100. 110.);
  Fixtures.check_float "10% low" 10. (Stats.abs_pct_error ~reference:100. 90.);
  Fixtures.check_float "exact" 0. (Stats.abs_pct_error ~reference:42. 42.);
  (match Stats.abs_pct_error ~reference:0. 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero reference accepted");
  Fixtures.check_float "paired mean" 15.
    (Stats.mean_abs_pct_error ~reference:[ 100.; 200. ] [ 110.; 160. ]);
  match Stats.mean_abs_pct_error ~reference:[ 1. ] [ 1.; 2. ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let test_accumulator () =
  let acc = Stats.accumulator () in
  Alcotest.(check int) "empty count" 0 (Stats.count acc);
  (match Stats.acc_mean acc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty mean accepted");
  List.iter (Stats.add acc) [ 2.; 4.; 9. ];
  Alcotest.(check int) "count" 3 (Stats.count acc);
  Fixtures.check_float "acc mean" 5. (Stats.acc_mean acc);
  Fixtures.check_float "acc max" 9. (Stats.acc_max acc);
  Fixtures.check_float "acc min" 2. (Stats.acc_min acc)

let prop_mean_bounds =
  Fixtures.qcheck_case "mean within min/max"
    QCheck2.Gen.(list_size (int_range 1 20) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let prop_accumulator_matches_list =
  Fixtures.qcheck_case "accumulator = list stats"
    QCheck2.Gen.(list_size (int_range 1 20) (float_range (-100.) 100.))
    (fun xs ->
      let acc = Stats.accumulator () in
      List.iter (Stats.add acc) xs;
      Fixtures.float_eq ~eps:1e-9 (Stats.mean xs) (Stats.acc_mean acc)
      && Stats.acc_max acc = Stats.maximum xs
      && Stats.acc_min acc = Stats.minimum xs)

let suite =
  [
    Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
    Alcotest.test_case "median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "abs pct error" `Quick test_abs_pct_error;
    Alcotest.test_case "accumulator" `Quick test_accumulator;
    prop_mean_bounds;
    prop_accumulator_matches_list;
  ]
