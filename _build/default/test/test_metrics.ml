open Sdf

let test_pipeline () =
  match Metrics.analyse ~iterations:3 (Fixtures.pipeline ()) with
  | None -> Alcotest.fail "pipeline deadlocked"
  | Some m ->
      (* tau0 = 3, tau1 = 5: first iteration (both actors once) ends at 8;
         three iterations take 24 (no overlap with one feedback token). *)
      Fixtures.check_float "latency" 8. m.latency;
      Fixtures.check_float "makespan" 24. m.makespan;
      Alcotest.(check int) "channels" 2 (Array.length m.buffer_peaks);
      (* One token in flight at a time on each channel. *)
      Alcotest.(check (array int)) "peaks" [| 1; 1 |] m.buffer_peaks;
      Alcotest.(check int) "total bound" 2 (Metrics.buffer_bound_total m)

let test_paper_graph () =
  match Metrics.analyse (Fixtures.graph_a ()) with
  | None -> Alcotest.fail "graph A deadlocked"
  | Some m ->
      (* Per(A) = 300 with no pipelining: k iterations take k * 300. *)
      Fixtures.check_float "latency = one period" 300. m.latency;
      Fixtures.check_float "makespan = 3 periods" 900. m.makespan;
      (* a0 produces 2 tokens consumed one per a1 firing: peak 2. *)
      Alcotest.(check bool) "a0->a1 peak" true (m.buffer_peaks.(0) = 2)

let test_overlapped_pipeline_latency_vs_period () =
  (* With 2 feedback tokens, iterations overlap: makespan/iteration < latency
     of the first. *)
  let g =
    Graph.create ~name:"pipe2"
      ~actors:[| ("p0", 3.); ("p1", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 2) |]
  in
  match Metrics.analyse ~iterations:10 g with
  | None -> Alcotest.fail "deadlock"
  | Some m ->
      let period = Statespace.period_exn g in
      Fixtures.check_float "steady period" 5. period;
      Alcotest.(check bool) "makespan amortises to period" true
        (m.makespan < 10. *. 8. && m.makespan >= 10. *. period -. 8.)

let test_deadlock_returns_none () =
  Alcotest.(check bool) "deadlock" true (Metrics.analyse (Fixtures.deadlocked ()) = None)

let test_invalid_iterations () =
  match Metrics.analyse ~iterations:0 (Fixtures.pipeline ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 iterations accepted"

(* Buffer peaks never fall below the initial token counts, and the makespan
   grows linearly-at-most with the iteration count. *)
let prop_peaks_bound_initial =
  Fixtures.qcheck_case ~count:60 "peaks >= initial tokens" Fixtures.graph_gen (fun g ->
      match Metrics.analyse g with
      | None -> false
      | Some m ->
          Array.for_all2
            (fun peak (c : Graph.channel) -> peak >= c.tokens)
            m.buffer_peaks g.channels)

let prop_makespan_vs_period =
  (* k iterations self-timed never take longer than k sequential periods plus
     one transient period, and at least (k-1) periods. *)
  Fixtures.qcheck_case ~count:40 "makespan brackets" Fixtures.graph_gen (fun g ->
      let k = 4 in
      match Metrics.analyse ~iterations:k g with
      | None -> false
      | Some m ->
          let per = Statespace.period_exn g in
          m.makespan <= (float_of_int (k + 1) *. per) +. 1e-6
          && m.makespan +. 1e-6 >= float_of_int (k - 1) *. per)

let suite =
  [
    Alcotest.test_case "pipeline" `Quick test_pipeline;
    Alcotest.test_case "paper graph" `Quick test_paper_graph;
    Alcotest.test_case "overlap" `Quick test_overlapped_pipeline_latency_vs_period;
    Alcotest.test_case "deadlock" `Quick test_deadlock_returns_none;
    Alcotest.test_case "invalid iterations" `Quick test_invalid_iterations;
    prop_peaks_bound_initial;
    prop_makespan_vs_period;
  ]
