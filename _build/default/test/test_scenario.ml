let sweep_fixture =
  lazy
    (let w =
       Exp.Workload.make ~seed:21 ~num_apps:3 ~procs:6
         ~params:
           {
             Sdfgen.Generator.default_params with
             actors_min = 3;
             actors_max = 5;
             exec_min = 2;
             exec_max = 15;
           }
         ()
     in
     (w, Exp.Sweep.run ~horizon:20_000. w))

let test_probability_product_form () =
  let s = Exp.Scenario.make [| 0.5; 0.25; 1.0 |] in
  Fixtures.check_float "only C" (0.5 *. 0.75 *. 1.0)
    (Exp.Scenario.probability s (Contention.Usecase.of_list [ 2 ]));
  Fixtures.check_float "A and C" (0.5 *. 0.75)
    (Exp.Scenario.probability s (Contention.Usecase.of_list [ 0; 2 ]));
  Fixtures.check_float "all" (0.5 *. 0.25)
    (Exp.Scenario.probability s (Contention.Usecase.of_list [ 0; 1; 2 ]));
  (* Probabilities over all subsets (incl. empty) sum to one. *)
  let total =
    List.fold_left
      (fun acc u -> acc +. Exp.Scenario.probability s u)
      (Exp.Scenario.probability s 0)
      (Contention.Usecase.all ~napps:3)
  in
  Fixtures.check_float "normalised" 1. total

let test_validation () =
  match Exp.Scenario.make [| 1.5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability > 1 accepted"

let test_always_on_equals_full_usecase () =
  let _, sweep = Lazy.force sweep_fixture in
  let s = Exp.Scenario.uniform ~napps:3 1. in
  (* With everyone always on, the expectation is the full use-case value. *)
  let full = Contention.Usecase.full ~napps:3 in
  let full_sim =
    List.find_map
      (fun (o : Exp.Sweep.observation) ->
        if o.usecase = full && o.app_index = 0 then Some o.simulated_period else None)
      sweep.observations
  in
  Fixtures.check_float "E = full use-case" (Option.get full_sim)
    (Exp.Scenario.expected_period s sweep ~app:0 Exp.Scenario.Simulated)

let test_rarely_on_tends_to_isolation () =
  let w, sweep = Lazy.force sweep_fixture in
  let s = Exp.Scenario.uniform ~napps:3 0.01 in
  let expected = Exp.Scenario.expected_period s sweep ~app:0 Exp.Scenario.Simulated in
  let isolation = (Exp.Workload.isolation_periods w).(0) in
  (* With partners almost never active, the conditional expectation is close
     to the isolation period. *)
  Alcotest.(check bool) "near isolation" true
    (Float.abs (expected -. isolation) /. isolation < 0.10)

let test_estimated_source_and_errors () =
  let _, sweep = Lazy.force sweep_fixture in
  let s = Exp.Scenario.uniform ~napps:3 0.5 in
  let est =
    Exp.Scenario.expected_period s sweep ~app:1
      (Exp.Scenario.Estimated (Contention.Analysis.Order 2))
  in
  Alcotest.(check bool) "finite" true (Float.is_finite est);
  (match Exp.Scenario.expected_period s sweep ~app:9 Exp.Scenario.Simulated with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad app index accepted");
  match
    Exp.Scenario.expected_period s sweep ~app:0
      (Exp.Scenario.Estimated (Contention.Analysis.Order 9))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown estimator accepted"

let test_render () =
  let _, sweep = Lazy.force sweep_fixture in
  let s = Exp.Scenario.uniform ~napps:3 0.5 in
  let out = Exp.Scenario.render s sweep in
  Alcotest.(check bool) "has apps" true (Fixtures.contains ~affix:"A" out);
  Alcotest.(check bool) "has sim column" true (Fixtures.contains ~affix:"sim" out)

let suite =
  [
    Alcotest.test_case "product form" `Quick test_probability_product_form;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "always on" `Slow test_always_on_equals_full_usecase;
    Alcotest.test_case "rarely on" `Slow test_rarely_on_tends_to_isolation;
    Alcotest.test_case "estimated source" `Slow test_estimated_source_and_errors;
    Alcotest.test_case "render" `Slow test_render;
  ]
