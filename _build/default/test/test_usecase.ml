open Contention

let test_roundtrip () =
  let u = Usecase.of_list [ 0; 2; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 0; 2; 5 ] (Usecase.to_list u);
  Alcotest.(check int) "cardinal" 3 (Usecase.cardinal u);
  Alcotest.(check bool) "mem 2" true (Usecase.mem 2 u);
  Alcotest.(check bool) "mem 3" false (Usecase.mem 3 u)

let test_add_remove () =
  let u = Usecase.singleton 1 in
  let u = Usecase.add 4 u in
  Alcotest.(check (list int)) "added" [ 1; 4 ] (Usecase.to_list u);
  let u = Usecase.remove 1 u in
  Alcotest.(check (list int)) "removed" [ 4 ] (Usecase.to_list u);
  (* Removing an absent element is a no-op. *)
  Alcotest.(check (list int)) "noop remove" [ 4 ] (Usecase.to_list (Usecase.remove 9 u))

let test_all_count () =
  (* 2^10 - 1 = 1023, the paper's "over a thousand use-cases". *)
  Alcotest.(check int) "1023 use-cases" 1023 (List.length (Usecase.all ~napps:10));
  Alcotest.(check int) "single app" 1 (List.length (Usecase.all ~napps:1));
  (* None empty, all distinct. *)
  let cases = Usecase.all ~napps:5 in
  Alcotest.(check bool) "no empty" true (List.for_all (fun u -> Usecase.cardinal u > 0) cases);
  Alcotest.(check int) "distinct" 31 (List.length (List.sort_uniq Int.compare cases))

let test_of_size () =
  let sized = Usecase.of_size ~napps:5 2 in
  Alcotest.(check int) "C(5,2)" 10 (List.length sized);
  Alcotest.(check bool) "all size 2" true
    (List.for_all (fun u -> Usecase.cardinal u = 2) sized)

let test_full () =
  let f = Usecase.full ~napps:4 in
  Alcotest.(check (list int)) "full" [ 0; 1; 2; 3 ] (Usecase.to_list f)

let test_invalid () =
  (match Usecase.of_list [ -1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative index accepted");
  match Usecase.all ~napps:31 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "napps 31 accepted"

let test_pp () =
  let s = Format.asprintf "%a" (Usecase.pp ~napps:4) (Usecase.of_list [ 0; 2 ]) in
  Alcotest.(check string) "pp" "{A,C}" s

let prop_roundtrip =
  Fixtures.qcheck_case "of_list . to_list = id"
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 20))
    (fun ids ->
      let distinct = List.sort_uniq Int.compare ids in
      Usecase.to_list (Usecase.of_list distinct) = distinct)

let prop_cardinal_popcount =
  Fixtures.qcheck_case "cardinal = list length" QCheck2.Gen.(int_range 0 ((1 lsl 12) - 1))
    (fun u -> Usecase.cardinal u = List.length (Usecase.to_list u))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "all count" `Quick test_all_count;
    Alcotest.test_case "of_size" `Quick test_of_size;
    Alcotest.test_case "full" `Quick test_full;
    Alcotest.test_case "invalid" `Quick test_invalid;
    Alcotest.test_case "pp" `Quick test_pp;
    prop_roundtrip;
    prop_cardinal_popcount;
  ]
