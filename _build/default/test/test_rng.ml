let test_determinism () =
  let a = Sdfgen.Rng.create 7 and b = Sdfgen.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sdfgen.Rng.bits64 a) (Sdfgen.Rng.bits64 b)
  done

let test_copy_independent () =
  let a = Sdfgen.Rng.create 7 in
  let b = Sdfgen.Rng.copy a in
  let va = Sdfgen.Rng.bits64 a in
  let vb = Sdfgen.Rng.bits64 b in
  Alcotest.(check int64) "copy continues same stream" va vb

let test_split_diverges () =
  let a = Sdfgen.Rng.create 7 in
  let b = Sdfgen.Rng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Sdfgen.Rng.bits64 a = Sdfgen.Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let test_bounds () =
  let rng = Sdfgen.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Sdfgen.Rng.int rng 10 in
    Alcotest.(check bool) "int in [0,10)" true (v >= 0 && v < 10);
    let v = Sdfgen.Rng.int_in rng 5 8 in
    Alcotest.(check bool) "int_in [5,8]" true (v >= 5 && v <= 8);
    let f = Sdfgen.Rng.float rng 2.5 in
    Alcotest.(check bool) "float in [0,2.5)" true (f >= 0. && f < 2.5)
  done

let test_invalid_bounds () =
  let rng = Sdfgen.Rng.create 1 in
  (match Sdfgen.Rng.int rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 accepted");
  (match Sdfgen.Rng.int_in rng 3 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty range accepted");
  match Sdfgen.Rng.pick rng [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick accepted"

let test_shuffle_permutation () =
  let rng = Sdfgen.Rng.create 3 in
  let arr = Array.init 20 Fun.id in
  let shuffled = Array.copy arr in
  Sdfgen.Rng.shuffle rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" arr sorted

let test_uniformity_rough () =
  (* chi-square-free sanity: each of 8 buckets gets 5-20% of 8000 draws. *)
  let rng = Sdfgen.Rng.create 99 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Sdfgen.Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket roughly uniform" true (c > 400 && c < 1600))
    buckets

let test_bool_balance () =
  let rng = Sdfgen.Rng.create 5 in
  let trues = ref 0 in
  for _ = 1 to 2000 do
    if Sdfgen.Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "bool roughly balanced" true (!trues > 800 && !trues < 1200)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "invalid bounds" `Quick test_invalid_bounds;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
  ]
