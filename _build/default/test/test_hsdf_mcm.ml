open Sdf

let test_expand_counts () =
  let h = Hsdf.expand (Fixtures.graph_a ()) in
  (* q = [1;2;1] -> 4 firing nodes. *)
  Alcotest.(check int) "nodes" 4 (Hsdf.num_nodes h);
  Array.iter
    (fun (e : Hsdf.edge) ->
      Alcotest.(check bool) "delay >= 0" true (e.delay >= 0);
      Alcotest.(check bool) "node range" true
        (e.from_node >= 0 && e.from_node < 4 && e.to_node >= 0 && e.to_node < 4))
    h.edges

let test_expand_homogeneous_identity () =
  (* A homogeneous graph expands to itself (plus self-loops). *)
  let h = Hsdf.expand (Fixtures.pipeline ()) in
  Alcotest.(check int) "nodes" 2 (Hsdf.num_nodes h);
  Fixtures.check_float "period preserved" 8. (Hsdf.period (Fixtures.pipeline ()))

let test_paper_period () =
  Fixtures.check_float ~eps:1e-6 "Per(A)" 300. (Hsdf.period (Fixtures.graph_a ()));
  Fixtures.check_float ~eps:1e-6 "Per(B)" 300. (Hsdf.period (Fixtures.graph_b ()))

let test_mcm_simple_cycle () =
  (* Triangle: ratio (1+2+3)/2 = 3. *)
  let edges = [| (0, 1, 1., 0); (1, 2, 2., 1); (2, 0, 3., 1) |] in
  match Mcm.max_cycle_ratio ~nodes:3 edges with
  | Some r -> Fixtures.check_float ~eps:1e-6 "triangle" 3. r
  | None -> Alcotest.fail "no cycle found"

let test_mcm_picks_maximum () =
  (* Two disjoint cycles with ratios 2 and 5: the answer is 5. *)
  let edges = [| (0, 1, 2., 1); (1, 0, 2., 1); (2, 3, 5., 1); (3, 2, 5., 1) |] in
  match Mcm.max_cycle_ratio ~nodes:4 edges with
  | Some r -> Fixtures.check_float ~eps:1e-6 "max of cycles" 5. r
  | None -> Alcotest.fail "no cycle found"

let test_mcm_acyclic () =
  let edges = [| (0, 1, 1., 0); (1, 2, 1., 1) |] in
  Alcotest.(check bool) "acyclic -> None" true
    (Mcm.max_cycle_ratio ~nodes:3 edges = None)

let test_mcm_zero_delay_cycle () =
  let edges = [| (0, 1, 1., 0); (1, 0, 1., 0) |] in
  match Mcm.max_cycle_ratio ~nodes:2 edges with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-delay cycle accepted"

let test_mcm_negative_inputs () =
  match Mcm.max_cycle_ratio ~nodes:2 [| (0, 1, -1., 0); (1, 0, 1., 1) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative weight accepted"

let test_positive_cycle_detection () =
  Alcotest.(check bool) "positive cycle" true
    (Mcm.has_positive_cycle ~nodes:2 [| (0, 1, 1.); (1, 0, -0.5) |]);
  Alcotest.(check bool) "no positive cycle" false
    (Mcm.has_positive_cycle ~nodes:2 [| (0, 1, 1.); (1, 0, -2.) |]);
  Alcotest.(check bool) "empty graph" false (Mcm.has_positive_cycle ~nodes:0 [||])

(* The two period engines agree on random graphs — the central
   cross-validation that replaces the paper's reliance on SDF3. *)
let prop_engines_agree =
  Fixtures.qcheck_case ~count:80 "statespace = mcm" Fixtures.graph_gen (fun g ->
      let ps = Statespace.period_exn g in
      let ph = Hsdf.period g in
      Fixtures.float_eq ~eps:1e-5 ps ph)

let prop_engines_agree_fractional =
  Fixtures.qcheck_case ~count:40 "statespace = mcm (perturbed times)"
    Fixtures.graph_gen (fun g ->
      (* Perturb times to non-integers to exercise scaling paths. *)
      let times = Array.map (fun t -> t +. 0.25) (Graph.exec_times g) in
      let g = Graph.with_exec_times g times in
      Fixtures.float_eq ~eps:1e-5 (Statespace.period_exn g) (Hsdf.period g))

let suite =
  [
    Alcotest.test_case "expand counts" `Quick test_expand_counts;
    Alcotest.test_case "homogeneous identity" `Quick test_expand_homogeneous_identity;
    Alcotest.test_case "paper periods" `Quick test_paper_period;
    Alcotest.test_case "mcm simple cycle" `Quick test_mcm_simple_cycle;
    Alcotest.test_case "mcm maximum" `Quick test_mcm_picks_maximum;
    Alcotest.test_case "mcm acyclic" `Quick test_mcm_acyclic;
    Alcotest.test_case "mcm zero-delay cycle" `Quick test_mcm_zero_delay_cycle;
    Alcotest.test_case "mcm invalid input" `Quick test_mcm_negative_inputs;
    Alcotest.test_case "positive cycle detection" `Quick test_positive_cycle_detection;
    prop_engines_agree;
    prop_engines_agree_fractional;
  ]
