let test_ring () =
  let g = Sdfgen.Presets.ring ~name:"r" [| 3.; 4.; 5. |] in
  Fixtures.check_float "period = sum" 12. (Sdf.Statespace.period_exn g);
  match Sdfgen.Presets.ring ~name:"r" [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single-actor ring accepted"

let test_pipeline_overlap () =
  let serial = Sdfgen.Presets.pipeline ~name:"p" [| 3.; 7.; 5. |] in
  Fixtures.check_float "no overlap" 15. (Sdf.Statespace.period_exn serial);
  let deep = Sdfgen.Presets.pipeline ~name:"p" ~frames_in_flight:3 [| 3.; 7.; 5. |] in
  Fixtures.check_float "bottleneck" 7. (Sdf.Statespace.period_exn deep);
  match Sdfgen.Presets.pipeline ~name:"p" ~frames_in_flight:0 [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 frames accepted"

let test_media_presets_well_formed () =
  Array.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Sdf.Graph.name ^ " clean")
        true (Sdf.Validate.is_clean g);
      Alcotest.(check bool)
        (g.Sdf.Graph.name ^ " has period")
        true
        (Sdf.Statespace.period_exn g > 0.))
    (Sdfgen.Presets.media_set ())

let test_preset_scaling () =
  let base = Sdf.Statespace.period_exn (Sdfgen.Presets.h263_decoder ()) in
  let doubled = Sdf.Statespace.period_exn (Sdfgen.Presets.h263_decoder ~scale:2. ()) in
  Fixtures.check_float "scaled" (2. *. base) doubled

let test_h263_multirate () =
  let g = Sdfgen.Presets.h263_decoder () in
  let q = Sdf.Repetition.compute_exn g in
  (* 99 block-level firings per frame. *)
  Alcotest.(check (array int)) "repetition" [| 1; 99; 99; 1 |] q

let test_validate_clean_graph () =
  Alcotest.(check (list int)) "no findings" []
    (List.map (fun _ -> 0) (Sdf.Validate.check (Fixtures.graph_a ())));
  Alcotest.(check bool) "is_clean" true (Sdf.Validate.is_clean (Fixtures.graph_a ()))

let test_validate_findings () =
  let has pred g = List.exists pred (Sdf.Validate.check g) in
  Alcotest.(check bool) "deadlock found" true
    (has (function Sdf.Validate.Deadlocks -> true | _ -> false) (Fixtures.deadlocked ()));
  Alcotest.(check bool) "inconsistency found" true
    (has
       (function Sdf.Validate.Inconsistent _ -> true | _ -> false)
       (Fixtures.inconsistent ()));
  let chain =
    Sdf.Graph.create ~name:"chain"
      ~actors:[| ("x", 1.); ("y", 1.) |]
      ~channels:[| (0, 1, 1, 1, 0) |]
  in
  Alcotest.(check bool) "weak connectivity flagged" true
    (has (function Sdf.Validate.Not_strongly_connected -> true | _ -> false) chain);
  let disconnected =
    Sdf.Graph.create ~name:"disc"
      ~actors:[| ("x", 1.); ("y", 1.) |]
      ~channels:[| (0, 0, 1, 1, 1); (1, 1, 1, 1, 1) |]
  in
  Alcotest.(check bool) "disconnection flagged" true
    (has (function Sdf.Validate.Disconnected -> true | _ -> false) disconnected);
  let starved =
    Sdf.Graph.create ~name:"starved"
      ~actors:[| ("x", 1.) |]
      ~channels:[| (0, 0, 1, 2, 1) |]
  in
  Alcotest.(check bool) "starved self-loop flagged" true
    (has (function Sdf.Validate.Dead_self_loop 0 -> true | _ -> false) starved)

let test_validate_huge_repetition () =
  let g =
    Sdf.Graph.create ~name:"big"
      ~actors:[| ("x", 1.); ("y", 1.) |]
      ~channels:[| (0, 1, 500, 1, 0); (1, 0, 1, 500, 500) |]
  in
  let findings = Sdf.Validate.check ~repetition_limit:100 g in
  Alcotest.(check bool) "huge repetition flagged" true
    (List.exists
       (function Sdf.Validate.Huge_repetition (_, 500) -> true | _ -> false)
       findings)

let test_finding_printer () =
  let s = Format.asprintf "%a" Sdf.Validate.pp_finding Sdf.Validate.Deadlocks in
  Alcotest.(check bool) "mentions deadlock" true (Fixtures.contains ~affix:"deadlock" s)

(* Generated graphs always lint clean. *)
let prop_generated_clean =
  Fixtures.qcheck_case ~count:60 "generated graphs are clean" Fixtures.graph_gen
    Sdf.Validate.is_clean

let suite =
  [
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "pipeline overlap" `Quick test_pipeline_overlap;
    Alcotest.test_case "media presets" `Quick test_media_presets_well_formed;
    Alcotest.test_case "preset scaling" `Quick test_preset_scaling;
    Alcotest.test_case "h263 multirate" `Quick test_h263_multirate;
    Alcotest.test_case "clean graph" `Quick test_validate_clean_graph;
    Alcotest.test_case "findings" `Quick test_validate_findings;
    Alcotest.test_case "huge repetition" `Quick test_validate_huge_repetition;
    Alcotest.test_case "finding printer" `Quick test_finding_printer;
    prop_generated_clean;
  ]
