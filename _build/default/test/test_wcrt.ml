open Contention

let test_sums_exec_times () =
  let loads =
    [ Prob.make ~p:0.1 ~mu:10. ~tau:20.; Prob.make ~p:0.9 ~mu:25. ~tau:50. ]
  in
  Fixtures.check_float "sum of taus" 70. (Wcrt.waiting_time loads);
  Fixtures.check_float "raw taus" 70. (Wcrt.waiting_time_of_exec_times [ 20.; 50. ])

let test_empty () =
  Fixtures.check_float "empty" 0. (Wcrt.waiting_time []);
  Fixtures.check_float "empty raw" 0. (Wcrt.waiting_time_of_exec_times [])

let test_probability_independent () =
  (* The worst case ignores probabilities entirely. *)
  let low = [ Prob.make ~p:0.01 ~mu:10. ~tau:20. ] in
  let high = [ Prob.make ~p:0.99 ~mu:10. ~tau:20. ] in
  Fixtures.check_float "same bound" (Wcrt.waiting_time low) (Wcrt.waiting_time high)

let prop_dominates_exact =
  (* Soundness of the baseline: it upper-bounds the probabilistic wait. *)
  Fixtures.qcheck_case "wcrt >= exact" (Fixtures.load_gen ()) (fun loads ->
      Wcrt.waiting_time loads +. 1e-9 >= Exact.waiting_time loads)

let prop_dominates_composability =
  (* The worst case dominates the exact expectation; the truncated
     over-estimates (second order, composability) can exceed it at extreme
     loads, so only the exact comparison is a law. *)
  Fixtures.qcheck_case "wcrt >= brute-force expectation" (Fixtures.load_gen ())
    (fun loads ->
      Wcrt.waiting_time loads +. 1e-9 >= Exact.waiting_time_brute_force loads)

let prop_additive =
  Fixtures.qcheck_case "additive in contenders"
    QCheck2.Gen.(pair (Fixtures.load_gen ()) (Fixtures.load_gen ()))
    (fun (a, b) ->
      Fixtures.float_eq ~eps:1e-9
        (Wcrt.waiting_time a +. Wcrt.waiting_time b)
        (Wcrt.waiting_time (a @ b)))

let suite =
  [
    Alcotest.test_case "sums exec times" `Quick test_sums_exec_times;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "probability independent" `Quick test_probability_independent;
    prop_dominates_exact;
    prop_dominates_composability;
    prop_additive;
  ]
