open Contention

(* A workload where the modulo mapping is clearly bad: two heavy single-actor
   rings both land on processor 0 while processor 1 idles. *)
let contended_pair () =
  let mk name =
    Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 10.); (name ^ "p", 10.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  [ (mk "X", [| 0; 1 |]); (mk "Y", [| 0; 1 |]) ]

let test_score_contention_free_is_one () =
  let g = Fixtures.graph_a () in
  let assignment = [ (g, [| 0; 1; 2 |]) ] in
  Fixtures.check_float "single app score" 1. (Explore.score ~procs:3 assignment)

let test_score_orders_alternatives () =
  (* Overlapping mapping scores worse than a disjoint one. *)
  let gs = contended_pair () in
  let overlapping = Explore.score ~procs:4 gs in
  let disjoint =
    Explore.score ~procs:4
      (List.mapi (fun i (g, _) -> (g, [| 2 * i; (2 * i) + 1 |])) gs)
  in
  Fixtures.check_float "disjoint is contention-free" 1. disjoint;
  Alcotest.(check bool) "overlap worse" true (overlapping > disjoint)

let test_improve_finds_disjoint_mapping () =
  let outcome = Explore.improve ~procs:4 (contended_pair ()) in
  Alcotest.(check bool) "score improves" true
    (outcome.final_score < outcome.initial_score);
  Fixtures.check_float "reaches optimum" 1. outcome.final_score;
  Alcotest.(check bool) "made moves" true (outcome.moves > 0);
  Alcotest.(check bool) "spent evaluations" true (outcome.evaluations > outcome.moves);
  (* The result is a valid assignment with the workers separated. *)
  match outcome.assignment with
  | [ (_, mx); (_, my) ] ->
      Alcotest.(check bool) "workers separated" true (mx.(0) <> my.(0))
  | _ -> Alcotest.fail "arity"

let test_improve_respects_max_moves () =
  let outcome = Explore.improve ~max_moves:0 ~procs:4 (contended_pair ()) in
  Alcotest.(check int) "no moves" 0 outcome.moves;
  Fixtures.check_float "unchanged" outcome.initial_score outcome.final_score

let test_initial () =
  let graphs = [ Fixtures.graph_a (); Fixtures.graph_b () ] in
  let assignment = Explore.initial ~procs:2 graphs in
  List.iter
    (fun ((g : Sdf.Graph.t), m) ->
      Alcotest.(check int) "length" (Sdf.Graph.num_actors g) (Array.length m);
      Array.iteri (fun j p -> Alcotest.(check int) "modulo" (j mod 2) p) m)
    assignment

(* Local search never worsens the score and stays valid. *)
let prop_improve_monotone =
  Fixtures.qcheck_case ~count:10 "improve never worsens"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let procs = 3 in
      let outcome =
        Explore.improve ~max_moves:3 ~procs (Explore.initial ~procs [ g1; g2 ])
      in
      outcome.final_score <= outcome.initial_score +. 1e-9)

let suite =
  [
    Alcotest.test_case "contention-free score" `Quick test_score_contention_free_is_one;
    Alcotest.test_case "score orders alternatives" `Quick test_score_orders_alternatives;
    Alcotest.test_case "improve finds disjoint" `Quick test_improve_finds_disjoint_mapping;
    Alcotest.test_case "max moves" `Quick test_improve_respects_max_moves;
    Alcotest.test_case "initial" `Quick test_initial;
    prop_improve_monotone;
  ]
