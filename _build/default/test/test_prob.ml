open Contention

let test_paper_values () =
  (* Figure 2: P(a0) = 100*1/300 = 1/3, mu(a0) = 50. *)
  let l = Prob.of_actor ~exec_time:100. ~repetitions:1 ~period:300. in
  Fixtures.check_float "P(a0)" (1. /. 3.) l.p;
  Fixtures.check_float "mu(a0)" 50. l.mu;
  Fixtures.check_float "tau" 100. l.tau;
  (* a1 fires twice: P = 50*2/300 = 1/3, mu = 25. *)
  let l1 = Prob.of_actor ~exec_time:50. ~repetitions:2 ~period:300. in
  Fixtures.check_float "P(a1)" (1. /. 3.) l1.p;
  Fixtures.check_float "mu(a1)" 25. l1.mu

let test_saturation_cap () =
  let l = Prob.of_actor ~exec_time:100. ~repetitions:5 ~period:300. in
  Fixtures.check_float "capped at 1" 1. l.p

let test_waiting_product () =
  let l = Prob.make ~p:0.5 ~mu:30. ~tau:60. in
  Fixtures.check_float "mu*p" 15. (Prob.waiting_product l);
  Fixtures.check_float "idle product" 0. (Prob.waiting_product Prob.idle)

let test_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid load accepted"
  in
  invalid (fun () -> Prob.make ~p:1.5 ~mu:1. ~tau:2.);
  invalid (fun () -> Prob.make ~p:(-0.1) ~mu:1. ~tau:2.);
  invalid (fun () -> Prob.make ~p:0.5 ~mu:(-1.) ~tau:2.);
  invalid (fun () -> Prob.make ~p:0.5 ~mu:1. ~tau:(-2.));
  invalid (fun () -> Prob.of_actor ~exec_time:0. ~repetitions:1 ~period:10.);
  invalid (fun () -> Prob.of_actor ~exec_time:1. ~repetitions:0 ~period:10.);
  invalid (fun () -> Prob.of_actor ~exec_time:1. ~repetitions:1 ~period:0.)

let test_pp () =
  let s = Format.asprintf "%a" Prob.pp (Prob.make ~p:0.25 ~mu:10. ~tau:20.) in
  Alcotest.(check bool) "pp shows p" true (Fixtures.contains ~affix:"0.25" s)

let prop_of_actor_in_range =
  Fixtures.qcheck_case "of_actor yields valid probability"
    QCheck2.Gen.(triple (float_range 1. 100.) (int_range 1 5) (float_range 1. 1000.))
    (fun (tau, q, per) ->
      let l = Prob.of_actor ~exec_time:tau ~repetitions:q ~period:per in
      l.p >= 0. && l.p <= 1. && l.mu = tau /. 2.)

let suite =
  [
    Alcotest.test_case "paper values" `Quick test_paper_values;
    Alcotest.test_case "saturation cap" `Quick test_saturation_cap;
    Alcotest.test_case "waiting product" `Quick test_waiting_product;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "pp" `Quick test_pp;
    prop_of_actor_in_range;
  ]
