open Contention

let test_second_order_closed_form () =
  (* Equation 5: W = sum_i w_i (1 + 1/2 sum_(j<>i) P_j). *)
  let a = Prob.make ~p:0.4 ~mu:10. ~tau:20. in
  let b = Prob.make ~p:0.6 ~mu:25. ~tau:50. in
  let c = Prob.make ~p:0.2 ~mu:5. ~tau:10. in
  let expected =
    (10. *. 0.4 *. (1. +. (0.5 *. 0.8)))
    +. (25. *. 0.6 *. (1. +. (0.5 *. 0.6)))
    +. (5. *. 0.2 *. (1. +. (0.5 *. 1.0)))
  in
  Fixtures.check_float "closed form" expected (Approx.second_order [ a; b; c ]);
  Fixtures.check_float "order:2 agrees" expected (Approx.waiting_time ~order:2 [ a; b; c ])

let test_two_actors_all_orders_equal () =
  (* With two contenders the series has a single term, so every order >= 2
     equals the exact value. *)
  let loads = [ Prob.make ~p:0.5 ~mu:10. ~tau:20.; Prob.make ~p:0.3 ~mu:20. ~tau:40. ] in
  let exact = Exact.waiting_time loads in
  List.iter
    (fun order ->
      Fixtures.check_float "order = exact" exact (Approx.waiting_time ~order loads))
    [ 2; 3; 4; 7 ]

let test_invalid_order () =
  match Approx.waiting_time ~order:1 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "order 1 accepted"

let test_empty () =
  Fixtures.check_float "empty" 0. (Approx.second_order []);
  Fixtures.check_float "empty o4" 0. (Approx.fourth_order [])

let prop_high_order_is_exact =
  (* Order >= number of contenders + 1 leaves nothing truncated. *)
  Fixtures.qcheck_case "high order = exact" (Fixtures.load_gen ()) (fun loads ->
      let exact = Exact.waiting_time loads in
      let full = Approx.waiting_time ~order:(Int.max 2 (List.length loads + 1)) loads in
      Fixtures.float_eq ~eps:1e-9 exact full)

let prop_second_conservative =
  (* The paper: "the second order estimate is always more conservative than
     the fourth order estimate". *)
  Fixtures.qcheck_case "second >= fourth" (Fixtures.load_gen ()) (fun loads ->
      Approx.second_order loads +. 1e-9 >= Approx.fourth_order loads)

let prop_fourth_above_exact =
  (* Truncating after a positive series term over-estimates. *)
  Fixtures.qcheck_case "fourth >= exact" (Fixtures.load_gen ()) (fun loads ->
      Approx.fourth_order loads +. 1e-9 >= Exact.waiting_time loads)

let prop_even_orders_decrease =
  (* For up to six contenders the truncation terms shrink with the degree,
     so the even-order over-estimates close in on the exact value
     monotonically.  (With more contenders the symmetric-polynomial terms
     need not be monotone and only order-2 >= order-4 — the paper's
     observation — survives; see [prop_second_conservative].) *)
  Fixtures.qcheck_case "even orders decrease towards exact"
    (Fixtures.load_gen ~max_actors:6 ()) (fun loads ->
      let w o = Approx.waiting_time ~order:o loads in
      w 2 +. 1e-9 >= w 4 && w 4 +. 1e-9 >= w 6 && w 6 +. 1e-9 >= Exact.waiting_time loads)

let prop_second_order_matches_generic =
  Fixtures.qcheck_case "closed form = generic order 2" (Fixtures.load_gen ())
    (fun loads ->
      Fixtures.float_eq ~eps:1e-9 (Approx.second_order loads)
        (Approx.waiting_time ~order:2 loads))

let suite =
  [
    Alcotest.test_case "second order closed form" `Quick test_second_order_closed_form;
    Alcotest.test_case "two actors: orders equal" `Quick test_two_actors_all_orders_equal;
    Alcotest.test_case "invalid order" `Quick test_invalid_order;
    Alcotest.test_case "empty" `Quick test_empty;
    prop_high_order_is_exact;
    prop_second_conservative;
    prop_fourth_above_exact;
    prop_even_orders_decrease;
    prop_second_order_matches_generic;
  ]
