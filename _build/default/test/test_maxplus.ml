let test_identity_multiply () =
  let i3 = Maxplus.identity 3 in
  let m = Maxplus.matrix 3 in
  m.(0).(1) <- 5.;
  m.(2).(0) <- 2.;
  let left = Maxplus.multiply i3 m and right = Maxplus.multiply m i3 in
  for r = 0 to 2 do
    for c = 0 to 2 do
      Alcotest.(check bool) "left identity" true (left.(r).(c) = m.(r).(c));
      Alcotest.(check bool) "right identity" true (right.(r).(c) = m.(r).(c))
    done
  done;
  match Maxplus.multiply i3 (Maxplus.identity 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch accepted"

let test_apply () =
  let m = Maxplus.matrix 2 in
  m.(0).(0) <- 1.;
  m.(0).(1) <- 3.;
  m.(1).(0) <- 2.;
  let y = Maxplus.apply m [| 0.; 10. |] in
  Alcotest.(check (array (float 1e-9))) "apply" [| 13.; 2. |] y

let test_closure () =
  (* Acyclic: 0 -> 1 -> 2 with weights 1 and 2; closure gives the longest
     paths. *)
  let m = Maxplus.matrix 3 in
  m.(1).(0) <- 1.;
  m.(2).(1) <- 2.;
  (match Maxplus.closure m with
  | None -> Alcotest.fail "acyclic closure diverged"
  | Some star ->
      Fixtures.check_float "0->2 path" 3. star.(2).(0);
      Fixtures.check_float "diagonal" 0. star.(0).(0));
  (* A positive cycle diverges. *)
  let cyc = Maxplus.matrix 2 in
  cyc.(1).(0) <- 1.;
  cyc.(0).(1) <- 1.;
  Alcotest.(check bool) "positive cycle diverges" true (Maxplus.closure cyc = None)

let test_eigenvalue_simple_cycle () =
  (* Two-node cycle with weights 3 and 7: eigenvalue (3+7)/2 = 5. *)
  let m = Maxplus.matrix 2 in
  m.(1).(0) <- 3.;
  m.(0).(1) <- 7.;
  match Maxplus.eigenvalue m with
  | Some l -> Fixtures.check_float "cycle mean" 5. l
  | None -> Alcotest.fail "no eigenvalue"

let test_eigenvalue_empty () =
  Alcotest.(check bool) "empty" true (Maxplus.eigenvalue (Maxplus.matrix 0) = None)

let test_paper_graph_period () =
  Fixtures.check_float ~eps:1e-9 "Per(A)" 300. (Maxplus.period (Fixtures.graph_a ()));
  Fixtures.check_float ~eps:1e-9 "Per(B)" 300. (Maxplus.period (Fixtures.graph_b ()))

let test_deadlocked_rejected () =
  match Maxplus.of_graph (Fixtures.deadlocked ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-delay cycle accepted"

let test_multi_delay_registers () =
  (* A channel with three initial tokens spans three iterations: the matrix
     grows registers and the eigenvalue is period = max(tau)/... here the
     ring can overlap three deep, so the period is the bottleneck. *)
  let g =
    Sdf.Graph.create ~name:"deep"
      ~actors:[| ("x", 4.); ("y", 9.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 3) |]
  in
  Fixtures.check_float "statespace" 9. (Sdf.Statespace.period_exn g);
  Fixtures.check_float ~eps:1e-9 "maxplus" 9. (Maxplus.period g)

(* The fourth engine agrees with the other three on random graphs. *)
let prop_agrees_with_other_engines =
  Fixtures.qcheck_case ~count:60 "maxplus = statespace" Fixtures.graph_gen (fun g ->
      Fixtures.float_eq ~eps:1e-6 (Sdf.Statespace.period_exn g) (Maxplus.period g))

let suite =
  [
    Alcotest.test_case "identity/multiply" `Quick test_identity_multiply;
    Alcotest.test_case "apply" `Quick test_apply;
    Alcotest.test_case "closure" `Quick test_closure;
    Alcotest.test_case "eigenvalue cycle" `Quick test_eigenvalue_simple_cycle;
    Alcotest.test_case "eigenvalue empty" `Quick test_eigenvalue_empty;
    Alcotest.test_case "paper periods" `Quick test_paper_graph_period;
    Alcotest.test_case "deadlock rejected" `Quick test_deadlocked_rejected;
    Alcotest.test_case "multi-delay registers" `Quick test_multi_delay_registers;
    prop_agrees_with_other_engines;
  ]
