(* Integration tests of the experiment harness on a reduced workload so the
   suite stays fast: 4 applications, short simulation horizon. *)

(* procs >= actors_max keeps every application free of self-contention, like
   the paper's 10-actors-on-10-processors layout; size-1 use-cases then have
   exactly zero inaccuracy. *)
let small_workload () =
  Exp.Workload.make ~seed:7 ~num_apps:4 ~procs:6
    ~params:
      {
        Sdfgen.Generator.default_params with
        actors_min = 4;
        actors_max = 6;
        exec_min = 2;
        exec_max = 20;
      }
    ()

let test_workload_construction () =
  let w = small_workload () in
  Alcotest.(check int) "num apps" 4 (Exp.Workload.num_apps w);
  Alcotest.(check (list string)) "names" [ "A"; "B"; "C"; "D" ]
    (Array.to_list (Exp.Workload.names w));
  Array.iter
    (fun p -> Alcotest.(check bool) "positive period" true (p > 0.))
    (Exp.Workload.isolation_periods w);
  Alcotest.(check int) "app_index" 2 (Exp.Workload.app_index w "C");
  match Exp.Workload.app_index w "Z" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown app found"

let test_usecase_selection () =
  let w = small_workload () in
  let uc = Contention.Usecase.of_list [ 1; 3 ] in
  let apps = Exp.Workload.analysis_apps w uc in
  Alcotest.(check (list string)) "selected" [ "B"; "D" ]
    (List.map (fun (a : Contention.Analysis.app) -> a.graph.Sdf.Graph.name) apps);
  let sim = Exp.Workload.sim_apps w uc in
  Alcotest.(check int) "sim apps" 2 (Array.length sim)

let test_workload_determinism () =
  let w1 = small_workload () and w2 = small_workload () in
  Alcotest.(check (array (float 1e-12))) "same periods"
    (Exp.Workload.isolation_periods w1)
    (Exp.Workload.isolation_periods w2)

let run_small_sweep () =
  let w = small_workload () in
  Exp.Sweep.run ~horizon:20_000. w

let test_sweep_structure () =
  let s = run_small_sweep () in
  (* 2^4 - 1 use-cases; observations = sum of use-case sizes = 4 * 2^3 = 32. *)
  Alcotest.(check int) "observations" 32 (List.length s.observations);
  List.iter
    (fun (o : Exp.Sweep.observation) ->
      Alcotest.(check int) "4 estimates" 4 (List.length o.estimated_periods);
      Alcotest.(check bool) "positive estimates" true
        (List.for_all (fun (_, p) -> p > 0.) o.estimated_periods))
    s.observations;
  Alcotest.(check bool) "timing recorded" true (s.timing.simulation_s >= 0.)

let test_sweep_inaccuracy_shape () =
  let s = run_small_sweep () in
  let wc = Exp.Sweep.inaccuracy_period s Contention.Analysis.Worst_case in
  let o2 = Exp.Sweep.inaccuracy_period s (Contention.Analysis.Order 2) in
  let o4 = Exp.Sweep.inaccuracy_period s (Contention.Analysis.Order 4) in
  let comp = Exp.Sweep.inaccuracy_period s Contention.Analysis.Composability in
  (* The paper's headline: worst case is far worse than the probabilistic
     approaches, which are mutually close. *)
  Alcotest.(check bool) "wc dominates" true (wc > o2 && wc > o4 && wc > comp);
  Alcotest.(check bool) "probabilistic close" true (Float.abs (o2 -. comp) < 5.);
  let tp = Exp.Sweep.inaccuracy_throughput s (Contention.Analysis.Order 2) in
  Alcotest.(check bool) "throughput inaccuracy sane" true (tp >= 0. && tp < 100.)

let test_sweep_by_size () =
  let s = run_small_sweep () in
  let by_size = Exp.Sweep.inaccuracy_by_size s (Contention.Analysis.Order 2) in
  Alcotest.(check (list int)) "sizes" [ 1; 2; 3; 4 ]
    (Array.to_list (Array.map fst by_size));
  (* Size 1 has no contention: zero inaccuracy. *)
  (match by_size.(0) with
  | 1, v -> Fixtures.check_float ~eps:1e-6 "no contention" 0. v
  | _ -> Alcotest.fail "missing size 1");
  (* Unknown estimator is rejected. *)
  match Exp.Sweep.inaccuracy_period s (Contention.Analysis.Order 9) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown estimator accepted"

let test_figures_render () =
  let w = small_workload () in
  let f5 = Exp.Figures.fig5 ~horizon:20_000. w in
  Alcotest.(check int) "7 series" 7 (List.length f5.series);
  let rendered = Exp.Figures.render_fig5 f5 in
  Alcotest.(check bool) "fig5 mentions simulated" true
    (Fixtures.contains ~affix:"Simulated" rendered);
  let s = run_small_sweep () in
  let t1 = Exp.Figures.table1 s in
  Alcotest.(check int) "4 rows" 4 (List.length t1);
  Alcotest.(check (list string)) "paper row order"
    [ "Worst Case"; "Composability"; "Fourth Order"; "Second Order" ]
    (List.map (fun (r : Exp.Figures.table1_row) -> r.method_name) t1);
  let rendered = Exp.Figures.render_table1 t1 in
  Alcotest.(check bool) "complexity column" true (Fixtures.contains ~affix:"O(n" rendered);
  let f6 = Exp.Figures.fig6 s in
  Alcotest.(check int) "sizes 1..4" 4 (Array.length f6.sizes);
  let rendered = Exp.Figures.render_fig6 f6 in
  Alcotest.(check bool) "fig6 renders" true (String.length rendered > 100);
  let timing = Exp.Figures.render_timing s in
  Alcotest.(check bool) "timing renders" true
    (Fixtures.contains ~affix:"simulation" timing)

let test_fig5_normalisation () =
  let w = small_workload () in
  let f5 = Exp.Figures.fig5 ~horizon:20_000. w in
  let original = List.assoc "Original" f5.series in
  Array.iter (fun v -> Fixtures.check_float "original = 1" 1. v) original;
  (* Estimates are at least the isolation period. *)
  List.iter
    (fun (name, values) ->
      if name <> "Original" && name <> "Simulated" && name <> "Simulated Worst Case" then
        Array.iter
          (fun v -> Alcotest.(check bool) (name ^ " >= 1") true (v >= 1. -. 1e-9))
          values)
    f5.series

let test_progress_callback () =
  let w = small_workload () in
  let calls = ref 0 in
  let _ =
    Exp.Sweep.run ~horizon:5_000.
      ~usecases:[ Contention.Usecase.of_list [ 0 ]; Contention.Usecase.of_list [ 0; 1 ] ]
      ~progress:(fun d t ->
        incr calls;
        Alcotest.(check bool) "progress bounds" true (d <= t))
      w
  in
  Alcotest.(check int) "progress called per use-case" 2 !calls

let suite =
  [
    Alcotest.test_case "workload construction" `Quick test_workload_construction;
    Alcotest.test_case "usecase selection" `Quick test_usecase_selection;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "sweep structure" `Slow test_sweep_structure;
    Alcotest.test_case "sweep inaccuracy shape" `Slow test_sweep_inaccuracy_shape;
    Alcotest.test_case "sweep by size" `Slow test_sweep_by_size;
    Alcotest.test_case "figures render" `Slow test_figures_render;
    Alcotest.test_case "fig5 normalisation" `Slow test_fig5_normalisation;
    Alcotest.test_case "progress callback" `Quick test_progress_callback;
  ]

(* Sweep restricted to explicit use-cases covers exactly those, and the
   timing block accounts every estimator requested. *)
let test_sweep_estimator_subset () =
  let w = small_workload () in
  let s =
    Exp.Sweep.run ~horizon:5_000.
      ~estimators:[ Contention.Analysis.Exact ]
      ~usecases:[ Contention.Usecase.of_list [ 0; 1 ] ]
      w
  in
  Alcotest.(check int) "observations" 2 (List.length s.observations);
  List.iter
    (fun (o : Exp.Sweep.observation) ->
      Alcotest.(check int) "one estimator" 1 (List.length o.estimated_periods))
    s.observations;
  Alcotest.(check int) "one timing entry" 1 (List.length s.timing.analysis_s)

let suite = suite @ [ Alcotest.test_case "estimator subset" `Quick test_sweep_estimator_subset ]
