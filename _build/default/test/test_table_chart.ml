open Repro_stats

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "value" ] [ [ "alpha"; "1.0" ]; [ "b"; "22.5" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header" true (Fixtures.contains ~affix:"name" header);
      Alcotest.(check bool) "rule" true (Fixtures.contains ~affix:"---" rule)
  | _ -> Alcotest.fail "too few lines");
  (* All data lines have the same width. *)
  let widths =
    List.filter_map
      (fun l -> if String.length l = 0 then None else Some (String.length l))
      lines
  in
  Alcotest.(check int) "uniform width" 1 (List.length (List.sort_uniq Int.compare widths))

let test_table_validation () =
  (match Table.render ~header:[ "a"; "b" ] [ [ "only-one" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged row accepted");
  match Table.render ~align:[ Table.Left ] ~header:[ "a"; "b" ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad align accepted"

let test_float_cell () =
  Alcotest.(check string) "value" "3.1" (Table.float_cell 3.14);
  Alcotest.(check string) "decimals" "3.14" (Table.float_cell ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (Table.float_cell Float.nan)

let test_grouped_bars () =
  let out =
    Chart.grouped_bars ~labels:[ "A"; "B" ]
      ~series:[ ("sim", [| 1.; 2. |]); ("est", [| 2.; 4. |]) ]
      ()
  in
  Alcotest.(check bool) "labels present" true
    (Fixtures.contains ~affix:"A" out && Fixtures.contains ~affix:"B" out);
  Alcotest.(check bool) "bars drawn" true (Fixtures.contains ~affix:"#" out);
  (* nan values render as zero-length bars, not crashes. *)
  let with_nan = Chart.grouped_bars ~labels:[ "A" ] ~series:[ ("s", [| Float.nan |]) ] () in
  Alcotest.(check bool) "nan ok" true (String.length with_nan > 0);
  match Chart.grouped_bars ~labels:[ "A" ] ~series:[ ("s", [| 1.; 2. |]) ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

let test_lines_chart () =
  let out =
    Chart.lines ~x_label:"apps" ~y_label:"inaccuracy"
      ~xs:[| 1.; 2.; 3. |]
      ~series:[ ("wc", [| 0.; 50.; 100. |]); ("o2", [| 0.; 5.; 10. |]) ]
      ()
  in
  Alcotest.(check bool) "axis labels" true
    (Fixtures.contains ~affix:"apps" out && Fixtures.contains ~affix:"inaccuracy" out);
  Alcotest.(check bool) "legend" true (Fixtures.contains ~affix:"wc" out);
  Alcotest.(check bool) "glyphs plotted" true
    (Fixtures.contains ~affix:"*" out && Fixtures.contains ~affix:"+" out);
  (match Chart.lines ~x_label:"x" ~y_label:"y" ~xs:[||] ~series:[] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty xs accepted");
  match
    Chart.lines ~x_label:"x" ~y_label:"y" ~xs:[| 1. |] ~series:[ ("s", [| 1.; 2. |]) ] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatch accepted"

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "float cell" `Quick test_float_cell;
    Alcotest.test_case "grouped bars" `Quick test_grouped_bars;
    Alcotest.test_case "line chart" `Quick test_lines_chart;
  ]
