let traced_pipeline () =
  let g = Fixtures.pipeline () in
  let apps = [| { Desim.Engine.graph = g; mapping = [| 0; 1 |] } |] in
  let trace = Desim.Trace.create () in
  let _ =
    Desim.Engine.run ~horizon:40. ~on_event:(Desim.Trace.on_event trace) ~procs:2 apps
  in
  (trace, apps)

let test_structure () =
  let trace, apps = traced_pipeline () in
  let vcd = Desim.Vcd.of_trace trace ~apps ~procs:2 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Fixtures.contains ~affix:needle vcd))
    [
      "$timescale"; "$enddefinitions"; "$scope module pipe"; "$var wire 1";
      "p0"; "p1"; "proc0"; "proc1"; "#0";
    ]

let test_events_balanced () =
  let trace, apps = traced_pipeline () in
  let vcd = Desim.Vcd.of_trace trace ~apps ~procs:2 () in
  (* Every completed firing contributes one rising and one falling edge. *)
  let count prefix =
    List.length
      (List.filter
         (fun line ->
           String.length line >= String.length prefix
           && String.sub line 0 (String.length prefix) = prefix)
         (String.split_on_char '\n' vcd))
  in
  let records = Desim.Trace.num_records trace in
  Alcotest.(check bool) "some records" true (records > 0);
  (* Initial zeros are also '0'-prefixed lines: 2 actors' worth. *)
  Alcotest.(check int) "falling edges" (records + 2) (count "0");
  Alcotest.(check int) "rising edges" records (count "1")

let test_resolution () =
  let trace, apps = traced_pipeline () in
  (match Desim.Vcd.of_trace trace ~apps ~procs:2 ~resolution:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resolution 0 accepted");
  let fine = Desim.Vcd.of_trace trace ~apps ~procs:2 ~resolution:0.5 () in
  (* Halving the resolution doubles the timestamps: time 8 -> #16. *)
  Alcotest.(check bool) "scaled stamps" true (Fixtures.contains ~affix:"#16" fine)

let test_write_file () =
  let trace, apps = traced_pipeline () in
  let path = Filename.temp_file "trace" ".vcd" in
  Desim.Vcd.write_file path trace ~apps ~procs:2 ();
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file has header" true
    (Fixtures.contains ~affix:"$timescale" contents)

let test_identifier_codes () =
  (* Identifiers stay printable and unique across many signals. *)
  let graphs =
    Array.init 30 (fun i ->
        { Desim.Engine.graph =
            Sdf.Graph.create ~name:(Printf.sprintf "g%d" i)
              ~actors:[| (Printf.sprintf "s%d" i, 1.) |]
              ~channels:[| (0, 0, 1, 1, 1) |];
          mapping = [| 0 |] })
  in
  let trace = Desim.Trace.create () in
  let _ =
    Desim.Engine.run ~horizon:10. ~on_event:(Desim.Trace.on_event trace) ~procs:1 graphs
  in
  let vcd = Desim.Vcd.of_trace trace ~apps:graphs ~procs:1 () in
  String.iter
    (fun c -> Alcotest.(check bool) "printable" true (c = '\n' || (c >= ' ' && c <= '~')))
    vcd

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "events balanced" `Quick test_events_balanced;
    Alcotest.test_case "resolution" `Quick test_resolution;
    Alcotest.test_case "write file" `Quick test_write_file;
    Alcotest.test_case "identifier codes" `Quick test_identifier_codes;
  ]
