(* Multi-graph text format, capacity minimisation and workload save/load. *)

let test_many_roundtrip () =
  let graphs = [ Fixtures.graph_a (); Fixtures.graph_b (); Fixtures.pipeline () ] in
  match Sdf.Text.of_string_many (Sdf.Text.to_string_many graphs) with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok parsed ->
      Alcotest.(check int) "count" 3 (List.length parsed);
      List.iter2
        (fun g g' ->
          Alcotest.(check bool) "structure" true (Sdf.Graph.equal_structure g g'))
        graphs parsed

let test_many_empty_and_bad () =
  (match Sdf.Text.of_string_many "# just a comment\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no sections accepted");
  match Sdf.Text.of_string_many "graph \"x\"\nactor a 1\ngraph \"y\"\nwibble\n" with
  | Error msg -> Alcotest.(check bool) "error propagated" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad section accepted"

let test_workload_save_load () =
  let w = Exp.Workload.make ~seed:5 ~num_apps:3 ~procs:4
      ~params:{ Sdfgen.Generator.default_params with actors_min = 3; actors_max = 4 } ()
  in
  let path = Filename.temp_file "workload" ".sdfw" in
  Exp.Workload.save w path;
  (match Exp.Workload.load path with
  | Error msg -> Alcotest.failf "load: %s" msg
  | Ok w' ->
      Alcotest.(check int) "apps" (Exp.Workload.num_apps w) (Exp.Workload.num_apps w');
      Alcotest.(check (array string)) "names" (Exp.Workload.names w) (Exp.Workload.names w');
      Alcotest.(check (array (float 1e-9))) "isolation periods"
        (Exp.Workload.isolation_periods w)
        (Exp.Workload.isolation_periods w');
      Alcotest.(check int) "procs" w.Exp.Workload.procs w'.Exp.Workload.procs);
  Sys.remove path

let test_workload_load_errors () =
  (match Exp.Workload.load "/nonexistent/file.sdfw" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  let path = Filename.temp_file "notworkload" ".sdfw" in
  let oc = open_out path in
  output_string oc "graph \"x\"\nactor a 1\n";
  close_out oc;
  (match Exp.Workload.load path with
  | Error msg -> Alcotest.(check bool) "header required" true
      (Fixtures.contains ~affix:"header" msg)
  | Ok _ -> Alcotest.fail "headerless file accepted");
  Sys.remove path

let test_capacity_minimise () =
  (* Overlapping pipeline: period 5 needs capacity 2 on the forward channel;
     relaxing to period 8 lets it shrink to 1. *)
  let g =
    Sdf.Graph.create ~name:"pipe2"
      ~actors:[| ("p0", 3.); ("p1", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 2) |]
  in
  (match Sdf.Capacity.minimise g ~max_period:5. with
  | None -> Alcotest.fail "constraint unreachable"
  | Some caps ->
      (match Sdf.Capacity.throughput_with g ~capacities:caps with
      | Some p -> Alcotest.(check bool) "meets constraint" true (p <= 5. +. 1e-6)
      | None -> Alcotest.fail "minimised deadlocks");
      (* Local minimum: no channel can shrink further. *)
      Array.iteri
        (fun i _ ->
          let c = g.Sdf.Graph.channels.(i) in
          let least = Int.max c.tokens (Int.max c.produce c.consume) in
          if caps.(i) > least then begin
            let tighter = Array.copy caps in
            tighter.(i) <- tighter.(i) - 1;
            match Sdf.Capacity.throughput_with g ~capacities:tighter with
            | Some p -> Alcotest.(check bool) "locally minimal" true (p > 5. +. 1e-9)
            | None -> ()
          end)
        caps);
  (match Sdf.Capacity.minimise g ~max_period:8. with
  | None -> Alcotest.fail "relaxed constraint unreachable"
  | Some caps ->
      (* Total buffering shrinks when the constraint relaxes. *)
      let strict = Option.get (Sdf.Capacity.minimise g ~max_period:5.) in
      Alcotest.(check bool) "relaxed <= strict" true
        (Array.fold_left ( + ) 0 caps <= Array.fold_left ( + ) 0 strict));
  (* An unreachable constraint (below the intrinsic period) yields None. *)
  Alcotest.(check bool) "unreachable" true (Sdf.Capacity.minimise g ~max_period:1. = None);
  match Sdf.Capacity.minimise g ~max_period:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive period accepted"

(* Minimised capacities always meet the constraint and are locally minimal
   on random graphs. *)
let prop_minimise_sound =
  Fixtures.qcheck_case ~count:25 "minimise sound" Fixtures.graph_gen (fun g ->
      let target = Sdf.Statespace.period_exn g *. 1.2 in
      match Sdf.Capacity.minimise g ~max_period:target with
      | None -> false
      | Some caps -> (
          match Sdf.Capacity.throughput_with g ~capacities:caps with
          | Some p -> p <= target +. 1e-6
          | None -> false))

let test_report () =
  let w = Exp.Workload.make ~seed:9 ~num_apps:3 ~procs:6
      ~params:{ Sdfgen.Generator.default_params with actors_min = 4; actors_max = 6 } ()
  in
  let usecase = Contention.Usecase.full ~napps:3 in
  let report = Exp.Report.build ~horizon:100_000. w usecase in
  let rendered = Exp.Report.render ~napps:3 report in
  Alcotest.(check bool) "has period table" true
    (Fixtures.contains ~affix:"Estimated" rendered);
  Alcotest.(check bool) "has utilisation" true
    (Fixtures.contains ~affix:"Observed" rendered);
  (* Definition 4 validated: predicted busy fraction tracks the observed one
     on every processor (within 10 points on this light workload). *)
  Array.iteri
    (fun p predicted ->
      let observed = report.observed_utilisation.(p) in
      if not (Float.abs (predicted -. observed) < 0.10) then
        Alcotest.failf "proc %d: predicted %.3f vs observed %.3f" p predicted observed)
    report.predicted_utilisation

let suite =
  [
    Alcotest.test_case "many roundtrip" `Quick test_many_roundtrip;
    Alcotest.test_case "many errors" `Quick test_many_empty_and_bad;
    Alcotest.test_case "workload save/load" `Quick test_workload_save_load;
    Alcotest.test_case "workload load errors" `Quick test_workload_load_errors;
    Alcotest.test_case "capacity minimise" `Quick test_capacity_minimise;
    prop_minimise_sound;
    Alcotest.test_case "report" `Slow test_report;
  ]
