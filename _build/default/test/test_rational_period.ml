open Sdf

let test_paper_exact () =
  let p = Hsdf.period_rational (Fixtures.graph_a ()) in
  Alcotest.(check string) "Per(A) exact" "300" (Rational.to_string p);
  let p = Hsdf.period_rational (Fixtures.graph_b ()) in
  Alcotest.(check string) "Per(B) exact" "300" (Rational.to_string p)

let test_fractional_optimum () =
  (* Two nested cycles: ratios 10/1 and 21/2; the exact optimum is the
     fraction 21/2, which the float engine only approximates. *)
  let edges = [| (0, 1, 10, 1); (1, 0, 0, 0); (0, 2, 10, 1); (2, 0, 11, 1) |] in
  match Mcm.max_cycle_ratio_rational ~nodes:3 edges with
  | Some r -> Alcotest.(check string) "21/2" "21/2" (Rational.to_string r)
  | None -> Alcotest.fail "no cycle"

let test_non_integer_rejected () =
  let g =
    Graph.create ~name:"frac"
      ~actors:[| ("x", 2.5); ("y", 3.5) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  match Hsdf.period_rational g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-integer times accepted"

let test_acyclic_none () =
  Alcotest.(check bool) "acyclic" true
    (Mcm.max_cycle_ratio_rational ~nodes:2 [| (0, 1, 5, 1) |] = None)

let test_zero_delay_cycle () =
  match Mcm.max_cycle_ratio_rational ~nodes:2 [| (0, 1, 1, 0); (1, 0, 1, 0) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-delay cycle accepted"

let test_int_positive_cycle () =
  Alcotest.(check bool) "positive" true
    (Mcm.has_positive_cycle_int ~nodes:2 [| (0, 1, 1); (1, 0, 0) |]);
  Alcotest.(check bool) "zero cycle not positive" false
    (Mcm.has_positive_cycle_int ~nodes:2 [| (0, 1, 1); (1, 0, -1) |]);
  Alcotest.(check bool) "empty" false (Mcm.has_positive_cycle_int ~nodes:0 [||])

(* The rational engine agrees exactly with the float engines on integer-time
   graphs (the generator produces only those). *)
let prop_matches_float_engines =
  Fixtures.qcheck_case ~count:60 "rational = float = statespace" Fixtures.graph_gen
    (fun g ->
      let exact = Rational.to_float (Hsdf.period_rational g) in
      Fixtures.float_eq ~eps:1e-6 exact (Hsdf.period g)
      && Fixtures.float_eq ~eps:1e-6 exact (Statespace.period_exn g))

(* Scaling the execution times scales the exact period, exactly. *)
let prop_integer_scaling =
  Fixtures.qcheck_case ~count:40 "integer scaling" Fixtures.graph_gen (fun g ->
      let p = Hsdf.period_rational g in
      let tripled =
        Graph.with_exec_times g (Array.map (fun t -> 3. *. t) (Graph.exec_times g))
      in
      Rational.equal (Rational.mul p (Rational.of_int 3)) (Hsdf.period_rational tripled))

let suite =
  [
    Alcotest.test_case "paper exact" `Quick test_paper_exact;
    Alcotest.test_case "fractional optimum" `Quick test_fractional_optimum;
    Alcotest.test_case "non-integer rejected" `Quick test_non_integer_rejected;
    Alcotest.test_case "acyclic" `Quick test_acyclic_none;
    Alcotest.test_case "zero-delay cycle" `Quick test_zero_delay_cycle;
    Alcotest.test_case "integer positive cycle" `Quick test_int_positive_cycle;
    prop_matches_float_engines;
    prop_integer_scaling;
  ]
