open Desim

let ticker name ~pacer_proc =
  ( Sdf.Graph.create ~name
      ~actors:[| (name ^ "w", 5.); (name ^ "p", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |],
    [| 0; pacer_proc |] )

let test_slice_of () =
  Fixtures.check_float "equal slices" 25. (Preemptive.slice_of ~wheel:100. ~sharers:4);
  (match Preemptive.slice_of ~wheel:0. ~sharers:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wheel 0 accepted");
  match Preemptive.slice_of ~wheel:10. ~sharers:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 sharers accepted"

let test_single_owner_full_wheel () =
  (* One application per processor: TDMA degenerates to dedicated
     processors; the period equals the self-timed one. *)
  let g = Fixtures.graph_a () in
  let apps = [| { Engine.graph = g; mapping = [| 0; 1; 2 |] } |] in
  let results, _ = Preemptive.run ~horizon:30_000. ~wheel:100. ~procs:3 apps in
  Fixtures.check_float ~eps:1e-6 "isolation period" 300. results.(0).Engine.avg_period

let test_two_tickers_tdma_period () =
  (* Two tickers (worker tau 5, isolation period 10) sharing proc 0 under a
     wheel of 10 (slice 5 each): each worker gets exactly one slice per
     wheel, so both settle at period 10 here (the phases align with the
     wheel). *)
  let gx, mx = ticker "X" ~pacer_proc:1 and gy, my = ticker "Y" ~pacer_proc:2 in
  let apps =
    [| { Engine.graph = gx; mapping = mx }; { Engine.graph = gy; mapping = my } |]
  in
  let results, stats = Preemptive.run ~horizon:50_000. ~wheel:10. ~procs:3 apps in
  Array.iter
    (fun (r : Engine.result) ->
      Alcotest.(check bool) "period within TDMA bound" true
        (r.avg_period <= 10. +. Contention.Tdma.response_time ~exec:5. ~slice:5. ~wheel:10.))
    results;
  Alcotest.(check bool) "made progress" true (stats.Engine.total_firings > 1000)

let test_tdma_wastes_idle_slices () =
  (* A single ticker that must share the wheel with a second application
     whose shared-node actor is rarely ready: strict TDMA burns the idle
     slice, so the ticker locks to the wheel cadence instead of its own
     period.  (With a perfectly harmonic wheel — e.g. wheel 10 here — the
     loss can vanish; a misaligned wheel shows the systematic cost.) *)
  let gx, mx = ticker "X" ~pacer_proc:1 in
  let slow =
    Sdf.Graph.create ~name:"S"
      ~actors:[| ("sw", 1.); ("sp", 99.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 1) |]
  in
  let apps =
    [| { Engine.graph = gx; mapping = mx }; { Engine.graph = slow; mapping = [| 0; 2 |] } |]
  in
  let fcfs, _ = Engine.run ~horizon:60_000. ~procs:3 apps in
  let tdma16, _ = Preemptive.run ~horizon:60_000. ~wheel:16. ~procs:3 apps in
  let tdma40, _ = Preemptive.run ~horizon:60_000. ~wheel:40. ~procs:3 apps in
  Alcotest.(check bool) "FCFS barely affected" true (fcfs.(0).Engine.avg_period < 11.);
  (* The ticker (isolation period 10) locks to the 16-wheel. *)
  Fixtures.check_float ~eps:1e-3 "locks to the wheel" 16. tdma16.(0).Engine.avg_period;
  Alcotest.(check bool) "coarser wheel, worse period" true
    (tdma40.(0).Engine.avg_period > tdma16.(0).Engine.avg_period +. 1.)

let test_validation () =
  let gx, mx = ticker "X" ~pacer_proc:1 in
  let apps = [| { Engine.graph = gx; mapping = mx } |] in
  (match Preemptive.run ~wheel:0. ~procs:2 apps with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wheel 0 accepted");
  (match Preemptive.run ~wheel:10. ~procs:2 [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no apps accepted");
  match Preemptive.run ~wheel:10. ~procs:1 apps with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad mapping accepted"

(* The analytical TDMA worst case (Contention.Tdma, the related-work bound)
   is sound with respect to the simulated TDMA system: estimated period >=
   simulated period, for random two-application workloads. *)
let prop_tdma_bound_sound =
  Fixtures.qcheck_case ~count:20 "TDMA bound >= TDMA simulation"
    QCheck2.Gen.(pair Fixtures.graph_gen Fixtures.graph_gen)
    (fun (g1, g2) ->
      let procs = 3 and wheel = 40. in
      let a1 = Contention.Analysis.app g1 ~mapping:(Contention.Mapping.modulo ~procs g1) in
      let a2 = Contention.Analysis.app g2 ~mapping:(Contention.Mapping.modulo ~procs g2) in
      let bound =
        List.map
          (fun (r : Contention.Analysis.estimate) -> r.period)
          (Contention.Tdma.estimate ~wheel [ a1; a2 ])
      in
      let simulated, _ =
        Preemptive.run ~horizon:60_000. ~wheel ~procs
          [| { Engine.graph = g1; mapping = a1.Contention.Analysis.mapping };
             { Engine.graph = g2; mapping = a2.Contention.Analysis.mapping } |]
      in
      Array.for_all Fun.id
        (Array.mapi
           (fun i (r : Engine.result) ->
             Float.is_nan r.avg_period
             || r.avg_period <= List.nth bound i +. 1e-6)
           simulated))

let suite =
  [
    Alcotest.test_case "slice_of" `Quick test_slice_of;
    Alcotest.test_case "single owner" `Quick test_single_owner_full_wheel;
    Alcotest.test_case "two tickers" `Quick test_two_tickers_tdma_period;
    Alcotest.test_case "idle slices wasted" `Quick test_tdma_wastes_idle_slices;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_tdma_bound_sound;
  ]
