open Sdf

let test_paper_graphs () =
  Alcotest.(check (array int)) "q(A)" [| 1; 2; 1 |]
    (Repetition.compute_exn (Fixtures.graph_a ()));
  Alcotest.(check (array int)) "q(B)" [| 2; 1; 1 |]
    (Repetition.compute_exn (Fixtures.graph_b ()))

let test_homogeneous () =
  Alcotest.(check (array int)) "pipeline" [| 1; 1 |]
    (Repetition.compute_exn (Fixtures.pipeline ()));
  Alcotest.(check (array int)) "single" [| 1 |]
    (Repetition.compute_exn (Fixtures.single ()))

let test_multirate_scaling () =
  (* 3 actors with rates forcing q = [6; 4; 3]. *)
  let g =
    Graph.create ~name:"tri"
      ~actors:[| ("x", 1.); ("y", 1.); ("z", 1.) |]
      ~channels:[| (0, 1, 2, 3, 0); (1, 2, 3, 4, 0); (2, 0, 2, 1, 12) |]
  in
  Alcotest.(check (array int)) "q" [| 6; 4; 3 |] (Repetition.compute_exn g)

let test_inconsistent () =
  let g = Fixtures.inconsistent () in
  (match Repetition.compute g with
  | Error (Repetition.Inconsistent _) -> ()
  | Ok q -> Alcotest.failf "got q of length %d" (Array.length q)
  | Error Repetition.Disconnected -> Alcotest.fail "wrong error");
  Alcotest.(check bool) "is_consistent" false (Repetition.is_consistent g);
  match Repetition.compute_exn g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "compute_exn did not raise"

let test_disconnected () =
  let g =
    Graph.create ~name:"disc"
      ~actors:[| ("x", 1.); ("y", 1.) |]
      ~channels:[| (0, 0, 1, 1, 1); (1, 1, 1, 1, 1) |]
  in
  match Repetition.compute g with
  | Error Repetition.Disconnected -> ()
  | Ok _ | Error (Repetition.Inconsistent _) -> Alcotest.fail "expected Disconnected"

let test_total_firings () =
  Alcotest.(check int) "total" 4
    (Repetition.total_firings (Repetition.compute_exn (Fixtures.graph_a ())))

let test_error_pp () =
  let msg = Format.asprintf "%a" Repetition.pp_error Repetition.Disconnected in
  Alcotest.(check bool) "mentions connectivity" true
    (Fixtures.contains ~affix:"connected" msg)

(* Balance equations hold for every generated graph. *)
let prop_balance =
  Fixtures.qcheck_case ~count:100 "balance equations" Fixtures.graph_gen (fun g ->
      let q = Repetition.compute_exn g in
      Array.for_all
        (fun (c : Graph.channel) -> q.(c.src) * c.produce = q.(c.dst) * c.consume)
        g.channels)

(* Minimality: entries have gcd 1. *)
let prop_minimal =
  Fixtures.qcheck_case ~count:100 "minimal vector" Fixtures.graph_gen (fun g ->
      let q = Repetition.compute_exn g in
      Array.fold_left Rational.gcd 0 q = 1)

let suite =
  [
    Alcotest.test_case "paper graphs" `Quick test_paper_graphs;
    Alcotest.test_case "homogeneous" `Quick test_homogeneous;
    Alcotest.test_case "multirate scaling" `Quick test_multirate_scaling;
    Alcotest.test_case "inconsistent" `Quick test_inconsistent;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "total firings" `Quick test_total_firings;
    Alcotest.test_case "error printer" `Quick test_error_pp;
    prop_balance;
    prop_minimal;
  ]
