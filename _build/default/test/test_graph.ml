open Sdf

let test_create_accessors () =
  let g = Fixtures.graph_a () in
  Alcotest.(check int) "num_actors" 3 (Graph.num_actors g);
  Alcotest.(check int) "num_channels" 3 (Graph.num_channels g);
  let a1 = Graph.actor g 1 in
  Alcotest.(check string) "actor name" "a1" a1.name;
  Fixtures.check_float "actor exec" 50. a1.exec_time;
  Alcotest.(check int) "actor id" 1 a1.id

let test_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "bad src" (fun () ->
      Graph.create ~name:"g" ~actors:[| ("x", 1.) |] ~channels:[| (1, 0, 1, 1, 0) |]);
  expect_invalid "bad dst" (fun () ->
      Graph.create ~name:"g" ~actors:[| ("x", 1.) |] ~channels:[| (0, 3, 1, 1, 0) |]);
  expect_invalid "zero rate" (fun () ->
      Graph.create ~name:"g" ~actors:[| ("x", 1.) |] ~channels:[| (0, 0, 0, 1, 0) |]);
  expect_invalid "negative tokens" (fun () ->
      Graph.create ~name:"g" ~actors:[| ("x", 1.) |] ~channels:[| (0, 0, 1, 1, -1) |]);
  expect_invalid "zero exec time" (fun () ->
      Graph.create ~name:"g" ~actors:[| ("x", 0.) |] ~channels:[||]);
  expect_invalid "out of range actor lookup" (fun () -> Graph.actor (Fixtures.graph_a ()) 5)

let test_exec_times () =
  let g = Fixtures.graph_a () in
  Alcotest.(check (array (float 1e-9))) "exec_times" [| 100.; 50.; 100. |] (Graph.exec_times g);
  let g' = Graph.with_exec_times g [| 1.; 2.; 3. |] in
  Alcotest.(check (array (float 1e-9))) "replaced" [| 1.; 2.; 3. |] (Graph.exec_times g');
  (* original untouched *)
  Alcotest.(check (array (float 1e-9))) "original" [| 100.; 50.; 100. |] (Graph.exec_times g);
  (match Graph.with_exec_times g [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  match Graph.with_exec_times g [| 1.; -2.; 3. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative time accepted"

let test_adjacency () =
  let g = Fixtures.graph_a () in
  let succ = Graph.successors g 0 in
  Alcotest.(check (list int)) "succ a0" [ 1 ] (List.map fst succ);
  let pred = Graph.predecessors g 0 in
  Alcotest.(check (list int)) "pred a0" [ 2 ] (List.map fst pred);
  Alcotest.(check int) "in_channels a2" 1 (List.length (Graph.in_channels g 2));
  Alcotest.(check int) "out_channels a1" 1 (List.length (Graph.out_channels g 1))

let test_connectivity () =
  let g = Fixtures.graph_a () in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "strongly connected" true (Graph.is_strongly_connected g);
  let chain =
    Graph.create ~name:"chain"
      ~actors:[| ("x", 1.); ("y", 1.) |]
      ~channels:[| (0, 1, 1, 1, 0) |]
  in
  Alcotest.(check bool) "chain connected" true (Graph.is_connected chain);
  Alcotest.(check bool) "chain not scc" false (Graph.is_strongly_connected chain);
  let split =
    Graph.create ~name:"split"
      ~actors:[| ("x", 1.); ("y", 1.) |]
      ~channels:[||]
  in
  Alcotest.(check bool) "split not connected" false (Graph.is_connected split)

let test_find_actor () =
  let g = Fixtures.graph_a () in
  Alcotest.(check int) "find a2" 2 (Graph.find_actor g "a2").id;
  match Graph.find_actor g "zz" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "found nonexistent actor"

let test_equal_structure_pp () =
  let g = Fixtures.graph_a () in
  Alcotest.(check bool) "equal self" true (Graph.equal_structure g (Fixtures.graph_a ()));
  Alcotest.(check bool) "not equal" false
    (Graph.equal_structure g (Fixtures.graph_b ()));
  let rendered = Format.asprintf "%a" Graph.pp g in
  Alcotest.(check bool) "pp mentions actor" true
    (Fixtures.contains ~affix:"a0" rendered)

let suite =
  [
    Alcotest.test_case "create and accessors" `Quick test_create_accessors;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "exec times" `Quick test_exec_times;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "find actor" `Quick test_find_actor;
    Alcotest.test_case "equal/pp" `Quick test_equal_structure_pp;
  ]
