let small_sweep () =
  let w =
    Exp.Workload.make ~seed:3 ~num_apps:3 ~procs:6
      ~params:
        {
          Sdfgen.Generator.default_params with
          actors_min = 3;
          actors_max = 5;
          exec_min = 2;
          exec_max = 15;
        }
      ()
  in
  (w, Exp.Sweep.run ~horizon:10_000. w)

let count_lines s = List.length (String.split_on_char '\n' (String.trim s))

let test_fig5_csv () =
  let w, _ = small_sweep () in
  let csv = Exp.Export.fig5_csv (Exp.Figures.fig5 ~horizon:10_000. w) in
  Alcotest.(check int) "header + one row per app" 4 (count_lines csv);
  let header = List.hd (String.split_on_char '\n' csv) in
  Alcotest.(check bool) "series named" true
    (Fixtures.contains ~affix:"Simulated" header && Fixtures.contains ~affix:"app" header)

let test_table1_csv () =
  let _, s = small_sweep () in
  let csv = Exp.Export.table1_csv (Exp.Figures.table1 s) in
  Alcotest.(check int) "header + 4 methods" 5 (count_lines csv);
  Alcotest.(check bool) "complexity quoted safely" true
    (Fixtures.contains ~affix:"O(n" csv)

let test_fig6_csv () =
  let _, s = small_sweep () in
  let csv = Exp.Export.fig6_csv (Exp.Figures.fig6 s) in
  (* sizes 1..3 plus header *)
  Alcotest.(check int) "rows" 4 (count_lines csv)

let test_observations_csv () =
  let _, s = small_sweep () in
  let csv = Exp.Export.observations_csv s in
  (* 3 apps: sum over use-cases of active count = 3 * 2^2 = 12, plus header. *)
  Alcotest.(check int) "rows" 13 (count_lines csv);
  let header = List.hd (String.split_on_char '\n' csv) in
  Alcotest.(check bool) "has estimator columns" true
    (Fixtures.contains ~affix:"second-order" header)

let test_quoting () =
  (* Commas and quotes in names survive. *)
  let row = Exp.Export.table1_csv
      [ { Exp.Figures.method_name = "a,b\"c"; throughput_pct = 1.; period_pct = 2.;
          complexity = "O(n)" } ]
  in
  Alcotest.(check bool) "quoted" true (Fixtures.contains ~affix:"\"a,b\"\"c\"" row)

let test_write () =
  let path = Filename.temp_file "export" ".csv" in
  Exp.Export.write ~path "x,y\n1,2\n";
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "written" "x,y\n1,2\n" contents

let suite =
  [
    Alcotest.test_case "fig5 csv" `Slow test_fig5_csv;
    Alcotest.test_case "table1 csv" `Slow test_table1_csv;
    Alcotest.test_case "fig6 csv" `Slow test_fig6_csv;
    Alcotest.test_case "observations csv" `Slow test_observations_csv;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "write" `Quick test_write;
  ]
