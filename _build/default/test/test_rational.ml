open Sdf

let check_rat msg expected actual =
  Alcotest.(check string) msg expected (Rational.to_string actual)

let test_normalisation () =
  check_rat "6/4 = 3/2" "3/2" (Rational.make 6 4);
  check_rat "-6/4 = -3/2" "-3/2" (Rational.make (-6) 4);
  check_rat "6/-4 = -3/2" "-3/2" (Rational.make 6 (-4));
  check_rat "-6/-4 = 3/2" "3/2" (Rational.make (-6) (-4));
  check_rat "0/7 = 0" "0" (Rational.make 0 7);
  check_rat "int" "42" (Rational.of_int 42)

let test_zero_denominator () =
  Alcotest.check_raises "make x 0" Division_by_zero (fun () ->
      ignore (Rational.make 1 0))

let test_arithmetic () =
  let half = Rational.make 1 2 and third = Rational.make 1 3 in
  check_rat "1/2 + 1/3" "5/6" (Rational.add half third);
  check_rat "1/2 - 1/3" "1/6" (Rational.sub half third);
  check_rat "1/2 * 1/3" "1/6" (Rational.mul half third);
  check_rat "1/2 / 1/3" "3/2" (Rational.div half third);
  check_rat "neg 1/2" "-1/2" (Rational.neg half);
  check_rat "inv 2/3" "3/2" (Rational.inv (Rational.make 2 3))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rational.div Rational.one Rational.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Rational.inv Rational.zero))

let test_compare () =
  let a = Rational.make 1 3 and b = Rational.make 1 2 in
  Alcotest.(check bool) "1/3 < 1/2" true (Rational.compare a b < 0);
  Alcotest.(check bool) "min" true (Rational.equal (Rational.min a b) a);
  Alcotest.(check bool) "max" true (Rational.equal (Rational.max a b) b);
  Alcotest.(check int) "sign neg" (-1) (Rational.sign (Rational.make (-1) 2));
  Alcotest.(check int) "sign zero" 0 (Rational.sign Rational.zero);
  Alcotest.(check int) "sign pos" 1 (Rational.sign Rational.one)

let test_conversions () =
  Fixtures.check_float "to_float" 0.5 (Rational.to_float (Rational.make 1 2));
  Alcotest.(check int) "to_int_exn" 5 (Rational.to_int_exn (Rational.make 10 2));
  Alcotest.(check bool) "is_integer" false (Rational.is_integer (Rational.make 1 2));
  Alcotest.(check bool) "is_integer'" true (Rational.is_integer (Rational.make 4 2));
  (match Rational.to_int_exn (Rational.make 1 2) with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "to_int_exn on 1/2 returned %d" v)

let test_gcd_lcm () =
  Alcotest.(check int) "gcd 12 18" 6 (Rational.gcd 12 18);
  Alcotest.(check int) "gcd 0 5" 5 (Rational.gcd 0 5);
  Alcotest.(check int) "gcd 0 0" 0 (Rational.gcd 0 0);
  Alcotest.(check int) "gcd negatives" 6 (Rational.gcd (-12) 18);
  Alcotest.(check int) "lcm 4 6" 12 (Rational.lcm 4 6);
  Alcotest.(check int) "lcm 0 6" 0 (Rational.lcm 0 6)

let rat_gen =
  let open QCheck2.Gen in
  let* num = int_range (-1000) 1000 in
  let* den = int_range 1 1000 in
  return (Rational.make num den)

let prop_add_commutative =
  Fixtures.qcheck_case "add commutative" QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) -> Rational.equal (Rational.add a b) (Rational.add b a))

let prop_mul_associative =
  Fixtures.qcheck_case "mul associative" QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Rational.equal
        (Rational.mul (Rational.mul a b) c)
        (Rational.mul a (Rational.mul b c)))

let prop_add_sub_roundtrip =
  Fixtures.qcheck_case "add/sub roundtrip" QCheck2.Gen.(pair rat_gen rat_gen)
    (fun (a, b) -> Rational.equal a (Rational.sub (Rational.add a b) b))

let prop_normal_form =
  Fixtures.qcheck_case "normal form" QCheck2.Gen.(pair rat_gen rat_gen) (fun (a, b) ->
      let r = Rational.add a b in
      (r : Rational.t).den > 0 && Rational.gcd r.num r.den <= 1 || r.num = 0)

let suite =
  [
    Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "compare/min/max/sign" `Quick test_compare;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
    prop_add_commutative;
    prop_mul_associative;
    prop_add_sub_roundtrip;
    prop_normal_form;
  ]
