open Sdf

let test_bounded_structure () =
  let g = Fixtures.pipeline () in
  let b = Capacity.bounded g ~capacities:[| 2; 2 |] in
  Alcotest.(check int) "actors unchanged" 2 (Graph.num_actors b);
  Alcotest.(check int) "channels doubled" 4 (Graph.num_channels b);
  (* Reverse channel of (0 -> 1, tokens 0, capacity 2) carries 2 space
     tokens. *)
  let reverse = b.Graph.channels.(2) in
  Alcotest.(check int) "reverse src" 1 reverse.src;
  Alcotest.(check int) "reverse dst" 0 reverse.dst;
  Alcotest.(check int) "space tokens" 2 reverse.tokens

let test_validation () =
  let g = Fixtures.pipeline () in
  (match Capacity.bounded g ~capacities:[| 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  (* Capacity below the initial tokens of the feedback channel (1) or below
     rate 1 is rejected. *)
  match Capacity.bounded g ~capacities:[| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

let test_tight_capacity_serialises () =
  (* A two-stage pipeline with 2 feedback tokens overlaps to period 5; with
     the forward buffer capped at 1 token the overlap disappears. *)
  let g =
    Graph.create ~name:"pipe2"
      ~actors:[| ("p0", 3.); ("p1", 5.) |]
      ~channels:[| (0, 1, 1, 1, 0); (1, 0, 1, 1, 2) |]
  in
  Fixtures.check_float "unbounded overlaps" 5. (Statespace.period_exn g);
  match Capacity.throughput_with g ~capacities:[| 1; 2 |] with
  | Some p -> Fixtures.check_float "bounded serialises" 8. p
  | None -> Alcotest.fail "deadlocked"

let test_sufficient_preserves_period () =
  let g = Fixtures.graph_a () in
  let caps = Capacity.sufficient_capacities g in
  match Capacity.throughput_with g ~capacities:caps with
  | Some p -> Fixtures.check_float "period preserved" 300. p
  | None -> Alcotest.fail "sufficient capacities deadlocked"

let test_sweep_monotone_curve () =
  let g = Fixtures.graph_a () in
  let curve = Capacity.sweep_uniform g ~max_capacity:6 in
  Alcotest.(check int) "points" 6 (List.length curve);
  (* Larger buffers never slow the graph down. *)
  let rec check_monotone = function
    | (_, Some p1) :: ((_, Some p2) :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (p2 <= p1 +. 1e-6);
        check_monotone rest
    | (_, None) :: rest | (_, Some _) :: ((_, None) :: _ as rest) -> check_monotone rest
    | [ _ ] | [] -> ()
  in
  check_monotone curve;
  (* The curve reaches the unbounded period eventually. *)
  match List.rev curve with
  | (_, Some p) :: _ -> Fixtures.check_float "converges" 300. p
  | _ -> Alcotest.fail "no final point"

let test_sweep_invalid () =
  match Capacity.sweep_uniform (Fixtures.pipeline ()) ~max_capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_capacity 0 accepted"

(* Property: sufficient capacities preserve the unbounded period on random
   graphs — the core soundness claim of the transformation. *)
let prop_sufficient_preserves =
  Fixtures.qcheck_case ~count:50 "sufficient capacities preserve period"
    Fixtures.graph_gen (fun g ->
      let unbounded = Statespace.period_exn g in
      match Capacity.throughput_with g ~capacities:(Capacity.sufficient_capacities g) with
      | Some p -> Fixtures.float_eq ~eps:1e-6 unbounded p
      | None -> false)

(* Property: any valid bound only slows the graph down (or deadlocks it). *)
let prop_bounds_never_speed_up =
  Fixtures.qcheck_case ~count:50 "bounds never speed up" Fixtures.graph_gen (fun g ->
      let unbounded = Statespace.period_exn g in
      let tight =
        Array.map
          (fun (c : Graph.channel) -> Int.max c.tokens (Int.max c.produce c.consume))
          g.Graph.channels
      in
      match Capacity.throughput_with g ~capacities:tight with
      | None -> true
      | Some p -> p +. 1e-6 >= unbounded)

let suite =
  [
    Alcotest.test_case "bounded structure" `Quick test_bounded_structure;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "tight capacity serialises" `Quick test_tight_capacity_serialises;
    Alcotest.test_case "sufficient preserves period" `Quick test_sufficient_preserves_period;
    Alcotest.test_case "sweep monotone" `Quick test_sweep_monotone_curve;
    Alcotest.test_case "sweep invalid" `Quick test_sweep_invalid;
    prop_sufficient_preserves;
    prop_bounds_never_speed_up;
  ]
