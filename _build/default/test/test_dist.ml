open Contention

let test_constant () =
  let d = Dist.Constant 10. in
  Fixtures.check_float "mean" 10. (Dist.mean d);
  Fixtures.check_float "second moment" 100. (Dist.second_moment d);
  Fixtures.check_float "variance" 0. (Dist.variance d);
  (* Constant residual equals the paper's tau/2. *)
  Fixtures.check_float "residual" 5. (Dist.residual d);
  Fixtures.check_float "sample" 10. (Dist.sample d ~u:0.42)

let test_uniform () =
  let d = Dist.Uniform { lo = 4.; hi = 8. } in
  Fixtures.check_float "mean" 6. (Dist.mean d);
  (* E X^2 = (8^3 - 4^3) / (3 * 4) = 448/12. *)
  Fixtures.check_float "second moment" (448. /. 12.) (Dist.second_moment d);
  Fixtures.check_float "variance" (16. /. 12.) (Dist.variance d);
  Fixtures.check_float "residual" (448. /. 12. /. 12.) (Dist.residual d);
  Fixtures.check_float "sample lo" 4. (Dist.sample d ~u:0.);
  Fixtures.check_float "sample mid" 6. (Dist.sample d ~u:0.5);
  (* Degenerate uniform behaves like a constant. *)
  let point = Dist.Uniform { lo = 3.; hi = 3. } in
  Fixtures.check_float "degenerate second moment" 9. (Dist.second_moment point)

let test_discrete () =
  let d = Dist.Discrete [ (2., 1.); (10., 3.) ] in
  Fixtures.check_float "mean" 8. (Dist.mean d);
  Fixtures.check_float "second moment" ((4. +. 300.) /. 4.) (Dist.second_moment d);
  (* Inversion: first 25% of u-mass is the value 2. *)
  Fixtures.check_float "sample low" 2. (Dist.sample d ~u:0.1);
  Fixtures.check_float "sample high" 10. (Dist.sample d ~u:0.9);
  Fixtures.check_float "sample boundary" 10. (Dist.sample d ~u:0.25)

let test_exponential () =
  let d = Dist.Exponential { mean = 5. } in
  Fixtures.check_float "mean" 5. (Dist.mean d);
  Fixtures.check_float "second moment" 50. (Dist.second_moment d);
  (* Memoryless: residual = mean. *)
  Fixtures.check_float "residual" 5. (Dist.residual d);
  Fixtures.check_float "median sample" (5. *. log 2.) (Dist.sample d ~u:0.5)

let test_validation () =
  let invalid d = match Dist.validate d with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "invalid distribution accepted"
  in
  invalid (Dist.Constant 0.);
  invalid (Dist.Uniform { lo = 0.; hi = 3. });
  invalid (Dist.Uniform { lo = 5.; hi = 3. });
  invalid (Dist.Discrete []);
  invalid (Dist.Discrete [ (1., -1.) ]);
  invalid (Dist.Discrete [ (0., 1.) ]);
  invalid (Dist.Discrete [ (1., 0.) ]);
  invalid (Dist.Exponential { mean = -1. });
  match Dist.sample (Dist.Constant 1.) ~u:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "u = 1 accepted"

let test_prob_of_distribution () =
  (* Constant distribution reproduces the base model exactly. *)
  let base = Prob.of_actor ~exec_time:100. ~repetitions:1 ~period:300. in
  let dist = Prob.of_distribution ~dist:(Dist.Constant 100.) ~repetitions:1 ~period:300. in
  Fixtures.check_float "p" base.p dist.p;
  Fixtures.check_float "mu" base.mu dist.mu;
  (* Higher variance at the same mean raises mu but not p. *)
  let spread =
    Prob.of_distribution
      ~dist:(Dist.Uniform { lo = 50.; hi = 150. })
      ~repetitions:1 ~period:300.
  in
  Fixtures.check_float "same p" base.p spread.p;
  Alcotest.(check bool) "larger residual" true (spread.mu > base.mu)

let dist_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun v -> Dist.Constant v) (float_range 1. 100.);
      map2
        (fun lo extent -> Dist.Uniform { lo; hi = lo +. extent })
        (float_range 1. 50.) (float_range 0. 50.);
      map
        (fun vs -> Dist.Discrete (List.map (fun v -> (v, 1.)) vs))
        (list_size (int_range 1 5) (float_range 1. 100.));
      map (fun mean -> Dist.Exponential { mean }) (float_range 1. 50.);
    ]

let prop_sample_mean_converges =
  Fixtures.qcheck_case ~count:50 "empirical mean converges" dist_gen (fun d ->
      let rng = Sdfgen.Rng.create 7 in
      let n = 20_000 in
      let sum = ref 0. in
      for _ = 1 to n do
        sum := !sum +. Dist.sample d ~u:(Sdfgen.Rng.float rng 1.)
      done;
      let empirical = !sum /. float_of_int n in
      (* 3% relative tolerance is loose enough for exp's heavy tail at n=20k. *)
      Float.abs (empirical -. Dist.mean d) <= 0.03 *. Dist.mean d +. 0.05)

let prop_residual_at_least_half_mean =
  (* E X^2 >= (E X)^2, so the residual is at least mean/2, with equality only
     for constants — the inspection paradox. *)
  Fixtures.qcheck_case "residual >= mean/2" dist_gen (fun d ->
      Dist.residual d +. 1e-9 >= Dist.mean d /. 2.)

let prop_samples_in_support =
  Fixtures.qcheck_case "samples positive" QCheck2.Gen.(pair dist_gen (float_bound_exclusive 1.))
    (fun (d, u) -> Dist.sample d ~u > 0.)

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "discrete" `Quick test_discrete;
    Alcotest.test_case "exponential" `Quick test_exponential;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "prob bridge" `Quick test_prob_of_distribution;
    prop_sample_mean_converges;
    prop_residual_at_least_half_mean;
    prop_samples_in_support;
  ]
