let test_determinism () =
  let a = Sdfgen.Generator.generate_many ~seed:42 5 in
  let b = Sdfgen.Generator.generate_many ~seed:42 5 in
  Array.iteri
    (fun i g -> Alcotest.(check bool) "same graph" true (Sdf.Graph.equal_structure g b.(i)))
    a;
  let c = Sdfgen.Generator.generate_many ~seed:43 5 in
  let all_equal =
    Array.for_all Fun.id (Array.mapi (fun i g -> Sdf.Graph.equal_structure g c.(i)) a)
  in
  Alcotest.(check bool) "different seed differs" false all_equal

let test_names () =
  let graphs = Sdfgen.Generator.generate_many ~seed:1 3 in
  Alcotest.(check (list string)) "names" [ "A"; "B"; "C" ]
    (Array.to_list (Array.map (fun g -> g.Sdf.Graph.name) graphs))

let test_default_params_shape () =
  let graphs = Sdfgen.Generator.generate_many ~seed:2007 10 in
  Array.iter
    (fun g ->
      let n = Sdf.Graph.num_actors g in
      Alcotest.(check bool) "8-10 actors" true (n >= 8 && n <= 10);
      Array.iter
        (fun (a : Sdf.Graph.actor) ->
          Alcotest.(check bool) "exec in range" true
            (a.exec_time >= 5. && a.exec_time <= 100.))
        g.actors)
    graphs

let test_invalid_params () =
  let bad = { Sdfgen.Generator.default_params with actors_min = 1 } in
  match
    Sdfgen.Generator.generate ~params:bad (Sdfgen.Rng.create 0) ~name:"X"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "actors_min = 1 accepted"

let prop_strongly_connected =
  Fixtures.qcheck_case ~count:100 "strongly connected" Fixtures.graph_gen
    Sdf.Graph.is_strongly_connected

let prop_consistent =
  Fixtures.qcheck_case ~count:100 "consistent" Fixtures.graph_gen
    Sdf.Repetition.is_consistent

let prop_live =
  Fixtures.qcheck_case ~count:100 "live" Fixtures.graph_gen Sdf.Statespace.is_live

let prop_repetition_bounded =
  Fixtures.qcheck_case ~count:100 "small repetition entries" Fixtures.graph_gen
    (fun g ->
      let q = Sdf.Repetition.compute_exn g in
      Array.for_all (fun v -> v >= 1 && v <= 3) q)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "default params shape" `Quick test_default_params_shape;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
    prop_strongly_connected;
    prop_consistent;
    prop_live;
    prop_repetition_bounded;
  ]
