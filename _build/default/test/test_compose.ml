open Contention

let single_load =
  let open QCheck2.Gen in
  let* p = float_bound_inclusive 0.95 in
  let* tau = float_range 1. 100. in
  return (Prob.make ~p ~mu:(tau /. 2.) ~tau)

let compose_gen = QCheck2.Gen.map Compose.of_load single_load

let test_paper_equations () =
  (* Eq. 6/7 on concrete numbers. *)
  let a = Compose.of_load (Prob.make ~p:0.4 ~mu:10. ~tau:20.) in
  let b = Compose.of_load (Prob.make ~p:0.6 ~mu:25. ~tau:50.) in
  let ab = Compose.combine a b in
  Fixtures.check_float "P_ab" (0.4 +. 0.6 -. 0.24) ab.p;
  Fixtures.check_float "W_ab"
    ((10. *. 0.4 *. (1. +. 0.3)) +. (25. *. 0.6 *. (1. +. 0.2)))
    ab.w

let test_empty_neutral () =
  let a = Compose.of_load (Prob.make ~p:0.4 ~mu:10. ~tau:20.) in
  let left = Compose.combine Compose.empty a in
  let right = Compose.combine a Compose.empty in
  Fixtures.check_float "left id p" a.p left.p;
  Fixtures.check_float "left id w" a.w left.w;
  Fixtures.check_float "right id p" a.p right.p;
  Fixtures.check_float "right id w" a.w right.w

let test_two_actor_waiting_matches_exact () =
  (* For exactly two contenders Eq. 7 equals Eq. 4. *)
  let loads = [ Prob.make ~p:0.5 ~mu:10. ~tau:20.; Prob.make ~p:0.3 ~mu:20. ~tau:40. ] in
  Fixtures.check_float "pair = exact" (Exact.waiting_time loads)
    (Compose.waiting_time loads)

let test_remove_p_one_rejected () =
  let saturated = Compose.of_load (Prob.make ~p:1. ~mu:10. ~tau:20.) in
  let total = Compose.combine saturated (Compose.of_load (Prob.make ~p:0.5 ~mu:5. ~tau:10.)) in
  match Compose.remove ~total saturated with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverse with p = 1 accepted"

let test_incremental_equals_fold () =
  let loads =
    [
      Prob.make ~p:0.2 ~mu:10. ~tau:20.;
      Prob.make ~p:0.3 ~mu:15. ~tau:30.;
      Prob.make ~p:0.4 ~mu:20. ~tau:40.;
    ]
  in
  let all = Compose.combine_all (List.map Compose.of_load loads) in
  List.iteri
    (fun i own ->
      let others = List.filteri (fun j _ -> j <> i) loads in
      let direct = Compose.waiting_time others in
      let incremental =
        Compose.waiting_time_incremental ~all ~own:(Compose.of_load own)
      in
      (* ⊗ is associative only to second order; the two paths agree within a
         few percent for realistic probabilities. *)
      if not (Fixtures.float_eq ~eps:0.05 direct incremental) then
        Alcotest.failf "fold %g vs incremental %g" direct incremental)
    loads

let prop_commutative =
  Fixtures.qcheck_case "combine commutative" QCheck2.Gen.(pair compose_gen compose_gen)
    (fun (a, b) ->
      let x = Compose.combine a b and y = Compose.combine b a in
      Fixtures.float_eq ~eps:1e-12 x.p y.p && Fixtures.float_eq ~eps:1e-12 x.w y.w)

let prop_p_associative =
  (* ⊕ is exactly associative (the paper proves this). *)
  Fixtures.qcheck_case "p associative" QCheck2.Gen.(triple compose_gen compose_gen compose_gen)
    (fun (a, b, c) ->
      let left = Compose.combine (Compose.combine a b) c in
      let right = Compose.combine a (Compose.combine b c) in
      Fixtures.float_eq ~eps:1e-9 left.p right.p)

let prop_w_associative_second_order =
  (* ⊗ is associative to second order; the exact re-association residue is
     (3/4) * (p_b p_c w_a - p_a p_b w_c), a pure third-order term. *)
  Fixtures.qcheck_case "w associative to 2nd order"
    QCheck2.Gen.(triple compose_gen compose_gen compose_gen) (fun (a, b, c) ->
      let left = Compose.combine (Compose.combine a b) c in
      let right = Compose.combine a (Compose.combine b c) in
      let residue = 0.75 *. ((b.p *. c.p *. a.w) -. (a.p *. b.p *. c.w)) in
      Fixtures.float_eq ~eps:1e-9 (left.w -. right.w) residue)

let prop_remove_inverts =
  (* remove is an exact inverse of combine (Eq. 8-9). *)
  Fixtures.qcheck_case "remove inverts combine" QCheck2.Gen.(pair compose_gen compose_gen)
    (fun (a, b) ->
      let total = Compose.combine a b in
      let back = Compose.remove ~total b in
      Fixtures.float_eq ~eps:1e-9 a.p back.p && Fixtures.float_eq ~eps:1e-6 a.w back.w)

let prop_probability_range =
  Fixtures.qcheck_case "combined p stays in [0,1]" QCheck2.Gen.(pair compose_gen compose_gen)
    (fun (a, b) ->
      let c = Compose.combine a b in
      c.p >= -1e-12 && c.p <= 1. +. 1e-12)

let suite =
  [
    Alcotest.test_case "paper equations" `Quick test_paper_equations;
    Alcotest.test_case "empty neutral" `Quick test_empty_neutral;
    Alcotest.test_case "pair matches exact" `Quick test_two_actor_waiting_matches_exact;
    Alcotest.test_case "remove p=1 rejected" `Quick test_remove_p_one_rejected;
    Alcotest.test_case "incremental = fold" `Quick test_incremental_equals_fold;
    prop_commutative;
    prop_p_associative;
    prop_w_associative_second_order;
    prop_remove_inverts;
    prop_probability_range;
  ]

(* combine_all is order-insensitive in p (⊕ exactly associative/commutative)
   and second-order stable in w: any permutation stays within the
   third-order residue of the sorted fold. *)
let prop_fold_order_stability =
  let moderate_load =
    let open QCheck2.Gen in
    let* p = float_bound_inclusive 0.5 in
    let* tau = float_range 1. 100. in
    return (Prob.make ~p ~mu:(tau /. 2.) ~tau)
  in
  Fixtures.qcheck_case ~count:100 "fold order stability"
    QCheck2.Gen.(list_size (int_range 2 6) moderate_load)
    (fun loads ->
      let ts = List.map Compose.of_load loads in
      let forward = Compose.combine_all ts in
      let backward = Compose.combine_all (List.rev ts) in
      (* p is exactly order-free; w only to second order, so for moderate
         probabilities (p <= 0.5) reversal moves it by a bounded fraction. *)
      Fixtures.float_eq ~eps:1e-9 forward.p backward.p
      && Float.abs (forward.w -. backward.w)
         <= (0.30 *. Float.max 1. forward.w) +. 1e-9)

let suite = suite @ [ prop_fold_order_stability ]
