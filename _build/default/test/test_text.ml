open Sdf

let test_roundtrip_paper_graph () =
  let g = Fixtures.graph_a () in
  match Text.of_string (Text.to_string g) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok g' -> Alcotest.(check bool) "equal" true (Graph.equal_structure g g')

let test_parse_handwritten () =
  let src =
    "# a small pipeline\n\
     graph \"pipe\"\n\n\
     actor p0 3\n\
     actor p1 5\n\
     channel p0 -> p1 produce 1 consume 1 tokens 0\n\
     channel p1 -> p0 produce 1 consume 1 tokens 1\n"
  in
  let g = Text.of_string_exn src in
  Alcotest.(check string) "name" "pipe" g.Graph.name;
  Alcotest.(check int) "actors" 2 (Graph.num_actors g);
  Fixtures.check_float "period" 8. (Statespace.period_exn g)

let expect_error msg src =
  match Text.of_string src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: parse succeeded" msg

let test_errors () =
  expect_error "missing graph" "actor a 1\n";
  expect_error "unquoted name" "graph pipe\n";
  expect_error "bad time" "graph \"g\"\nactor a x\n";
  expect_error "duplicate actor" "graph \"g\"\nactor a 1\nactor a 2\n";
  expect_error "unknown channel source" "graph \"g\"\nactor a 1\nchannel b -> a produce 1 consume 1 tokens 0\n";
  expect_error "unknown channel target" "graph \"g\"\nactor a 1\nchannel a -> b produce 1 consume 1 tokens 0\n";
  expect_error "bad rate" "graph \"g\"\nactor a 1\nchannel a -> a produce x consume 1 tokens 0\n";
  expect_error "negative tokens" "graph \"g\"\nactor a 1\nchannel a -> a produce 1 consume 1 tokens -2\n";
  expect_error "garbage" "graph \"g\"\nwibble\n";
  expect_error "duplicate graph" "graph \"g\"\ngraph \"h\"\n";
  (* Error message carries the line number. *)
  match Text.of_string "graph \"g\"\nactor a 1\nwibble\n" with
  | Error msg -> Alcotest.(check bool) "line number" true (Fixtures.contains ~affix:"line 3" msg)
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_of_string_exn () =
  match Text.of_string_exn "nonsense" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "exn variant did not raise"

let test_file_roundtrip () =
  let g = Fixtures.graph_b () in
  let path = Filename.temp_file "sdf" ".sdf" in
  Text.write_file path g;
  (match Text.read_file path with
  | Ok g' -> Alcotest.(check bool) "file roundtrip" true (Graph.equal_structure g g')
  | Error msg -> Alcotest.failf "read failed: %s" msg);
  Sys.remove path

let prop_roundtrip_random =
  Fixtures.qcheck_case ~count:100 "roundtrip random graphs" Fixtures.graph_gen (fun g ->
      match Text.of_string (Text.to_string g) with
      | Error _ -> false
      | Ok g' -> Graph.equal_structure g g')

let suite =
  [
    Alcotest.test_case "roundtrip paper graph" `Quick test_roundtrip_paper_graph;
    Alcotest.test_case "parse handwritten" `Quick test_parse_handwritten;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "of_string_exn" `Quick test_of_string_exn;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    prop_roundtrip_random;
  ]
