type actor = { id : int; name : string; exec_time : float }

type channel = {
  src : int;
  dst : int;
  produce : int;
  consume : int;
  tokens : int;
}

type t = { name : string; actors : actor array; channels : channel array }

let num_actors g = Array.length g.actors
let num_channels g = Array.length g.channels

let check_actor_id g id =
  if id < 0 || id >= num_actors g then
    invalid_arg (Printf.sprintf "Sdf.Graph: actor id %d out of range in %S" id g.name)

let create ~name ~actors ~channels =
  let mk_actor id (aname, exec_time) =
    if exec_time <= 0. then
      invalid_arg
        (Printf.sprintf "Sdf.Graph.create: actor %S has non-positive execution time %g"
           aname exec_time);
    { id; name = aname; exec_time }
  in
  let g = { name; actors = Array.mapi mk_actor actors; channels = [||] } in
  let mk_channel (src, dst, produce, consume, tokens) =
    check_actor_id g src;
    check_actor_id g dst;
    if produce < 1 || consume < 1 then
      invalid_arg
        (Printf.sprintf "Sdf.Graph.create: channel %d->%d has non-positive rate" src dst);
    if tokens < 0 then
      invalid_arg
        (Printf.sprintf "Sdf.Graph.create: channel %d->%d has negative tokens" src dst);
    { src; dst; produce; consume; tokens }
  in
  { g with channels = Array.map mk_channel channels }

let actor g id =
  check_actor_id g id;
  g.actors.(id)

let exec_times g = Array.map (fun a -> a.exec_time) g.actors

let with_exec_times g times =
  if Array.length times <> num_actors g then
    invalid_arg "Sdf.Graph.with_exec_times: length mismatch";
  let set a =
    let t = times.(a.id) in
    if t <= 0. then
      invalid_arg
        (Printf.sprintf "Sdf.Graph.with_exec_times: non-positive time %g for %S" t a.name);
    { a with exec_time = t }
  in
  { g with actors = Array.map set g.actors }

let successors g id =
  check_actor_id g id;
  Array.fold_right
    (fun c acc -> if c.src = id then (c.dst, c) :: acc else acc)
    g.channels []

let predecessors g id =
  check_actor_id g id;
  Array.fold_right
    (fun c acc -> if c.dst = id then (c.src, c) :: acc else acc)
    g.channels []

let in_channels g id = List.map snd (predecessors g id)
let out_channels g id = List.map snd (successors g id)

(* Generic reachability used by both connectivity checks. *)
let reachable_from g ~undirected start =
  let n = num_actors g in
  let seen = Array.make n false in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      Array.iter
        (fun c ->
          if c.src = id then visit c.dst;
          if undirected && c.dst = id then visit c.src)
        g.channels
    end
  in
  if n > 0 then visit start;
  seen

let is_connected g =
  let n = num_actors g in
  n = 0 || Array.for_all Fun.id (reachable_from g ~undirected:true 0)

let is_strongly_connected g =
  let n = num_actors g in
  if n = 0 then true
  else
    let forward = reachable_from g ~undirected:false 0 in
    if not (Array.for_all Fun.id forward) then false
    else
      (* Reverse reachability: walk channels backwards. *)
      let seen = Array.make n false in
      let rec visit id =
        if not seen.(id) then begin
          seen.(id) <- true;
          Array.iter (fun c -> if c.dst = id then visit c.src) g.channels
        end
      in
      visit 0;
      Array.for_all Fun.id seen

let find_actor g name =
  match Array.find_opt (fun (a : actor) -> a.name = name) g.actors with
  | Some a -> a
  | None -> raise Not_found

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %S@," g.name;
  Array.iter
    (fun a -> Format.fprintf ppf "  actor %d %S tau=%g@," a.id a.name a.exec_time)
    g.actors;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  channel %d -> %d (prod=%d cons=%d tokens=%d)@," c.src c.dst
        c.produce c.consume c.tokens)
    g.channels;
  Format.fprintf ppf "@]"

let equal_structure a b =
  a.actors = b.actors && a.channels = b.channels
