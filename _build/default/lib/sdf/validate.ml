type finding =
  | Inconsistent of string
  | Disconnected
  | Not_strongly_connected
  | Deadlocks
  | Dead_self_loop of int
  | Huge_repetition of int * int

let pp_finding ppf = function
  | Inconsistent msg -> Format.fprintf ppf "inconsistent rates (%s)" msg
  | Disconnected -> Format.fprintf ppf "graph is not connected"
  | Not_strongly_connected -> Format.fprintf ppf "graph is not strongly connected"
  | Deadlocks -> Format.fprintf ppf "self-timed execution deadlocks"
  | Dead_self_loop a -> Format.fprintf ppf "actor %d can never fire (starved self-loop)" a
  | Huge_repetition (a, q) ->
      Format.fprintf ppf "actor %d repeats %d times per iteration" a q

let check ?(repetition_limit = 1000) (g : Graph.t) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* Starved self-loops are a local, certain deadlock. *)
  Array.iter
    (fun (c : Graph.channel) ->
      if c.src = c.dst && c.tokens < c.consume then add (Dead_self_loop c.src))
    g.channels;
  if not (Graph.is_connected g) then add Disconnected
  else if not (Graph.is_strongly_connected g) then add Not_strongly_connected;
  (match Repetition.compute g with
  | Error e -> add (Inconsistent (Format.asprintf "%a" Repetition.pp_error e))
  | Ok q ->
      Array.iteri (fun a qa -> if qa > repetition_limit then add (Huge_repetition (a, qa))) q;
      (* Liveness only makes sense for consistent connected graphs without
         an exploding expansion. *)
      if
        Graph.is_connected g
        && Array.for_all (fun qa -> qa <= repetition_limit) q
        && not (Statespace.is_live g)
      then add Deadlocks);
  List.rev !findings

let is_clean g = check g = []
