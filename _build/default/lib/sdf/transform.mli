(** Structural graph transformations. *)

val single_rate : Graph.t -> Graph.t
(** The HSDF expansion ({!Hsdf.expand}) materialised as an ordinary graph:
    every actor [a] becomes [q.(a)] copies named ["a#k"], every dependency
    becomes a channel with [produce = consume = 1] and [tokens = delay].
    The result is homogeneous, has the same period as the input, and can be
    fed to any analysis that only handles single-rate graphs.
    @raise Invalid_argument on inconsistent or disconnected graphs. *)

val scale_times : float -> Graph.t -> Graph.t
(** Multiply every execution time by a positive factor; the period scales by
    the same factor.  @raise Invalid_argument if the factor is not
    positive. *)

val reverse : Graph.t -> Graph.t
(** Flip every channel (producer becomes consumer with swapped rates).  The
    reverse of a consistent graph is consistent with the same repetition
    vector, and self-timed execution of the reverse has the same period —
    a useful property-test oracle. *)

val rename : prefix:string -> Graph.t -> Graph.t
(** Prefix the graph name and every actor name — for assembling workloads
    from copies of one application without name clashes. *)
