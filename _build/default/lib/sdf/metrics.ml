type t = { latency : float; makespan : float; buffer_peaks : int array }

(* A compact float-time self-timed executor. Unlike Statespace it does not
   need recurrence detection (it runs a fixed number of iterations), so plain
   floats are fine. *)
let analyse ?(iterations = 3) (g : Graph.t) =
  if iterations < 1 then invalid_arg "Sdf.Metrics.analyse: iterations < 1";
  let n = Graph.num_actors g in
  let q = Repetition.compute_exn g in
  let tokens = Array.map (fun (c : Graph.channel) -> c.tokens) g.channels in
  let peaks = Array.copy tokens in
  let remaining = Array.make n infinity in
  (* infinity = idle *)
  let fires = Array.make n 0 in
  let in_idx = Array.make n [] in
  Array.iteri (fun ci (c : Graph.channel) -> in_idx.(c.dst) <- ci :: in_idx.(c.dst)) g.channels;
  let enabled id =
    remaining.(id) = infinity
    && List.for_all (fun ci -> tokens.(ci) >= g.channels.(ci).consume) in_idx.(id)
  in
  let target = Array.map (fun qi -> qi * iterations) q in
  let first_iteration_done = Array.make n nan in
  let now = ref 0. in
  let latency = ref nan in
  let deadlocked = ref false in
  let finished () = Array.for_all2 (fun f t -> f >= t) fires target in
  while (not (finished ())) && not !deadlocked do
    (* Start everything enabled (actors that reached their firing target stop
       to keep the horizon finite). *)
    let progress = ref true in
    while !progress do
      progress := false;
      for id = 0 to n - 1 do
        if fires.(id) < target.(id) && enabled id then begin
          List.iter
            (fun ci -> tokens.(ci) <- tokens.(ci) - g.channels.(ci).consume)
            in_idx.(id);
          remaining.(id) <- (Graph.actor g id).exec_time;
          progress := true
        end
      done
    done;
    let dt = Array.fold_left Float.min infinity remaining in
    if dt = infinity then deadlocked := true
    else begin
      now := !now +. dt;
      for id = 0 to n - 1 do
        if remaining.(id) < infinity then begin
          remaining.(id) <- remaining.(id) -. dt;
          if remaining.(id) <= 1e-9 then begin
            remaining.(id) <- infinity;
            fires.(id) <- fires.(id) + 1;
            Array.iteri
              (fun ci (c : Graph.channel) ->
                if c.src = id then begin
                  tokens.(ci) <- tokens.(ci) + c.produce;
                  if tokens.(ci) > peaks.(ci) then peaks.(ci) <- tokens.(ci)
                end)
              g.channels;
            if fires.(id) = q.(id) then first_iteration_done.(id) <- !now
          end
        end
      done
    end
  done;
  if !deadlocked then None
  else begin
    latency := Array.fold_left Float.max 0. first_iteration_done;
    Some { latency = !latency; makespan = !now; buffer_peaks = peaks }
  end

let buffer_bound_total t = Array.fold_left ( + ) 0 t.buffer_peaks
