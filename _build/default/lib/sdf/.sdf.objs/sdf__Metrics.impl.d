lib/sdf/metrics.ml: Array Float Graph List Repetition
