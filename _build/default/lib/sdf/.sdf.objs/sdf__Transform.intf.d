lib/sdf/transform.mli: Graph
