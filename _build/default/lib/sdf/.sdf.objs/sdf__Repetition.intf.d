lib/sdf/repetition.mli: Format Graph
