lib/sdf/rational.ml: Format Printf Stdlib
