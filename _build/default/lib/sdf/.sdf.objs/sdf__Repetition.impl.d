lib/sdf/repetition.ml: Array Format Graph Queue Rational Result
