lib/sdf/statespace.mli: Graph
