lib/sdf/text.ml: Array Buffer Fun Graph List Printf String
