lib/sdf/statespace.ml: Array Float Graph Hashtbl List Printf Repetition
