lib/sdf/validate.mli: Format Graph
