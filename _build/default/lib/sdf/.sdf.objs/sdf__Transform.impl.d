lib/sdf/transform.ml: Array Graph Hsdf Printf
