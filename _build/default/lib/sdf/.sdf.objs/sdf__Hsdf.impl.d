lib/sdf/hsdf.ml: Array Float Graph Hashtbl List Mcm Printf Repetition
