lib/sdf/text.mli: Graph
