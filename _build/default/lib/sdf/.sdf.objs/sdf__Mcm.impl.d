lib/sdf/mcm.ml: Array Float Int List Rational
