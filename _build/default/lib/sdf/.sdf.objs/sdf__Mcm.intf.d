lib/sdf/mcm.mli: Rational
