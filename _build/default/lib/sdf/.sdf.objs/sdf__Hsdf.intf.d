lib/sdf/hsdf.mli: Graph Rational
