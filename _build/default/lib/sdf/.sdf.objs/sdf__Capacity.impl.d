lib/sdf/capacity.ml: Array Fun Graph Int List Metrics Printf Statespace
