lib/sdf/metrics.mli: Graph
