lib/sdf/graph.ml: Array Format Fun List Printf
