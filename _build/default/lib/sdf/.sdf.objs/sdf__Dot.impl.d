lib/sdf/dot.ml: Array Buffer Fun Graph Printf
