lib/sdf/capacity.mli: Graph
