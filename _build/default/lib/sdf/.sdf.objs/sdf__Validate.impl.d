lib/sdf/validate.ml: Array Format Graph List Repetition Statespace
