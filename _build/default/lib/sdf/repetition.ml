type error = Inconsistent of Graph.channel | Disconnected

let pp_error ppf = function
  | Inconsistent (c : Graph.channel) ->
      Format.fprintf ppf "inconsistent balance equation on channel %d -> %d" c.src c.dst
  | Disconnected -> Format.fprintf ppf "graph is not (weakly) connected"

exception Failed of error

(* Propagate provisional rational firing rates from actor 0 along channels in
   both directions; a cross-edge whose balance equation disagrees with the
   propagated rates witnesses inconsistency. *)
let solve g =
  let n = Graph.num_actors g in
  let rate = Array.make n None in
  rate.(0) <- Some Rational.one;
  let queue = Queue.create () in
  Queue.add 0 queue;
  let relate ~known ~unknown ratio =
    (* rate(unknown) = rate(known) * ratio *)
    match rate.(known) with
    | None -> assert false
    | Some r -> (
        let v = Rational.mul r ratio in
        match rate.(unknown) with
        | None ->
            rate.(unknown) <- Some v;
            Queue.add unknown queue
        | Some existing -> if not (Rational.equal existing v) then raise Exit)
  in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Array.iter
      (fun (c : Graph.channel) ->
        let ratio_fwd = Rational.make c.produce c.consume in
        try
          if c.src = id && rate.(c.dst) = None then
            relate ~known:c.src ~unknown:c.dst ratio_fwd
          else if c.dst = id && rate.(c.src) = None then
            relate ~known:c.dst ~unknown:c.src (Rational.inv ratio_fwd)
          else if c.src = id || c.dst = id then
            (* Both ends known: verify the balance equation. *)
            match rate.(c.src), rate.(c.dst) with
            | Some rs, Some rd ->
                if not (Rational.equal (Rational.mul rs ratio_fwd) rd) then raise Exit
            | _ -> ()
        with Exit -> raise (Failed (Inconsistent c)))
      g.channels
  done;
  let rates =
    Array.map (function Some r -> r | None -> raise (Failed Disconnected)) rate
  in
  (* Scale to the smallest positive integer vector. *)
  let den_lcm =
    Array.fold_left (fun acc (r : Rational.t) -> Rational.lcm acc r.den) 1 rates
  in
  let ints =
    Array.map (fun r -> Rational.to_int_exn (Rational.mul r (Rational.of_int den_lcm))) rates
  in
  let g0 = Array.fold_left (fun acc v -> Rational.gcd acc v) 0 ints in
  Array.map (fun v -> v / g0) ints

let compute g =
  if Graph.num_actors g = 0 then Ok [||]
  else
    match solve g with
    | q -> Ok q
    | exception Failed e -> Error e

let compute_exn g =
  match compute g with
  | Ok q -> q
  | Error e -> invalid_arg (Format.asprintf "Sdf.Repetition: %a" pp_error e)

let is_consistent g = Result.is_ok (compute g)

let total_firings q = Array.fold_left ( + ) 0 q
