(** A line-oriented text format for SDF graphs, so workloads can be saved,
    versioned and exchanged:

    {v
    graph "A"
    actor a0 100
    actor a1 50
    channel a0 -> a1 produce 2 consume 1 tokens 0
    # comments and blank lines are ignored
    v}

    Actor order defines actor ids.  [to_string] and [of_string] round-trip
    exactly (up to float formatting). *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Error messages carry the offending line number. *)

val of_string_exn : string -> Graph.t
(** @raise Invalid_argument on a parse error. *)

val write_file : string -> Graph.t -> unit

val read_file : string -> (Graph.t, string) result

val to_string_many : Graph.t list -> string
(** Several graphs concatenated; each starts at its [graph] line. *)

val of_string_many : string -> (Graph.t list, string) result
(** Splits the input at [graph] lines and parses each section.  Comment and
    blank lines before the first graph are ignored. *)
