type t = { num : int; den : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)
let div a b = if b.num = 0 then raise Division_by_zero else make (a.num * b.den) (a.den * b.num)
let neg a = { a with num = -a.num }
let inv a = if a.num = 0 then raise Division_by_zero else make a.den a.num

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_float a = float_of_int a.num /. float_of_int a.den
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den = 1 then a.num
  else invalid_arg (Printf.sprintf "Rational.to_int_exn: %d/%d" a.num a.den)

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
