(** Exact rational arithmetic over native integers.

    Used by the repetition-vector solver and the exact period computation,
    where floating point would accumulate error and break the balance
    equations.  Values are kept in normal form: the denominator is positive
    and [gcd num den = 1]. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by {!zero}. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val is_integer : t -> bool

val gcd : int -> int -> int
(** Greatest common divisor of the absolute values; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
