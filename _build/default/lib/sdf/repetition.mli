(** Repetition vectors (paper Definition 2).

    The repetition vector [q] of a consistent SDFG is the smallest positive
    integer vector satisfying the balance equation
    [q.(src) * produce = q.(dst) * consume] for every channel.  One
    {e iteration} of the graph fires each actor [a] exactly [q.(a)] times and
    returns every channel to its initial token count. *)

type error =
  | Inconsistent of Graph.channel
      (** A channel whose balance equation contradicts the rest of the graph. *)
  | Disconnected
      (** The graph has several weakly-connected components; the repetition
          vector is only canonical for connected graphs. *)

val compute : Graph.t -> (int array, error) result
(** Smallest positive repetition vector, indexed by actor id. *)

val compute_exn : Graph.t -> int array
(** @raise Invalid_argument on an inconsistent or disconnected graph. *)

val is_consistent : Graph.t -> bool

val total_firings : int array -> int
(** Sum of the entries: firings in one graph iteration. *)

val pp_error : Format.formatter -> error -> unit
