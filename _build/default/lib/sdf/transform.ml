let single_rate g =
  let h = Hsdf.expand g in
  let actors =
    Array.map
      (fun (n : Hsdf.node) ->
        (Printf.sprintf "%s#%d" (Graph.actor g n.actor).name n.firing, n.exec_time))
      h.nodes
  in
  let channels =
    Array.map
      (fun (e : Hsdf.edge) -> (e.from_node, e.to_node, 1, 1, e.delay))
      h.edges
  in
  Graph.create ~name:(g.name ^ "#sr") ~actors ~channels

let scale_times factor g =
  if factor <= 0. then invalid_arg "Sdf.Transform.scale_times: non-positive factor";
  Graph.with_exec_times g (Array.map (fun t -> t *. factor) (Graph.exec_times g))

let reverse (g : Graph.t) =
  let actors = Array.map (fun (a : Graph.actor) -> (a.name, a.exec_time)) g.actors in
  let channels =
    Array.map
      (fun (c : Graph.channel) -> (c.dst, c.src, c.consume, c.produce, c.tokens))
      g.channels
  in
  Graph.create ~name:(g.name ^ "#rev") ~actors ~channels

let rename ~prefix (g : Graph.t) =
  let actors =
    Array.map (fun (a : Graph.actor) -> (prefix ^ a.name, a.exec_time)) g.actors
  in
  let channels =
    Array.map
      (fun (c : Graph.channel) -> (c.src, c.dst, c.produce, c.consume, c.tokens))
      g.channels
  in
  Graph.create ~name:(prefix ^ g.name) ~actors ~channels
