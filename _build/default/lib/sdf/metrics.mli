(** Secondary performance metrics of self-timed execution: latency, makespan
    and buffer occupancy (the properties SDF analysis tools report alongside
    throughput — cf. the paper's references [16, 20]). *)

type t = {
  latency : float;
      (** Completion time of the first firing of the last-finishing actor in
          iteration one — the input-to-output delay of a fresh start. *)
  makespan : float;  (** Completion time of the requested iterations. *)
  buffer_peaks : int array;
      (** Maximum simultaneous token count observed per channel (indexed
          like [Graph.channels]), an upper bound on the FIFO capacity each
          channel needs under self-timed execution. *)
}

val analyse : ?iterations:int -> Graph.t -> t option
(** [analyse g] executes [g] self-timed for [iterations] (default [3])
    complete graph iterations and reports the metrics; [None] if the graph
    deadlocks before completing them.
    @raise Invalid_argument on an inconsistent graph or non-positive
    [iterations]. *)

val buffer_bound_total : t -> int
(** Sum of the per-channel peaks: a simple total-memory upper bound. *)
