type outcome = Period of float | Deadlock

(* State of the self-timed execution: current token count of every channel
   plus, per actor, the remaining time of its ongoing firing (-1 when idle).
   Recurrence of this pair implies the execution is periodic from there on. *)
module State = struct
  type t = { tokens : int array; remaining : int array }

  let equal a b = a.tokens = b.tokens && a.remaining = b.remaining
  let hash a = Hashtbl.hash (a.tokens, a.remaining)
end

module States = Hashtbl.Make (State)

let scaled_times ~scale (g : Graph.t) =
  let to_int (a : Graph.actor) =
    let t = Float.round (a.exec_time *. scale) in
    if t < 1. || t > 1e15 then
      invalid_arg
        (Printf.sprintf
           "Sdf.Statespace: execution time %g for %S out of range at scale %g"
           a.exec_time a.name scale)
    else int_of_float t
  in
  Array.map to_int g.actors

let run ?(scale = 1e6) ?(max_steps = 2_000_000) (g : Graph.t) =
  let n = Graph.num_actors g in
  if n = 0 then invalid_arg "Sdf.Statespace.run: empty graph";
  let q = Repetition.compute_exn g in
  let times = scaled_times ~scale g in
  let tokens = Array.map (fun (c : Graph.channel) -> c.tokens) g.channels in
  let remaining = Array.make n (-1) in
  let in_idx =
    (* Channel indices feeding each actor, for O(in-degree) enabled checks. *)
    let idx = Array.make n [] in
    Array.iteri
      (fun ci (c : Graph.channel) -> idx.(c.dst) <- ci :: idx.(c.dst))
      g.channels;
    idx
  in
  let enabled id =
    remaining.(id) < 0
    && List.for_all
         (fun ci -> tokens.(ci) >= g.channels.(ci).consume)
         in_idx.(id)
  in
  let start id =
    List.iter (fun ci -> tokens.(ci) <- tokens.(ci) - g.channels.(ci).consume) in_idx.(id);
    remaining.(id) <- times.(id)
  in
  let fires0 = ref 0 in
  let finish id =
    Array.iteri
      (fun ci (c : Graph.channel) ->
        if c.src = id then tokens.(ci) <- tokens.(ci) + c.produce)
      g.channels;
    remaining.(id) <- -1;
    if id = 0 then incr fires0
  in
  (* Fire everything enabled; starting one actor never disables another
     (channels have a single consumer position per actor here), but starting
     an actor with a self-loop could; loop to a fixpoint for safety. *)
  let saturate () =
    let again = ref true in
    while !again do
      again := false;
      for id = 0 to n - 1 do
        if enabled id then begin
          start id;
          again := true
        end
      done
    done
  in
  let seen = States.create 4096 in
  let now = ref 0 in
  let steps = ref 0 in
  let result = ref None in
  saturate ();
  while !result = None do
    incr steps;
    if !steps > max_steps then
      invalid_arg
        (Printf.sprintf "Sdf.Statespace.run: no recurrence within %d steps in %S"
           max_steps g.name);
    let snapshot =
      { State.tokens = Array.copy tokens; remaining = Array.copy remaining }
    in
    (match States.find_opt seen snapshot with
    | Some (t0, f0) ->
        let iterations = float_of_int (!fires0 - f0) /. float_of_int q.(0) in
        if iterations <= 0. then result := Some Deadlock
          (* recurrent state without progress: a genuine deadlock cycle *)
        else
          let elapsed = float_of_int (!now - t0) in
          result := Some (Period (elapsed /. iterations /. scale))
    | None -> States.add seen snapshot (!now, !fires0));
    if !result = None then begin
      (* Advance to the next completion. *)
      let dt =
        Array.fold_left
          (fun acc r -> if r >= 0 && (acc < 0 || r < acc) then r else acc)
          (-1) remaining
      in
      if dt < 0 then result := Some Deadlock
      else begin
        now := !now + dt;
        for id = 0 to n - 1 do
          if remaining.(id) >= 0 then begin
            remaining.(id) <- remaining.(id) - dt;
            if remaining.(id) = 0 then finish id
          end
        done;
        saturate ()
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

let period ?scale g =
  match run ?scale g with Period p -> Some p | Deadlock -> None

let period_exn ?scale g =
  match run ?scale g with
  | Period p -> p
  | Deadlock -> invalid_arg (Printf.sprintf "Sdf.Statespace: graph %S deadlocks" g.name)

let is_live g = match run g with Period _ -> true | Deadlock -> false
