(** Graphviz export of SDF graphs, for documentation and debugging. *)

val to_dot : Graph.t -> string
(** DOT source: actors become nodes labelled [name (tau)], channels become
    edges labelled [produce/consume] with initial tokens shown as a bullet
    count. *)

val write_file : string -> Graph.t -> unit
(** [write_file path g] writes [to_dot g] to [path]. *)
