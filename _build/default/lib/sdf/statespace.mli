(** Application period via self-timed state-space execution
    (Ghamarian et al., ACSD 2006 — the paper's reference [5]).

    The graph is executed self-timed: every actor fires as soon as it is
    enabled, with at most one concurrent firing per actor (each actor owns a
    dedicated resource, which is the setting of the paper's analysis).
    Because the execution is deterministic and the reachable state space of a
    strongly-connected consistent SDFG is finite, the execution eventually
    revisits a state; the period is the elapsed time between the two visits
    divided by the number of graph iterations completed in between.

    Execution times are floats; they are scaled to integers (default
    [scale = 1e6], i.e. microsecond resolution on unit-time graphs) so state
    recurrence can be detected with exact arithmetic. *)

type outcome =
  | Period of float
      (** Average time per graph iteration in steady state (paper's Per). *)
  | Deadlock
      (** The execution reached a state with no enabled and no running actor. *)

val run : ?scale:float -> ?max_steps:int -> Graph.t -> outcome
(** [run g] executes [g] until a recurrent state or deadlock is found.
    [max_steps] (default [2_000_000]) bounds the number of simulation events
    as a safety net.
    @raise Invalid_argument if the graph is inconsistent, disconnected, or the
    recurrence is not found within [max_steps]. *)

val period : ?scale:float -> Graph.t -> float option
(** [Some p] on success, [None] on deadlock. *)

val period_exn : ?scale:float -> Graph.t -> float
(** @raise Invalid_argument on deadlock. *)

val is_live : Graph.t -> bool
(** Whether self-timed execution runs forever (no deadlock). *)
