(** Maximum cycle ratio of a weighted digraph.

    Each edge [(from, to, weight, delay)] has a non-negative real weight and a
    non-negative integer delay.  The maximum cycle ratio is
    [max over cycles C of (sum of weights of C / sum of delays of C)].
    For an HSDF dependency graph this is the iteration period (MCM analysis;
    the paper's reference [4]).

    Solved by parametric search: the predicate "there is a cycle with
    [sum (w - lambda*d) > 0]" is monotone in [lambda]; a Bellman-Ford positive
    cycle detection decides it and a bisection locates the threshold. *)

val has_positive_cycle : nodes:int -> (int * int * float) array -> bool
(** Whether the graph with real edge weights contains a cycle of strictly
    positive total weight (detected with a tolerance of [1e-12] per
    relaxation to absorb rounding). *)

val max_cycle_ratio :
  ?epsilon:float -> nodes:int -> (int * int * float * int) array -> float option
(** [None] when the graph is acyclic.  [epsilon] (default [1e-9]) is the
    absolute bisection tolerance.
    @raise Invalid_argument if some cycle has zero total delay (the ratio is
    unbounded — an SDF deadlock) or some edge has negative weight or delay. *)

val max_cycle_ratio_rational :
  nodes:int -> (int * int * int * int) array -> Rational.t option
(** Exact maximum cycle ratio for integer edge weights.

    The optimum is a fraction [p/q] with [q] bounded by the total delay, so a
    float bisection down to interval width [1/q_max²] followed by a
    continued-fraction (best rational approximation) step identifies the
    unique candidate, which is then verified with exact integer
    positive-cycle tests.  [None] when the graph is acyclic.
    @raise Invalid_argument as {!max_cycle_ratio}, or when intermediate
    products would overflow the native integer range. *)

val has_positive_cycle_int : nodes:int -> (int * int * int) array -> bool
(** Exact integer variant of {!has_positive_cycle}. *)
