let to_string (g : Graph.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "graph %S\n" g.name);
  Array.iter
    (fun (a : Graph.actor) ->
      Buffer.add_string buf (Printf.sprintf "actor %s %.17g\n" a.name a.exec_time))
    g.actors;
  Array.iter
    (fun (c : Graph.channel) ->
      Buffer.add_string buf
        (Printf.sprintf "channel %s -> %s produce %d consume %d tokens %d\n"
           g.actors.(c.src).name g.actors.(c.dst).name c.produce c.consume c.tokens))
    g.channels;
  Buffer.contents buf

type parse_state = {
  mutable graph_name : string option;
  mutable actors : (string * float) list;  (* reverse order *)
  mutable channels : (string * string * int * int * int) list;  (* reverse *)
}

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg)

let of_string text =
  let state = { graph_name = None; actors = []; channels = [] } in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> finish ()
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then
          go (lineno + 1) rest
        else
          match tokenize line with
          | [ "graph"; quoted ] ->
              if state.graph_name <> None then parse_error lineno "duplicate graph line"
              else if
                String.length quoted >= 2
                && quoted.[0] = '"'
                && quoted.[String.length quoted - 1] = '"'
              then begin
                state.graph_name <- Some (String.sub quoted 1 (String.length quoted - 2));
                go (lineno + 1) rest
              end
              else parse_error lineno "graph name must be quoted"
          | [ "actor"; name; time ] -> (
              match float_of_string_opt time with
              | None -> parse_error lineno (Printf.sprintf "bad execution time %S" time)
              | Some t ->
                  if List.mem_assoc name state.actors then
                    parse_error lineno (Printf.sprintf "duplicate actor %S" name)
                  else begin
                    state.actors <- (name, t) :: state.actors;
                    go (lineno + 1) rest
                  end)
          | [ "channel"; src; "->"; dst; "produce"; p; "consume"; c; "tokens"; t ] -> (
              match (int_of_string_opt p, int_of_string_opt c, int_of_string_opt t) with
              | Some p, Some c, Some t ->
                  state.channels <- (src, dst, p, c, t) :: state.channels;
                  go (lineno + 1) rest
              | _ -> parse_error lineno "bad channel rates or tokens")
          | _ -> parse_error lineno (Printf.sprintf "unrecognised line %S" line))
  and finish () =
    match state.graph_name with
    | None -> Error "missing graph line"
    | Some name -> (
        let actors = Array.of_list (List.rev state.actors) in
        let index_of n =
          let found = ref (-1) in
          Array.iteri (fun i (an, _) -> if an = n then found := i) actors;
          !found
        in
        let resolve (src, dst, p, c, t) =
          let si = index_of src and di = index_of dst in
          if si < 0 then Error (Printf.sprintf "unknown channel source %S" src)
          else if di < 0 then Error (Printf.sprintf "unknown channel target %S" dst)
          else Ok (si, di, p, c, t)
        in
        let rec resolve_all acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | ch :: rest -> (
              match resolve ch with
              | Error _ as e -> e
              | Ok r -> resolve_all (r :: acc) rest)
        in
        match resolve_all [] (List.rev state.channels) with
        | Error _ as e -> e
        | Ok channels -> (
            match Graph.create ~name ~actors ~channels with
            | g -> Ok g
            | exception Invalid_argument msg -> Error msg))
  in
  go 1 lines

let of_string_exn text =
  match of_string text with
  | Ok g -> g
  | Error msg -> invalid_arg ("Sdf.Text.of_string_exn: " ^ msg)

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_string_many graphs = String.concat "\n" (List.map to_string graphs)

let of_string_many text =
  let lines = String.split_on_char '\n' text in
  (* Partition into sections, each beginning with a "graph" line. *)
  let sections, current =
    List.fold_left
      (fun (sections, current) line ->
        let starts_graph =
          match tokenize (String.trim line) with "graph" :: _ -> true | _ -> false
        in
        if starts_graph then
          match current with
          | None -> (sections, Some [ line ])
          | Some acc -> (List.rev acc :: sections, Some [ line ])
        else
          match current with
          | None -> (sections, None)  (* leading comments/blanks *)
          | Some acc -> (sections, Some (line :: acc)))
      ([], None) lines
  in
  let sections =
    List.rev (match current with None -> sections | Some acc -> List.rev acc :: sections)
  in
  if sections = [] then Error "no graph sections found"
  else
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | section :: rest -> (
          match of_string (String.concat "\n" section) with
          | Ok g -> parse_all (g :: acc) rest
          | Error _ as e -> e)
    in
    parse_all [] sections
