let check_capacity (c : Graph.channel) capacity =
  let least = Int.max c.tokens (Int.max c.produce c.consume) in
  if capacity < least then
    invalid_arg
      (Printf.sprintf
         "Sdf.Capacity: capacity %d on channel %d -> %d below minimum %d" capacity
         c.src c.dst least)

let bounded (g : Graph.t) ~capacities =
  if Array.length capacities <> Graph.num_channels g then
    invalid_arg "Sdf.Capacity.bounded: capacities length mismatch";
  Array.iteri (fun i c -> check_capacity c capacities.(i)) g.channels;
  let actors = Array.map (fun (a : Graph.actor) -> (a.name, a.exec_time)) g.actors in
  let forward =
    Array.map
      (fun (c : Graph.channel) -> (c.src, c.dst, c.produce, c.consume, c.tokens))
      g.channels
  in
  let reverse =
    Array.mapi
      (fun i (c : Graph.channel) ->
        (* Space tokens: the producer consumes [produce] space per firing,
           the consumer frees [consume] per firing; initially the free space
           is capacity - initial tokens. *)
        (c.dst, c.src, c.consume, c.produce, capacities.(i) - c.tokens))
      g.channels
  in
  Graph.create
    ~name:(g.name ^ "#bounded")
    ~actors
    ~channels:(Array.append forward reverse)

let sufficient_capacities (g : Graph.t) =
  match Metrics.analyse ~iterations:3 g with
  | None -> invalid_arg "Sdf.Capacity.sufficient_capacities: graph deadlocks"
  | Some m ->
      (* Peak occupancy plus one in-flight production burst (space claimed at
         the producer's start) plus one in-flight consumption burst (space
         returned only at the consumer's finish) can never block. *)
      Array.mapi
        (fun i (c : Graph.channel) ->
          let least = Int.max c.tokens (Int.max c.produce c.consume) in
          Int.max least (m.buffer_peaks.(i) + c.produce + c.consume))
        g.channels

let throughput_with g ~capacities = Statespace.period (bounded g ~capacities)

let sweep_uniform (g : Graph.t) ~max_capacity =
  if max_capacity < 1 then invalid_arg "Sdf.Capacity.sweep_uniform: max_capacity < 1";
  List.init max_capacity (fun k ->
      let k = k + 1 in
      let capacities =
        Array.map
          (fun (c : Graph.channel) ->
            Int.max k (Int.max c.tokens (Int.max c.produce c.consume)))
          g.channels
      in
      (k, throughput_with g ~capacities))

let minimise ?start (g : Graph.t) ~max_period =
  if max_period <= 0. then invalid_arg "Sdf.Capacity.minimise: non-positive max_period";
  let caps =
    match start with
    | Some c ->
        if Array.length c <> Graph.num_channels g then
          invalid_arg "Sdf.Capacity.minimise: start length mismatch";
        Array.copy c
    | None -> sufficient_capacities g
  in
  let meets caps =
    match throughput_with g ~capacities:caps with
    | Some p -> p <= max_period +. 1e-9
    | None -> false
  in
  if not (meets caps) then None
  else begin
    let floor_of i =
      let c = g.channels.(i) in
      Int.max c.tokens (Int.max c.produce c.consume)
    in
    (* Steepest shrink: always try the channel with the most slack first. *)
    let improved = ref true in
    while !improved do
      improved := false;
      let order =
        List.sort
          (fun a b -> Int.compare (caps.(b) - floor_of b) (caps.(a) - floor_of a))
          (List.init (Array.length caps) Fun.id)
      in
      List.iter
        (fun i ->
          if (not !improved) && caps.(i) > floor_of i then begin
            caps.(i) <- caps.(i) - 1;
            if meets caps then improved := true else caps.(i) <- caps.(i) + 1
          end)
        order
    done;
    Some caps
  end
