(** Bounded channel capacities with back-pressure.

    Finite FIFO capacities are modelled by the classic transformation
    (Wiggers et al., CODES+ISSS 2006 — the paper's reference [20]): each
    forward channel gets a reverse channel carrying {e space} tokens.  A
    producer must claim space before it starts firing and the consumer
    returns space when it finishes, so a full buffer blocks the producer
    exactly as real back-pressure would.  The transformed graph is a plain
    SDFG: every existing analysis (periods, metrics, simulation) applies
    unchanged, and the throughput/buffer trade-off of the paper's
    reference [16] falls out of sweeping the capacities. *)

val bounded : Graph.t -> capacities:int array -> Graph.t
(** [bounded g ~capacities] adds one reverse channel per forward channel;
    [capacities.(i)] bounds channel [i] of [g].
    @raise Invalid_argument if the array length differs from the channel
    count or some capacity is smaller than the channel's initial tokens or
    its production or consumption rate (such a buffer could never move a
    token). *)

val sufficient_capacities : Graph.t -> int array
(** Capacities that provably preserve the self-timed schedule: the observed
    occupancy peaks of the unbounded execution plus one in-flight production
    and consumption burst per channel.
    [bounded g ~capacities:(sufficient_capacities g)] therefore has the same
    period as [g].
    @raise Invalid_argument on a deadlocking graph. *)

val throughput_with : Graph.t -> capacities:int array -> float option
(** Period of the bounded graph; [None] if the bound deadlocks it. *)

val sweep_uniform : Graph.t -> max_capacity:int -> (int * float option) list
(** The buffer/throughput trade-off curve: for each uniform capacity
    [k = 1 .. max_capacity] (clamped per-channel to stay valid), the period
    of the bounded graph.  Monotone: larger buffers never hurt. *)

val minimise : ?start:int array -> Graph.t -> max_period:float -> int array option
(** Greedy buffer minimisation under a throughput constraint (the
    trade-off exploration of the paper's reference [16]): starting from
    [start] (default {!sufficient_capacities}), repeatedly shrink the
    channel whose capacity is largest while the bounded period stays within
    [max_period].  Returns the minimised capacities, or [None] when even the
    starting point misses the constraint.  The result is a local minimum:
    no single channel can shrink further.
    @raise Invalid_argument on an invalid [start] or non-positive
    [max_period]. *)
