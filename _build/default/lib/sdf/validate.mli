(** Structural linting of SDF graphs.

    {!Graph.create} rejects outright malformed inputs; this module reports
    the semantic problems that make a well-formed graph useless for the
    analyses in this library, with one finding per issue so a front end can
    show them all at once. *)

type finding =
  | Inconsistent of string  (** No repetition vector exists. *)
  | Disconnected
  | Not_strongly_connected
      (** Legal, but unbounded channels exist and the paper's workload
          assumes strong connectivity. *)
  | Deadlocks  (** Self-timed execution stops. *)
  | Dead_self_loop of int
      (** Actor whose self-loop carries fewer tokens than it consumes: it
          can never fire. *)
  | Huge_repetition of int * int
      (** Actor with a repetition entry above the threshold: the HSDF
          expansion will blow up (the paper's Section 2 concern). *)

val check : ?repetition_limit:int -> Graph.t -> finding list
(** All findings, cheapest checks first; liveness is only checked when the
    graph is consistent.  [repetition_limit] defaults to [1000]. *)

val is_clean : Graph.t -> bool
(** [check] finds nothing. *)

val pp_finding : Format.formatter -> finding -> unit
