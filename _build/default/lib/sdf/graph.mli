(** Synchronous Data Flow graphs (Lee & Messerschmitt, 1987).

    An SDFG is a directed multigraph whose vertices ({e actors}) represent
    tasks and whose edges ({e channels}) carry FIFO token streams.  When an
    actor fires it consumes a fixed number of tokens from every incoming
    channel and, after its execution time elapses, produces a fixed number on
    every outgoing channel.  Channels may hold initial tokens, which model
    pipelining and break cyclic dependencies. *)

type actor = private {
  id : int;  (** Index into the graph's actor array. *)
  name : string;
  exec_time : float;  (** Time to complete one firing (paper's τ(a)); > 0. *)
}

type channel = private {
  src : int;  (** Producing actor id. *)
  dst : int;  (** Consuming actor id. *)
  produce : int;  (** Tokens produced per firing of [src]; ≥ 1. *)
  consume : int;  (** Tokens consumed per firing of [dst]; ≥ 1. *)
  tokens : int;  (** Initial tokens; ≥ 0. *)
}

type t = private {
  name : string;
  actors : actor array;
  channels : channel array;
}

val create :
  name:string ->
  actors:(string * float) array ->
  channels:(int * int * int * int * int) array ->
  t
(** [create ~name ~actors ~channels] builds a graph.  [actors.(i)] is
    [(name, exec_time)] for actor id [i]; each channel is
    [(src, dst, produce, consume, initial_tokens)].
    @raise Invalid_argument on out-of-range actor ids, non-positive execution
    times or rates, or negative initial token counts. *)

val num_actors : t -> int
val num_channels : t -> int

val actor : t -> int -> actor
(** @raise Invalid_argument on an out-of-range id. *)

val exec_times : t -> float array
(** Fresh array of per-actor execution times, indexed by actor id. *)

val with_exec_times : t -> float array -> t
(** [with_exec_times g times] is [g] with every actor's execution time
    replaced — used to turn response times into a new graph for throughput
    analysis.  @raise Invalid_argument on a length mismatch or a
    non-positive time. *)

val successors : t -> int -> (int * channel) list
(** [(dst, channel)] for every channel leaving the actor. *)

val predecessors : t -> int -> (int * channel) list
(** [(src, channel)] for every channel entering the actor. *)

val in_channels : t -> int -> channel list
val out_channels : t -> int -> channel list

val is_connected : t -> bool
(** Weak connectivity (ignoring edge direction). *)

val is_strongly_connected : t -> bool

val find_actor : t -> string -> actor
(** @raise Not_found if no actor has that name. *)

val pp : Format.formatter -> t -> unit
val equal_structure : t -> t -> bool
(** Same actors (names, times) and same channel list (order-sensitive). *)
