(** Expected performance across use-cases.

    The paper evaluates every use-case separately; a designer usually also
    wants the {e expected} behaviour under a usage model.  With independent
    per-application activity probabilities the distribution over use-cases
    is product-form, and the sweep data (estimated or simulated periods per
    use-case) integrates directly against it. *)

type t = private { on_prob : float array }
(** [on_prob.(i)] is the probability application [i] is active at a random
    observation instant, independently of the others. *)

val make : float array -> t
(** @raise Invalid_argument if a probability is outside [\[0,1\]]. *)

val uniform : napps:int -> float -> t

val probability : t -> Contention.Usecase.t -> float
(** Product-form probability of exactly this set of applications running. *)

type source = Simulated | Estimated of Contention.Analysis.estimator

val expected_period : t -> Sweep.t -> app:int -> source -> float
(** [E(period of app | app active)] under the usage model, from the sweep's
    per-use-case data.  Use-cases with an unmeasurable simulated period are
    skipped (their weight is renormalised away).
    @raise Invalid_argument if the app index is out of range or the sweep
    lacks the requested estimator. *)

val render : t -> Sweep.t -> string
(** Table of expected periods per application: simulated versus each of the
    sweep's estimators. *)
