type fig5 = { app_names : string array; series : (string * float array) list }

let complexity_of : Contention.Analysis.estimator -> string = function
  | Worst_case -> "O(n)"
  | Composability -> "O(n)"
  | Order m -> Printf.sprintf "O(n^%d)" m
  | Exact -> "O(n^n)"

let display_name : Contention.Analysis.estimator -> string = function
  | Worst_case -> "Analyzed Worst Case"
  | Order 4 -> "Probabilistic Fourth Order"
  | Order 2 -> "Probabilistic Second Order"
  | Order m -> Printf.sprintf "Probabilistic Order %d" m
  | Composability -> "Composability-based"
  | Exact -> "Probabilistic Exact"

let fig5 ?(horizon = 500_000.) (w : Workload.t) =
  let napps = Workload.num_apps w in
  let usecase = Contention.Usecase.full ~napps in
  let iso = Workload.isolation_periods w in
  let normalise periods = Array.mapi (fun i p -> p /. iso.(i)) periods in
  let apps = Workload.analysis_apps w usecase in
  let estimated est =
    let results = Contention.Analysis.estimate est apps in
    normalise
      (Array.of_list (List.map (fun (r : Contention.Analysis.estimate) -> r.period) results))
  in
  let sim_results, _ = Desim.Engine.run ~horizon ~procs:w.procs (Workload.sim_apps w usecase) in
  let sim = normalise (Array.map (fun r -> r.Desim.Engine.avg_period) sim_results) in
  let sim_worst = normalise (Array.map (fun r -> r.Desim.Engine.max_period) sim_results) in
  {
    app_names = Workload.names w;
    series =
      List.map
        (fun est -> (display_name est, estimated est))
        Contention.Analysis.all_paper_estimators
      @ [
          ("Simulated", sim);
          ("Simulated Worst Case", sim_worst);
          ("Original", Array.map (fun _ -> 1.) iso);
        ];
  }

let render_fig5 (f : fig5) =
  let header = "Application" :: List.map fst f.series in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i name ->
           name
           :: List.map
                (fun (_, values) -> Repro_stats.Table.float_cell ~decimals:2 values.(i))
                f.series)
         f.app_names)
  in
  "Figure 5: period of applications, normalised to isolation period\n"
  ^ "(all applications running concurrently — maximum contention)\n\n"
  ^ Repro_stats.Table.render ~header rows
  ^ "\n"
  ^ Repro_stats.Chart.grouped_bars ~labels:(Array.to_list f.app_names) ~series:f.series ()

type table1_row = {
  method_name : string;
  throughput_pct : float;
  period_pct : float;
  complexity : string;
}

let table1_order : Contention.Analysis.estimator list =
  [ Worst_case; Composability; Order 4; Order 2 ]

let paper_row_name : Contention.Analysis.estimator -> string = function
  | Worst_case -> "Worst Case"
  | Composability -> "Composability"
  | Order 4 -> "Fourth Order"
  | Order 2 -> "Second Order"
  | Order m -> Printf.sprintf "Order %d" m
  | Exact -> "Exact"

let table1 (s : Sweep.t) =
  let rows = List.filter (fun e -> List.mem e s.estimators) table1_order in
  let rows = rows @ List.filter (fun e -> not (List.mem e rows)) s.estimators in
  List.map
    (fun est ->
      {
        method_name = paper_row_name est;
        throughput_pct = Sweep.inaccuracy_throughput s est;
        period_pct = Sweep.inaccuracy_period s est;
        complexity = complexity_of est;
      })
    rows

let render_table1 rows =
  let header = [ "Method"; "Throughput (%)"; "Period (%)"; "Complexity" ] in
  let cells =
    List.map
      (fun r ->
        [
          r.method_name;
          Repro_stats.Table.float_cell r.throughput_pct;
          Repro_stats.Table.float_cell r.period_pct;
          r.complexity;
        ])
      rows
  in
  "Table 1: measured inaccuracy vs simulation, averaged over all use-cases\n\n"
  ^ Repro_stats.Table.render ~header cells

type fig6 = { sizes : float array; inaccuracy : (string * float array) list }

let fig6 (s : Sweep.t) =
  let series =
    List.map
      (fun est ->
        let pairs = Sweep.inaccuracy_by_size s est in
        (display_name est, pairs))
      s.estimators
  in
  let sizes =
    match series with
    | [] -> [||]
    | (_, pairs) :: _ -> Array.map (fun (k, _) -> float_of_int k) pairs
  in
  { sizes; inaccuracy = List.map (fun (n, pairs) -> (n, Array.map snd pairs)) series }

let render_fig6 (f : fig6) =
  let header = "Apps" :: List.map fst f.inaccuracy in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i size ->
           Printf.sprintf "%.0f" size
           :: List.map
                (fun (_, values) -> Repro_stats.Table.float_cell values.(i))
                f.inaccuracy)
         f.sizes)
  in
  "Figure 6: inaccuracy of period estimates (mean abs %% diff vs simulation)\n"
  ^ "as a function of the number of concurrently executing applications\n\n"
  ^ Repro_stats.Table.render ~header rows
  ^ "\n"
  ^ Repro_stats.Chart.lines ~x_label:"concurrent applications"
      ~y_label:"period inaccuracy (%)" ~xs:f.sizes ~series:f.inaccuracy ()

let render_timing (s : Sweep.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Timing: full use-case sweep on this machine\n\n";
  Buffer.add_string buf
    (Printf.sprintf "  simulation of %d use-cases: %.2f s\n"
       (List.length (List.sort_uniq compare (List.map (fun o -> o.Sweep.usecase) s.observations)))
       s.timing.simulation_s);
  List.iter
    (fun (est, t) ->
      Buffer.add_string buf
        (Printf.sprintf "  analysis (%s): %.2f s  (%.0fx faster than simulation)\n"
           (Contention.Analysis.estimator_name est)
           t
           (s.timing.simulation_s /. Float.max 1e-9 t)))
    s.timing.analysis_s;
  Buffer.contents buf
