let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line cells = String.concat "," (List.map quote cells) ^ "\n"

let float_cell v = if Float.is_nan v then "" else Printf.sprintf "%.6g" v

let fig5_csv (f : Figures.fig5) =
  let header = line ("app" :: List.map fst f.series) in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i name ->
           line (name :: List.map (fun (_, values) -> float_cell values.(i)) f.series))
         f.app_names)
  in
  String.concat "" (header :: rows)

let table1_csv rows =
  let header = line [ "method"; "throughput_pct"; "period_pct"; "complexity" ] in
  let body =
    List.map
      (fun (r : Figures.table1_row) ->
        line
          [
            r.method_name;
            float_cell r.throughput_pct;
            float_cell r.period_pct;
            r.complexity;
          ])
      rows
  in
  String.concat "" (header :: body)

let fig6_csv (f : Figures.fig6) =
  let header = line ("apps" :: List.map fst f.inaccuracy) in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i size ->
           line
             (Printf.sprintf "%.0f" size
             :: List.map (fun (_, values) -> float_cell values.(i)) f.inaccuracy))
         f.sizes)
  in
  String.concat "" (header :: rows)

let observations_csv (s : Sweep.t) =
  let estimator_names = List.map Contention.Analysis.estimator_name s.estimators in
  let header =
    line
      ([ "usecase"; "size"; "app"; "simulated_period"; "simulated_worst" ]
      @ estimator_names)
  in
  let names = Workload.names s.workload in
  let rows =
    List.map
      (fun (o : Sweep.observation) ->
        line
          ([
             string_of_int o.usecase;
             string_of_int (Contention.Usecase.cardinal o.usecase);
             names.(o.app_index);
             float_cell o.simulated_period;
             float_cell o.simulated_worst;
           ]
          @ List.map (fun est -> float_cell (List.assoc est o.estimated_periods)) s.estimators))
      s.observations
  in
  String.concat "" (header :: rows)

let write ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
