type t = { on_prob : float array }

let make on_prob =
  Array.iter
    (fun p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg "Exp.Scenario.make: probability outside [0,1]")
    on_prob;
  { on_prob = Array.copy on_prob }

let uniform ~napps p = make (Array.make napps p)

let probability t usecase =
  let n = Array.length t.on_prob in
  let rec go i acc =
    if i >= n then acc
    else
      let p = t.on_prob.(i) in
      let factor = if Contention.Usecase.mem i usecase then p else 1. -. p in
      go (i + 1) (acc *. factor)
  in
  go 0 1.

type source = Simulated | Estimated of Contention.Analysis.estimator

let period_of (o : Sweep.observation) = function
  | Simulated -> o.simulated_period
  | Estimated est -> (
      match List.assoc_opt est o.estimated_periods with
      | Some p -> p
      | None -> invalid_arg "Exp.Scenario: estimator not in the sweep")

let expected_period t (s : Sweep.t) ~app source =
  if app < 0 || app >= Array.length t.on_prob then
    invalid_arg "Exp.Scenario.expected_period: app index out of range";
  let weight = ref 0. and acc = ref 0. in
  List.iter
    (fun (o : Sweep.observation) ->
      if o.app_index = app then begin
        let period = period_of o source in
        if not (Float.is_nan period) then begin
          let p = probability t o.usecase in
          weight := !weight +. p;
          acc := !acc +. (p *. period)
        end
      end)
    s.observations;
  if !weight <= 0. then nan else !acc /. !weight

let render t (s : Sweep.t) =
  let names = Workload.names s.workload in
  let header =
    "App" :: "E[per | active] sim"
    :: List.map
         (fun est -> "E " ^ Contention.Analysis.estimator_name est)
         s.estimators
  in
  let rows =
    List.init (Array.length names) (fun i ->
        names.(i)
        :: Repro_stats.Table.float_cell (expected_period t s ~app:i Simulated)
        :: List.map
             (fun est ->
               Repro_stats.Table.float_cell (expected_period t s ~app:i (Estimated est)))
             s.estimators)
  in
  Repro_stats.Table.render ~header rows
