type summary = {
  app_name : string;
  mean : float;
  stddev : float;
  ci95 : float;
  samples : int;
}

let run ?(replications = 11) ?(horizon = 200_000.) ?(seed = 0) ~procs ~distributions
    apps =
  if replications < 1 then invalid_arg "Exp.Replicate.run: replications < 1";
  if Array.length distributions <> Array.length apps then
    invalid_arg "Exp.Replicate.run: one distribution array per application";
  Array.iteri
    (fun i dists ->
      if Array.length dists <> Sdf.Graph.num_actors apps.(i).Desim.Engine.graph then
        invalid_arg "Exp.Replicate.run: distributions shape mismatch";
      Array.iter Contention.Dist.validate dists)
    distributions;
  let samples = Array.map (fun _ -> ref []) apps in
  for rep = 1 to replications do
    let rng = Sdfgen.Rng.create ((seed * 1_000_003) + rep) in
    let firing_time ~app ~actor =
      Contention.Dist.sample distributions.(app).(actor) ~u:(Sdfgen.Rng.float rng 1.)
    in
    let results, _ = Desim.Engine.run ~horizon ~firing_time ~procs apps in
    Array.iteri
      (fun i (r : Desim.Engine.result) ->
        if not (Float.is_nan r.avg_period) then
          samples.(i) := r.avg_period :: !(samples.(i)))
      results
  done;
  Array.mapi
    (fun i (app : Desim.Engine.app) ->
      match !(samples.(i)) with
      | [] ->
          {
            app_name = app.graph.Sdf.Graph.name;
            mean = nan;
            stddev = nan;
            ci95 = nan;
            samples = 0;
          }
      | xs ->
          let n = List.length xs in
          let mean = Repro_stats.Stats.mean xs in
          let stddev = Repro_stats.Stats.stddev xs in
          {
            app_name = app.graph.Sdf.Graph.name;
            mean;
            stddev;
            ci95 = 1.96 *. stddev /. sqrt (float_of_int n);
            samples = n;
          })
    apps
