(** CSV export of the experiment data, for external plotting. *)

val fig5_csv : Figures.fig5 -> string
(** Header [app,<series...>]; one row per application, values normalised to
    the isolation period. *)

val table1_csv : Figures.table1_row list -> string

val fig6_csv : Figures.fig6 -> string
(** Header [apps,<methods...>]; one row per use-case size. *)

val observations_csv : Sweep.t -> string
(** The raw sweep: one row per (use-case, application) with the simulated
    and estimated periods — the full data behind Table 1 and Figure 6. *)

val write : path:string -> string -> unit
