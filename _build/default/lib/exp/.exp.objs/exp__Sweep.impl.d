lib/exp/sweep.ml: Array Contention Desim Float Fun Hashtbl Int List Option Repro_stats Unix Workload
