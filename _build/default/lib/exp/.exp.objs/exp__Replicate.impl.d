lib/exp/replicate.ml: Array Contention Desim Float List Repro_stats Sdf Sdfgen
