lib/exp/replicate.mli: Contention Desim
