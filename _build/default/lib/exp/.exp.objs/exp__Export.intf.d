lib/exp/export.mli: Figures Sweep
