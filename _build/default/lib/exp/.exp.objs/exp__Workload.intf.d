lib/exp/workload.mli: Contention Desim Sdfgen
