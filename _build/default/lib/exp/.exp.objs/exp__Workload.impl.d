lib/exp/workload.ml: Array Contention Desim Fun List Printf Sdf Sdfgen String
