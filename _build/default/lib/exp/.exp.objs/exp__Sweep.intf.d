lib/exp/sweep.mli: Contention Workload
