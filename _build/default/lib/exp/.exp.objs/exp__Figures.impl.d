lib/exp/figures.ml: Array Buffer Contention Desim Float List Printf Repro_stats Sweep Workload
