lib/exp/scenario.ml: Array Contention Float List Repro_stats Sweep Workload
