lib/exp/report.mli: Contention Workload
