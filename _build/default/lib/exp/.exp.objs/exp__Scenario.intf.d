lib/exp/scenario.mli: Contention Sweep
