lib/exp/export.ml: Array Contention Figures Float Fun List Printf String Sweep Workload
