lib/exp/report.ml: Array Buffer Contention Desim Float Format List Printf Repro_stats Sdf Workload
