lib/exp/figures.mli: Contention Sweep Workload
