(** Rendering of the paper's evaluation artefacts (Figure 5, Table 1,
    Figure 6) from workload and sweep data. *)

type fig5 = {
  app_names : string array;
  (* All series are periods normalised to each application's isolation
     period, matching the paper's Figure 5 y-axis. *)
  series : (string * float array) list;
      (** In the paper's legend order: Analyzed Worst Case, Probabilistic
          Fourth Order, Probabilistic Second Order, Composability-based,
          Simulated, Simulated Worst Case, Original. *)
}

val fig5 : ?horizon:float -> Workload.t -> fig5
(** Runs the maximum-contention use-case (all applications concurrent)
    through the simulator and every estimator. *)

val render_fig5 : fig5 -> string
(** Table plus grouped bar chart. *)

type table1_row = {
  method_name : string;
  throughput_pct : float;
  period_pct : float;
  complexity : string;  (** The paper's complexity column, e.g. ["O(n^2)"]. *)
}

val table1 : Sweep.t -> table1_row list
(** Mean absolute inaccuracy versus simulation over the sweep, in the paper's
    row order (Worst Case, Composability, Fourth Order, Second Order). *)

val render_table1 : table1_row list -> string

type fig6 = {
  sizes : float array;  (** Number of concurrently executing applications. *)
  inaccuracy : (string * float array) list;  (** Period inaccuracy per method. *)
}

val fig6 : Sweep.t -> fig6
val render_fig6 : fig6 -> string
(** Data table plus ASCII line chart. *)

val render_timing : Sweep.t -> string
(** Wall-clock comparison of the sweep's simulation versus analysis time —
    the paper's "minutes versus 23 hours" claim, measured on this machine. *)

val complexity_of : Contention.Analysis.estimator -> string
