(** Monte-Carlo replication of stochastic simulations.

    A single stochastic run gives one sample of each application's mean
    period; replications with independent seeds give a confidence interval,
    which is what estimates should be compared against when execution times
    are random (the paper's Section 6 extension). *)

type summary = {
  app_name : string;
  mean : float;  (** Mean of the per-replication average periods. *)
  stddev : float;
  ci95 : float;  (** Half-width of the 95% normal confidence interval. *)
  samples : int;  (** Replications that produced a measurable period. *)
}

val run :
  ?replications:int ->
  ?horizon:float ->
  ?seed:int ->
  procs:int ->
  distributions:Contention.Dist.t array array ->
  Desim.Engine.app array ->
  summary array
(** [run ~procs ~distributions apps] simulates [replications] (default [11])
    times; replication [r] draws every firing duration of app [i], actor [j]
    from [distributions.(i).(j)] using a generator derived from [seed]
    (default [0]) and [r].
    @raise Invalid_argument on shape mismatches or [replications < 1]. *)
