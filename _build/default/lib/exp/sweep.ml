type observation = {
  usecase : Contention.Usecase.t;
  app_index : int;
  simulated_period : float;
  simulated_worst : float;
  estimated_periods : (Contention.Analysis.estimator * float) list;
}

type timing = {
  simulation_s : float;
  analysis_s : (Contention.Analysis.estimator * float) list;
}

type t = {
  workload : Workload.t;
  estimators : Contention.Analysis.estimator list;
  observations : observation list;
  timing : timing;
}

let timed acc f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  acc := !acc +. (Unix.gettimeofday () -. t0);
  r

let run ?(horizon = 500_000.) ?estimators ?usecases ?progress (w : Workload.t) =
  let estimators =
    Option.value ~default:Contention.Analysis.all_paper_estimators estimators
  in
  let usecases =
    Option.value ~default:(Contention.Usecase.all ~napps:(Workload.num_apps w)) usecases
  in
  let total = List.length usecases in
  let sim_time = ref 0. in
  let analysis_times = List.map (fun e -> (e, ref 0.)) estimators in
  let completed = ref 0 in
  let observe usecase =
    let indices = Contention.Usecase.to_list usecase in
    let sim_results, _ =
      timed sim_time (fun () ->
          Desim.Engine.run ~horizon ~procs:w.procs (Workload.sim_apps w usecase))
    in
    let apps = Workload.analysis_apps w usecase in
    let per_estimator =
      List.map
        (fun (est, acc) ->
          let results =
            timed acc (fun () -> Contention.Analysis.estimate est apps)
          in
          (est, List.map (fun (r : Contention.Analysis.estimate) -> r.period) results))
        analysis_times
    in
    incr completed;
    (match progress with Some f -> f !completed total | None -> ());
    List.mapi
      (fun pos app_index ->
        {
          usecase;
          app_index;
          simulated_period = sim_results.(pos).Desim.Engine.avg_period;
          simulated_worst = sim_results.(pos).Desim.Engine.max_period;
          estimated_periods =
            List.map (fun (est, periods) -> (est, List.nth periods pos)) per_estimator;
        })
      indices
  in
  let observations = List.concat_map observe usecases in
  {
    workload = w;
    estimators;
    observations;
    timing =
      {
        simulation_s = !sim_time;
        analysis_s = List.map (fun (e, acc) -> (e, !acc)) analysis_times;
      };
  }

let valid_observations t =
  List.filter (fun o -> not (Float.is_nan o.simulated_period)) t.observations

let estimate_of o est =
  match List.assoc_opt est o.estimated_periods with
  | Some p -> p
  | None -> invalid_arg "Exp.Sweep: estimator was not part of the sweep"

let inaccuracy_over obs est ~on =
  match obs with
  | [] -> nan
  | obs ->
      Repro_stats.Stats.mean
        (List.map
           (fun o ->
             Repro_stats.Stats.abs_pct_error
               ~reference:(on o.simulated_period)
               (on (estimate_of o est)))
           obs)

let inaccuracy_period t est = inaccuracy_over (valid_observations t) est ~on:Fun.id

let inaccuracy_throughput t est =
  inaccuracy_over (valid_observations t) est ~on:(fun p -> 1. /. p)

let inaccuracy_by_size t est =
  let by_size = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let k = Contention.Usecase.cardinal o.usecase in
      Hashtbl.replace by_size k (o :: Option.value ~default:[] (Hashtbl.find_opt by_size k)))
    (valid_observations t);
  let sizes = List.sort_uniq Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_size []) in
  Array.of_list
    (List.map
       (fun k -> (k, inaccuracy_over (Hashtbl.find by_size k) est ~on:Fun.id))
       sizes)
