(** The use-case sweep behind Table 1 and Figure 6: every (non-empty)
    use-case is simulated and analysed with every estimator, and per-app
    periods are compared. *)

type observation = {
  usecase : Contention.Usecase.t;
  app_index : int;
  simulated_period : float;  (** Steady-state mean from {!Desim.Engine}. *)
  simulated_worst : float;  (** Worst inter-iteration gap observed. *)
  estimated_periods : (Contention.Analysis.estimator * float) list;
}

type timing = {
  simulation_s : float;  (** Wall-clock spent simulating the whole sweep. *)
  analysis_s : (Contention.Analysis.estimator * float) list;
      (** Wall-clock per estimator for the whole sweep. *)
}

type t = {
  workload : Workload.t;
  estimators : Contention.Analysis.estimator list;
  observations : observation list;
  timing : timing;
}

val run :
  ?horizon:float ->
  ?estimators:Contention.Analysis.estimator list ->
  ?usecases:Contention.Usecase.t list ->
  ?progress:(int -> int -> unit) ->
  Workload.t ->
  t
(** [run w] sweeps all [2^n - 1] use-cases (or the given subset) with the
    paper's four estimators by default.  [horizon] defaults to the paper's
    [500_000.] cycles.  [progress done total] is called after each
    use-case. *)

val inaccuracy_period : t -> Contention.Analysis.estimator -> float
(** Mean absolute percent difference between estimated and simulated period,
    over all observations — Table 1's "Period" column. *)

val inaccuracy_throughput : t -> Contention.Analysis.estimator -> float
(** Same on [1/period] — Table 1's "Throughput" column. *)

val inaccuracy_by_size : t -> Contention.Analysis.estimator -> (int * float) array
(** Figure 6: [(k, mean inaccuracy over use-cases with k active apps)] for
    each occurring [k], ascending. *)
